"""Unit tests for LEX-M (repro.chordal.lexm)."""

from __future__ import annotations

from helpers import small_chordal_graphs, small_random_graphs
from repro.chordal.lexm import lex_m
from repro.chordal.peo import is_perfect_elimination_ordering
from repro.chordal.sandwich import is_minimal_triangulation
from repro.chordal.triangulate import get_triangulator
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.graph.graph import Graph


def filled_with(graph: Graph, fill) -> Graph:
    out = graph.copy()
    out.add_edges(fill)
    return out


class TestLexM:
    def test_chordal_input_gets_no_fill(self):
        for g in small_chordal_graphs(20, seed=91):
            fill, order = lex_m(g)
            assert fill == []
            assert sorted(order, key=repr) == sorted(g.nodes(), key=repr)

    def test_produces_minimal_triangulation(self):
        for g in small_random_graphs(30, max_nodes=9, seed=3401):
            fill, __ = lex_m(g)
            assert is_minimal_triangulation(g, filled_with(g, fill))

    def test_order_is_peo_of_filled_graph(self):
        for g in small_random_graphs(20, max_nodes=9, seed=3407):
            fill, order = lex_m(g)
            assert is_perfect_elimination_ordering(filled_with(g, fill), order)

    def test_cycle_fill_size(self):
        for n in (4, 5, 6, 8):
            fill, __ = lex_m(cycle_graph(n))
            assert len(fill) == n - 3

    def test_grid(self):
        g = grid_graph(4, 4)
        fill, __ = lex_m(g)
        assert is_minimal_triangulation(g, filled_with(g, fill))

    def test_empty_and_trivial(self):
        assert lex_m(Graph()) == ([], [])
        fill, order = lex_m(Graph(nodes=[1]))
        assert fill == [] and order == [1]

    def test_path(self):
        fill, __ = lex_m(path_graph(6))
        assert fill == []


class TestRegistryIntegration:
    def test_registered(self):
        t = get_triangulator("lex_m")
        assert t.guarantees_minimal

    def test_enumeration_count_unchanged(self):
        from repro.core.enumerate import count_minimal_triangulations

        assert count_minimal_triangulations(
            cycle_graph(6), triangulator="lex_m"
        ) == 14

    def test_same_result_set_as_mcs_m(self):
        from repro.core.enumerate import enumerate_minimal_triangulations

        for g in small_random_graphs(10, max_nodes=7, seed=3413):
            via_lexm = {
                t.fill_edges
                for t in enumerate_minimal_triangulations(g, triangulator="lex_m")
            }
            via_mcsm = {
                t.fill_edges
                for t in enumerate_minimal_triangulations(g, triangulator="mcs_m")
            }
            assert via_lexm == via_mcsm
