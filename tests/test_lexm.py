"""Unit tests for LEX-M (repro.chordal.lexm)."""

from __future__ import annotations

from helpers import small_chordal_graphs, small_random_graphs
from repro.chordal.lexm import lex_m
from repro.chordal.peo import is_perfect_elimination_ordering
from repro.chordal.sandwich import is_minimal_triangulation
from repro.chordal.triangulate import get_triangulator
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.graph.graph import Graph


def filled_with(graph: Graph, fill) -> Graph:
    out = graph.copy()
    out.add_edges(fill)
    return out


class TestLexM:
    def test_chordal_input_gets_no_fill(self):
        for g in small_chordal_graphs(20, seed=91):
            fill, order = lex_m(g)
            assert fill == []
            assert sorted(order, key=repr) == sorted(g.nodes(), key=repr)

    def test_produces_minimal_triangulation(self):
        for g in small_random_graphs(30, max_nodes=9, seed=3401):
            fill, __ = lex_m(g)
            assert is_minimal_triangulation(g, filled_with(g, fill))

    def test_order_is_peo_of_filled_graph(self):
        for g in small_random_graphs(20, max_nodes=9, seed=3407):
            fill, order = lex_m(g)
            assert is_perfect_elimination_ordering(filled_with(g, fill), order)

    def test_cycle_fill_size(self):
        for n in (4, 5, 6, 8):
            fill, __ = lex_m(cycle_graph(n))
            assert len(fill) == n - 3

    def test_grid(self):
        g = grid_graph(4, 4)
        fill, __ = lex_m(g)
        assert is_minimal_triangulation(g, filled_with(g, fill))

    def test_empty_and_trivial(self):
        assert lex_m(Graph()) == ([], [])
        fill, order = lex_m(Graph(nodes=[1]))
        assert fill == [] and order == [1]


def _lex_m_reference(graph: Graph):
    """The pre-bucket-mask LEX-M: same numbering loop, heap reachability."""
    from repro.chordal.lexm import _lexm_reachable_heap
    from repro.graph.graph import edge_key, sort_edges

    core = graph.core
    adj = core.adj
    labels = [()] * len(adj)
    sorted_order = graph.sorted_indices()
    label_of = graph.label_of
    unnumbered = core.alive
    fill = []
    reverse_order = []
    for number in range(core.num_vertices, 0, -1):
        v = -1
        v_label = None
        for i in sorted_order:
            if not unnumbered >> i & 1:
                continue
            if v_label is None or labels[i] > v_label:
                v, v_label = i, labels[i]
        unnumbered &= ~(1 << v)
        reverse_order.append(label_of(v))
        adj_v = adj[v]
        node_v = label_of(v)
        for u in _lexm_reachable_heap(adj, labels, unnumbered, v):
            labels[u] = labels[u] + (number,)
            if not adj_v >> u & 1:
                fill.append(edge_key(label_of(u), node_v))
    reverse_order.reverse()
    return sort_edges(fill), reverse_order


class TestBucketMaskEquivalence:
    """The mask threshold sweep must match the heap traversal exactly."""

    def test_full_outputs_match_on_property_corpus(self):
        corpus = (
            small_random_graphs(40, max_nodes=10, seed=5117)
            + small_chordal_graphs(15, seed=5119)
            + [path_graph(7), cycle_graph(8), grid_graph(4, 4)]
        )
        for g in corpus:
            assert lex_m(g) == _lex_m_reference(g)

    def test_reachable_sets_match_on_random_label_states(self):
        import random

        from repro.chordal.lexm import (
            _lexm_reachable_heap,
            _lexm_reachable_mask,
        )
        from repro.graph.core import bit_list
        from repro.graph.generators import gnp_random_graph

        rng = random.Random(42)
        for trial in range(60):
            n = rng.randint(3, 11)
            g = gnp_random_graph(n, rng.choice([0.25, 0.4, 0.6]), seed=trial)
            adj = g.core.adj
            labels = [
                tuple(
                    sorted(
                        rng.sample(range(1, n + 1), rng.randint(0, min(3, n))),
                        reverse=True,
                    )
                )
                for __ in range(len(adj))
            ]
            alive = bit_list(g.core.alive)
            v = rng.choice(alive)
            unnumbered = g.core.alive & ~(1 << v)
            for dropped in rng.sample(alive, len(alive) // 4):
                unnumbered &= ~(1 << dropped)
            assert set(_lexm_reachable_heap(adj, labels, unnumbered, v)) == set(
                bit_list(_lexm_reachable_mask(adj, labels, unnumbered, v))
            )

    def test_path(self):
        fill, __ = lex_m(path_graph(6))
        assert fill == []


class TestRegistryIntegration:
    def test_registered(self):
        t = get_triangulator("lex_m")
        assert t.guarantees_minimal

    def test_enumeration_count_unchanged(self):
        from repro.core.enumerate import count_minimal_triangulations

        assert count_minimal_triangulations(
            cycle_graph(6), triangulator="lex_m"
        ) == 14

    def test_same_result_set_as_mcs_m(self):
        from repro.core.enumerate import enumerate_minimal_triangulations

        for g in small_random_graphs(10, max_nodes=7, seed=3413):
            via_lexm = {
                t.fill_edges
                for t in enumerate_minimal_triangulations(g, triangulator="lex_m")
            }
            via_mcsm = {
                t.fill_edges
                for t in enumerate_minimal_triangulations(g, triangulator="mcs_m")
            }
            assert via_lexm == via_mcsm
