"""Shared fixtures for the test-suite.

Plain helper functions (the random-graph corpora, ``edge_set``) live in
:mod:`helpers` so that test modules can import them without relying on
``conftest`` being importable by name — see tests/helpers.py.
"""

from __future__ import annotations

import pytest

# Re-exported for any straggler that still does `from conftest import …`
# when tests/ is collected on its own.
from helpers import edge_set, small_chordal_graphs, small_random_graphs  # noqa: F401

from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_k_tree,
    star_graph,
)
from repro.graph.graph import Graph


@pytest.fixture
def square() -> Graph:
    """The 4-cycle — two minimal triangulations."""
    return cycle_graph(4)


@pytest.fixture
def hexagon() -> Graph:
    """The 6-cycle — Catalan(4) = 14 minimal triangulations."""
    return cycle_graph(6)


@pytest.fixture
def paper_figure4_graph() -> Graph:
    """The graph of the paper's Figure 4 (nodes 1–4)."""
    return Graph(edges=[(1, 2), (2, 3), (2, 4), (3, 4)])


@pytest.fixture
def named_graphs() -> dict[str, Graph]:
    """A menagerie of named structured graphs."""
    return {
        "k1": complete_graph(1),
        "k4": complete_graph(4),
        "p5": path_graph(5),
        "c5": cycle_graph(5),
        "c7": cycle_graph(7),
        "star6": star_graph(6),
        "grid33": grid_graph(3, 3),
        "ktree": random_k_tree(9, 3, seed=5),
        "two_triangles": Graph(
            edges=[(0, 1), (1, 2), (2, 0), (10, 11), (11, 12), (12, 10)]
        ),
    }
