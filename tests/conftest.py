"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_chordal_graph,
    random_k_tree,
    star_graph,
)
from repro.graph.graph import Graph


def small_random_graphs(count: int, max_nodes: int = 8, seed: int = 99) -> list[Graph]:
    """A deterministic corpus of small random graphs for oracle tests."""
    rng = random.Random(seed)
    graphs = []
    for index in range(count):
        n = rng.randint(3, max_nodes)
        p = rng.choice([0.2, 0.35, 0.5, 0.7])
        graphs.append(gnp_random_graph(n, p, seed=seed * 1000 + index))
    return graphs


def small_chordal_graphs(count: int, max_nodes: int = 12, seed: int = 7) -> list[Graph]:
    """A deterministic corpus of small chordal graphs."""
    rng = random.Random(seed)
    graphs = []
    for index in range(count):
        n = rng.randint(2, max_nodes)
        density = rng.choice([0.2, 0.4, 0.7, 1.0])
        graphs.append(random_chordal_graph(n, density, seed=seed * 131 + index))
    return graphs


@pytest.fixture
def square() -> Graph:
    """The 4-cycle — two minimal triangulations."""
    return cycle_graph(4)


@pytest.fixture
def hexagon() -> Graph:
    """The 6-cycle — Catalan(4) = 14 minimal triangulations."""
    return cycle_graph(6)


@pytest.fixture
def paper_figure4_graph() -> Graph:
    """The graph of the paper's Figure 4 (nodes 1–4)."""
    return Graph(edges=[(1, 2), (2, 3), (2, 4), (3, 4)])


@pytest.fixture
def named_graphs() -> dict[str, Graph]:
    """A menagerie of named structured graphs."""
    return {
        "k1": complete_graph(1),
        "k4": complete_graph(4),
        "p5": path_graph(5),
        "c5": cycle_graph(5),
        "c7": cycle_graph(7),
        "star6": star_graph(6),
        "grid33": grid_graph(3, 3),
        "ktree": random_k_tree(9, 3, seed=5),
        "two_triangles": Graph(
            edges=[(0, 1), (1, 2), (2, 0), (10, 11), (11, 12), (12, 10)]
        ),
    }


def edge_set(graph: Graph) -> set[frozenset]:
    """Edges as a set of frozensets (order-free comparison helper)."""
    return set(graph.edge_set())
