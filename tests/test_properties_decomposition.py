"""Property-based tests (hypothesis) for tree decompositions."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chordal.cliques import maximal_cliques
from repro.decomposition.clique_tree import clique_tree
from repro.decomposition.proper import enumerate_proper_tree_decompositions
from repro.decomposition.spanning_trees import (
    enumerate_maximum_spanning_trees,
    maximum_spanning_weight,
)
from repro.graph.generators import random_chordal_graph
from repro.graph.graph import Graph


@st.composite
def graphs(draw, max_nodes: int = 6):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    g = Graph(nodes=range(n))
    if n >= 2:
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g.add_edges(
            draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs)))
        )
    return g


@st.composite
def chordal_graphs(draw, max_nodes: int = 10):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    density = draw(st.sampled_from([0.3, 0.6, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    return random_chordal_graph(n, density, seed)


@st.composite
def weighted_multigraphs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    num_edges = draw(st.integers(min_value=0, max_value=8))
    edges = []
    for __ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        w = draw(st.integers(min_value=1, max_value=3))
        edges.append((u, v, w))
    return n, edges


@given(chordal_graphs())
@settings(max_examples=60)
def test_clique_tree_is_valid_decomposition(g):
    decomposition = clique_tree(g)
    decomposition.validate(g)
    assert decomposition.bag_set() == frozenset(maximal_cliques(g))


@given(chordal_graphs())
@settings(max_examples=40)
def test_clique_tree_of_chordal_graph_is_proper(g):
    assert clique_tree(g).is_proper(g)


@given(graphs())
@settings(max_examples=20, deadline=None)
def test_proper_enumeration_yields_valid_proper_decompositions(g):
    seen = set()
    for d in enumerate_proper_tree_decompositions(g):
        assert d not in seen
        seen.add(d)
        d.validate(g)
        assert d.is_proper(g)


@given(graphs(max_nodes=5))
@settings(max_examples=20, deadline=None)
def test_per_class_count_equals_triangulation_count(g):
    from repro.core.enumerate import count_minimal_triangulations

    classes = list(enumerate_proper_tree_decompositions(g, per_class=True))
    assert len(classes) == count_minimal_triangulations(g)


@given(weighted_multigraphs())
@settings(max_examples=60, deadline=None)
def test_maximum_spanning_trees_all_have_max_weight(case):
    n, edges = case
    best = maximum_spanning_weight(n, edges)
    produced = list(enumerate_maximum_spanning_trees(n, edges))
    assert produced
    assert len(produced) == len(set(produced))
    for tree in produced:
        assert sum(edges[i][2] for i in tree) == best
