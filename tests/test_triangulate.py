"""Unit tests for the triangulation heuristics (repro.chordal.triangulate)."""

from __future__ import annotations

import pytest

from helpers import small_chordal_graphs, small_random_graphs
from repro.chordal.peo import is_chordal
from repro.chordal.sandwich import is_minimal_triangulation
from repro.chordal.triangulate import (
    Triangulator,
    available_triangulators,
    elimination_game_triangulation,
    get_triangulator,
    lb_triang,
    mcs_m,
    min_degree_order,
    min_fill_order,
    register_triangulator,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.graph.graph import Graph


def filled_with(graph: Graph, fill) -> Graph:
    out = graph.copy()
    out.add_edges(fill)
    return out


class TestMcsM:
    def test_chordal_input_gets_no_fill(self):
        for g in small_chordal_graphs(20):
            fill, order = mcs_m(g)
            assert fill == []
            assert sorted(order) == g.nodes()

    def test_produces_minimal_triangulation(self):
        for g in small_random_graphs(30, max_nodes=9, seed=211):
            fill, __ = mcs_m(g)
            assert is_minimal_triangulation(g, filled_with(g, fill))

    def test_cycle_fill_size(self):
        # A minimal triangulation of C_n adds exactly n - 3 chords.
        for n in (4, 5, 6, 8):
            fill, __ = mcs_m(cycle_graph(n))
            assert len(fill) == n - 3

    def test_order_is_meo_of_filled_graph(self):
        from repro.chordal.peo import is_perfect_elimination_ordering

        for g in small_random_graphs(15, max_nodes=8, seed=217):
            fill, order = mcs_m(g)
            filled = filled_with(g, fill)
            assert is_perfect_elimination_ordering(filled, order)

    def test_first_node_varies_result(self):
        g = cycle_graph(6)
        fills = {tuple(mcs_m(g, first=v)[0]) for v in g.nodes()}
        assert len(fills) >= 2

    def test_unknown_first_raises(self):
        with pytest.raises(KeyError):
            mcs_m(path_graph(3), first="nope")

    def test_grid(self):
        g = grid_graph(4, 4)
        fill, __ = mcs_m(g)
        assert is_minimal_triangulation(g, filled_with(g, fill))


class TestLbTriang:
    def test_chordal_input_gets_no_fill(self):
        for g in small_chordal_graphs(20, seed=11):
            assert lb_triang(g) == []

    def test_produces_minimal_triangulation_all_heuristics(self):
        for heuristic in ("min_fill", "min_degree", "natural"):
            for g in small_random_graphs(20, max_nodes=9, seed=223):
                fill = lb_triang(g, heuristic=heuristic)
                assert is_minimal_triangulation(g, filled_with(g, fill))

    def test_explicit_order(self):
        g = cycle_graph(6)
        fill = lb_triang(g, order=list(g.nodes()))
        assert is_minimal_triangulation(g, filled_with(g, fill))

    def test_every_order_gives_minimal_triangulation(self):
        # The headline theorem of LB-Triang: minimality for *every* order.
        import itertools

        g = cycle_graph(5)
        for order in itertools.permutations(g.nodes()):
            fill = lb_triang(g, order=list(order))
            assert is_minimal_triangulation(g, filled_with(g, fill))

    def test_bad_order_raises(self):
        with pytest.raises(ValueError):
            lb_triang(path_graph(3), order=[0, 1])

    def test_bad_heuristic_raises(self):
        with pytest.raises(ValueError):
            lb_triang(path_graph(3), heuristic="mystery")

    def test_grid(self):
        g = grid_graph(4, 4)
        fill = lb_triang(g)
        assert is_minimal_triangulation(g, filled_with(g, fill))


class TestEliminationGame:
    def test_named_orderings_triangulate(self):
        for ordering in ("min_fill", "min_degree", "natural"):
            for g in small_random_graphs(15, max_nodes=9, seed=227):
                fill = elimination_game_triangulation(g, ordering)
                assert is_chordal(filled_with(g, fill))

    def test_explicit_order(self):
        g = cycle_graph(4)
        fill = elimination_game_triangulation(g, [0, 1, 2, 3])
        assert fill == [(1, 3)]

    def test_unknown_ordering_raises(self):
        with pytest.raises(ValueError):
            elimination_game_triangulation(path_graph(3), "alphabetical")

    def test_min_fill_order_permutation(self):
        g = grid_graph(3, 3)
        order = min_fill_order(g)
        assert sorted(order) == g.nodes()

    def test_min_degree_order_permutation(self):
        g = grid_graph(3, 3)
        order = min_degree_order(g)
        assert sorted(order) == g.nodes()

    def test_min_fill_on_cycle_is_optimal(self):
        # Greedy min-fill triangulates a cycle with exactly n-3 edges.
        fill = elimination_game_triangulation(cycle_graph(7), "min_fill")
        assert len(fill) == 4


class TestRegistry:
    def test_builtins_present(self):
        names = available_triangulators()
        for expected in (
            "mcs_m",
            "lb_triang",
            "lb_triang_min_degree",
            "min_fill",
            "min_degree",
            "natural",
            "complete",
        ):
            assert expected in names

    def test_get_by_name_and_instance(self):
        t = get_triangulator("mcs_m")
        assert get_triangulator(t) is t
        assert t.guarantees_minimal

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_triangulator("does_not_exist")

    def test_minimality_flags(self):
        assert get_triangulator("lb_triang").guarantees_minimal
        assert not get_triangulator("min_fill").guarantees_minimal
        assert not get_triangulator("complete").guarantees_minimal

    def test_register_custom(self):
        custom = Triangulator(
            "test_custom", lambda g: g.missing_edges(), guarantees_minimal=False
        )
        register_triangulator(custom)
        assert get_triangulator("test_custom") is custom

    def test_triangulate_method(self):
        filled, fill = get_triangulator("mcs_m").triangulate(cycle_graph(5))
        assert is_chordal(filled)
        assert len(fill) == 2

    def test_complete_triangulator(self):
        filled, fill = get_triangulator("complete").triangulate(cycle_graph(5))
        assert filled.num_edges == 10
