"""Property-based tests (hypothesis) for the extension modules."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import brute_force_maximal_independent_sets
from repro.chordal.atoms import atoms, clique_minimal_separators
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.graph.graph import Graph
from repro.hypergraph.covers import greedy_cover, minimum_cover
from repro.hypergraph.hypergraph import Hypergraph
from repro.sgr.reverse_search import poly_space_maximal_independent_sets


@st.composite
def graphs(draw, min_nodes: int = 1, max_nodes: int = 8):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    g = Graph(nodes=range(n))
    if n >= 2:
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g.add_edges(
            draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs)))
        )
    return g


@st.composite
def hypergraphs(draw):
    num_vertices = draw(st.integers(min_value=1, max_value=6))
    universe = [f"v{i}" for i in range(num_vertices)]
    num_edges = draw(st.integers(min_value=1, max_value=5))
    edges = {}
    for index in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(3, num_vertices)))
        scope = draw(
            st.lists(
                st.sampled_from(universe),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        edges[f"e{index}"] = tuple(scope)
    return Hypergraph(edges)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_poly_space_mis_matches_brute_force(g):
    produced = list(poly_space_maximal_independent_sets(g))
    assert len(produced) == len(set(produced))
    assert set(produced) == brute_force_maximal_independent_sets(g)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_atoms_cover_and_overlap_in_cliques(g):
    decomposition = atoms(g)
    covered = set()
    for atom in decomposition:
        covered |= atom
    assert covered == g.node_set()
    for i, a in enumerate(decomposition):
        for b in decomposition[i + 1 :]:
            assert g.is_clique(a & b)


@given(graphs(max_nodes=7))
@settings(max_examples=25, deadline=None)
def test_atom_decomposed_enumeration_is_identical(g):
    plain = {t.fill_edges for t in enumerate_minimal_triangulations(g)}
    split = {
        t.fill_edges
        for t in enumerate_minimal_triangulations(g, decompose="atoms")
    }
    assert plain == split


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_clique_minimal_separators_are_clique_and_minimal(g):
    from repro.chordal.minimal_separators import is_minimal_separator

    for separator in clique_minimal_separators(g):
        assert g.is_clique(separator)
        assert is_minimal_separator(g, separator)


@given(hypergraphs())
@settings(max_examples=50, deadline=None)
def test_primal_graph_covers_every_scope(h):
    primal = h.primal_graph()
    for name in h.edge_names():
        assert primal.is_clique(h.edge(name))


@given(hypergraphs(), st.data())
@settings(max_examples=50, deadline=None)
def test_covers_actually_cover(h, data):
    vertices = h.vertices()
    bag = frozenset(
        data.draw(
            st.lists(st.sampled_from(vertices), unique=True, max_size=4)
        )
    )
    edges = h.edges()
    coverable = frozenset(v for scope in edges.values() for v in scope)
    if not bag <= coverable:
        return
    exact = minimum_cover(bag, edges)
    greedy = greedy_cover(bag, edges)
    for cover in (exact, greedy):
        union = frozenset(v for name in cover for v in edges[name])
        assert bag <= union
    assert len(exact) <= len(greedy)


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_acyclic_hypergraphs_have_ghw_one(h):
    from repro.hypergraph.ghd import ghw_upper_bound

    if h.is_alpha_acyclic() and h.num_vertices > 0:
        assert ghw_upper_bound(h, max_decompositions=8) == 1


@given(graphs(max_nodes=7), st.sampled_from(["width", "fill"]))
@settings(max_examples=20, deadline=None)
def test_prioritized_enumeration_is_complete(g, cost):
    from repro.core.ranked import enumerate_minimal_triangulations_prioritized

    plain = {t.fill_edges for t in enumerate_minimal_triangulations(g)}
    ranked = {
        t.fill_edges
        for t in enumerate_minimal_triangulations_prioritized(g, cost=cost)
    }
    assert plain == ranked
