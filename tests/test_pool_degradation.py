"""Kernel-tier surfacing: no more silent native → numpy degradation.

A worker process (or host) that cannot run the compiled native tier
rebuilds the graph on the numpy core with identical semantics — but
PR 6 did so silently, which skews cross-host benchmark numbers without
a trace.  Now the first degraded rebuild warns once per process, and
every worker stamps the tier it actually ran into the merged
statistics (``EnumMISStatistics.kernel_tiers``).
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

pytest.importorskip("numpy")

from repro.engine import pool
from repro.engine.pool import WorkerState, make_payload
from repro.graph import bitset_np
from repro.graph.generators import gnp_random_graph
from repro.sgr.enum_mis import EnumMISStatistics


@pytest.fixture
def fresh_warning_state():
    before = pool._DEGRADATION_WARNED
    pool._DEGRADATION_WARNED = False
    yield
    pool._DEGRADATION_WARNED = before


def _native_payload():
    graph = gnp_random_graph(8, 0.5, seed=11)
    payload = make_payload(graph, "mcs_m")
    return dataclasses.replace(payload, backend="native")


@pytest.mark.skipif(
    "native" not in bitset_np.GRAPH_BACKENDS,
    reason="native backend not registered",
)
class TestDegradationWarning:
    def test_unavailable_native_warns_once(
        self, monkeypatch, fresh_warning_state
    ):
        native_cls = bitset_np.GRAPH_BACKENDS["native"]
        monkeypatch.setattr(
            native_cls, "runtime_available", classmethod(lambda cls: False)
        )
        payload = _native_payload()
        with pytest.warns(RuntimeWarning, match="numpy"):
            state = WorkerState(payload)
        assert state.kernel_tier == "numpy"
        # Second rebuild in the same process: no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            WorkerState(payload)

    def test_available_native_does_not_warn(self, fresh_warning_state):
        native_cls = bitset_np.GRAPH_BACKENDS["native"]
        if not native_cls.runtime_available():
            pytest.skip("native extension not buildable here")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            state = WorkerState(_native_payload())
        assert state.kernel_tier == "native"


class TestTierStamping:
    def test_run_batch_stamps_tier(self):
        from repro.engine.wire import encode_batch

        graph = gnp_random_graph(7, 0.5, seed=3)
        payload = make_payload(graph, "mcs_m")
        state = WorkerState(payload)
        batch = encode_batch(
            graph.core.alive, [()], (), max(1, payload.words)
        )
        result = state.run_batch(batch)
        assert result.stats.kernel_tiers == {state.kernel_tier: 1}

    def test_tiers_merge_keywise(self):
        a = EnumMISStatistics()
        a.kernel_tiers["numpy"] = 2
        b = EnumMISStatistics()
        b.kernel_tiers["numpy"] = 1
        b.kernel_tiers["native"] = 4
        a.add(b)
        assert a.kernel_tiers == {"numpy": 3, "native": 4}

    def test_tiers_survive_snapshot_restore(self):
        stats = EnumMISStatistics()
        stats.kernel_tiers["indexed"] = 5
        stats.worker_joins = 2
        stats.batches_requeued = 1
        restored = EnumMISStatistics()
        restored.restore(stats.snapshot())
        assert restored.kernel_tiers == {"indexed": 5}
        assert restored.worker_joins == 2
        assert restored.batches_requeued == 1
