"""Unit tests for the graph generators (repro.graph.generators)."""

from __future__ import annotations

import pytest

from repro.chordal.peo import is_chordal
from repro.graph.components import is_connected
from repro.graph.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edge_list,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_chordal_graph,
    random_connected_gnp,
    random_k_tree,
    random_tree,
    star_graph,
    wheel_graph,
)


class TestDeterministicShapes:
    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.num_nodes == 5 and g.num_edges == 0

    def test_empty_graph_negative_raises(self):
        with pytest.raises(ValueError):
            empty_graph(-1)

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_path_graph(self):
        g = path_graph(6)
        assert g.num_edges == 5
        assert g.degree(0) == 1 and g.degree(3) == 2

    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small_raises(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star_graph(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.num_edges == 7

    def test_wheel_graph(self):
        g = wheel_graph(5)
        assert g.degree(0) == 5
        assert g.num_edges == 10

    def test_wheel_too_small_raises(self):
        with pytest.raises(ValueError):
            wheel_graph(2)

    def test_grid_graph_counts(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 4 * 2  # 3*(4-1) + 4*(3-1)

    def test_grid_default_square(self):
        assert grid_graph(3).num_nodes == 9

    def test_grid_invalid_raises(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.num_edges == 6
        assert not g.has_edge(0, 1)

    def test_from_edge_list(self):
        g = from_edge_list([(1, 2), (2, 3)])
        assert g.num_nodes == 3


class TestRandomGenerators:
    def test_gnp_deterministic_in_seed(self):
        a = gnp_random_graph(20, 0.4, seed=1)
        b = gnp_random_graph(20, 0.4, seed=1)
        c = gnp_random_graph(20, 0.4, seed=2)
        assert a == b
        assert a != c

    def test_gnp_extreme_probabilities(self):
        assert gnp_random_graph(6, 0.0, seed=1).num_edges == 0
        assert gnp_random_graph(6, 1.0, seed=1).num_edges == 15

    def test_gnp_invalid_probability(self):
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.5, seed=0)

    def test_gnm_exact_edge_count(self):
        g = gnm_random_graph(10, 17, seed=4)
        assert g.num_edges == 17
        assert g.num_nodes == 10

    def test_gnm_too_many_edges_raises(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 7, seed=0)

    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = random_tree(12, seed=seed)
            assert g.num_edges == 11
            assert is_connected(g)

    def test_random_tree_small(self):
        assert random_tree(0, seed=1).num_nodes == 0
        assert random_tree(1, seed=1).num_nodes == 1
        assert random_tree(2, seed=1).num_edges == 1

    def test_random_k_tree_is_chordal_with_known_width(self):
        from repro.chordal.cliques import tree_width

        for seed in range(4):
            g = random_k_tree(10, 3, seed=seed)
            assert is_chordal(g)
            assert tree_width(g) == 3

    def test_random_k_tree_validation(self):
        with pytest.raises(ValueError):
            random_k_tree(3, 0, seed=1)
        with pytest.raises(ValueError):
            random_k_tree(2, 3, seed=1)

    def test_random_chordal_graph_is_chordal(self):
        for seed in range(8):
            g = random_chordal_graph(12, 0.4, seed=seed)
            assert is_chordal(g)

    def test_random_chordal_density_validation(self):
        with pytest.raises(ValueError):
            random_chordal_graph(5, 0.0, seed=1)

    def test_random_connected_gnp(self):
        for seed in range(4):
            g = random_connected_gnp(15, 0.15, seed=seed)
            assert is_connected(g)
            assert g.num_nodes == 15
