"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, load_graph, main
from repro.decomposition.io import read_pace_td
from repro.graph.generators import cycle_graph
from repro.graph.io import write_edge_list, write_pace_graph


@pytest.fixture
def square_gr(tmp_path):
    path = tmp_path / "square.gr"
    write_pace_graph(cycle_graph(4), path)
    return str(path)


@pytest.fixture
def square_edges(tmp_path):
    path = tmp_path / "square.edges"
    write_edge_list(cycle_graph(4), path)
    return str(path)


class TestLoadGraph:
    def test_extension_inference(self, square_gr, square_edges):
        assert load_graph(square_gr).num_nodes == 4
        assert load_graph(square_edges).num_edges == 4

    def test_explicit_format(self, square_gr):
        assert load_graph(square_gr, "pace").num_nodes == 4

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "graph.bin"
        path.write_text("")
        with pytest.raises(ValueError, match="cannot infer"):
            load_graph(str(path))

    def test_unknown_format(self, square_gr):
        with pytest.raises(ValueError, match="unknown format"):
            load_graph(square_gr, "xml")


class TestEnumerateCommand:
    def test_basic(self, square_gr, capsys):
        assert main(["enumerate", square_gr]) == 0
        out = capsys.readouterr().out
        assert "2 minimal triangulations" in out
        assert "enumeration complete" in out

    def test_show_fill(self, square_gr, capsys):
        main(["enumerate", square_gr, "--show-fill"])
        assert "edges=" in capsys.readouterr().out

    def test_max_results(self, square_gr, capsys):
        assert main(["enumerate", square_gr, "--max-results", "1"]) == 0
        assert "reached --max-results" in capsys.readouterr().out

    def test_td_out(self, square_gr, tmp_path, capsys):
        target = tmp_path / "best.td"
        assert main(["enumerate", square_gr, "--td-out", str(target)]) == 0
        decomposition = read_pace_td(target)
        assert decomposition.width == 2

    def test_triangulator_choice(self, square_gr, capsys):
        assert main(["enumerate", square_gr, "--triangulator", "lb_triang"]) == 0

    def test_atoms_decompose(self, square_gr, capsys):
        assert main(["enumerate", square_gr, "--decompose", "atoms"]) == 0
        assert "2 minimal triangulations" in capsys.readouterr().out


class TestOtherCommands:
    def test_separators(self, square_gr, capsys):
        assert main(["separators", square_gr]) == 0
        captured = capsys.readouterr()
        assert "2 minimal separators" in captured.err
        assert len(captured.out.strip().splitlines()) == 2

    def test_separators_limit(self, square_gr, capsys):
        assert main(["separators", square_gr, "--limit", "1"]) == 0
        assert "1 minimal separators" in capsys.readouterr().err

    def test_stats(self, square_gr, capsys):
        assert main(["stats", square_gr]) == 0
        out = capsys.readouterr().out
        assert "nodes:    4" in out
        assert "chordal:  no" in out
        assert "minseps:  2" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["stats", "/nonexistent/file.gr"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_parser_help_lists_commands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for command in ("enumerate", "separators", "stats", "tpch"):
            assert command in help_text


class TestTreewidthCommand:
    def test_exact_on_square(self, square_gr, capsys, tmp_path):
        target = tmp_path / "out.td"
        assert main(["treewidth", square_gr, "--td-out", str(target)]) == 0
        out = capsys.readouterr().out
        assert "treewidth exact: 2" in out
        assert read_pace_td(target).width == 2

    def test_budgeted_run(self, square_gr, capsys):
        assert main(["treewidth", square_gr, "--max-results", "1"]) == 0
        out = capsys.readouterr().out
        assert "treewidth" in out
