"""Unit tests for EnumMIS over SGRs (repro.sgr.enum_mis, repro.sgr.base)."""

from __future__ import annotations

import pytest

from helpers import small_random_graphs
from repro.baselines.brute_force import brute_force_maximal_independent_sets
from repro.errors import NotAnIndependentSetError
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.sgr.base import ExplicitSGR
from repro.sgr.enum_mis import EnumMISStatistics, enumerate_maximal_independent_sets


def mis_of(graph: Graph, mode: str = "UG") -> set[frozenset]:
    return set(enumerate_maximal_independent_sets(ExplicitSGR(graph), mode=mode))


class TestExplicitSGR:
    def test_iter_nodes_sorted(self):
        sgr = ExplicitSGR(Graph(nodes=[3, 1, 2]))
        assert list(sgr.iter_nodes()) == [1, 2, 3]

    def test_has_edge(self):
        sgr = ExplicitSGR(path_graph(3))
        assert sgr.has_edge(0, 1)
        assert not sgr.has_edge(0, 2)

    def test_extend_returns_maximal(self):
        g = path_graph(5)
        sgr = ExplicitSGR(g)
        result = sgr.extend(frozenset({1}))
        assert 1 in result
        assert g.is_independent_set(result)
        for node in g.nodes():
            if node not in result:
                assert not g.is_independent_set(set(result) | {node})

    def test_extend_rejects_dependent_set(self):
        sgr = ExplicitSGR(path_graph(3))
        with pytest.raises(NotAnIndependentSetError):
            sgr.extend(frozenset({0, 1}))

    def test_is_independent_helper(self):
        sgr = ExplicitSGR(path_graph(3))
        assert sgr.is_independent(frozenset({0, 2}))
        assert not sgr.is_independent(frozenset({0, 1}))


class TestEnumMISKnownGraphs:
    def test_empty_graph_single_answer(self):
        assert mis_of(Graph()) == {frozenset()}

    def test_edgeless_graph(self):
        assert mis_of(empty_graph(3)) == {frozenset({0, 1, 2})}

    def test_single_edge(self):
        assert mis_of(path_graph(2)) == {frozenset({0}), frozenset({1})}

    def test_path4(self):
        assert mis_of(path_graph(4)) == {
            frozenset({0, 2}),
            frozenset({0, 3}),
            frozenset({1, 3}),
        }

    def test_cycle5(self):
        assert mis_of(cycle_graph(5)) == {
            frozenset({0, 2}),
            frozenset({1, 3}),
            frozenset({2, 4}),
            frozenset({0, 3}),
            frozenset({1, 4}),
        }

    def test_complete_graph_singletons(self):
        assert mis_of(complete_graph(4)) == {
            frozenset({v}) for v in range(4)
        }

    def test_star(self):
        assert mis_of(star_graph(4)) == {
            frozenset({0}),
            frozenset({1, 2, 3, 4}),
        }


class TestEnumMISRandom:
    def test_matches_brute_force_ug(self):
        for g in small_random_graphs(40, max_nodes=9, seed=501):
            assert mis_of(g, "UG") == brute_force_maximal_independent_sets(g)

    def test_matches_brute_force_up(self):
        for g in small_random_graphs(40, max_nodes=9, seed=503):
            assert mis_of(g, "UP") == brute_force_maximal_independent_sets(g)

    def test_no_duplicates(self):
        for g in small_random_graphs(20, max_nodes=9, seed=509):
            produced = list(
                enumerate_maximal_independent_sets(ExplicitSGR(g))
            )
            assert len(produced) == len(set(produced))

    def test_modes_agree_as_sets(self):
        for g in small_random_graphs(15, max_nodes=8, seed=521):
            assert mis_of(g, "UG") == mis_of(g, "UP")

    def test_every_answer_is_maximal_independent(self):
        for g in small_random_graphs(15, max_nodes=9, seed=523):
            for answer in mis_of(g):
                assert g.is_independent_set(answer)
                for node in g.nodes():
                    if node not in answer:
                        assert not g.is_independent_set(set(answer) | {node})


class TestModesAndStats:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            list(
                enumerate_maximal_independent_sets(
                    ExplicitSGR(path_graph(2)), mode="XX"
                )
            )

    def test_statistics_populated(self):
        stats = EnumMISStatistics()
        results = list(
            enumerate_maximal_independent_sets(
                ExplicitSGR(cycle_graph(6)), stats=stats
            )
        )
        assert stats.answers == len(results)
        assert stats.extend_calls >= len(results)
        assert stats.nodes_generated == 6
        assert stats.edge_oracle_calls > 0
        snapshot = stats.snapshot()
        assert snapshot["answers"] == len(results)

    def test_lazy_first_answer(self):
        # The first answer must be produced before the node iterator is
        # consulted at all.
        class ExplodingIterSGR(ExplicitSGR):
            def iter_nodes(self):
                raise AssertionError("node iterator touched too early")

        generator = enumerate_maximal_independent_sets(
            ExplodingIterSGR(path_graph(4))
        )
        first = next(generator)
        assert first in {frozenset({0, 2}), frozenset({0, 3}), frozenset({1, 3})}

    def test_generator_is_lazy_per_answer(self):
        g = cycle_graph(8)
        generator = enumerate_maximal_independent_sets(ExplicitSGR(g))
        first_three = [next(generator) for __ in range(3)]
        assert len(set(first_three)) == 3
