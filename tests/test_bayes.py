"""Unit tests for Bayesian networks (repro.inference.bayes)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.enumerate import minimal_triangulation
from repro.inference.bayes import BayesianNetwork
from repro.inference.junction_tree import calibrate


def sprinkler() -> BayesianNetwork:
    """The classic rain/sprinkler/wet-grass network."""
    domains = {"rain": 2, "sprinkler": 2, "grass": 2}
    parents = {"rain": (), "sprinkler": ("rain",), "grass": ("rain", "sprinkler")}
    cpts = {
        "rain": np.array([0.8, 0.2]),
        "sprinkler": np.array([[0.6, 0.4], [0.99, 0.01]]),
        "grass": np.array(
            [
                [[1.0, 0.0], [0.1, 0.9]],
                [[0.2, 0.8], [0.01, 0.99]],
            ]
        ),
    }
    return BayesianNetwork(domains, parents, cpts)


class TestConstruction:
    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError, match="share keys"):
            BayesianNetwork({"a": 2}, {}, {})

    def test_cpt_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            BayesianNetwork(
                {"a": 2}, {"a": ()}, {"a": np.ones((3,)) / 3}
            )

    def test_cpt_normalisation_checked(self):
        with pytest.raises(ValueError, match="sum to 1"):
            BayesianNetwork({"a": 2}, {"a": ()}, {"a": np.array([0.5, 0.6])})

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            BayesianNetwork(
                {"a": 2, "b": 2},
                {"a": ("b",), "b": ("a",)},
                {
                    "a": np.full((2, 2), 0.5),
                    "b": np.full((2, 2), 0.5),
                },
            )

    def test_random_generator_valid(self):
        bn = BayesianNetwork.random(8, 3, seed=4)
        assert len(bn.domains) == 8
        for v, table in bn.cpts.items():
            assert np.allclose(table.sum(axis=-1), 1.0)


class TestStructure:
    def test_moral_graph_marries_parents(self):
        bn = sprinkler()
        moral = bn.moral_graph()
        assert moral.has_edge("rain", "sprinkler")
        assert moral.has_edge("rain", "grass")
        assert moral.has_edge("sprinkler", "grass")

    def test_markov_network_primal_is_moral_graph(self):
        bn = BayesianNetwork.random(9, 3, seed=6)
        assert bn.to_markov_network().primal_graph() == bn.moral_graph()


class TestSemantics:
    def test_joint_probabilities_sum_to_one(self):
        bn = sprinkler()
        variables = bn.variables()
        total = sum(
            bn.joint_probability(dict(zip(variables, a)))
            for a in itertools.product((0, 1), repeat=3)
        )
        assert total == pytest.approx(1.0)

    def test_partition_function_is_one(self):
        for seed in range(4):
            bn = BayesianNetwork.random(7, 3, seed=seed)
            decomposition = minimal_triangulation(
                bn.moral_graph()
            ).tree_decomposition()
            result = calibrate(bn.to_markov_network(), decomposition)
            assert result.partition_function == pytest.approx(1.0)

    def test_sprinkler_marginal(self):
        bn = sprinkler()
        decomposition = minimal_triangulation(
            bn.moral_graph()
        ).tree_decomposition()
        result = calibrate(bn.to_markov_network(), decomposition)
        rain = result.normalized_marginal("rain")
        assert rain == pytest.approx([0.8, 0.2])
        variables = bn.variables()
        expected_wet = sum(
            bn.joint_probability(dict(zip(variables, a)))
            for a in itertools.product((0, 1), repeat=3)
            if a[variables.index("grass")] == 1
        )
        wet = result.normalized_marginal("grass")[1]
        assert wet == pytest.approx(expected_wet)

    def test_partial_assignment_rejected(self):
        with pytest.raises(ValueError, match="cover"):
            sprinkler().joint_probability({"rain": 1})
