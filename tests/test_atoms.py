"""Unit tests for clique-minimal-separator decomposition (repro.chordal.atoms)."""

from __future__ import annotations

from helpers import small_chordal_graphs, small_random_graphs
from repro.chordal.atoms import atoms, clique_minimal_separators
from repro.chordal.cliques import maximal_cliques
from repro.chordal.minimal_separators import all_minimal_separators
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


class TestCliqueMinimalSeparators:
    def test_path_cut_vertices(self):
        assert clique_minimal_separators(path_graph(4)) == {
            frozenset({1}),
            frozenset({2}),
        }

    def test_cycle_has_none(self):
        # C_n separators are non-adjacent pairs — never cliques.
        for n in (4, 5, 6, 7):
            assert clique_minimal_separators(cycle_graph(n)) == set()

    def test_complete_graph_has_none(self):
        assert clique_minimal_separators(complete_graph(5)) == set()

    def test_matches_definition(self):
        # ClqMinSep(g) = {S in MinSep(g) : S is a clique of g}.
        for g in small_random_graphs(30, max_nodes=8, seed=1301):
            expected = {
                s
                for s in all_minimal_separators(g)
                if s and g.is_clique(s)
            }
            assert clique_minimal_separators(g) == expected

    def test_chordal_graph_all_separators(self):
        # Dirac: every minimal separator of a chordal graph is a clique.
        for g in small_chordal_graphs(20, seed=1303):
            expected = {s for s in all_minimal_separators(g) if s}
            assert clique_minimal_separators(g) == expected


class TestAtoms:
    def test_path_atoms_are_edges(self):
        assert [sorted(a) for a in atoms(path_graph(4))] == [
            [0, 1],
            [1, 2],
            [2, 3],
        ]

    def test_cycle_is_one_atom(self):
        assert atoms(cycle_graph(6)) == [frozenset(range(6))]

    def test_chordal_atoms_are_maximal_cliques(self):
        for g in small_chordal_graphs(20, seed=1307):
            assert set(atoms(g)) == set(maximal_cliques(g))

    def test_star_atoms(self):
        result = atoms(star_graph(3))
        assert len(result) == 3
        assert all(0 in atom and len(atom) == 2 for atom in result)

    def test_disconnected(self):
        g = Graph(edges=[(0, 1), (5, 6), (6, 7), (5, 7)])
        result = atoms(g)
        assert frozenset({0, 1}) in result
        assert frozenset({5, 6, 7}) in result

    def test_atoms_cover_all_nodes_and_edges(self):
        for g in small_random_graphs(20, max_nodes=9, seed=1309):
            result = atoms(g)
            covered_nodes = set().union(*result) if result else set()
            assert covered_nodes == g.node_set()
            for u, v in g.edges():
                assert any(u in atom and v in atom for atom in result)

    def test_atoms_have_no_clique_separator(self):
        for g in small_random_graphs(15, max_nodes=8, seed=1311):
            for atom in atoms(g):
                assert clique_minimal_separators(g.subgraph(atom)) == set()

    def test_pairwise_overlaps_are_cliques(self):
        import itertools

        for g in small_random_graphs(15, max_nodes=9, seed=1313):
            for a, b in itertools.combinations(atoms(g), 2):
                assert g.is_clique(a & b)

    def test_empty_graph(self):
        assert atoms(Graph()) == []


class TestAtomDecomposedEnumeration:
    def test_matches_plain_enumeration(self):
        for g in small_random_graphs(25, max_nodes=9, seed=1319):
            plain = {
                t.fill_edges for t in enumerate_minimal_triangulations(g)
            }
            via_atoms = {
                t.fill_edges
                for t in enumerate_minimal_triangulations(g, decompose="atoms")
            }
            assert plain == via_atoms

    def test_all_results_minimal(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 2)])
        for t in enumerate_minimal_triangulations(g, decompose="atoms"):
            assert t.is_minimal()

    def test_chained_cycles_product(self):
        # Two C5s joined by a bridge: 5 * 5 triangulations.
        g = cycle_graph(5)
        for i in range(5):
            g.add_edge(10 + i, 10 + (i + 1) % 5)
        g.add_edge(0, 10)
        count = sum(
            1 for __ in enumerate_minimal_triangulations(g, decompose="atoms")
        )
        assert count == 25

    def test_invalid_decompose_value(self):
        import pytest

        with pytest.raises(ValueError):
            list(enumerate_minimal_triangulations(path_graph(3), decompose="magic"))

    def test_decompose_none_on_grid(self):
        g = grid_graph(2, 3)
        plain = {t.fill_edges for t in enumerate_minimal_triangulations(g, decompose="none")}
        split = {t.fill_edges for t in enumerate_minimal_triangulations(g, decompose="atoms")}
        assert plain == split
