"""Tests for polynomial-space reverse search (repro.sgr.reverse_search)."""

from __future__ import annotations

from helpers import small_random_graphs
from repro.baselines.brute_force import brute_force_maximal_independent_sets
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.sgr.reverse_search import poly_space_maximal_independent_sets


def collect(graph: Graph) -> list[frozenset]:
    return list(poly_space_maximal_independent_sets(graph))


class TestKnownGraphs:
    def test_empty_graph(self):
        assert collect(Graph()) == [frozenset()]

    def test_edgeless(self):
        assert collect(empty_graph(4)) == [frozenset({0, 1, 2, 3})]

    def test_single_edge(self):
        assert set(collect(path_graph(2))) == {frozenset({0}), frozenset({1})}

    def test_complete_graph(self):
        assert set(collect(complete_graph(4))) == {
            frozenset({v}) for v in range(4)
        }

    def test_star(self):
        assert set(collect(star_graph(5))) == {
            frozenset({0}),
            frozenset(range(1, 6)),
        }

    def test_cycle_counts(self):
        # Number of maximal independent sets of C_n follows the
        # Perrin-like recurrence; spot values: C5 -> 5, C6 -> 5, C7 -> 7.
        assert len(collect(cycle_graph(5))) == 5
        assert len(collect(cycle_graph(6))) == 5
        assert len(collect(cycle_graph(7))) == 7

    def test_greedy_set_is_produced(self):
        produced = collect(path_graph(5))
        assert frozenset({0, 2, 4}) in produced


class TestAgainstOracles:
    def test_matches_brute_force(self):
        for g in small_random_graphs(50, max_nodes=9, seed=1501):
            produced = collect(g)
            assert len(produced) == len(set(produced))
            assert set(produced) == brute_force_maximal_independent_sets(g)

    def test_matches_enum_mis(self):
        from repro.sgr.base import ExplicitSGR
        from repro.sgr.enum_mis import enumerate_maximal_independent_sets

        for g in small_random_graphs(25, max_nodes=8, seed=1503):
            via_enum_mis = set(
                enumerate_maximal_independent_sets(ExplicitSGR(g))
            )
            assert set(collect(g)) == via_enum_mis

    def test_every_answer_maximal(self):
        for g in small_random_graphs(20, max_nodes=9, seed=1507):
            for answer in collect(g):
                assert g.is_independent_set(answer)
                for node in g.nodes():
                    if node not in answer:
                        assert not g.is_independent_set(set(answer) | {node})

    def test_lazy_streaming(self):
        g = cycle_graph(9)
        iterator = poly_space_maximal_independent_sets(g)
        first = next(iterator)
        assert g.is_independent_set(first)
