"""Integration tests for minimal-triangulation enumeration (S16–S17)."""

from __future__ import annotations

import math

from helpers import small_random_graphs
from repro.baselines.brute_force import brute_force_minimal_triangulations
from repro.chordal.peo import is_chordal
from repro.core.enumerate import (
    count_minimal_triangulations,
    enumerate_minimal_triangulations,
    minimal_triangulation,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_chordal_graph,
)
from repro.graph.graph import Graph
from repro.sgr.enum_mis import EnumMISStatistics


def catalan(n: int) -> int:
    return math.comb(2 * n, n) // (n + 1)


def fill_sets(graph: Graph, **kwargs) -> set[frozenset]:
    return {
        frozenset(frozenset(edge) for edge in t.fill_edges)
        for t in enumerate_minimal_triangulations(graph, **kwargs)
    }


class TestKnownCounts:
    def test_cycles_are_catalan(self):
        # MinTri(C_n) = triangulations of a convex n-gon = Catalan(n-2).
        for n in (4, 5, 6, 7, 8):
            count = count_minimal_triangulations(cycle_graph(n))
            assert count == catalan(n - 2)

    def test_chordal_graph_is_its_own_unique_triangulation(self):
        for seed in range(6):
            g = random_chordal_graph(9, 0.5, seed=seed)
            results = list(enumerate_minimal_triangulations(g))
            assert len(results) == 1
            assert results[0].fill_edges == ()
            assert results[0].graph == g

    def test_complete_graph(self):
        results = list(enumerate_minimal_triangulations(complete_graph(5)))
        assert len(results) == 1

    def test_empty_and_trivial(self):
        assert count_minimal_triangulations(Graph()) == 1
        assert count_minimal_triangulations(Graph(nodes=[1])) == 1

    def test_square_two_triangulations(self):
        assert fill_sets(cycle_graph(4)) == {
            frozenset({frozenset({0, 2})}),
            frozenset({frozenset({1, 3})}),
        }

    def test_count_limit(self):
        assert count_minimal_triangulations(cycle_graph(8), limit=5) == 5


class TestAgainstBruteForce:
    def test_matches_exhaustive_search(self):
        for g in small_random_graphs(25, max_nodes=7, seed=701):
            ours = fill_sets(g)
            oracle = brute_force_minimal_triangulations(g)
            assert ours == oracle

    def test_matches_for_every_triangulator(self):
        g = grid_graph(2, 4)
        oracle = brute_force_minimal_triangulations(g)
        for name in ("mcs_m", "lb_triang", "min_fill", "min_degree", "complete"):
            assert fill_sets(g, triangulator=name) == oracle

    def test_modes_agree(self):
        for g in small_random_graphs(10, max_nodes=7, seed=709):
            assert fill_sets(g, mode="UG") == fill_sets(g, mode="UP")


class TestResultObjects:
    def test_all_results_are_minimal_triangulations(self):
        for g in small_random_graphs(12, max_nodes=8, seed=719):
            for result in enumerate_minimal_triangulations(g):
                assert is_chordal(result.graph)
                assert result.is_minimal()
                assert result.base is g

    def test_no_duplicates(self):
        g = cycle_graph(7)
        results = list(enumerate_minimal_triangulations(g))
        assert len(results) == len(set(results))

    def test_width_and_fill_measures(self):
        g = cycle_graph(6)
        for result in enumerate_minimal_triangulations(g):
            assert result.fill == 3
            assert result.width in (2, 3)

    def test_stats_threading(self):
        stats = EnumMISStatistics()
        list(enumerate_minimal_triangulations(cycle_graph(5), stats=stats))
        assert stats.answers == 5
        assert stats.nodes_generated == 5


class TestDisconnectedGraphs:
    def test_product_of_components(self):
        # Two disjoint 4-cycles: 2 x 2 = 4 minimal triangulations.
        g = Graph(
            edges=[(0, 1), (1, 2), (2, 3), (3, 0), (10, 11), (11, 12), (12, 13), (13, 10)]
        )
        results = list(enumerate_minimal_triangulations(g))
        assert len(results) == 4
        assert len(set(results)) == 4
        for result in results:
            assert result.is_minimal()

    def test_matches_brute_force_disconnected(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        g.add_edges([(5, 6), (6, 7), (7, 8), (8, 5)])
        g.add_node(99)
        ours = fill_sets(g)
        oracle = brute_force_minimal_triangulations(g)
        assert ours == oracle

    def test_isolated_nodes(self):
        g = Graph(nodes=[1, 2, 3])
        results = list(enumerate_minimal_triangulations(g))
        assert len(results) == 1
        assert results[0].fill == 0


class TestMinimalTriangulationSingle:
    def test_returns_first_result_quality(self):
        g = grid_graph(3, 3)
        single = minimal_triangulation(g)
        assert single.is_minimal()

    def test_chordal_input_unchanged(self):
        g = path_graph(4)
        assert minimal_triangulation(g).graph == g

    def test_sandwich_backends(self):
        g = cycle_graph(6)
        for name in ("min_fill", "complete"):
            assert minimal_triangulation(g, triangulator=name).is_minimal()
