"""Property-based tests (hypothesis) for the enumeration pipeline."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import (
    brute_force_maximal_independent_sets,
    brute_force_minimal_triangulations,
)
from repro.chordal.minimal_separators import is_pairwise_parallel
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.core.extend import extend_parallel_set
from repro.graph.graph import Graph
from repro.sgr.base import ExplicitSGR
from repro.sgr.enum_mis import enumerate_maximal_independent_sets


@st.composite
def graphs(draw, min_nodes: int = 1, max_nodes: int = 7):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    g = Graph(nodes=range(n))
    if n >= 2:
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g.add_edges(
            draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs)))
        )
    return g


@given(graphs(max_nodes=8))
@settings(max_examples=40, deadline=None)
def test_enum_mis_equals_brute_force(g):
    produced = list(enumerate_maximal_independent_sets(ExplicitSGR(g)))
    assert len(produced) == len(set(produced))
    assert set(produced) == brute_force_maximal_independent_sets(g)


@given(graphs(max_nodes=6))
@settings(max_examples=30, deadline=None)
def test_minimal_triangulations_match_brute_force(g):
    ours = {
        frozenset(frozenset(e) for e in t.fill_edges)
        for t in enumerate_minimal_triangulations(g)
    }
    assert ours == brute_force_minimal_triangulations(g)


@given(graphs(max_nodes=7), st.sampled_from(["mcs_m", "lb_triang", "min_fill"]))
@settings(max_examples=30, deadline=None)
def test_triangulator_choice_does_not_change_result_set(g, triangulator):
    baseline = {
        t.fill_edges for t in enumerate_minimal_triangulations(g)
    }
    variant = {
        t.fill_edges
        for t in enumerate_minimal_triangulations(g, triangulator=triangulator)
    }
    assert baseline == variant


@given(graphs(max_nodes=7))
@settings(max_examples=30, deadline=None)
def test_every_result_is_chordal_and_minimal(g):
    from repro.chordal.peo import is_chordal

    for t in enumerate_minimal_triangulations(g):
        assert is_chordal(t.graph)
        assert t.is_minimal()
        # Fill edges are disjoint from base edges.
        for u, v in t.fill_edges:
            assert not g.has_edge(u, v)


@given(graphs(max_nodes=7))
@settings(max_examples=25, deadline=None)
def test_extend_returns_parallel_superset(g):
    family = extend_parallel_set(g, [])
    assert is_pairwise_parallel(g, family)
    # Extending the result again is a fixpoint.
    assert extend_parallel_set(g, family) == family


@given(graphs(max_nodes=6))
@settings(max_examples=25, deadline=None)
def test_width_never_below_exact_treewidth(g):
    from repro.core.treewidth import treewidth_exact

    optimum = treewidth_exact(g)
    widths = [t.width for t in enumerate_minimal_triangulations(g)]
    assert min(widths) == optimum
    assert all(w >= optimum for w in widths)
