"""Unit/integration tests for join evaluation (repro.db)."""

from __future__ import annotations

import itertools

import pytest

from repro.db.evaluate import (
    EvaluationStatistics,
    evaluate_naive,
    evaluate_with_ghd,
)
from repro.db.relation import Relation, fold_join, natural_join, semijoin
from repro.hypergraph.ghd import enumerate_ghds
from repro.hypergraph.hypergraph import Hypergraph


class TestRelation:
    def test_construction_and_len(self):
        r = Relation(("a", "b"), [(1, 2), (1, 2), (3, 4)])
        assert len(r) == 2
        assert r.arity == 2

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Relation(("a", "a"), [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            Relation(("a",), [(1, 2)])

    def test_equality_is_order_free(self):
        r = Relation(("a", "b"), [(1, 2)])
        s = Relation(("b", "a"), [(2, 1)])
        assert r == s
        assert hash(r) == hash(s)

    def test_project(self):
        r = Relation(("a", "b"), [(1, 2), (1, 3)])
        assert r.project(["a"]) == Relation(("a",), [(1,)])
        with pytest.raises(ValueError):
            r.project(["z"])

    def test_select(self):
        r = Relation(("a", "b"), [(1, 2), (3, 4)])
        assert len(r.select(lambda row: row["a"] == 1)) == 1

    def test_rename(self):
        r = Relation(("a",), [(1,)]).rename({"a": "x"})
        assert r.attributes == ("x",)

    def test_reordered_validation(self):
        r = Relation(("a", "b"), [(1, 2)])
        with pytest.raises(ValueError):
            r.reordered(("a", "z"))

    def test_random_deterministic(self):
        a = Relation.random(("x", "y"), 20, 5, seed=3)
        b = Relation.random(("x", "y"), 20, 5, seed=3)
        assert a == b


class TestJoinOperators:
    def test_natural_join_shared(self):
        r = Relation(("a", "b"), [(1, 2), (2, 3)])
        s = Relation(("b", "c"), [(2, 9), (2, 8)])
        joined = natural_join(r, s)
        assert set(joined.attributes) == {"a", "b", "c"}
        assert len(joined) == 2

    def test_natural_join_cartesian(self):
        r = Relation(("a",), [(1,), (2,)])
        s = Relation(("b",), [(7,), (8,), (9,)])
        assert len(natural_join(r, s)) == 6

    def test_join_with_unit(self):
        r = Relation(("a",), [(1,)])
        assert natural_join(Relation.unit(), r) == r

    def test_semijoin(self):
        r = Relation(("a", "b"), [(1, 2), (2, 3)])
        s = Relation(("b",), [(2,)])
        assert semijoin(r, s) == Relation(("a", "b"), [(1, 2)])

    def test_semijoin_no_shared_attributes(self):
        r = Relation(("a",), [(1,)])
        assert semijoin(r, Relation(("z",), [(5,)])) == r
        assert len(semijoin(r, Relation.empty(("z",)))) == 0

    def test_fold_join_associativity(self):
        rels = [
            Relation(("a", "b"), [(1, 2), (2, 2)]),
            Relation(("b", "c"), [(2, 5)]),
            Relation(("c", "d"), [(5, 0), (5, 1)]),
        ]
        for permutation in itertools.permutations(rels):
            assert fold_join(permutation) == fold_join(rels)


def triangle_instance(rows: int = 40, domain: int = 8, seed: int = 1):
    h = Hypergraph({"R": ("x", "y"), "S": ("y", "z"), "T": ("z", "x")})
    instance = {
        "R": Relation.random(("x", "y"), rows, domain, seed),
        "S": Relation.random(("y", "z"), rows, domain, seed + 1),
        "T": Relation.random(("z", "x"), rows, domain, seed + 2),
    }
    return h, instance


class TestGhdEvaluation:
    def test_triangle_matches_naive(self):
        h, instance = triangle_instance()
        expected = evaluate_naive(h, instance)
        for ghd in enumerate_ghds(h):
            result = evaluate_with_ghd(h, instance, ghd)
            assert result == expected.project(result.attributes)

    def test_cycle4_all_ghds_agree(self):
        h = Hypergraph(
            {"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d"), "U": ("d", "a")}
        )
        instance = {
            "R": Relation.random(("a", "b"), 60, 6, seed=10),
            "S": Relation.random(("b", "c"), 60, 6, seed=11),
            "T": Relation.random(("c", "d"), 60, 6, seed=12),
            "U": Relation.random(("d", "a"), 60, 6, seed=13),
        }
        expected = evaluate_naive(h, instance)
        results = [
            evaluate_with_ghd(h, instance, ghd) for ghd in enumerate_ghds(h)
        ]
        assert len(results) == 2
        for result in results:
            assert result == expected.project(result.attributes)

    def test_empty_relation_gives_empty_result(self):
        h, instance = triangle_instance()
        instance["R"] = Relation.empty(("x", "y"))
        for ghd in enumerate_ghds(h):
            assert len(evaluate_with_ghd(h, instance, ghd)) == 0

    def test_statistics_collected(self):
        h, instance = triangle_instance()
        ghd = next(enumerate_ghds(h))
        stats = EvaluationStatistics()
        evaluate_with_ghd(h, instance, ghd, stats)
        assert stats.bag_sizes
        assert stats.max_intermediate > 0
        assert stats.total_intermediate >= stats.max_intermediate

    def test_missing_relation_rejected(self):
        h, instance = triangle_instance()
        del instance["T"]
        with pytest.raises(KeyError):
            evaluate_naive(h, instance)

    def test_wrong_attributes_rejected(self):
        h, instance = triangle_instance()
        instance["T"] = Relation.random(("q", "x"), 5, 3, seed=0)
        ghd = next(enumerate_ghds(h))
        with pytest.raises(ValueError, match="attributes"):
            evaluate_with_ghd(h, instance, ghd)

    def test_path_query_yannakakis_bounded(self):
        # On an acyclic query, intermediate sizes stay near input+output.
        h = Hypergraph(
            {"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d")}
        )
        instance = {
            "R": Relation.random(("a", "b"), 80, 5, seed=21),
            "S": Relation.random(("b", "c"), 80, 5, seed=22),
            "T": Relation.random(("c", "d"), 80, 5, seed=23),
        }
        expected = evaluate_naive(h, instance)
        ghd = next(enumerate_ghds(h))
        stats = EvaluationStatistics()
        result = evaluate_with_ghd(h, instance, ghd, stats)
        assert result == expected.project(result.attributes)
        assert ghd.width == 1
        bound = sum(len(r) for r in instance.values()) + len(expected)
        assert stats.max_intermediate <= bound

    def test_decompositions_differ_in_intermediate_sizes(self):
        # The Kalinsky et al. observation in miniature: same answer,
        # same width, different intermediate sizes across GHDs.
        h = Hypergraph(
            {
                "R": ("a", "b"),
                "S": ("b", "c"),
                "T": ("c", "d"),
                "U": ("d", "e"),
                "V": ("e", "a"),
            }
        )
        # Sparse relations (40 of 144 possible tuples) so that bag
        # materialisation costs genuinely depend on the decomposition.
        instance = {
            "R": Relation.random(("a", "b"), 40, 12, seed=30),
            "S": Relation.random(("b", "c"), 40, 12, seed=31),
            "T": Relation.random(("c", "d"), 40, 12, seed=32),
            "U": Relation.random(("d", "e"), 40, 12, seed=33),
            "V": Relation.random(("e", "a"), 40, 12, seed=34),
        }
        expected = evaluate_naive(h, instance)
        maxima = []
        for ghd in enumerate_ghds(h):
            stats = EvaluationStatistics()
            result = evaluate_with_ghd(h, instance, ghd, stats)
            assert result == expected.project(result.attributes)
            maxima.append(stats.max_intermediate)
        assert len(maxima) == 5  # C5 primal graph: 5 minimal triangulations
        assert len(set(maxima)) > 1
