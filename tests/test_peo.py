"""Unit tests for chordality recognition (repro.chordal.peo)."""

from __future__ import annotations

import pytest

from helpers import small_chordal_graphs, small_random_graphs
from repro.chordal.peo import (
    elimination_fill_in,
    is_chordal,
    is_perfect_elimination_ordering,
    lex_bfs,
    maximum_cardinality_search,
    monotone_adjacencies,
    peo_or_none,
    require_chordal,
    width_of_peo,
)
from repro.errors import NotChordalError
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_chordal_graph,
)
from repro.graph.graph import Graph


class TestMCS:
    def test_visits_every_node_once(self):
        g = grid_graph(3, 3)
        order = maximum_cardinality_search(g)
        assert sorted(order) == g.nodes()

    def test_first_node_respected(self):
        g = path_graph(5)
        assert maximum_cardinality_search(g, first=3)[0] == 3

    def test_unknown_first_raises(self):
        with pytest.raises(KeyError):
            maximum_cardinality_search(path_graph(3), first=99)

    def test_reverse_is_peo_on_chordal(self):
        for g in small_chordal_graphs(20):
            order = maximum_cardinality_search(g)
            order.reverse()
            assert is_perfect_elimination_ordering(g, order)

    def test_deterministic(self):
        g = grid_graph(4, 4)
        assert maximum_cardinality_search(g) == maximum_cardinality_search(g)


class TestLexBfs:
    def test_visits_every_node_once(self):
        g = grid_graph(3, 3)
        order = lex_bfs(g)
        assert sorted(order) == g.nodes()

    def test_reverse_is_peo_on_chordal(self):
        for g in small_chordal_graphs(20, seed=13):
            order = lex_bfs(g)
            order.reverse()
            assert is_perfect_elimination_ordering(g, order)

    def test_empty_graph(self):
        assert lex_bfs(Graph()) == []


class TestIsPeo:
    def test_path_natural_order(self):
        g = path_graph(4)
        assert is_perfect_elimination_ordering(g, [0, 1, 2, 3])

    def test_cycle_has_no_peo(self):
        import itertools

        g = cycle_graph(4)
        for order in itertools.permutations(g.nodes()):
            assert not is_perfect_elimination_ordering(g, list(order))

    def test_non_permutation_raises(self):
        with pytest.raises(ValueError):
            is_perfect_elimination_ordering(path_graph(3), [0, 1])

    def test_matches_bruteforce_definition(self):
        # Cross-check the RTL parent test against the quadratic
        # definition on random graphs and random orders.
        import random

        rng = random.Random(5)
        for g in small_random_graphs(25, max_nodes=7):
            order = g.nodes()
            rng.shuffle(order)
            madj = monotone_adjacencies(g, order)
            naive = all(
                g.is_clique(madj[node]) for node in order
            )
            assert is_perfect_elimination_ordering(g, order) == naive


class TestIsChordal:
    def test_known_chordal(self):
        assert is_chordal(complete_graph(5))
        assert is_chordal(path_graph(6))
        assert is_chordal(Graph())
        assert is_chordal(Graph(nodes=[1]))

    def test_known_non_chordal(self):
        assert not is_chordal(cycle_graph(4))
        assert not is_chordal(cycle_graph(7))
        assert not is_chordal(grid_graph(3, 3))

    def test_triangle_is_chordal(self):
        assert is_chordal(cycle_graph(3))

    def test_matches_networkx(self):
        import networkx as nx

        for g in small_random_graphs(40, max_nodes=9, seed=31):
            nxg = nx.Graph(g.edges())
            nxg.add_nodes_from(g.nodes())
            assert is_chordal(g) == nx.is_chordal(nxg)

    def test_disconnected_chordal(self):
        g = Graph(edges=[(0, 1), (2, 3), (3, 4), (2, 4)])
        assert is_chordal(g)

    def test_require_chordal_raises(self):
        with pytest.raises(NotChordalError):
            require_chordal(cycle_graph(5))

    def test_peo_or_none(self):
        assert peo_or_none(cycle_graph(4)) is None
        assert peo_or_none(path_graph(3)) is not None


class TestEliminationFill:
    def test_no_fill_along_peo(self):
        for g in small_chordal_graphs(15, seed=3):
            peo = require_chordal(g)
            assert elimination_fill_in(g, peo) == []

    def test_fill_makes_chordal(self):
        import random

        rng = random.Random(17)
        for g in small_random_graphs(25, max_nodes=8, seed=23):
            order = g.nodes()
            rng.shuffle(order)
            fill = elimination_fill_in(g, order)
            filled = g.copy()
            filled.add_edges(fill)
            assert is_chordal(filled)
            # The order is a PEO of the filled graph.
            assert is_perfect_elimination_ordering(filled, order)

    def test_cycle_natural_order(self):
        g = cycle_graph(4)
        fill = elimination_fill_in(g, [0, 1, 2, 3])
        assert fill == [(1, 3)]

    def test_bad_order_raises(self):
        with pytest.raises(ValueError):
            elimination_fill_in(path_graph(3), [0, 1])

    def test_fill_edges_are_new(self):
        g = cycle_graph(6)
        fill = elimination_fill_in(g, g.nodes())
        for u, v in fill:
            assert not g.has_edge(u, v)


class TestWidthOfPeo:
    def test_path_width_one(self):
        g = path_graph(5)
        assert width_of_peo(g, require_chordal(g)) == 1

    def test_complete_graph(self):
        g = complete_graph(6)
        assert width_of_peo(g, require_chordal(g)) == 5

    def test_empty(self):
        assert width_of_peo(Graph(), []) == -1

    def test_matches_clique_forest_width(self):
        from repro.chordal.cliques import tree_width

        for g in small_chordal_graphs(15, seed=29):
            peo = require_chordal(g)
            assert width_of_peo(g, peo) == tree_width(g)
