"""Tests for the Section 3.3 SETH lower-bound construction (repro.sgr.seth)."""

from __future__ import annotations

import itertools

import pytest

from repro.sgr.enum_mis import enumerate_maximal_independent_sets
from repro.sgr.seth import BOTTOM_A, BOTTOM_B, KSatSGR, evaluate_formula


class TestFormulaEvaluation:
    def test_positive_and_negative_literals(self):
        clauses = [(1, -2)]
        assert evaluate_formula(clauses, (1, 1))
        assert evaluate_formula(clauses, (0, 0))
        assert not evaluate_formula(clauses, (0, 1))

    def test_empty_formula_is_true(self):
        assert evaluate_formula([], (0, 1))

    def test_empty_clause_is_false(self):
        assert not evaluate_formula([()], (0, 1))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            KSatSGR(3, [])  # odd n
        with pytest.raises(ValueError):
            KSatSGR(2, [(0,)])
        with pytest.raises(ValueError):
            KSatSGR(2, [(5,)])

    def test_node_count(self):
        sgr = KSatSGR(4, [])
        nodes = list(sgr.iter_nodes())
        # 2 * 2^(n/2) assignment nodes + two apexes.
        assert len(nodes) == 2 * 4 + 2
        assert BOTTOM_A in nodes and BOTTOM_B in nodes

    def test_va_vb_are_cliques(self):
        sgr = KSatSGR(4, [])
        va = [n for n in sgr.iter_nodes() if n[0] == "A"]
        for u, v in itertools.combinations(va, 2):
            assert sgr.has_edge(u, v)

    def test_apex_edges(self):
        sgr = KSatSGR(2, [])
        assert sgr.has_edge(BOTTOM_A, BOTTOM_B)
        assert sgr.has_edge(("A", 0), BOTTOM_A)
        assert not sgr.has_edge(("A", 0), BOTTOM_B)

    def test_cross_edges_iff_falsifying(self):
        # φ = x1 ∨ x2 over n=2: ("A",a1) - ("B",a2) adjacent iff both 0.
        sgr = KSatSGR(2, [(1, 2)])
        assert sgr.has_edge(("A", 0), ("B", 0))
        assert not sgr.has_edge(("A", 1), ("B", 0))
        assert not sgr.has_edge(("A", 0), ("B", 1))

    def test_extend_always_maximal(self):
        sgr = KSatSGR(4, [(1, 2), (-3, 4)])
        for seed in (
            frozenset(),
            frozenset({BOTTOM_A}),
            frozenset({BOTTOM_B}),
            frozenset({("A", 0, 1)}),
            frozenset({("B", 1, 0)}),
        ):
            extended = sgr.extend(seed)
            assert seed <= extended
            assert len(extended) == 2
            assert sgr.is_independent(extended)


class TestProposition36:
    def test_mis_structure_matches_proof(self):
        # MaxInd = IA ∪ IB ∪ Isat, all of size 2 (paper's proof).
        clauses = [(1, -2)]
        sgr = KSatSGR(2, clauses)
        answers = set(enumerate_maximal_independent_sets(sgr))
        assert all(len(a) == 2 for a in answers)
        ia = {frozenset({("A", b), BOTTOM_B}) for b in (0, 1)}
        ib = {frozenset({("B", b), BOTTOM_A}) for b in (0, 1)}
        isat = {
            frozenset({("A", a), ("B", b)})
            for a in (0, 1)
            for b in (0, 1)
            if evaluate_formula(clauses, (a, b))
        }
        assert answers == ia | ib | isat

    def test_threshold(self):
        assert KSatSGR(4, []).satisfiability_threshold() == 8
        assert KSatSGR(6, []).satisfiability_threshold() == 16

    @pytest.mark.parametrize(
        "num_variables,clauses",
        [
            (2, [(1,), (-1,)]),                       # unsat
            (2, [(1, 2)]),                            # sat
            (4, [(1, 2), (-1, 3), (2, -4)]),          # sat
            (4, [(1,), (-1, 2), (-2,)]),              # unsat
            (4, [(1, 2, 3), (-1, -2), (-3, 4), (-4,)]),
            (6, [(1, -2, 3), (-1, 2), (4, 5), (-5, -6), (6, -4)]),
        ],
    )
    def test_reduction_decides_satisfiability(self, num_variables, clauses):
        sgr = KSatSGR(num_variables, clauses)
        assert (
            sgr.is_satisfiable_via_enumeration()
            == sgr.brute_force_satisfiable()
        )

    def test_random_formulas(self):
        import random

        rng = random.Random(42)
        for __ in range(15):
            n = rng.choice((2, 4))
            clauses = []
            for __c in range(rng.randint(1, 6)):
                size = rng.randint(1, 3)
                clause = tuple(
                    rng.choice((1, -1)) * rng.randint(1, n)
                    for __l in range(size)
                )
                clauses.append(clause)
            sgr = KSatSGR(n, clauses)
            assert (
                sgr.is_satisfiable_via_enumeration()
                == sgr.brute_force_satisfiable()
            )
