"""Cross-module integration scenarios (the examples, as assertions)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.enumerate import enumerate_minimal_triangulations
from repro.core.ranked import anytime_treewidth
from repro.db import EvaluationStatistics, Relation, evaluate_naive, evaluate_with_ghd
from repro.decomposition.metrics import log_table_volume
from repro.decomposition.nice import max_weight_independent_set
from repro.graph.generators import grid_graph
from repro.hypergraph import enumerate_ghds, ghw_upper_bound
from repro.inference import BayesianNetwork, MarkovNetwork, calibrate
from repro.workloads.pgm import object_detection_like
from repro.workloads.tpch import tpch_hypergraph, tpch_query


class TestInferencePipeline:
    """Enumerate decompositions → pick by table volume → calibrate."""

    def test_full_pipeline_grid_mrf(self):
        graph = grid_graph(3, 3)
        model = MarkovNetwork.random(graph, seed=23)
        candidates = [
            (
                log_table_volume(t.tree_decomposition(), 2),
                t.tree_decomposition(),
            )
            for t in itertools.islice(
                enumerate_minimal_triangulations(graph), 20
            )
        ]
        candidates.sort(key=lambda item: item[0])
        best_result = calibrate(model, candidates[0][1])
        worst_result = calibrate(model, candidates[-1][1])
        assert best_result.partition_function == pytest.approx(
            worst_result.partition_function, rel=1e-9
        )
        assert (
            best_result.total_table_entries
            <= worst_result.total_table_entries
        )

    def test_bayesian_network_through_moralisation(self):
        bn = BayesianNetwork.random(10, 2, seed=31)
        moral = bn.moral_graph()
        best = min(
            itertools.islice(enumerate_minimal_triangulations(moral), 10),
            key=lambda t: t.width,
        )
        result = calibrate(bn.to_markov_network(), best.tree_decomposition())
        assert result.partition_function == pytest.approx(1.0)


class TestDatabasePipeline:
    """Query hypergraph → GHD enumeration → Yannakakis evaluation."""

    def test_tpch_q5_instance_evaluation(self):
        hypergraph = tpch_hypergraph("Q5")
        instance = {
            name: Relation.random(
                tuple(sorted(map(str, hypergraph.edge(name)))), 25, 5, seed=i
            )
            for i, name in enumerate(hypergraph.edge_names())
        }
        expected = evaluate_naive(hypergraph, instance)
        seen = 0
        for ghd in itertools.islice(enumerate_ghds(hypergraph), 3):
            stats = EvaluationStatistics()
            result = evaluate_with_ghd(hypergraph, instance, ghd, stats)
            assert result == expected.project(result.attributes)
            seen += 1
        assert seen == 3

    def test_ghw_bounded_by_primal_treewidth(self):
        for name in ("Q5", "Q8"):
            hypergraph = tpch_hypergraph(name)
            width, __, __optimal = anytime_treewidth(
                hypergraph.primal_graph(), max_results=30
            )
            ghw = ghw_upper_bound(hypergraph, max_decompositions=20)
            # Every bag of size w+1 is coverable by ≤ w+1 hyperedges.
            assert ghw <= width + 1


class TestCombinatorialPipeline:
    """Treewidth certificate → nice decomposition → DP application."""

    def test_anytime_treewidth_feeds_mis_dp(self):
        graph = object_detection_like(seed=2)
        width, best, __ = anytime_treewidth(graph, max_results=3)
        value, witness = max_weight_independent_set(
            graph, decomposition=best.tree_decomposition()
        )
        assert graph.is_independent_set(witness)
        assert value == len(witness) >= graph.num_nodes / (
            1 + max(graph.degree(v) for v in graph.nodes())
        )

    def test_tpch_primal_treewidth_exact_tiny(self):
        from repro.core.treewidth import treewidth_exact

        for name in ("Q4", "Q6", "Q13"):
            graph = tpch_query(name)
            width, __, optimal = anytime_treewidth(graph)
            assert optimal
            assert width == treewidth_exact(graph)
