"""Unit tests for TreeDecomposition (repro.decomposition.tree_decomposition)."""

from __future__ import annotations

import pytest

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.errors import InvalidTreeDecompositionError
from repro.graph.generators import cycle_graph, path_graph
from repro.graph.graph import Graph


def fig4_graph() -> Graph:
    """The paper's Figure 4 graph: 1-2 plus triangle 2-3-4."""
    return Graph(edges=[(1, 2), (2, 3), (2, 4), (3, 4)])


def d1() -> TreeDecomposition:
    return TreeDecomposition.build([{1, 2}, {2, 3, 4}], [(0, 1)])


def d2() -> TreeDecomposition:
    return TreeDecomposition.build([{1, 2, 3, 4}])


def d3() -> TreeDecomposition:
    return TreeDecomposition.build([{1, 2}, {3, 4}, {2, 3, 4}], [(0, 2), (1, 2)])


class TestShape:
    def test_width(self):
        assert d1().width == 2
        assert d2().width == 3
        assert TreeDecomposition.build([]).width == -1

    def test_num_bags(self):
        assert d3().num_bags == 3

    def test_bag_set_and_multiset(self):
        d = TreeDecomposition.build([{1}, {1}, {2}], [(0, 1), (1, 2)])
        assert d.bag_set() == {frozenset({1}), frozenset({2})}
        assert len(d.bag_multiset()) == 3

    def test_is_tree(self):
        assert d1().is_tree()
        assert not TreeDecomposition.build([{1}, {2}]).is_tree()  # forest
        cyclic = TreeDecomposition.build(
            [{1}, {2}, {3}], [(0, 1), (1, 2), (0, 2)]
        )
        assert not cyclic.is_tree()

    def test_neighbors(self):
        adjacency = d3().neighbors()
        assert sorted(adjacency[2]) == [0, 1]


class TestValidation:
    def test_valid_decompositions(self):
        g = fig4_graph()
        for d in (d1(), d2(), d3()):
            d.validate(g)
            assert d.is_valid(g)

    def test_uncovered_node(self):
        g = fig4_graph()
        d = TreeDecomposition.build([{1, 2}, {2, 3}], [(0, 1)])
        with pytest.raises(InvalidTreeDecompositionError, match="not covered"):
            d.validate(g)

    def test_uncovered_edge(self):
        g = fig4_graph()
        d = TreeDecomposition.build([{1, 2}, {2, 3}, {2, 4}], [(0, 1), (1, 2)])
        with pytest.raises(InvalidTreeDecompositionError, match="edge"):
            d.validate(g)

    def test_junction_violation(self):
        g = path_graph(3)
        # Node 0 appears in two non-adjacent bags.
        d = TreeDecomposition.build(
            [{0, 1}, {1, 2}, {0, 2}], [(0, 1), (1, 2)]
        )
        with pytest.raises(InvalidTreeDecompositionError, match="subtree"):
            d.validate(g)

    def test_not_a_tree(self):
        g = path_graph(2)
        d = TreeDecomposition.build([{0, 1}, {0, 1}])
        with pytest.raises(InvalidTreeDecompositionError, match="tree"):
            d.validate(g)

    def test_unknown_nodes_in_bags(self):
        g = path_graph(2)
        d = TreeDecomposition.build([{0, 1, 99}])
        with pytest.raises(InvalidTreeDecompositionError, match="unknown"):
            d.validate(g)


class TestSaturationAndMeasures:
    def test_saturate_triangulates(self):
        from repro.chordal.peo import is_chordal

        g = cycle_graph(5)
        d = TreeDecomposition.build(
            [{0, 1, 2}, {0, 2, 3}, {0, 3, 4}], [(0, 1), (1, 2)]
        )
        h = d.saturate(g)
        assert is_chordal(h)

    def test_fill_counts_added_edges(self):
        g = cycle_graph(4)
        d = TreeDecomposition.build([{0, 1, 2}, {0, 2, 3}], [(0, 1)])
        assert d.fill(g) == 1


class TestSubsumption:
    def test_paper_figure4_relations(self):
        # d1 subsumes d2 and d3; nothing subsumes d1.
        assert d1().strictly_subsumes(d2())
        assert d1().strictly_subsumes(d3())
        assert d3().strictly_subsumes(d2())
        assert not d2().strictly_subsumes(d1())
        assert not d3().strictly_subsumes(d1())

    def test_refines(self):
        assert d1().refines(d2())
        assert not d2().refines(d1())

    def test_no_self_subsumption(self):
        for d in (d1(), d2(), d3()):
            assert not d.strictly_subsumes(d)

    def test_multiset_sensitivity(self):
        single = TreeDecomposition.build([{1, 2}])
        doubled = TreeDecomposition.build([{1, 2}, {1, 2}], [(0, 1)])
        assert single.strictly_subsumes(doubled)
        assert not doubled.strictly_subsumes(single)


class TestProperness:
    def test_paper_figure4(self):
        g = fig4_graph()
        assert d1().is_proper(g)
        assert not d2().is_proper(g)
        assert not d3().is_proper(g)

    def test_chordal_graph_clique_tree_is_proper(self):
        from repro.decomposition.clique_tree import clique_tree

        g = path_graph(4)
        assert clique_tree(g).is_proper(g)

    def test_invalid_decomposition_is_not_proper(self):
        g = fig4_graph()
        bad = TreeDecomposition.build([{1, 2}])
        assert not bad.is_proper(g)

    def test_duplicate_bags_not_proper(self):
        g = path_graph(2)
        doubled = TreeDecomposition.build([{0, 1}, {0, 1}], [(0, 1)])
        assert not doubled.is_proper(g)

    def test_non_minimal_saturation_not_proper(self):
        g = cycle_graph(4)
        # Saturating a single 4-bag is a non-minimal triangulation.
        assert not TreeDecomposition.build([{0, 1, 2, 3}]).is_proper(g)

    def test_repr(self):
        assert "num_bags=2" in repr(d1())
