"""Integration tests for proper tree decomposition enumeration (S22)."""

from __future__ import annotations

from helpers import small_random_graphs
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.decomposition.clique_tree import clique_graph, clique_tree
from repro.decomposition.proper import (
    enumerate_proper_tree_decompositions,
    tree_decompositions_of_triangulation,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


class TestCliqueTree:
    def test_clique_tree_is_valid_decomposition(self):
        for g in small_random_graphs(10, max_nodes=8, seed=801):
            for t in enumerate_minimal_triangulations(g):
                decomposition = clique_tree(t.graph)
                decomposition.validate(t.graph)
                decomposition.validate(g)

    def test_disconnected_chordal_graph_linked(self):
        g = Graph(edges=[(0, 1), (5, 6), (6, 7), (5, 7)])
        decomposition = clique_tree(g)
        assert decomposition.is_tree()
        decomposition.validate(g)

    def test_empty_graph(self):
        decomposition = clique_tree(Graph())
        assert decomposition.num_bags == 1

    def test_clique_graph_weights(self):
        g = path_graph(4)
        cliques, edges = clique_graph(g)
        assert len(cliques) == 3
        assert all(w == 1 for *_ , w in edges)


class TestPerClassEnumeration:
    def test_one_representative_per_triangulation(self):
        g = cycle_graph(6)
        classes = list(
            enumerate_proper_tree_decompositions(g, per_class=True)
        )
        assert len(classes) == 14
        bag_sets = {d.bag_set() for d in classes}
        assert len(bag_sets) == 14

    def test_every_representative_proper(self):
        for g in small_random_graphs(8, max_nodes=7, seed=809):
            for d in enumerate_proper_tree_decompositions(g, per_class=True):
                assert d.is_proper(g)


class TestFullEnumeration:
    def test_star_class_has_many_trees(self):
        # The star K_{1,n} is chordal with n bags {0, leaf}; every bag
        # pair overlaps in {0}, so any spanning tree over the n bags is
        # a clique tree: n^{n-2} trees by Cayley.
        g = star_graph(4)
        decompositions = list(enumerate_proper_tree_decompositions(g))
        assert len(decompositions) == 16  # 4^{4-2}
        for d in decompositions:
            assert d.is_proper(g)

    def test_all_results_distinct(self):
        g = cycle_graph(5)
        produced = list(enumerate_proper_tree_decompositions(g))
        assert len(produced) == len(set(produced))

    def test_all_results_proper_and_valid(self):
        for g in small_random_graphs(8, max_nodes=6, seed=811):
            for d in enumerate_proper_tree_decompositions(g):
                d.validate(g)
                assert d.is_proper(g)

    def test_path_single_decomposition(self):
        g = path_graph(4)
        produced = list(enumerate_proper_tree_decompositions(g))
        assert len(produced) == 1
        assert produced[0].bag_set() == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
        }

    def test_complete_graph(self):
        g = complete_graph(4)
        produced = list(enumerate_proper_tree_decompositions(g))
        assert len(produced) == 1
        assert produced[0].num_bags == 1

    def test_classes_partition_by_bag_set(self):
        # Within per_class=False output, grouping by bag set must give
        # exactly the number of minimal triangulations.
        g = cycle_graph(5)
        produced = list(enumerate_proper_tree_decompositions(g))
        classes = {d.bag_set() for d in produced}
        assert len(classes) == 5


class TestTriangulationClassEnumeration:
    def test_accepts_triangulation_and_graph(self):
        g = cycle_graph(4)
        t = next(iter(enumerate_minimal_triangulations(g)))
        from_triangulation = set(tree_decompositions_of_triangulation(t))
        from_graph = set(tree_decompositions_of_triangulation(t.graph))
        assert from_triangulation == from_graph

    def test_bags_always_max_cliques(self):
        from repro.chordal.cliques import maximal_cliques

        g = cycle_graph(6)
        for t in enumerate_minimal_triangulations(g):
            expected = frozenset(maximal_cliques(t.graph))
            for d in tree_decompositions_of_triangulation(t):
                assert d.bag_set() == expected

    def test_empty_graph_class(self):
        produced = list(tree_decompositions_of_triangulation(Graph()))
        assert len(produced) == 1
