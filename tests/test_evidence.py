"""Unit tests for evidence-conditioned inference."""

from __future__ import annotations

import itertools

import pytest

from repro.core.enumerate import minimal_triangulation
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.inference import MarkovNetwork, calibrate, partition_function


def brute_force_evidence_mass(model, evidence):
    variables = model.variables()
    total = 0.0
    for assignment in itertools.product(
        *(range(model.domains[v]) for v in variables)
    ):
        lookup = dict(zip(variables, assignment))
        if any(lookup[v] != value for v, value in evidence.items()):
            continue
        value = 1.0
        for factor in model.factors:
            index = tuple(lookup[v] for v in factor.variables)
            value *= float(factor.table[index])
        total += value
    return total


class TestEvidence:
    def test_masses_partition_z(self):
        graph = cycle_graph(5)
        model = MarkovNetwork.random(graph, seed=3)
        td = minimal_triangulation(graph).tree_decomposition()
        z = partition_function(model, td)
        observed = graph.nodes()[2]
        masses = [
            partition_function(model, td, evidence={observed: k})
            for k in range(model.domains[observed])
        ]
        assert sum(masses) == pytest.approx(z, rel=1e-9)

    def test_mass_matches_brute_force(self):
        graph = grid_graph(2, 3)
        model = MarkovNetwork.random(graph, seed=5)
        td = minimal_triangulation(graph).tree_decomposition()
        evidence = {graph.nodes()[0]: 1, graph.nodes()[4]: 0}
        ours = partition_function(model, td, evidence=evidence)
        assert ours == pytest.approx(
            brute_force_evidence_mass(model, evidence), rel=1e-9
        )

    def test_observed_variable_collapses(self):
        graph = path_graph(4)
        model = MarkovNetwork.random(graph, seed=7)
        td = minimal_triangulation(graph).tree_decomposition()
        result = calibrate(model, td, evidence={1: 0})
        assert result.normalized_marginal(1) == pytest.approx([1.0, 0.0])

    def test_posterior_marginals_normalised(self):
        graph = cycle_graph(4)
        model = MarkovNetwork.random(graph, seed=11)
        td = minimal_triangulation(graph).tree_decomposition()
        result = calibrate(model, td, evidence={0: 1})
        for variable in graph.nodes():
            assert sum(result.normalized_marginal(variable)) == pytest.approx(1.0)

    def test_unknown_evidence_variable(self):
        graph = path_graph(3)
        model = MarkovNetwork.random(graph, seed=1)
        td = minimal_triangulation(graph).tree_decomposition()
        with pytest.raises(KeyError):
            calibrate(model, td, evidence={"ghost": 0})

    def test_out_of_range_evidence_value(self):
        graph = path_graph(3)
        model = MarkovNetwork.random(graph, seed=1)
        td = minimal_triangulation(graph).tree_decomposition()
        with pytest.raises(ValueError, match="out of range"):
            calibrate(model, td, evidence={0: 5})

    def test_evidence_invariant_across_decompositions(self):
        graph = cycle_graph(6)
        model = MarkovNetwork.random(graph, seed=13)
        from repro.core.enumerate import enumerate_minimal_triangulations

        evidence = {0: 1, 3: 0}
        values = set()
        for t in itertools.islice(
            enumerate_minimal_triangulations(graph), 5
        ):
            mass = partition_function(
                model, t.tree_decomposition(), evidence=evidence
            )
            values.add(round(mass, 12))
        assert len(values) == 1
