"""Unit tests for connectivity utilities (repro.graph.components)."""

from __future__ import annotations

import pytest

from repro.graph.components import (
    component_of,
    components_without,
    connected_components,
    full_components,
    is_connected,
    is_separator,
    separates,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


class TestConnectedComponents:
    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_single_component(self):
        assert connected_components(path_graph(4)) == [frozenset({0, 1, 2, 3})]

    def test_multiple_components(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        g.add_node(9)
        comps = connected_components(g)
        assert comps == [frozenset({0, 1}), frozenset({2, 3}), frozenset({9})]

    def test_components_sorted_by_smallest_node(self):
        g = Graph(edges=[(5, 6), (0, 1)])
        comps = connected_components(g)
        assert comps[0] == frozenset({0, 1})


class TestComponentsWithout:
    def test_removing_cut_node_splits(self):
        comps = components_without(path_graph(5), [2])
        assert comps == [frozenset({0, 1}), frozenset({3, 4})]

    def test_removing_nothing(self):
        comps = components_without(cycle_graph(4), [])
        assert len(comps) == 1

    def test_removing_everything(self):
        assert components_without(path_graph(3), [0, 1, 2]) == []

    def test_does_not_mutate(self):
        g = path_graph(5)
        components_without(g, [2])
        assert g.num_nodes == 5 and g.num_edges == 4


class TestComponentOf:
    def test_basic(self):
        assert component_of(path_graph(5), 0, [2]) == frozenset({0, 1})

    def test_start_in_removed_raises(self):
        with pytest.raises(ValueError):
            component_of(path_graph(3), 1, [1])

    def test_unknown_start_raises(self):
        with pytest.raises(KeyError):
            component_of(path_graph(3), 99)


class TestIsConnected:
    def test_empty_is_connected(self):
        assert is_connected(Graph())

    def test_single_node(self):
        assert is_connected(Graph(nodes=[1]))

    def test_disconnected(self):
        assert not is_connected(Graph(nodes=[1, 2]))

    def test_grid_connected(self):
        assert is_connected(grid_graph(4, 4))


class TestFullComponentsAndSeparators:
    def test_cut_vertex_is_minimal_separator(self):
        g = path_graph(3)
        assert is_separator(g, {1})
        assert len(full_components(g, {1})) == 2

    def test_non_separator(self):
        assert not is_separator(cycle_graph(4), {0})

    def test_cycle_pair_separators(self):
        g = cycle_graph(4)
        assert is_separator(g, {0, 2})
        assert is_separator(g, {1, 3})
        assert not is_separator(g, {0, 1})

    def test_superset_of_minimal_separator_not_minimal(self):
        # In C5, {0, 2, 3} separates but is not minimal: component {4}
        # has neighbourhood {0, 3} != S.
        g = cycle_graph(5)
        assert not is_separator(g, {0, 2, 3})
        assert is_separator(g, {0, 2})

    def test_complete_graph_has_no_separator(self):
        g = complete_graph(5)
        for node in g.nodes():
            assert not is_separator(g, {node})

    def test_empty_set_for_disconnected(self):
        g = Graph(nodes=[1, 2])
        assert is_separator(g, set())

    def test_star_center(self):
        assert is_separator(star_graph(4), {0})


class TestSeparates:
    def test_separates_path_endpoints(self):
        g = path_graph(5)
        assert separates(g, {2}, 0, 4)
        assert not separates(g, {3}, 0, 2)

    def test_endpoint_in_candidate_raises(self):
        with pytest.raises(ValueError):
            separates(path_graph(3), {0}, 0, 2)

    def test_cycle_needs_two_nodes(self):
        g = cycle_graph(6)
        assert not separates(g, {1}, 0, 3)
        assert separates(g, {1, 4}, 0, 3)
