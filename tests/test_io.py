"""Unit tests for graph I/O (repro.graph.io)."""

from __future__ import annotations

import io

import pytest

from repro.errors import ParseError
from repro.graph.generators import cycle_graph
from repro.graph.io import (
    parse_dimacs,
    parse_edge_list,
    parse_uai_model,
    read_edge_list,
    write_dimacs,
    write_edge_list,
)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = cycle_graph(5)
        g.add_node(99)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_parse_with_comments_and_blanks(self):
        g = parse_edge_list("# header\n1 2\n\n2 3  # inline\n7\n")
        assert g.num_edges == 2
        assert g.has_node(7)

    def test_string_tokens(self):
        g = parse_edge_list("a b\n")
        assert g.has_edge("a", "b")

    def test_integer_coercion(self):
        g = parse_edge_list("1 2\n")
        assert g.has_edge(1, 2)
        assert not g.has_node("1")

    def test_self_loop_rejected(self):
        with pytest.raises(ParseError):
            parse_edge_list("1 1\n")

    def test_too_many_tokens(self):
        with pytest.raises(ParseError) as excinfo:
            parse_edge_list("1 2 3\n")
        assert excinfo.value.line_number == 1

    def test_write_to_stream(self):
        buffer = io.StringIO()
        write_edge_list(cycle_graph(3), buffer)
        assert "0 1" in buffer.getvalue()


class TestDimacs:
    def test_round_trip(self, tmp_path):
        g = cycle_graph(6)
        path = tmp_path / "g.col"
        write_dimacs(g, path)
        loaded = parse_dimacs(path.read_text())
        # DIMACS relabels to 1..n.
        assert loaded.num_nodes == 6
        assert loaded.num_edges == 6

    def test_parse_basic(self):
        g = parse_dimacs("c comment\np edge 3 2\ne 1 2\ne 2 3\n")
        assert g.nodes() == [1, 2, 3]
        assert g.num_edges == 2

    def test_isolated_nodes_from_problem_line(self):
        g = parse_dimacs("p edge 4 1\ne 1 2\n")
        assert g.num_nodes == 4

    def test_missing_problem_line(self):
        with pytest.raises(ParseError):
            parse_dimacs("e 1 2\n")

    def test_duplicate_problem_line(self):
        with pytest.raises(ParseError):
            parse_dimacs("p edge 2 0\np edge 2 0\n")

    def test_malformed_edge(self):
        with pytest.raises(ParseError):
            parse_dimacs("p edge 2 1\ne 1\n")

    def test_non_integer_endpoint(self):
        with pytest.raises(ParseError):
            parse_dimacs("p edge 2 1\ne 1 x\n")

    def test_self_loop(self):
        with pytest.raises(ParseError):
            parse_dimacs("p edge 2 1\ne 1 1\n")

    def test_unknown_line_type(self):
        with pytest.raises(ParseError):
            parse_dimacs("p edge 1 0\nq nonsense\n")


class TestUai:
    MARKOV_DOC = """MARKOV
3
2 2 2
2
2 0 1
3 0 1 2
"""

    def test_markov_primal_graph(self):
        g = parse_uai_model(self.MARKOV_DOC)
        assert g.num_nodes == 3
        # Factor {0,1,2} saturates everything.
        assert g.num_edges == 3

    def test_bayes_accepted(self):
        g = parse_uai_model("BAYES\n2\n2 2\n1\n2 0 1\n")
        assert g.has_edge(0, 1)

    def test_function_tables_ignored(self):
        doc = self.MARKOV_DOC + "\n4\n0.1 0.2 0.3 0.4\n"
        g = parse_uai_model(doc)
        assert g.num_nodes == 3

    def test_pairwise_factors_only(self):
        g = parse_uai_model("MARKOV\n4\n2 2 2 2\n3\n2 0 1\n2 1 2\n2 2 3\n")
        assert g.num_edges == 3
        assert not g.has_edge(0, 3)

    def test_empty_document(self):
        with pytest.raises(ParseError):
            parse_uai_model("")

    def test_unknown_type(self):
        with pytest.raises(ParseError):
            parse_uai_model("FACTOR\n1\n2\n0\n")

    def test_bad_variable_reference(self):
        with pytest.raises(ParseError):
            parse_uai_model("MARKOV\n2\n2 2\n1\n2 0 5\n")

    def test_truncated_document(self):
        with pytest.raises(ParseError):
            parse_uai_model("MARKOV\n2\n2 2\n1\n3 0 1\n")

    def test_non_positive_cardinality(self):
        with pytest.raises(ParseError):
            parse_uai_model("MARKOV\n1\n0\n0\n")
