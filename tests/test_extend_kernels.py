"""Property tests: packed Extend kernels vs their int-mask oracles.

Every vectorized kernel introduced for the Extend pipeline (PR 4) must
produce bit-identical results to the int-mask reference implementation
it replaces, on the same random corpus the rest of the suite uses.
The int-mask paths run on plain :class:`~repro.graph.core.IndexedGraph`
cores; converting a graph to the ``numpy`` backend switches every
dispatch point at once, so comparing whole-algorithm outputs across
backends pins all kernels together, and the unit tests underneath pin
each kernel in isolation.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from helpers import small_chordal_graphs, small_random_graphs
from repro.chordal.chordal_separators import (
    chordal_separator_masks,
    minimal_separators_of_chordal,
)
from repro.chordal.cliques import mcs_clique_forest
from repro.chordal.peo import (
    is_perfect_elimination_ordering,
    maximum_cardinality_search,
    peo_or_none,
)
from repro.chordal.triangulate import (
    lb_triang,
    mcs_m,
    min_degree_order,
    min_fill_order,
)
from repro.core.extend import extend_parallel_set
from repro.graph import resolve_graph_backend
from repro.graph.bitset_np import (
    NumpyGraphCore,
    PackedMCSQueue,
    frontier_sweep,
    indices_to_mask,
    is_peo_packed,
    mask_to_indices,
    pack_masks,
    saturate_batch,
    set_edge_bits,
    union_rows,
    weight_level_rows,
    word_count,
)
from repro.graph.core import IndexedGraph, MaxWeightBuckets
from repro.graph.generators import cycle_graph, gnp_random_graph


def both_backends(graph):
    return (
        resolve_graph_backend(graph, "indexed"),
        resolve_graph_backend(graph, "numpy"),
    )


CORPUS = small_random_graphs(10, max_nodes=12, seed=17) + [
    gnp_random_graph(40, 0.15, seed=3),
    gnp_random_graph(72, 0.07, seed=4),
    cycle_graph(50),
]


class TestTriangulatorEquivalence:
    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_mcs_m_fill_and_order_match(self, index):
        indexed, packed = both_backends(CORPUS[index])
        assert mcs_m(indexed) == mcs_m(packed)

    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_mcs_m_with_start_vertex_matches(self, index):
        graph = CORPUS[index]
        indexed, packed = both_backends(graph)
        for first in graph.nodes()[:: max(1, graph.num_nodes // 3)]:
            assert mcs_m(indexed, first=first) == mcs_m(packed, first=first)

    @pytest.mark.parametrize(
        "heuristic", ["min_fill", "min_degree", "natural"]
    )
    def test_lb_triang_heuristics_match(self, heuristic):
        for graph in CORPUS:
            indexed, packed = both_backends(graph)
            assert lb_triang(indexed, heuristic=heuristic) == lb_triang(
                packed, heuristic=heuristic
            )

    def test_lb_triang_explicit_order_matches(self):
        rng = random.Random(5)
        for graph in CORPUS:
            order = graph.nodes()
            rng.shuffle(order)
            indexed, packed = both_backends(graph)
            assert lb_triang(indexed, order=order) == lb_triang(
                packed, order=order
            )

    def test_elimination_orders_match(self):
        for graph in CORPUS:
            indexed, packed = both_backends(graph)
            assert min_fill_order(indexed) == min_fill_order(packed)
            assert min_degree_order(indexed) == min_degree_order(packed)


class TestPeoAndForestEquivalence:
    def test_peo_check_matches_on_random_and_mcs_orders(self):
        rng = random.Random(11)
        for graph in CORPUS:
            indexed, packed = both_backends(graph)
            shuffled = graph.nodes()
            rng.shuffle(shuffled)
            mcs_order = list(reversed(maximum_cardinality_search(graph)))
            for order in (shuffled, mcs_order):
                assert is_perfect_elimination_ordering(
                    indexed, order
                ) == is_perfect_elimination_ordering(packed, order)

    def test_peo_or_none_matches_on_chordal_corpus(self):
        for graph in small_chordal_graphs(10, max_nodes=16, seed=23):
            indexed, packed = both_backends(graph)
            assert peo_or_none(indexed) == peo_or_none(packed)

    def test_clique_forest_matches_on_chordal_corpus(self):
        for graph in small_chordal_graphs(10, max_nodes=16, seed=29):
            indexed, packed = both_backends(graph)
            a, b = mcs_clique_forest(indexed), mcs_clique_forest(packed)
            assert a.cliques == b.cliques
            assert a.parent == b.parent
            assert a.separators == b.separators
            assert a.clique_of == b.clique_of

    def test_separator_extraction_matches(self):
        for graph in small_chordal_graphs(10, max_nodes=16, seed=31):
            indexed, packed = both_backends(graph)
            assert minimal_separators_of_chordal(
                indexed
            ) == minimal_separators_of_chordal(packed)
            masks_a = chordal_separator_masks(indexed)
            masks_b = chordal_separator_masks(packed)
            assert masks_a == masks_b


class TestExtendEquivalence:
    def test_extend_of_empty_family_matches(self):
        for graph in CORPUS:
            indexed, packed = both_backends(graph)
            assert extend_parallel_set(indexed, ()) == extend_parallel_set(
                packed, ()
            )

    def test_extend_of_partial_family_matches(self):
        for graph in CORPUS[:6]:
            family = sorted(
                extend_parallel_set(graph, ()), key=sorted
            )[: max(1, graph.num_nodes // 4)]
            indexed, packed = both_backends(graph)
            assert extend_parallel_set(
                indexed, family
            ) == extend_parallel_set(packed, family)

    def test_extend_per_triangulator_matches(self):
        for graph in CORPUS[:6]:
            indexed, packed = both_backends(graph)
            for triangulator in ("mcs_m", "lb_triang", "min_fill"):
                assert extend_parallel_set(
                    indexed, (), triangulator
                ) == extend_parallel_set(packed, (), triangulator)


class TestKernelUnits:
    def test_mask_index_round_trip(self):
        rng = random.Random(3)
        for words in (1, 2, 5):
            for __ in range(50):
                mask = rng.getrandbits(words * 64 - 7)
                idx = mask_to_indices(mask, words)
                assert indices_to_mask(idx, words) == mask
                assert idx.tolist() == [
                    i for i in range(words * 64) if mask >> i & 1
                ]

    def test_union_rows_matches_int_union(self):
        rng = random.Random(9)
        n = 150
        adj = [rng.getrandbits(n) for __ in range(n)]
        matrix = pack_masks(adj, word_count(n))
        for __ in range(30):
            mask = rng.getrandbits(n)
            idx = mask_to_indices(mask, word_count(n))
            expected = 0
            for i in idx:
                expected |= adj[i]
            assert union_rows(matrix, idx) == expected
        assert union_rows(matrix, np.array([], dtype=np.int64)) == 0

    def test_frontier_sweep_matches_expand_component(self):
        for graph in CORPUS:
            core = graph.core
            matrix = pack_masks(core.adj, word_count(len(core.adj)))
            for seed_bit in range(0, len(core.adj), 5):
                if not core.alive >> seed_bit & 1:
                    continue
                expected = core.component_of(seed_bit)
                got = frontier_sweep(
                    matrix, 1 << seed_bit, core.alive, adj=core.adj
                )
                assert got == expected
                # Pure-matrix path (no scalar fallback) agrees too.
                assert (
                    frontier_sweep(matrix, 1 << seed_bit, core.alive)
                    == expected
                )

    def test_saturate_batch_matches_scalar_saturate(self):
        rng = random.Random(13)
        for graph in CORPUS[:8]:
            reference = graph.core.copy()
            packed_core = NumpyGraphCore.from_indexed(graph.core)
            packed_core._matrix()
            mask = rng.getrandbits(len(graph.core.adj)) & graph.core.alive
            expected = reference.saturate(mask)
            got = packed_core.saturate(mask)
            assert got == expected
            assert packed_core.adj == reference.adj
            assert packed_core.num_edges == reference.num_edges
            # The packed mirror was maintained in place, not rebuilt.
            rebuilt = pack_masks(
                packed_core.adj, word_count(len(packed_core.adj))
            )
            assert (packed_core._packed == rebuilt).all()

    def test_set_edge_bits_matches_masks(self):
        n = 70
        matrix = pack_masks([0] * n, word_count(n))
        u = np.array([0, 3, 3, 69], dtype=np.int64)
        v = np.array([1, 64, 65, 2], dtype=np.int64)
        set_edge_bits(matrix, u, v)
        core = IndexedGraph(n)
        for a, b in zip(u.tolist(), v.tolist()):
            core.add_edge(a, b)
        assert (matrix == pack_masks(core.adj, word_count(n))).all()

    def test_is_peo_packed_matches_reference(self):
        rng = random.Random(19)
        for graph in CORPUS:
            core = graph.core
            matrix = pack_masks(core.adj, word_count(len(core.adj)))
            indices = list(range(len(core.adj)))
            indices = [i for i in indices if core.alive >> i & 1]
            for __ in range(4):
                rng.shuffle(indices)
                labels = [graph.label_of(i) for i in indices]
                expected = is_perfect_elimination_ordering(
                    resolve_graph_backend(graph, "indexed"), labels
                )
                assert is_peo_packed(matrix, indices) == expected

    def test_weight_level_rows_group_by_weight(self):
        rng = random.Random(23)
        n = 200
        words = word_count(n)
        indices = np.array(sorted(rng.sample(range(n), 80)), dtype=np.int64)
        weights = np.array(
            [rng.randint(0, 9) for __ in range(80)], dtype=np.int64
        )
        rows = weight_level_rows(indices, weights, words)
        distinct = sorted(set(weights.tolist()))
        assert rows.shape[0] == len(distinct)
        for row, weight in zip(rows, distinct):
            mask = int.from_bytes(row.tobytes(), "little")
            expected = 0
            for i, w in zip(indices.tolist(), weights.tolist()):
                if w == weight:
                    expected |= 1 << i
            assert mask == expected

    def test_packed_queue_pops_in_bucket_order(self):
        rng = random.Random(29)
        n = 120
        words = word_count(n)
        alive = (1 << n) - 1
        ranks = list(range(n))
        rng.shuffle(ranks)
        scalar_weights = [0] * n
        scalar = MaxWeightBuckets(alive)
        packed = PackedMCSQueue(alive, ranks, words)
        remaining = alive
        for __ in range(n):
            a = scalar.pop_max(ranks)
            b = packed.pop_max()
            assert a == b
            remaining &= ~(1 << a)
            bump = rng.getrandbits(n) & remaining
            scalar.bump_all(bump, scalar_weights)
            packed.bump_mask(bump)
            assert scalar_weights == packed.weights.tolist()
