"""Unit/integration tests for junction-tree inference (repro.inference)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.enumerate import enumerate_minimal_triangulations
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.errors import InvalidTreeDecompositionError
from repro.graph.generators import cycle_graph, gnp_random_graph, grid_graph, path_graph
from repro.inference.factor import Factor
from repro.inference.junction_tree import calibrate, partition_function
from repro.inference.model import MarkovNetwork


class TestFactor:
    def test_constant(self):
        f = Factor.constant(3.0)
        assert f.variables == ()
        assert f.total() == 3.0

    def test_duplicate_scope_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Factor(("a", "a"), np.ones((2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="axes"):
            Factor(("a",), np.ones((2, 2)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Factor(("a",), [-1.0, 1.0])

    def test_multiply_shared_variable(self):
        domains = {"a": 2, "b": 2}
        f = Factor(("a",), [1.0, 2.0])
        g = Factor(("a", "b"), [[1.0, 10.0], [100.0, 1000.0]])
        product = f.multiply(g, domains)
        assert set(product.variables) == {"a", "b"}
        aligned = product.align_to(("a", "b"), domains)
        assert aligned[1][1] == 2000.0

    def test_multiply_disjoint_scopes(self):
        domains = {"a": 2, "b": 3}
        f = Factor(("a",), [1.0, 2.0])
        g = Factor(("b",), [1.0, 2.0, 3.0])
        product = f.multiply(g, domains)
        assert product.num_entries == 6
        assert product.total() == pytest.approx(3.0 * 6.0)

    def test_marginalize(self):
        f = Factor(("a", "b"), [[1.0, 2.0], [3.0, 4.0]])
        m = f.marginalize(["b"])
        assert m.variables == ("a",)
        assert list(m.table) == [3.0, 7.0]

    def test_marginalize_unknown(self):
        with pytest.raises(ValueError, match="unknown"):
            Factor(("a",), [1.0, 1.0]).marginalize(["z"])

    def test_project_onto(self):
        f = Factor(("a", "b"), [[1.0, 2.0], [3.0, 4.0]])
        p = f.project_onto(["b"])
        assert p.variables == ("b",)
        assert list(p.table) == [4.0, 6.0]

    def test_normalize(self):
        f = Factor(("a",), [1.0, 3.0])
        assert list(f.normalize().table) == [0.25, 0.75]
        with pytest.raises(ValueError):
            Factor(("a",), [0.0, 0.0]).normalize()

    def test_align_requires_superset(self):
        f = Factor(("a", "b"), np.ones((2, 2)))
        with pytest.raises(ValueError, match="misses"):
            f.align_to(("a",), {"a": 2})


class TestMarkovNetwork:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown variable"):
            MarkovNetwork({"a": 2}, [Factor(("b",), [1.0, 1.0])])
        with pytest.raises(ValueError, match="expected"):
            MarkovNetwork({"a": 3}, [Factor(("a",), [1.0, 1.0])])
        with pytest.raises(ValueError, match="positive"):
            MarkovNetwork({"a": 0}, [])

    def test_primal_graph_matches_generator(self):
        g = grid_graph(2, 3)
        model = MarkovNetwork.random(g, seed=1)
        assert model.primal_graph() == g

    def test_random_deterministic(self):
        g = path_graph(3)
        a = MarkovNetwork.random(g, seed=7)
        b = MarkovNetwork.random(g, seed=7)
        assert np.allclose(a.factors[0].table, b.factors[0].table)

    def test_brute_force_small(self):
        # Independent two-variable model: Z = (sum f_a)(sum f_b).
        model = MarkovNetwork(
            {"a": 2, "b": 2},
            [Factor(("a",), [1.0, 2.0]), Factor(("b",), [3.0, 4.0])],
        )
        assert model.brute_force_partition_function() == pytest.approx(21.0)
        assert model.brute_force_marginal("a") == pytest.approx([7.0, 14.0])


class TestCalibration:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(5),
            lambda: cycle_graph(5),
            lambda: grid_graph(2, 3),
            lambda: gnp_random_graph(7, 0.35, seed=9),
        ],
    )
    def test_partition_function_matches_brute_force(self, graph_factory):
        graph = graph_factory()
        model = MarkovNetwork.random(graph, seed=3)
        expected = model.brute_force_partition_function()
        triangulation = next(iter(enumerate_minimal_triangulations(graph)))
        result = calibrate(model, triangulation.tree_decomposition())
        assert result.partition_function == pytest.approx(expected, rel=1e-9)

    def test_z_invariant_across_decompositions(self):
        graph = cycle_graph(6)
        model = MarkovNetwork.random(graph, seed=5)
        values = set()
        for triangulation in itertools.islice(
            enumerate_minimal_triangulations(graph), 6
        ):
            z = partition_function(model, triangulation.tree_decomposition())
            values.add(round(z, 9))
        assert len(values) == 1

    def test_marginals_match_brute_force(self):
        graph = grid_graph(2, 3)
        model = MarkovNetwork.random(graph, seed=11)
        triangulation = next(iter(enumerate_minimal_triangulations(graph)))
        result = calibrate(model, triangulation.tree_decomposition())
        for variable in graph.nodes():
            expected = model.brute_force_marginal(variable)
            assert result.marginal(variable) == pytest.approx(expected, rel=1e-9)

    def test_normalized_marginals_sum_to_one(self):
        graph = cycle_graph(4)
        model = MarkovNetwork.random(graph, seed=13)
        triangulation = next(iter(enumerate_minimal_triangulations(graph)))
        result = calibrate(model, triangulation.tree_decomposition())
        for variable in graph.nodes():
            assert sum(result.normalized_marginal(variable)) == pytest.approx(1.0)

    def test_unknown_variable_marginal(self):
        graph = path_graph(3)
        model = MarkovNetwork.random(graph, seed=1)
        t = next(iter(enumerate_minimal_triangulations(graph)))
        result = calibrate(model, t.tree_decomposition())
        with pytest.raises(KeyError):
            result.marginal("nope")

    def test_invalid_decomposition_rejected(self):
        graph = cycle_graph(4)
        model = MarkovNetwork.random(graph, seed=2)
        bad = TreeDecomposition.build([{0, 1}, {2, 3}], [(0, 1)])
        with pytest.raises(InvalidTreeDecompositionError):
            calibrate(model, bad)

    def test_table_statistics(self):
        graph = grid_graph(2, 4)
        model = MarkovNetwork.random(graph, seed=17)
        t = next(iter(enumerate_minimal_triangulations(graph)))
        result = calibrate(model, t.tree_decomposition())
        assert result.max_table_entries >= 2 ** (t.width + 1)
        assert result.total_table_entries >= result.max_table_entries

    def test_width_drives_table_size(self):
        # A lower-width decomposition calibrates with smaller tables.
        graph = grid_graph(3, 3)
        model = MarkovNetwork.random(graph, seed=19)
        sizes = {}
        for triangulation in itertools.islice(
            enumerate_minimal_triangulations(graph), 12
        ):
            result = calibrate(model, triangulation.tree_decomposition())
            sizes.setdefault(triangulation.width, set()).add(
                result.max_table_entries
            )
        for width, entries in sizes.items():
            assert min(entries) >= 2 ** (width + 1)
