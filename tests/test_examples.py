"""Smoke tests: every shipped example must run to completion.

Each example is executed in a subprocess (so that ``__main__`` guards,
imports and printing behave exactly as for a user).  Time budgets
inside the examples are what they are, so the slowest ones get generous
subprocess timeouts; all must exit 0 and print their headline output.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "minimal triangulations" in out
        assert "proper tree decompositions" in out

    def test_custom_sgr(self):
        out = run_example("custom_sgr.py")
        assert "maximal disjoint packings" in out

    def test_join_query_optimization_small_query(self):
        out = run_example("join_query_optimization.py", "Q5")
        assert "TPC-H Q5" in out
        assert "best cost found" in out

    def test_probabilistic_inference(self):
        out = run_example("probabilistic_inference.py")
        assert "mcs_m (5s anytime budget)" in out
        assert "lb_triang (5s anytime budget)" in out

    def test_anytime_case_study(self):
        out = run_example("anytime_case_study.py")
        assert "cumulative results over time" in out
        assert "running minima over time" in out

    def test_exact_inference_pipeline(self):
        out = run_example("exact_inference_pipeline.py")
        assert "partition functions agree" in out

    def test_ghd_join_planning(self):
        out = run_example("ghd_join_planning.py")
        assert "GHD plans" in out
        assert "best plan beats worst" in out

    def test_anytime_treewidth_solver(self, tmp_path):
        out = run_example("anytime_treewidth_solver.py")
        assert "treewidth = 4" in out
        solution = EXAMPLES.parent / "solution.td"
        assert solution.exists()
        solution.unlink()

    def test_examples_are_all_covered(self):
        shipped = {path.name for path in EXAMPLES.glob("*.py")}
        covered = {
            "quickstart.py",
            "custom_sgr.py",
            "join_query_optimization.py",
            "probabilistic_inference.py",
            "anytime_case_study.py",
            "exact_inference_pipeline.py",
            "ghd_join_planning.py",
            "anytime_treewidth_solver.py",
        }
        assert shipped == covered
