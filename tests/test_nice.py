"""Unit tests for nice tree decompositions and the MIS DP (repro.decomposition.nice)."""

from __future__ import annotations

import random

import pytest

from helpers import small_random_graphs
from repro.baselines.brute_force import brute_force_maximal_independent_sets
from repro.core.enumerate import minimal_triangulation
from repro.decomposition.nice import (
    make_nice,
    max_weight_independent_set,
)
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


class TestMakeNice:
    def test_shape_and_width_preserved(self):
        for g in small_random_graphs(25, max_nodes=9, seed=2301):
            decomposition = minimal_triangulation(g).tree_decomposition()
            nice = make_nice(decomposition, g)
            nice.validate(g)
            assert nice.width == decomposition.width

    def test_single_bag(self):
        g = complete_graph(3)
        nice = make_nice(TreeDecomposition.build([{0, 1, 2}]), g)
        nice.validate(g)
        kinds = {node.kind for node in nice.nodes}
        assert kinds <= {"leaf", "introduce", "forget"}

    def test_join_nodes_appear_for_branching(self):
        g = star_graph(3)
        decomposition = TreeDecomposition.build(
            [{0, 1}, {0, 2}, {0, 3}], [(0, 1), (0, 2)]
        )
        nice = make_nice(decomposition, g)
        nice.validate(g)
        assert any(node.kind == "join" for node in nice.nodes)

    def test_root_is_empty_bag(self):
        g = path_graph(4)
        nice = make_nice(minimal_triangulation(g).tree_decomposition(), g)
        assert nice.nodes[nice.root].bag == frozenset()

    def test_empty_graph(self):
        nice = make_nice(TreeDecomposition.build([]), Graph())
        assert nice.width <= 0

    def test_invalid_decomposition_rejected(self):
        from repro.errors import InvalidTreeDecompositionError

        g = cycle_graph(4)
        with pytest.raises(InvalidTreeDecompositionError):
            make_nice(TreeDecomposition.build([{0, 1}]), g)


class TestMaxWeightIndependentSet:
    def test_unweighted_matches_brute_force(self):
        for g in small_random_graphs(25, max_nodes=9, seed=2307):
            value, witness = max_weight_independent_set(g)
            assert g.is_independent_set(witness)
            expected = max(
                len(s) for s in brute_force_maximal_independent_sets(g)
            )
            assert value == expected
            assert len(witness) == expected

    def test_weighted_matches_brute_force(self):
        rng = random.Random(9)
        for g in small_random_graphs(20, max_nodes=8, seed=2311):
            weights = {v: float(rng.randint(1, 20)) for v in g.node_set()}
            value, witness = max_weight_independent_set(g, weights)
            assert g.is_independent_set(witness)
            assert value == pytest.approx(sum(weights[v] for v in witness))
            expected = max(
                sum(weights[v] for v in s)
                for s in brute_force_maximal_independent_sets(g)
            )
            assert value == pytest.approx(expected)

    def test_known_graphs(self):
        assert max_weight_independent_set(cycle_graph(6))[0] == 3
        assert max_weight_independent_set(complete_graph(5))[0] == 1
        assert max_weight_independent_set(star_graph(5))[0] == 5
        assert max_weight_independent_set(grid_graph(3, 3))[0] == 5

    def test_empty_graph(self):
        assert max_weight_independent_set(Graph()) == (0.0, frozenset())

    def test_explicit_decomposition(self):
        g = cycle_graph(5)
        decomposition = TreeDecomposition.build(
            [{0, 1, 2}, {0, 2, 3}, {0, 3, 4}], [(0, 1), (1, 2)]
        )
        value, witness = max_weight_independent_set(
            g, decomposition=decomposition
        )
        assert value == 2

    def test_weights_must_cover_nodes(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="cover"):
            max_weight_independent_set(g, weights={0: 1.0})

    def test_heavy_single_vertex_dominates(self):
        g = star_graph(4)
        weights = {0: 100.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}
        value, witness = max_weight_independent_set(g, weights)
        assert witness == frozenset({0})
        assert value == 100.0
