"""Unit tests for the PACE formats (.gr graphs, .td tree decompositions)."""

from __future__ import annotations

import io

import pytest

from repro.decomposition.clique_tree import clique_tree
from repro.decomposition.io import parse_pace_td, read_pace_td, write_pace_td
from repro.errors import ParseError
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.graph.io import parse_pace_graph, write_pace_graph


class TestPaceGraph:
    def test_round_trip(self, tmp_path):
        g = grid_graph(3, 3)
        path = tmp_path / "g.gr"
        write_pace_graph(g, path)
        loaded = parse_pace_graph(path.read_text())
        assert loaded.num_nodes == 9
        assert loaded.num_edges == 12

    def test_parse_basic(self):
        g = parse_pace_graph("c comment\np tw 3 2\n1 2\n2 3\n")
        assert g.nodes() == [1, 2, 3]
        assert g.num_edges == 2

    def test_isolated_nodes(self):
        g = parse_pace_graph("p tw 5 1\n1 2\n")
        assert g.num_nodes == 5

    def test_missing_problem_line(self):
        with pytest.raises(ParseError, match="problem line"):
            parse_pace_graph("1 2\n")

    def test_duplicate_problem_line(self):
        with pytest.raises(ParseError):
            parse_pace_graph("p tw 2 0\np tw 2 0\n")

    def test_wrong_descriptor(self):
        with pytest.raises(ParseError):
            parse_pace_graph("p edge 2 1\n1 2\n")

    def test_out_of_range_endpoint(self):
        with pytest.raises(ParseError, match="out of range"):
            parse_pace_graph("p tw 2 1\n1 5\n")

    def test_self_loop(self):
        with pytest.raises(ParseError):
            parse_pace_graph("p tw 2 1\n1 1\n")

    def test_write_to_stream(self):
        buffer = io.StringIO()
        write_pace_graph(cycle_graph(3), buffer)
        assert buffer.getvalue().startswith("p tw 3 3")


class TestPaceTd:
    def test_round_trip(self, tmp_path):
        g = path_graph(4)
        decomposition = clique_tree(g)
        path = tmp_path / "d.td"
        mapping = write_pace_td(decomposition, g, path)
        # Node i maps to i+1 (sorted ints).
        assert mapping == {0: 1, 1: 2, 2: 3, 3: 4}
        loaded = read_pace_td(path)
        assert loaded.num_bags == decomposition.num_bags
        assert loaded.width == decomposition.width
        relabeled = g.relabeled(mapping)
        loaded.validate(relabeled)

    def test_round_trip_cycle_triangulation(self, tmp_path):
        from repro.core.enumerate import enumerate_minimal_triangulations

        g = cycle_graph(6)
        t = next(iter(enumerate_minimal_triangulations(g)))
        decomposition = t.tree_decomposition()
        buffer = io.StringIO()
        mapping = write_pace_td(decomposition, g, buffer)
        loaded = parse_pace_td(buffer.getvalue())
        assert loaded.width == decomposition.width
        loaded.validate(g.relabeled(mapping))

    def test_parse_basic(self):
        d = parse_pace_td("c hi\ns td 2 2 3\nb 1 1 2\nb 2 2 3\n1 2\n")
        assert d.num_bags == 2
        assert d.width == 1
        assert d.tree_edges == ((0, 1),)

    def test_empty_bag_line(self):
        d = parse_pace_td("s td 1 0 0\nb 1\n")
        assert d.bags == (frozenset(),)

    def test_missing_solution_line(self):
        with pytest.raises(ParseError, match="solution line"):
            parse_pace_td("b 1 1\n")

    def test_duplicate_solution_line(self):
        with pytest.raises(ParseError):
            parse_pace_td("s td 1 1 1\ns td 1 1 1\nb 1 1\n")

    def test_duplicate_bag(self):
        with pytest.raises(ParseError, match="duplicate bag"):
            parse_pace_td("s td 2 1 1\nb 1 1\nb 1 1\n")

    def test_bag_ids_must_be_contiguous(self):
        with pytest.raises(ParseError, match="expected bags"):
            parse_pace_td("s td 2 1 1\nb 1 1\nb 3 1\n")

    def test_malformed_edge(self):
        with pytest.raises(ParseError):
            parse_pace_td("s td 1 1 1\nb 1 1\n1 2 3\n")


class TestPaceGraphFileRead:
    def test_read_from_path(self, tmp_path):
        from repro.graph.io import read_pace_graph

        path = tmp_path / "g.gr"
        path.write_text("p tw 3 2\n1 2\n2 3\n")
        g = read_pace_graph(path)
        assert g.num_edges == 2

    def test_read_td_from_path(self, tmp_path):
        path = tmp_path / "d.td"
        path.write_text("s td 1 2 2\nb 1 1 2\n")
        d = read_pace_td(path)
        assert d.num_bags == 1
