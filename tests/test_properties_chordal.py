"""Property-based tests (hypothesis) for chordal-graph machinery."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chordal.chordal_separators import minimal_separators_of_chordal
from repro.chordal.cliques import maximal_cliques, mcs_clique_forest
from repro.chordal.minimal_separators import (
    all_minimal_separators,
    are_crossing,
    is_minimal_separator,
)
from repro.chordal.peo import (
    elimination_fill_in,
    is_chordal,
    is_perfect_elimination_ordering,
    maximum_cardinality_search,
)
from repro.chordal.sandwich import (
    is_minimal_triangulation,
    minimal_triangulation_sandwich,
)
from repro.chordal.triangulate import lb_triang, mcs_m
from repro.graph.generators import random_chordal_graph
from repro.graph.graph import Graph


@st.composite
def graphs(draw, max_nodes: int = 9):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    g = Graph(nodes=range(n))
    if n >= 2:
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g.add_edges(
            draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs)))
        )
    return g


@st.composite
def chordal_graphs(draw, max_nodes: int = 12):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    density = draw(st.sampled_from([0.2, 0.5, 0.8, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_chordal_graph(n, density, seed)


@given(chordal_graphs())
def test_mcs_reverse_is_peo_on_chordal(g):
    order = maximum_cardinality_search(g)
    order.reverse()
    assert is_perfect_elimination_ordering(g, order)


@given(chordal_graphs())
def test_clique_forest_reconstructs_graph(g):
    # Union of clique edge sets = graph edge set.
    forest = mcs_clique_forest(g)
    edges = set()
    for clique in forest.cliques:
        members = sorted(clique)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                edges.add(frozenset({u, v}))
    assert edges == set(g.edge_set())


@given(chordal_graphs())
def test_cliques_are_maximal_cliques(g):
    for clique in maximal_cliques(g):
        assert g.is_clique(clique)
        for node in g.nodes():
            if node not in clique:
                assert not g.is_clique(set(clique) | {node})


@given(chordal_graphs())
def test_chordal_separator_extraction_matches_enumerator(g):
    assert minimal_separators_of_chordal(g) == all_minimal_separators(g)


@given(chordal_graphs())
def test_chordal_separators_are_parallel_cliques(g):
    # Dirac: minimal separators of a chordal graph are cliques, and by
    # Parra-Scheffler they are pairwise parallel.
    seps = sorted(minimal_separators_of_chordal(g), key=sorted)
    for sep in seps:
        if sep:
            assert g.is_clique(sep)
    for i, s in enumerate(seps):
        for t in seps[i + 1 :]:
            assert not are_crossing(g, s, t)


@given(graphs())
@settings(max_examples=60)
def test_mcs_m_fill_is_minimal_triangulation(g):
    fill, order = mcs_m(g)
    filled = g.copy()
    filled.add_edges(fill)
    assert is_minimal_triangulation(g, filled)
    assert is_perfect_elimination_ordering(filled, order)


@given(graphs())
@settings(max_examples=40)
def test_lb_triang_fill_is_minimal_triangulation(g):
    filled = g.copy()
    filled.add_edges(lb_triang(g))
    assert is_minimal_triangulation(g, filled)


@given(graphs(), st.permutations(list(range(9))))
@settings(max_examples=40)
def test_elimination_game_triangulates_any_order(g, permutation):
    order = [v for v in permutation if g.has_node(v)]
    fill = elimination_fill_in(g, order)
    filled = g.copy()
    filled.add_edges(fill)
    assert is_chordal(filled)
    minimal, kept = minimal_triangulation_sandwich(g, fill)
    assert is_minimal_triangulation(g, minimal)
    assert set(kept) <= set(fill)


@given(graphs(max_nodes=8))
@settings(max_examples=40)
def test_enumerated_separators_are_minimal(g):
    for sep in all_minimal_separators(g):
        assert is_minimal_separator(g, sep)
