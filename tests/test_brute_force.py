"""Unit tests for the brute-force oracles themselves (S23).

The oracles back most cross-checks elsewhere, so here they are pinned
against hand-computed answers and against networkx where applicable.
"""

from __future__ import annotations

import pytest

from helpers import small_random_graphs
from repro.baselines.brute_force import (
    brute_force_maximal_cliques,
    brute_force_maximal_independent_sets,
    brute_force_maximal_parallel_families,
    brute_force_minimal_separators,
    brute_force_minimal_triangulations,
)
from repro.errors import EnumerationBudgetExceeded
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


class TestMinimalSeparatorsOracle:
    def test_hand_computed_path(self):
        assert brute_force_minimal_separators(path_graph(4)) == {
            frozenset({1}),
            frozenset({2}),
        }

    def test_hand_computed_square(self):
        assert brute_force_minimal_separators(cycle_graph(4)) == {
            frozenset({0, 2}),
            frozenset({1, 3}),
        }

    def test_size_guard(self):
        with pytest.raises(EnumerationBudgetExceeded):
            brute_force_minimal_separators(path_graph(17))


class TestMinimalTriangulationsOracle:
    def test_square(self):
        result = brute_force_minimal_triangulations(cycle_graph(4))
        assert result == {
            frozenset({frozenset({0, 2})}),
            frozenset({frozenset({1, 3})}),
        }

    def test_chordal_graph_single_empty_fill(self):
        assert brute_force_minimal_triangulations(path_graph(4)) == {frozenset()}

    def test_c5_count(self):
        assert len(brute_force_minimal_triangulations(cycle_graph(5))) == 5

    def test_size_guard(self):
        with pytest.raises(EnumerationBudgetExceeded):
            brute_force_minimal_triangulations(Graph(nodes=range(10)))


class TestCliqueOracles:
    def test_cliques_match_networkx(self):
        import networkx as nx

        for g in small_random_graphs(25, max_nodes=9, seed=901):
            nxg = nx.Graph(g.edges())
            nxg.add_nodes_from(g.nodes())
            expected = {frozenset(c) for c in nx.find_cliques(nxg)}
            assert brute_force_maximal_cliques(g) == expected

    def test_star_cliques(self):
        assert brute_force_maximal_cliques(star_graph(3)) == {
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({0, 3}),
        }

    def test_empty_graph_empty_clique(self):
        assert brute_force_maximal_cliques(Graph()) == {frozenset()}

    def test_independent_sets_are_complement_cliques(self):
        g = cycle_graph(5)
        assert brute_force_maximal_independent_sets(g) == brute_force_maximal_cliques(
            g.complement()
        )


class TestParallelFamiliesOracle:
    def test_square(self):
        families = brute_force_maximal_parallel_families(cycle_graph(4))
        assert families == {
            frozenset({frozenset({0, 2})}),
            frozenset({frozenset({1, 3})}),
        }

    def test_count_matches_triangulations(self):
        # Parra-Scheffler: |families| == |MinTri|.
        for g in small_random_graphs(15, max_nodes=7, seed=907):
            families = brute_force_maximal_parallel_families(g)
            triangulations = brute_force_minimal_triangulations(g)
            assert len(families) == len(triangulations)

    def test_complete_graph_single_empty_family(self):
        assert brute_force_maximal_parallel_families(complete_graph(4)) == {
            frozenset()
        }
