"""Unit tests for minimal separator enumeration and crossing (S7–S8)."""

from __future__ import annotations

import itertools

from helpers import small_random_graphs
from repro.baselines.brute_force import brute_force_minimal_separators
from repro.chordal.minimal_separators import (
    all_minimal_separators,
    are_crossing,
    are_parallel,
    count_minimal_separators,
    is_minimal_separator,
    is_pairwise_parallel,
    minimal_separators,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


class TestEnumeration:
    def test_complete_graph_has_none(self):
        assert all_minimal_separators(complete_graph(5)) == set()

    def test_path_separators_are_internal_nodes(self):
        seps = all_minimal_separators(path_graph(5))
        assert seps == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_cycle_separators_are_nonadjacent_pairs(self):
        # C_n has exactly n(n-3)/2 minimal separators: the
        # non-adjacent pairs.
        for n in (4, 5, 6, 7, 8):
            g = cycle_graph(n)
            seps = all_minimal_separators(g)
            assert len(seps) == n * (n - 3) // 2
            expected = {
                frozenset({u, v})
                for u, v in itertools.combinations(range(n), 2)
                if not g.has_edge(u, v)
            }
            assert seps == expected

    def test_star_center(self):
        assert all_minimal_separators(star_graph(5)) == {frozenset({0})}

    def test_empty_and_single(self):
        assert all_minimal_separators(Graph()) == set()
        assert all_minimal_separators(Graph(nodes=[1])) == set()

    def test_disconnected_includes_empty_separator(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        g.add_node(9)
        seps = all_minimal_separators(g)
        assert frozenset() in seps
        assert frozenset({1}) in seps
        assert len(seps) == 2

    def test_no_duplicates(self):
        for g in small_random_graphs(20, seed=101):
            produced = list(minimal_separators(g))
            assert len(produced) == len(set(produced))

    def test_matches_brute_force(self):
        for g in small_random_graphs(40, max_nodes=8, seed=103):
            assert all_minimal_separators(g) == brute_force_minimal_separators(g)

    def test_every_output_is_a_minimal_separator(self):
        for g in small_random_graphs(20, seed=107):
            for sep in minimal_separators(g):
                assert is_minimal_separator(g, sep)

    def test_count(self):
        assert count_minimal_separators(cycle_graph(6)) == 9

    def test_lazy_first_result(self):
        # The generator must produce the first separator without
        # draining the space (polynomial delay property, weak check).
        g = grid_graph(5, 5)
        iterator = minimal_separators(g)
        first = next(iterator)
        assert is_minimal_separator(g, first)


class TestCrossing:
    def test_cycle_pairs_cross_iff_interleaved(self):
        g = cycle_graph(6)
        # {0,3} and {1,4} interleave around the cycle -> crossing.
        assert are_crossing(g, {0, 3}, {1, 4})
        # {0,2} and {0,4} share node 0 and do not interleave.
        assert are_parallel(g, {0, 2}, {0, 4})

    def test_symmetric(self):
        for g in small_random_graphs(15, max_nodes=7, seed=109):
            seps = sorted(all_minimal_separators(g), key=sorted)
            for s, t in itertools.combinations(seps, 2):
                assert are_crossing(g, s, t) == are_crossing(g, t, s)

    def test_self_parallel(self):
        g = cycle_graph(5)
        for sep in all_minimal_separators(g):
            assert are_parallel(g, sep, sep)

    def test_subset_is_parallel(self):
        g = path_graph(5)
        assert are_parallel(g, {1}, {1})
        assert are_parallel(g, {2}, {1})

    def test_crossing_matches_definition(self):
        # S crosses T iff S separates some pair of T (definition 2.2).
        from repro.graph.components import separates

        for g in small_random_graphs(15, max_nodes=7, seed=113):
            seps = sorted(all_minimal_separators(g), key=sorted)
            for s, t in itertools.combinations(seps, 2):
                by_definition = any(
                    separates(g, s, u, v)
                    for u, v in itertools.combinations(sorted(t - s), 2)
                )
                assert are_crossing(g, s, t) == by_definition

    def test_pairwise_parallel_helper(self):
        g = cycle_graph(6)
        assert is_pairwise_parallel(g, [{0, 2}, {0, 3}])
        assert not is_pairwise_parallel(g, [{0, 3}, {1, 4}])
        assert is_pairwise_parallel(g, [])


class TestIsMinimalSeparator:
    def test_examples(self):
        g = path_graph(4)
        assert is_minimal_separator(g, {1})
        assert not is_minimal_separator(g, {0})
        assert not is_minimal_separator(g, {1, 2})

    def test_empty_set_connected_vs_disconnected(self):
        assert not is_minimal_separator(path_graph(3), set())
        assert is_minimal_separator(Graph(nodes=[1, 2]), set())
