"""Unit tests for treewidth lower bounds (repro.core.bounds)."""

from __future__ import annotations

from helpers import small_chordal_graphs, small_random_graphs
from repro.chordal.cliques import tree_width
from repro.core.bounds import (
    clique_lower_bound,
    degeneracy_lower_bound,
    mmd_plus_lower_bound,
    treewidth_lower_bound,
)
from repro.core.treewidth import treewidth_exact
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_k_tree,
    random_tree,
    star_graph,
)
from repro.graph.graph import Graph


class TestKnownValues:
    def test_empty_and_trivial(self):
        for bound in (
            degeneracy_lower_bound,
            mmd_plus_lower_bound,
            clique_lower_bound,
            treewidth_lower_bound,
        ):
            assert bound(Graph()) == -1
            assert bound(Graph(nodes=[1])) == 0

    def test_trees(self):
        for seed in range(3):
            g = random_tree(10, seed=seed)
            assert degeneracy_lower_bound(g) == 1
            assert treewidth_lower_bound(g) == 1

    def test_cycles(self):
        for n in (4, 5, 8):
            assert degeneracy_lower_bound(cycle_graph(n)) == 2
            assert treewidth_lower_bound(cycle_graph(n)) == 2

    def test_complete_graph_tight(self):
        g = complete_graph(6)
        assert clique_lower_bound(g) == 5
        assert treewidth_lower_bound(g) == 5

    def test_star(self):
        assert treewidth_lower_bound(star_graph(6)) == 1

    def test_path(self):
        assert treewidth_lower_bound(path_graph(6)) == 1

    def test_grid_mmd_beats_degeneracy(self):
        g = grid_graph(5, 5)
        assert degeneracy_lower_bound(g) == 2
        assert mmd_plus_lower_bound(g) >= 3

    def test_k_trees_tight(self):
        for k in (2, 3, 4):
            g = random_k_tree(10, k, seed=k)
            assert treewidth_lower_bound(g) == k


class TestSoundness:
    def test_never_exceeds_exact_treewidth(self):
        for g in small_random_graphs(40, max_nodes=9, seed=2201):
            assert treewidth_lower_bound(g) <= treewidth_exact(g)

    def test_sound_on_chordal_graphs(self):
        for g in small_chordal_graphs(25, max_nodes=11, seed=2203):
            assert treewidth_lower_bound(g) <= tree_width(g)

    def test_mmd_dominates_on_corpus(self):
        # MMD+ is never worse than plain degeneracy.
        for g in small_random_graphs(25, max_nodes=9, seed=2207):
            assert mmd_plus_lower_bound(g) >= degeneracy_lower_bound(g)


class TestAnytimeTreewidth:
    def test_exact_on_structured_graphs(self):
        from repro.core.ranked import anytime_treewidth

        for g, expected in (
            (grid_graph(3, 3), 3),
            (cycle_graph(8), 2),
            (complete_graph(5), 4),
            (path_graph(6), 1),
        ):
            width, best, optimal = anytime_treewidth(g)
            assert width == expected
            assert optimal
            assert best.is_minimal()

    def test_matches_exact_dp_on_random_graphs(self):
        from repro.core.ranked import anytime_treewidth

        for g in small_random_graphs(15, max_nodes=8, seed=2213):
            width, __, optimal = anytime_treewidth(g)
            assert optimal  # exhausting the enumeration proves optimality
            assert width == treewidth_exact(g)

    def test_budget_cuts_search(self):
        from repro.core.ranked import anytime_treewidth

        g = grid_graph(4, 4)
        width, best, optimal = anytime_treewidth(g, max_results=1)
        assert width >= 4
        assert best.is_minimal()


class TestMinFillLowerBound:
    def test_chordal_is_zero(self):
        from repro.core.bounds import min_fill_lower_bound

        for g in small_chordal_graphs(15, seed=2221):
            assert min_fill_lower_bound(g) == 0

    def test_sound_against_exact(self):
        from repro.core.bounds import min_fill_lower_bound
        from repro.core.treewidth import min_fill_in_exact

        for g in small_random_graphs(30, max_nodes=9, seed=2223):
            assert min_fill_lower_bound(g) <= min_fill_in_exact(g)

    def test_known_values(self):
        from repro.core.bounds import min_fill_lower_bound

        assert min_fill_lower_bound(cycle_graph(4)) == 1
        assert min_fill_lower_bound(grid_graph(3, 3)) >= 3
        assert min_fill_lower_bound(complete_graph(5)) == 0


class TestAnytimeMinFill:
    def test_exact_on_structured_graphs(self):
        from repro.core.ranked import anytime_min_fill

        for g, expected in (
            (cycle_graph(4), 1),
            (cycle_graph(6), 3),
            (grid_graph(3, 3), 5),
            (path_graph(5), 0),
        ):
            fill, best, optimal = anytime_min_fill(g)
            assert fill == expected
            assert optimal
            assert best.is_minimal()

    def test_matches_exact_dp_on_random_graphs(self):
        from repro.core.ranked import anytime_min_fill
        from repro.core.treewidth import min_fill_in_exact

        for g in small_random_graphs(12, max_nodes=8, seed=2227):
            fill, __, optimal = anytime_min_fill(g)
            assert optimal
            assert fill == min_fill_in_exact(g)
