"""Importable test helpers (graph corpora and comparison utilities).

Kept outside ``conftest.py`` on purpose: test modules import these by
name (``from helpers import …``), and importing from a ``conftest``
module is fragile — when several rootdir trees each carry a
``conftest.py`` (tests/, benchmarks/), whichever is imported first
wins the module name and shadows the other's helpers.
"""

from __future__ import annotations

import random

from repro.graph.generators import gnp_random_graph, random_chordal_graph
from repro.graph.graph import Graph


def small_random_graphs(count: int, max_nodes: int = 8, seed: int = 99) -> list[Graph]:
    """A deterministic corpus of small random graphs for oracle tests."""
    rng = random.Random(seed)
    graphs = []
    for index in range(count):
        n = rng.randint(3, max_nodes)
        p = rng.choice([0.2, 0.35, 0.5, 0.7])
        graphs.append(gnp_random_graph(n, p, seed=seed * 1000 + index))
    return graphs


def small_chordal_graphs(count: int, max_nodes: int = 12, seed: int = 7) -> list[Graph]:
    """A deterministic corpus of small chordal graphs."""
    rng = random.Random(seed)
    graphs = []
    for index in range(count):
        n = rng.randint(2, max_nodes)
        density = rng.choice([0.2, 0.4, 0.7, 1.0])
        graphs.append(random_chordal_graph(n, density, seed=seed * 131 + index))
    return graphs


def edge_set(graph: Graph) -> set[frozenset]:
    """Edges as a set of frozensets (order-free comparison helper)."""
    return set(graph.edge_set())
