"""Unit tests for the benchmark workloads (S25)."""

from __future__ import annotations

import pytest

from repro.chordal.peo import is_chordal
from repro.graph.components import is_connected
from repro.workloads.pgm import (
    csp_suite,
    grid_suite,
    object_detection_like,
    object_detection_suite,
    pedigree_like,
    pedigree_suite,
    pgm_suites,
    promedas_like,
    promedas_suite,
    segmentation_like,
    segmentation_suite,
)
from repro.workloads.random_graphs import (
    PAPER_DENSITIES,
    PAPER_NODE_COUNTS,
    random_sweep,
)
from repro.workloads.tpch import TPCH_ATOMS, tpch_query, tpch_query_names, tpch_suite


class TestPgmGenerators:
    def test_promedas_structure(self):
        g = promedas_like(num_diseases=10, num_findings=20, seed=1)
        assert g.num_nodes == 30
        # Findings never connect to findings (layered noisy-or).
        finding_nodes = [n for n in g.nodes() if n[0] == "f"]
        for u in finding_nodes:
            assert all(v[0] == "d" for v in g.neighbors(u))

    def test_promedas_deterministic(self):
        assert promedas_like(10, 20, seed=3) == promedas_like(10, 20, seed=3)

    def test_object_detection_band(self):
        for seed in range(5):
            g = object_detection_like(seed)
            assert g.num_nodes == 60
            assert 135 <= g.num_edges <= 180
            assert is_connected(g)

    def test_segmentation_band(self):
        for seed in range(3):
            g = segmentation_like(seed)
            assert 226 <= g.num_nodes <= 235
            assert 600 <= g.num_edges <= 700

    def test_pedigree_band(self):
        g = pedigree_like(seed=0)
        assert g.num_nodes == 385
        assert 880 <= g.num_edges <= 930

    def test_suites_sizes(self):
        assert len(promedas_suite(count=5)) == 5
        assert len(object_detection_suite(count=4)) == 4
        assert len(segmentation_suite(count=2)) == 2
        assert len(grid_suite(count=4)) == 4
        assert len(pedigree_suite(count=2)) == 2
        assert len(csp_suite(count=3)) == 3

    def test_pgm_suites_scaling(self):
        scaled = pgm_suites(scale=0.1)
        assert set(scaled) == {
            "Promedas",
            "ObjectDetection",
            "Segmentation",
            "Grids",
            "Pedigree",
            "CSP",
        }
        assert len(scaled["Promedas"]) == 3
        assert all(len(instances) >= 1 for instances in scaled.values())

    def test_promedas_size_range_spans_paper_band(self):
        suite = promedas_suite(count=33)
        sizes = [g.num_nodes for __, g in suite]
        assert min(sizes) <= 30
        assert max(sizes) >= 1000


class TestRandomSweep:
    def test_paper_grid_is_54_graphs(self):
        sweep = random_sweep()
        assert len(sweep) == 54
        assert len(PAPER_NODE_COUNTS) == 18
        assert PAPER_DENSITIES == (0.3, 0.5, 0.7)

    def test_shapes(self):
        sweep = random_sweep(node_counts=(30, 40), densities=(0.5,))
        assert [(n, p) for __, __, n, p in sweep] == [(30, 0.5), (40, 0.5)]
        for name, graph, n, __ in sweep:
            assert graph.num_nodes == n
            assert name.startswith("gnp_")


class TestTpch:
    def test_all_22_queries_present(self):
        names = tpch_query_names()
        assert names[0] == "Q1" and names[-1] == "Q22"
        assert len(names) == 22
        assert len(TPCH_ATOMS) == 22

    def test_unknown_query_raises(self):
        with pytest.raises(KeyError):
            tpch_query("Q23")

    def test_graph_shapes_match_paper_band(self):
        # "The queries include up to 22 nodes, and up to 46 edges."
        for name, g in tpch_suite():
            assert g.num_nodes <= 22, name
            assert g.num_edges <= 46, name
            assert is_connected(g), name

    def test_atoms_become_cliques(self):
        g = tpch_query("Q5")
        for __, variables in TPCH_ATOMS["Q5"]:
            assert g.is_clique(variables)

    def test_about_half_chordal(self):
        chordal = sum(1 for __, g in tpch_suite() if is_chordal(g))
        assert 10 <= chordal <= 17

    def test_q7_q9_not_chordal(self):
        assert not is_chordal(tpch_query("Q7"))
        assert not is_chordal(tpch_query("Q9"))

    def test_small_queries_have_few_triangulations(self):
        from repro.core.enumerate import count_minimal_triangulations

        for name in ("Q2", "Q5", "Q8", "Q10", "Q14"):
            assert count_minimal_triangulations(tpch_query(name)) <= 5, name

    def test_treewidth_band(self):
        # Paper: "their treewidth is up to 7".  Sampling the first few
        # minimal triangulations upper-bounds the treewidth.
        import itertools

        from repro.core.enumerate import enumerate_minimal_triangulations

        for name in ("Q3", "Q5", "Q7"):
            g = tpch_query(name)
            best = min(
                t.width
                for t in itertools.islice(
                    enumerate_minimal_triangulations(g), 25
                )
            )
            assert best <= 7
