"""Tests for the native C kernel tier (PR 6).

Three layers of pinning:

* every native kernel against the numpy module *and* (where one
  exists) the int-mask reference oracle, on randomized word matrices
  whose slot count is deliberately not a multiple of 64;
* ``NativeGraphCore`` against ``NumpyGraphCore`` end to end —
  identical enumerated triangulation sets in both printing modes on
  the property corpus, identical sharded-worker rebuilds from packed
  payloads (inline and shared-memory);
* the degradation story — auto-selection and explicit ``"native"``
  requests fall back to the numpy core on a monkeypatched load
  failure, and corrupt or stale build artefacts trigger a clean
  rebuild instead of an error.

Kernel-parity tests skip when the extension cannot be built (no
compiler in the environment); the fallback tests run everywhere —
that path *is* what they test.
"""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest

from helpers import small_random_graphs
from repro.chordal.minimal_separators import (
    BATCH_KERNEL_MIN,
    are_crossing_batch_masks,
    are_crossing_masks,
    minimal_separator_masks,
)
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.engine.pool import InlineRunner, _rebuild_graph, make_payload
from repro.graph import bitset_np as bnp
from repro.graph._native import native
from repro.graph.bitset_np import (
    GRAPH_BACKENDS,
    NUMPY_THRESHOLD,
    NumpyGraphCore,
    SharedPackedBuffer,
    convert_graph,
    kernels_for,
    select_core_class,
    word_count,
)
from repro.graph.core import IndexedGraph
from repro.graph.generators import gnp_random_graph

requires_native = pytest.mark.skipif(
    not native.available(), reason="native extension not buildable here"
)

# Deliberately not a multiple of 64: every kernel must handle the
# ragged top word exactly like the numpy tier does.
N = 173
WORDS = word_count(N)


@pytest.fixture
def rng():
    return np.random.default_rng(20250806)


def random_packed_graph(rng, n=N, avg_degree=6):
    """A random symmetric packed adjacency plus its int-mask rows."""
    adj = [0] * n
    for __ in range(n * avg_degree // 2):
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u != v:
            adj[u] |= 1 << v
            adj[v] |= 1 << u
    return bnp.pack_masks(adj, word_count(n)), adj


def random_mask(rng, n=N):
    return int.from_bytes(rng.bytes(word_count(n) * 8), "little") & (
        (1 << n) - 1
    )


# ----------------------------------------------------------------------
# Per-kernel parity against the numpy and int-mask oracles
# ----------------------------------------------------------------------


@requires_native
class TestKernelParity:
    def test_popcount(self, rng):
        matrix, __ = random_packed_graph(rng)
        assert np.array_equal(native.popcount(matrix), bnp.popcount(matrix))
        row = matrix[7]
        assert int(native.popcount(row)) == int(bnp.popcount(row))

    def test_crossing_batch(self, rng):
        components = bnp.pack_masks(
            [random_mask(rng) for __ in range(5)], WORDS
        )
        remainders = bnp.pack_masks(
            [random_mask(rng) & random_mask(rng) for __ in range(40)], WORDS
        )
        got = native.crossing_batch(components, remainders)
        want = bnp.crossing_batch(components, remainders)
        assert np.array_equal(got, want)

    def test_crossing_batch_empty_components(self, rng):
        components = bnp.zero_matrix(0, WORDS)
        remainders = bnp.pack_masks([random_mask(rng)], WORDS)
        assert native.crossing_batch(components, remainders).tolist() == [
            False
        ]

    def test_crossing_batch_gather_fuses_the_remainder(self, rng):
        matrix = bnp.pack_masks([random_mask(rng) for __ in range(50)], WORDS)
        components = bnp.pack_masks(
            [random_mask(rng) for __ in range(4)], WORDS
        )
        ids = [3, 17, 44, 9, 21, 0]
        v_id = 17
        remainders = matrix[ids] & ~matrix[v_id]
        want = bnp.crossing_batch(components, remainders).tolist()
        got = native.crossing_batch_gather(components, matrix, ids, v_id)
        assert got == [bool(x) for x in want]

    def test_crossing_against_int_oracle_on_graph(self):
        g = gnp_random_graph(60, 0.15, seed=5)
        seps = list(itertools.islice(minimal_separator_masks(g), 12))
        assert len(seps) >= BATCH_KERNEL_MIN
        s = seps[0]
        native_core = convert_graph(g, "native").core
        batched = are_crossing_batch_masks(native_core, s, seps)
        scalar = [are_crossing_masks(g.core, s, t) for t in seps]
        assert batched == scalar

    def test_union_rows(self, rng):
        matrix, adj = random_packed_graph(rng)
        indices = rng.choice(N, size=30, replace=False)
        want = 0
        for i in indices:
            want |= adj[int(i)]
        assert native.union_rows(matrix, indices) == want
        assert native.union_rows(matrix, indices) == bnp.union_rows(
            matrix, indices
        )
        assert native.union_rows(matrix, []) == 0

    def test_frontier_sweep(self, rng):
        matrix, adj = random_packed_graph(rng, avg_degree=3)
        core = IndexedGraph(N)
        core.adj = list(adj)
        core.alive = (1 << N) - 1
        for __ in range(10):
            seed_vertex = int(rng.integers(0, N))
            available = random_mask(rng) | 1 << seed_vertex
            seed = 1 << seed_vertex
            want = core.expand_component(seed, available)
            assert native.frontier_sweep(matrix, seed, available) == want
            assert bnp.frontier_sweep(matrix, seed, available) == want

    def test_mask_to_indices(self, rng):
        for __ in range(5):
            mask = random_mask(rng)
            assert np.array_equal(
                native.mask_to_indices(mask, WORDS),
                bnp.mask_to_indices(mask, WORDS),
            )
        assert native.mask_to_indices(0, WORDS).shape == (0,)

    def test_saturate_batch_and_set_edge_bits(self, rng):
        matrix, __ = random_packed_graph(rng)
        for __ in range(5):
            mask = random_mask(rng)
            u_n, v_n = native.saturate_batch(matrix, mask)
            u_p, v_p = bnp.saturate_batch(matrix, mask)
            # Bit-identical including pair order.
            assert np.array_equal(u_n, u_p)
            assert np.array_equal(v_n, v_p)
            filled_native = matrix.copy()
            filled_numpy = matrix.copy()
            native.set_edge_bits(filled_native, u_n, v_n)
            bnp.set_edge_bits(filled_numpy, u_p, v_p)
            assert np.array_equal(filled_native, filled_numpy)

    def test_is_peo_packed(self, rng):
        matrix, __ = random_packed_graph(rng)
        order = rng.permutation(N).astype(np.int64)
        assert native.is_peo_packed(matrix, order) == bnp.is_peo_packed(
            matrix, order
        )
        # A complete graph: every ordering is perfect.
        full = bnp.pack_masks(
            [((1 << N) - 1) ^ (1 << i) for i in range(N)], WORDS
        )
        assert native.is_peo_packed(full, order) is True
        # An empty graph likewise.
        empty = bnp.zero_matrix(N, WORDS)
        assert native.is_peo_packed(empty, order) is True

    def test_weight_level_rows(self, rng):
        indices = rng.choice(N, size=48, replace=False).astype(np.int64)
        weights = rng.integers(0, 7, size=48).astype(np.int64)
        got = native.weight_level_rows(indices, weights, WORDS)
        want = bnp.weight_level_rows(indices, weights, WORDS)
        assert got.shape == want.shape
        assert np.array_equal(got, want)
        assert native.weight_level_rows(
            indices[:0], weights[:0], WORDS
        ).shape[0] == 0

    def test_clique_present_sum(self, rng):
        matrix, adj = random_packed_graph(rng)
        for __ in range(5):
            mask = random_mask(rng)
            want = sum(
                (adj[u] & mask).bit_count()
                for u in bnp.mask_to_indices(mask, WORDS)
            )
            assert native.clique_present_sum(matrix, mask) == want
            assert bnp.clique_present_sum(matrix, mask) == want

    def test_mcs_queue_parity(self, rng):
        ranks = [int(x) for x in rng.permutation(N)]
        q_native = native.NativeMCSQueue((1 << N) - 1, ranks, WORDS)
        q_numpy = bnp.PackedMCSQueue((1 << N) - 1, ranks, WORDS)
        for __ in range(N):
            bump = random_mask(rng)
            q_native.bump_mask(bump)
            q_numpy.bump_mask(bump)
            assert q_native.pop_max() == q_numpy.pop_max()


# ----------------------------------------------------------------------
# NativeGraphCore end to end
# ----------------------------------------------------------------------


@requires_native
class TestNativeCoreEnumeration:
    def _fills(self, graph, mode, limit=64):
        stream = enumerate_minimal_triangulations(graph, mode=mode)
        return sorted(
            frozenset(t.fill_edges)
            for t in itertools.islice(stream, limit)
        )

    @pytest.mark.parametrize("mode", ["UG", "UP"])
    def test_enumeration_matches_numpy_core(self, mode):
        for g in small_random_graphs(6, max_nodes=9, seed=63):
            native_g = convert_graph(g, "native")
            numpy_g = convert_graph(g, "numpy")
            assert type(native_g.core).__name__ == "NativeGraphCore"
            assert self._fills(native_g, mode) == self._fills(numpy_g, mode)

    def test_core_batch_methods_match_numpy(self, rng):
        g = gnp_random_graph(80, 0.2, seed=9)
        native_core = convert_graph(g, "native").core
        numpy_core = convert_graph(g, "numpy").core
        mask = random_mask(rng, 80) & native_core.alive
        assert native_core.neighborhood_of_set(
            mask
        ) == numpy_core.neighborhood_of_set(mask)
        assert native_core.missing_pair_count(
            mask
        ) == numpy_core.missing_pair_count(mask)
        seed = 1 << (mask.bit_length() - 1) if mask else 1
        assert native_core.expand_component(
            seed, native_core.alive
        ) == numpy_core.expand_component(seed, numpy_core.alive)
        assert native_core.saturate(mask) == numpy_core.saturate(mask)
        assert native_core.adj == numpy_core.adj

    def test_derived_graphs_keep_native_core(self):
        core = convert_graph(gnp_random_graph(20, 0.3, seed=2), "native").core
        native_cls = GRAPH_BACKENDS["native"]
        assert type(core.copy()) is native_cls
        assert type(core.subgraph(core.alive >> 2)) is native_cls
        assert type(core.complement()) is native_cls


# ----------------------------------------------------------------------
# Selection, fallback, worker rebuild
# ----------------------------------------------------------------------


@pytest.fixture
def native_load_failure(monkeypatch):
    """Force the extension-unavailable path, restoring state afterwards."""

    def broken_load():
        raise RuntimeError("simulated load failure")

    monkeypatch.setattr(native, "_try_load", broken_load)
    native._reset()
    yield
    monkeypatch.undo()
    native._reset()


class TestSelectionAndFallback:
    def test_registry_has_native(self):
        assert "native" in GRAPH_BACKENDS
        assert issubclass(GRAPH_BACKENDS["native"], NumpyGraphCore)

    def test_unknown_backend_error_lists_native(self):
        with pytest.raises(ValueError, match="native"):
            select_core_class(10, "nativ")

    @requires_native
    def test_auto_prefers_native_above_threshold(self):
        assert select_core_class(NUMPY_THRESHOLD) is GRAPH_BACKENDS["native"]
        assert select_core_class(NUMPY_THRESHOLD - 1) is IndexedGraph

    def test_load_failure_degrades_selection(self, native_load_failure):
        assert not native.available()
        assert select_core_class(NUMPY_THRESHOLD) is NumpyGraphCore
        assert select_core_class(10, "native") is NumpyGraphCore
        g = convert_graph(gnp_random_graph(12, 0.3, seed=1), "native")
        assert type(g.core) is NumpyGraphCore

    def test_load_failure_degrades_kernel_namespace(self, native_load_failure):
        core = GRAPH_BACKENDS["native"](8)
        assert kernels_for(core) is bnp
        info = native.kernel_info()
        assert info["available"] is False
        assert "simulated load failure" in info["reason"]

    def test_disable_env_degrades(self, monkeypatch):
        monkeypatch.setenv(native.DISABLE_ENV, "1")
        native._reset()
        try:
            assert not native.available()
            assert select_core_class(10, "native") is NumpyGraphCore
        finally:
            monkeypatch.undo()
            native._reset()

    def test_kernels_for_defaults_to_numpy_module(self):
        assert kernels_for(IndexedGraph(4)) is bnp
        assert kernels_for(NumpyGraphCore(4)) is bnp


class TestWorkerRebuild:
    @requires_native
    def test_payload_carries_native_backend_name(self):
        g = convert_graph(gnp_random_graph(25, 0.4, seed=6), "native")
        payload = make_payload(g, "mcs_m")
        assert payload.backend == "native"

    @requires_native
    def test_inline_rebuild_on_native_core(self):
        g = convert_graph(gnp_random_graph(25, 0.4, seed=6), "native")
        runner = InlineRunner(make_payload(g, "mcs_m"))
        core = runner._state.graph.core
        assert type(core) is GRAPH_BACKENDS["native"]
        assert core.adj == g.core.adj
        assert core._packed is not None

    @requires_native
    def test_shared_memory_rebuild_on_native_core(self):
        g = convert_graph(gnp_random_graph(30, 0.3, seed=8), "native")
        payload = make_payload(g, "mcs_m")
        matrix = np.frombuffer(payload.packed, dtype=np.dtype("<u8")).reshape(
            payload.rows, payload.words
        )
        try:
            owner = SharedPackedBuffer.create(matrix)
        except (FileNotFoundError, OSError):
            pytest.skip("shared memory not available")
        try:
            shm_payload = type(payload)(
                labels=payload.labels,
                alive=payload.alive,
                num_edges=payload.num_edges,
                triangulator=payload.triangulator,
                backend=payload.backend,
                rows=payload.rows,
                words=payload.words,
                shm_name=owner.name,
            )
            rebuilt, buffer = _rebuild_graph(shm_payload)
            try:
                core = rebuilt.core
                assert type(core) is GRAPH_BACKENDS["native"]
                assert core.adj == g.core.adj
                # Zero-copy: the mirror is the shared mapping itself.
                assert core._packed is buffer.matrix
                assert not core._packed.flags.writeable
            finally:
                if buffer is not None:
                    core = None
                    rebuilt = None
                    buffer.close()
        finally:
            owner.unlink()

    def test_native_payload_rebuilds_on_numpy_without_extension(
        self, native_load_failure
    ):
        # A payload recorded by a native coordinator still rebuilds in
        # a worker whose extension cannot load.
        g = convert_graph(gnp_random_graph(25, 0.4, seed=6), "numpy")
        payload = make_payload(g, "mcs_m")
        payload = type(payload)(
            labels=payload.labels,
            alive=payload.alive,
            num_edges=payload.num_edges,
            triangulator=payload.triangulator,
            backend="native",
            rows=payload.rows,
            words=payload.words,
            packed=payload.packed,
        )
        rebuilt, __ = _rebuild_graph(payload)
        assert type(rebuilt.core) is NumpyGraphCore
        assert rebuilt.core.adj == g.core.adj


# ----------------------------------------------------------------------
# Compile-cache hygiene
# ----------------------------------------------------------------------


@requires_native
class TestBuildCache:
    def test_fingerprint_covers_source_and_compiler(self):
        a = native.build_fingerprint("gcc 12")
        b = native.build_fingerprint("gcc 13")
        assert a != b
        assert a == native.build_fingerprint("gcc 12")

    @staticmethod
    def _probe(tmp_path):
        """Run ``available()`` in a fresh interpreter against ``tmp_path``.

        A subprocess is essential here: corrupting a ``.so`` that this
        process already has dlopen'd would truncate the inode backing
        the live mapping (SIGBUS), and ``dlopen`` caches by pathname —
        the corrupt-artefact recovery is defined for a *fresh* process
        finding a bad file, so that is what gets exercised.
        """
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env[native.BUILD_DIR_ENV] = str(tmp_path)
        env.pop(native.DISABLE_ENV, None)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.graph._native import native;"
                "print(native.available())",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout.strip() == "True"

    def test_scratch_build_dir_builds_once(self, tmp_path):
        assert self._probe(tmp_path)
        artifacts = list(tmp_path.glob("kernels-*.so"))
        assert len(artifacts) == 1
        mtime = artifacts[0].stat().st_mtime_ns
        # Second load finds the cached artefact — no rebuild.
        assert self._probe(tmp_path)
        assert artifacts[0].stat().st_mtime_ns == mtime

    def test_corrupt_artifact_triggers_clean_rebuild(self, tmp_path):
        assert self._probe(tmp_path)
        (artifact,) = tmp_path.glob("kernels-*.so")
        artifact.write_bytes(b"not a shared library")
        assert self._probe(tmp_path)
        assert artifact.read_bytes() != b"not a shared library"

    def test_stale_artifacts_swept_on_rebuild(self, tmp_path):
        assert self._probe(tmp_path)
        (artifact,) = tmp_path.glob("kernels-*.so")
        stale = artifact.with_name("kernels-deadbeefdeadbeef.so")
        stale.write_bytes(b"stale")
        artifact.unlink()
        assert self._probe(tmp_path)
        assert artifact.exists()
        assert not stale.exists()

    def test_random_seed_does_not_leak(self):
        # The module must not touch the global random state.
        random.seed(3)
        before = random.random()
        random.seed(3)
        native.kernel_info()
        assert random.random() == before
