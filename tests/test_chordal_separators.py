"""Unit tests for minimal separators of chordal graphs (S9)."""

from __future__ import annotations

import pytest

from helpers import small_chordal_graphs
from repro.chordal.chordal_separators import minimal_separators_of_chordal
from repro.chordal.minimal_separators import all_minimal_separators
from repro.errors import NotChordalError
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_k_tree,
    star_graph,
)
from repro.graph.graph import Graph


class TestAgainstGeneralEnumerator:
    def test_matches_general_enumeration(self):
        # The clique-forest extraction must agree with the
        # Berry-Bordat-Cogis enumerator on every chordal graph.
        for g in small_chordal_graphs(40, max_nodes=12):
            assert minimal_separators_of_chordal(g) == all_minimal_separators(g)

    def test_disconnected_includes_empty(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        seps = minimal_separators_of_chordal(g)
        assert frozenset() in seps
        assert seps == all_minimal_separators(g)


class TestKnownFamilies:
    def test_path(self):
        seps = minimal_separators_of_chordal(path_graph(5))
        assert seps == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_complete_graph(self):
        assert minimal_separators_of_chordal(complete_graph(4)) == set()

    def test_star(self):
        assert minimal_separators_of_chordal(star_graph(5)) == {frozenset({0})}

    def test_triangle(self):
        assert minimal_separators_of_chordal(cycle_graph(3)) == set()

    def test_k_tree_separator_sizes(self):
        # Every minimal separator of a k-tree has exactly k nodes.
        g = random_k_tree(10, 3, seed=2)
        seps = minimal_separators_of_chordal(g)
        assert seps
        assert all(len(s) == 3 for s in seps)

    def test_rose_bound(self):
        # Rose: a chordal graph has fewer minimal separators than nodes.
        for g in small_chordal_graphs(30, max_nodes=12, seed=3):
            if g.num_nodes:
                assert len(minimal_separators_of_chordal(g)) < g.num_nodes

    def test_non_chordal_raises(self):
        with pytest.raises(NotChordalError):
            minimal_separators_of_chordal(cycle_graph(5))

    def test_empty_graph(self):
        assert minimal_separators_of_chordal(Graph()) == set()
