"""Supervised execution: chaos injection, quarantine, watchdog, salvage.

Four layers of coverage for the failure model:

* **Protocol units** — tagged-frame CRC round trips, BATCH_FAILED
  encode/decode, liveness-config validation.
* **Fault machinery units** — chaos spec parsing and the determinism
  of the injected schedules, watchdog deadline/RSS breaches, the
  retry → split-in-half → quarantine ladder of the coordinator, and
  checkpoint CRC salvage across generations (every-prefix truncation).
* **End-to-end fault injection** — poison batches on the process pool
  (cooperative abort and hard kill) and watchdog breaches over real
  TCP workers; the final answer set must equal the serial reference
  every time, with the salvage visible in the statistics.
* **Chaos soak** — seeded schedules of frame drops/dups/corruption/
  resets/delays driven through the full coordinator/worker stack in
  both printing modes, asserting exact answer-set equality vs serial.
"""

from __future__ import annotations

import functools
import json
import pickle
import socket
import threading
import time
from concurrent.futures import Future

import pytest

pytest.importorskip("numpy")

from repro.chordal.minimal_separators import minimal_separator_masks
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.engine import EngineError, EnumerationEngine, EnumerationJob
from repro.engine.base import BatchFailedError, WireDecodeError
from repro.engine.checkpoint import (
    CheckpointIntegrityError,
    CheckpointManager,
)
from repro.engine.coordinator import MISCoordinator, _Inflight
from repro.engine.distributed import DistributedBackend, protocol
from repro.engine.distributed.chaos import ChaosInjector, ChaosSpec
from repro.engine.distributed.worker import WorkerConfig, run_worker
from repro.engine.pool import InlineRunner, WorkerState, make_payload
from repro.engine.watchdog import (
    BatchAbortedError,
    BatchFailure,
    BatchLimits,
    current_rss_bytes,
)
from repro.graph.generators import gnp_random_graph
from repro.sgr.enum_mis import EnumMISStatistics


def answer_set(triangulations) -> set[frozenset]:
    return {frozenset(t.fill_edges) for t in triangulations}


def serial_answers(graph, **kwargs) -> set[frozenset]:
    return answer_set(enumerate_minimal_triangulations(graph, **kwargs))


def region_coordinator(graph, runner, **kwargs) -> MISCoordinator:
    return MISCoordinator(graph, graph.core.alive, runner, **kwargs)


def inline_region_answers(graph) -> set[frozenset]:
    """Reference answer set (as separator-mask frozensets) of one region."""
    coordinator = region_coordinator(
        graph, InlineRunner(make_payload(graph, "mcs_m"))
    )
    return set(coordinator.stream())


def _entry(answers, directions, *, retries=0, from_split=False) -> _Inflight:
    return _Inflight(
        kind="pop",
        answers=tuple(answers),
        submitted_ns=0,
        sent_bytes=0,
        pairs=len(answers) * len(directions),
        directions=tuple(directions),
        retries=retries,
        from_split=from_split,
    )


def run_distributed(job, *, workers=2, spawn=None, worker_config=None,
                    **backend_kwargs):
    """Run ``job`` against real TCP workers (threads by default)."""
    config = worker_config if worker_config is not None else WorkerConfig(
        heartbeat_s=0.2, max_retries=5, connect_timeout_s=5.0
    )
    launched = []

    def on_listening(address):
        if spawn is not None:
            launched.extend(spawn(address))
            return
        for _ in range(workers):
            thread = threading.Thread(
                target=run_worker, args=(address, config), daemon=True
            )
            thread.start()
            launched.append(thread)

    backend = DistributedBackend(
        listen="127.0.0.1:0",
        expected_workers=workers,
        heartbeat_s=0.2,
        on_listening=on_listening,
        **backend_kwargs,
    )
    result = EnumerationEngine(backend).run(job)
    for item in launched:
        item.join(timeout=15)
    return result


# ----------------------------------------------------------------------
# Protocol units
# ----------------------------------------------------------------------


class TestTaggedFrames:
    def test_roundtrip(self):
        payload = protocol.pack_tagged(42, b"batch body bytes")
        batch_id, body = protocol.unpack_tagged(payload)
        assert batch_id == 42
        assert body == b"batch body bytes"

    def test_short_payload_rejected(self):
        with pytest.raises(WireDecodeError, match="shorter"):
            protocol.unpack_tagged(b"\x00\x01")

    def test_crc_mismatch_rejected(self):
        payload = bytearray(protocol.pack_tagged(7, b"some result data"))
        payload[-1] ^= 0x40  # flip one body bit
        with pytest.raises(WireDecodeError, match="CRC"):
            protocol.unpack_tagged(bytes(payload))

    def test_batch_failed_roundtrip(self):
        data = protocol.encode_batch_failed(9, "deadline", 1.5, 1 << 20)
        assert protocol.decode_batch_failed(data) == (
            9, "deadline", 1.5, 1 << 20,
        )

    def test_batch_failed_malformed_body_rejected(self):
        data = protocol.pack_tagged(
            3, protocol.encode_json({"reason": "rss"})  # missing fields
        )
        with pytest.raises(WireDecodeError, match="BATCH_FAILED"):
            protocol.decode_batch_failed(data)


class TestLivenessValidation:
    def test_rejects_nonpositive_heartbeat(self):
        with pytest.raises(EngineError, match="heartbeat"):
            protocol.validate_liveness_config(0.0, None)

    def test_rejects_nonpositive_miss_threshold(self):
        with pytest.raises(EngineError, match="threshold"):
            protocol.validate_liveness_config(1.0, None, 0.0)

    def test_rejects_pending_timeout_at_or_below_heartbeat(self):
        with pytest.raises(EngineError, match="exceed the heartbeat"):
            protocol.validate_liveness_config(2.0, 2.0)
        protocol.validate_liveness_config(2.0, 2.1)  # boundary passes

    def test_backend_validates_at_construction(self):
        with pytest.raises(EngineError, match="exceed the heartbeat"):
            DistributedBackend(
                listen="127.0.0.1:0", heartbeat_s=1.0, pending_timeout_s=0.5
            )


# ----------------------------------------------------------------------
# Chaos spec and injector units
# ----------------------------------------------------------------------


class TestChaosSpec:
    def test_parse(self):
        spec = ChaosSpec.parse("seed=7, drop=0.25, delay_ms=2")
        assert spec.seed == 7
        assert spec.drop == 0.25
        assert spec.delay_ms == 2.0
        assert spec.dup == ChaosSpec().dup  # untouched fields keep defaults

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(EngineError, match="nope"):
            ChaosSpec.parse("nope=1")

    def test_parse_rejects_non_numeric(self):
        with pytest.raises(EngineError, match="non-numeric"):
            ChaosSpec.parse("drop=often")

    def test_rates_validated(self):
        with pytest.raises(EngineError, match=r"\[0, 1\]"):
            ChaosSpec(drop=1.5)
        with pytest.raises(EngineError, match="delay_ms"):
            ChaosSpec(delay_ms=-1)

    def test_from_env_prefers_full_spec(self):
        spec = ChaosSpec.from_env(
            {"REPRO_CHAOS_SPEC": "seed=3,corrupt=0.5", "REPRO_CHAOS_SEED": "9"}
        )
        assert spec.seed == 3 and spec.corrupt == 0.5

    def test_from_env_seed_only(self):
        assert ChaosSpec.from_env({"REPRO_CHAOS_SEED": "0x10"}).seed == 16

    def test_from_env_bad_seed_is_typed(self):
        with pytest.raises(EngineError, match="REPRO_CHAOS_SEED"):
            ChaosSpec.from_env({"REPRO_CHAOS_SEED": "soon"})

    def test_from_env_absent(self):
        assert ChaosSpec.from_env({}) is None


class _FakeSocket:
    """Records sendall calls; serves canned bytes to recv."""

    def __init__(self, to_serve: bytes = b""):
        self.sent: list[bytes] = []
        self.to_serve = to_serve
        self.closed = False

    def sendall(self, data):
        self.sent.append(bytes(data))

    def recv(self, bufsize):
        chunk, self.to_serve = self.to_serve[:bufsize], self.to_serve[bufsize:]
        return chunk

    def shutdown(self, how):
        pass

    def close(self):
        self.closed = True

    def settimeout(self, value):
        pass


def _spec(**rates) -> ChaosSpec:
    """A spec with every fault off except the ones named (no delays)."""
    base = dict(seed=1, drop=0.0, dup=0.0, corrupt=0.0, reset=0.0,
                delay=0.0, delay_ms=0.0)
    base.update(rates)
    return ChaosSpec(**base)


class TestChaosInjection:
    FRAME = protocol.encode_frame(protocol.MSG_HEARTBEAT)

    def test_drop_swallows_the_frame(self):
        fake = _FakeSocket()
        ChaosInjector(_spec(drop=1.0)).wrap(fake).sendall(self.FRAME)
        assert fake.sent == []

    def test_dup_sends_twice(self):
        fake = _FakeSocket()
        ChaosInjector(_spec(dup=1.0)).wrap(fake).sendall(self.FRAME)
        assert fake.sent == [self.FRAME, self.FRAME]

    def test_corrupt_flips_exactly_one_byte(self):
        fake = _FakeSocket()
        ChaosInjector(_spec(corrupt=1.0)).wrap(fake).sendall(self.FRAME)
        (sent,) = fake.sent
        assert len(sent) == len(self.FRAME)
        assert sum(a != b for a, b in zip(sent, self.FRAME)) == 1

    def test_send_reset_closes_and_raises(self):
        fake = _FakeSocket()
        sock = ChaosInjector(_spec(reset=1.0)).wrap(fake)
        with pytest.raises(ConnectionResetError):
            sock.sendall(self.FRAME)
        assert fake.closed
        # At most a partial frame escaped before the cut.
        assert sum(len(chunk) for chunk in fake.sent) < len(self.FRAME)

    def test_recv_reset_closes_and_raises(self):
        fake = _FakeSocket(b"anything")
        sock = ChaosInjector(_spec(reset=1.0)).wrap(fake)
        with pytest.raises(ConnectionResetError):
            sock.recv(64)
        assert fake.closed

    def test_recv_corrupt_flips_one_byte(self):
        fake = _FakeSocket(b"hello, worker")
        chunk = ChaosInjector(_spec(corrupt=1.0)).wrap(fake).recv(64)
        assert len(chunk) == len(b"hello, worker")
        assert sum(a != b for a, b in zip(chunk, b"hello, worker")) == 1

    def test_same_seed_same_schedule(self):
        spec = _spec(seed=99, drop=0.4, dup=0.3, corrupt=0.2)
        transcripts = []
        for __ in range(2):
            fake = _FakeSocket()
            sock = ChaosInjector(spec).wrap(fake)
            for __ in range(32):
                sock.sendall(self.FRAME)
            transcripts.append(fake.sent)
        assert transcripts[0] == transcripts[1]

    def test_schedule_persists_across_reconnects(self):
        # One injector re-wrapped mid-run must continue its schedule,
        # not restart it from the seed.
        spec = _spec(seed=5, drop=0.5)
        continuous = _FakeSocket()
        sock = ChaosInjector(spec).wrap(continuous)
        for __ in range(16):
            sock.sendall(self.FRAME)

        injector = ChaosInjector(spec)
        first, second = _FakeSocket(), _FakeSocket()
        wrapped = injector.wrap(first)
        for __ in range(8):
            wrapped.sendall(self.FRAME)
        wrapped = injector.wrap(second)  # "reconnect"
        for __ in range(8):
            wrapped.sendall(self.FRAME)
        assert first.sent + second.sent == continuous.sent


class TestChaosFrameTypeCoverage:
    """Every protocol frame type gets a chaos schedule.

    The `protocol-dispatch` analyze rule proves this statically (the
    injector derives streams from the frame-type byte, so coverage
    holds by construction); this test pins the runtime half: for every
    ``MSG_*`` the protocol exports, ``send_stream`` yields a
    deterministic stream that is stable within an injector,
    reproducible across same-seed injectors, and independent between
    frame types.
    """

    def msg_constants(self) -> dict[str, int]:
        return {
            name: getattr(protocol, name)
            for name in protocol.__all__
            if name.startswith("MSG_")
        }

    def test_every_exported_frame_type_has_a_schedule(self):
        constants = self.msg_constants()
        assert len(constants) >= 11  # the full conversation, not a subset
        injector = ChaosInjector(_spec(seed=21, drop=0.5))
        streams = {
            name: injector.send_stream(value)
            for name, value in constants.items()
        }
        # Stable: the injector keeps one stream per frame type alive
        # for its whole lifetime (schedules survive reconnects).
        for name, value in constants.items():
            assert injector.send_stream(value) is streams[name]

    def test_schedules_deterministic_and_type_independent(self):
        constants = self.msg_constants()
        draws = {}
        for name, value in constants.items():
            a = ChaosInjector(_spec(seed=21)).send_stream(value)
            b = ChaosInjector(_spec(seed=21)).send_stream(value)
            first = tuple(a.random() for __ in range(4))
            assert first == tuple(b.random() for __ in range(4))
            draws[name] = first
        # Independent: no two frame types share a schedule, so a fault
        # pattern tuned to heartbeats cannot shadow batch traffic.
        assert len(set(draws.values())) == len(draws)


# ----------------------------------------------------------------------
# Watchdog units
# ----------------------------------------------------------------------


def _one_pair_batch(graph):
    direction = next(iter(minimal_separator_masks(graph)))
    return (graph.core.alive, [((), (direction,))])


class TestWatchdog:
    def test_limits_validated(self):
        with pytest.raises(EngineError, match="deadline"):
            BatchLimits(deadline_s=0)
        with pytest.raises(EngineError, match="rss"):
            BatchLimits(rss_limit_bytes=-5)

    def test_limits_from_cli(self):
        assert BatchLimits.from_cli(None, None) is None
        limits = BatchLimits.from_cli(30.0, 64.0)
        assert limits.deadline_s == 30.0
        assert limits.rss_limit_bytes == 64 * (1 << 20)
        assert limits.enabled
        assert not BatchLimits().enabled

    def test_current_rss_is_observable(self):
        assert current_rss_bytes() > 0

    def test_deadline_breach_aborts_and_frees_scratch(self):
        graph = gnp_random_graph(8, 0.5, seed=7)
        state = WorkerState(
            make_payload(graph, "mcs_m"),
            limits=BatchLimits(deadline_s=1e-9),
        )
        with pytest.raises(BatchAbortedError) as excinfo:
            state.run_batch(_one_pair_batch(graph))
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.elapsed_s >= 0
        # The abort path must drop the scratch caches the batch grew.
        assert not state._regions

    def test_rss_breach_aborts(self):
        graph = gnp_random_graph(8, 0.5, seed=7)
        state = WorkerState(
            make_payload(graph, "mcs_m"),
            limits=BatchLimits(rss_limit_bytes=1),
        )
        with pytest.raises(BatchAbortedError) as excinfo:
            state.run_batch(_one_pair_batch(graph))
        assert excinfo.value.reason == "rss"
        assert excinfo.value.peak_rss > 1

    def test_generous_limits_do_not_interfere(self):
        graph = gnp_random_graph(8, 0.5, seed=7)
        payload = make_payload(graph, "mcs_m")
        batch = _one_pair_batch(graph)
        bounded = WorkerState(
            payload,
            limits=BatchLimits(deadline_s=300.0, rss_limit_bytes=1 << 40),
        )
        unbounded = WorkerState(payload)
        out, __, __ = bounded.run_batch(batch)
        expected, __, __ = unbounded.run_batch(batch)
        assert out == expected

    def test_batch_failure_pickles(self):
        failure = BatchFailure("rss", 1.25, 12345)
        assert pickle.loads(pickle.dumps(failure)) == failure


# ----------------------------------------------------------------------
# The quarantine ladder (retry → split in half → serial salvage)
# ----------------------------------------------------------------------


class _PoisonRunner:
    """Inline runner that fails any batch carrying the poison answer.

    Failures surface exactly like the distributed transport's
    exhausted-retry error, so the coordinator must split and then
    quarantine — a plain redispatch would fail forever.
    """

    workers = 1
    wire_format = "plain"

    def __init__(self, payload, poison: frozenset):
        self._inner = InlineRunner(payload)
        self._poison = poison
        self.failed_sizes: list[int] = []

    def submit(self, batch):
        region_mask, jobs = batch
        answers = [frozenset(masks) for masks, __ in jobs]
        if self._poison in answers:
            self.failed_sizes.append(len(answers))
            future: Future = Future()
            future.set_exception(
                BatchFailedError(
                    "injected transport failure",
                    reason="injected-poison",
                    exhausted=True,
                )
            )
            return future
        return self._inner.submit(batch)

    def close(self):
        self._inner.close()


class TestQuarantineLadder:
    GRAPH = gnp_random_graph(8, 0.5, seed=3)  # 7 answers in this region

    def _coordinator(self, **kwargs) -> MISCoordinator:
        return region_coordinator(
            self.GRAPH,
            InlineRunner(make_payload(self.GRAPH, "mcs_m")),
            **kwargs,
        )

    def _sample_answers(self, count: int) -> list[frozenset]:
        return sorted(inline_region_answers(self.GRAPH), key=sorted)[:count]

    def test_retry_preserves_lineage(self):
        coordinator = self._coordinator(max_batch_retries=2)
        answers = self._sample_answers(2)
        directions = (next(iter(minimal_separator_masks(self.GRAPH))),)
        out = coordinator._handle_failure(
            _entry(answers, directions), "worker process died",
            exhausted=False,
        )
        assert out == []
        (redispatched,) = coordinator._inflight.values()
        assert redispatched.answers == tuple(answers)
        assert redispatched.retries == 1
        assert not redispatched.from_split
        assert coordinator._stats.batch_retries == 1
        assert coordinator._stats.batches_quarantined == 0

    def test_exhausted_batch_splits_in_half_once(self):
        coordinator = self._coordinator(max_batch_retries=3)
        answers = self._sample_answers(4)
        directions = (next(iter(minimal_separator_masks(self.GRAPH))),)
        out = coordinator._handle_failure(
            _entry(answers, directions), "deadline", exhausted=True
        )
        assert out == []
        halves = sorted(
            coordinator._inflight.values(), key=lambda e: sorted(e.answers)
        )
        assert sorted(len(h.answers) for h in halves) == [2, 2]
        assert {a for h in halves for a in h.answers} == set(answers)
        for half in halves:
            # Halves carry a spent retry budget: a failing half goes
            # straight to quarantine instead of splitting again.
            assert half.from_split
            assert half.retries == 3
        assert coordinator._stats.batch_retries == 1

    def test_failed_half_is_quarantined_and_salvaged(self):
        coordinator = self._coordinator(max_batch_retries=1)
        (answer,) = self._sample_answers(1)
        directions = tuple(
            sorted(minimal_separator_masks(self.GRAPH))[:2]
        )
        entry = _entry([answer], directions, retries=1, from_split=True)
        with pytest.warns(RuntimeWarning, match="quarantin"):
            salvaged = coordinator._handle_failure(
                entry, "rss", exhausted=False
            )
        stats = coordinator._stats
        assert stats.batches_quarantined == 1
        assert stats.poison_answers == 1
        # The salvage re-drove the pairs serially: the recovered
        # answers are exactly what an inline runner computes.
        out, __, __ = InlineRunner(
            make_payload(self.GRAPH, "mcs_m")
        ).submit(
            (self.GRAPH.core.alive, [(tuple(sorted(answer)), directions)])
        ).result()
        assert set(salvaged) == {frozenset(masks) for masks in out}

    def test_quarantine_budget_breach_is_typed(self):
        coordinator = self._coordinator(
            max_batch_retries=0, quarantine_budget_s=1e-9
        )
        (answer,) = self._sample_answers(1)
        directions = (next(iter(minimal_separator_masks(self.GRAPH))),)
        entry = _entry([answer], directions, from_split=True)
        with pytest.warns(RuntimeWarning, match="quarantin"):
            with pytest.raises(EngineError, match="salvaged"):
                coordinator._handle_failure(entry, "deadline", exhausted=True)

    def test_poisoned_stream_still_enumerates_exactly(self):
        expected = inline_region_answers(self.GRAPH)
        poison = sorted(expected, key=sorted)[-1]
        runner = _PoisonRunner(make_payload(self.GRAPH, "mcs_m"), poison)
        coordinator = region_coordinator(
            self.GRAPH, runner, max_batch_retries=1
        )
        with pytest.warns(RuntimeWarning, match="quarantin"):
            got = set(coordinator.stream())
        assert got == expected
        assert runner.failed_sizes  # the poison actually fired
        stats = coordinator._stats
        assert stats.batches_quarantined >= 1
        assert stats.poison_answers >= 1


# ----------------------------------------------------------------------
# End-to-end fault injection (pool and TCP fleet)
# ----------------------------------------------------------------------


@pytest.mark.slow
class TestPoolPoisonQuarantine:
    @pytest.mark.parametrize("mode", ["fail", "kill"])
    def test_poisoned_pool_run_matches_serial(self, monkeypatch, mode):
        graph = gnp_random_graph(10, 0.4, seed=5)
        expected = serial_answers(graph)
        poison = next(iter(minimal_separator_masks(graph)))
        monkeypatch.setenv("REPRO_CHAOS_POISON", str(poison))
        monkeypatch.setenv("REPRO_CHAOS_POISON_MODE", mode)
        with pytest.warns(RuntimeWarning, match="quarantin"):
            result = EnumerationEngine("sharded", workers=2).run(
                EnumerationJob(graph, max_batch_retries=0)
            )
        assert answer_set(result.triangulations) == expected
        assert result.stats.batches_quarantined >= 1
        assert result.stats.poison_answers >= 1
        assert "quarantined" in result.summary()


@pytest.mark.slow
class TestDistributedSupervision:
    def test_worker_deadline_breach_salvaged_over_wire(self):
        # Every batch breaches the (absurd) deadline, so every answer
        # is recovered through BATCH_FAILED → quarantine → serial
        # salvage; the enumeration must still be exact.
        graph = gnp_random_graph(8, 0.5, seed=7)
        expected = serial_answers(graph)
        config = WorkerConfig(
            heartbeat_s=0.2,
            max_retries=20,
            connect_timeout_s=5.0,
            backoff_base_s=0.01,
            backoff_cap_s=0.05,
            limits=BatchLimits(deadline_s=1e-6),
        )
        with pytest.warns(RuntimeWarning, match="quarantin"):
            result = run_distributed(
                EnumerationJob(graph, max_batch_retries=0),
                worker_config=config,
                max_batch_retries=0,
            )
        assert answer_set(result.triangulations) == expected
        assert result.stats.batches_quarantined >= 1

    def test_protocol_rejections_counted_and_logged_once(self, capfd):
        from repro.engine.distributed.runner import DistributedRunner

        graph = gnp_random_graph(6, 0.5, seed=2)
        stats = EnumMISStatistics()
        runner = DistributedRunner(
            make_payload(graph, "mcs_m"), ("127.0.0.1", 0), stats=stats
        )
        try:
            for __ in range(2):
                with socket.create_connection(
                    runner.address, timeout=5
                ) as sock:
                    hello = protocol.encode_json(
                        {"magic": protocol.MAGIC, "protocol": 999,
                         "wire_formats": ["packed"]}
                    )
                    protocol.send_frame(sock, protocol.MSG_HELLO, hello)
                    frame = protocol.recv_frame(sock)
                    assert frame.msg_type == protocol.MSG_ERROR
            deadline = time.monotonic() + 5
            while stats.protocol_rejections < 2:
                assert time.monotonic() < deadline, stats.protocol_rejections
                time.sleep(0.01)
        finally:
            runner.close()
        assert stats.protocol_rejections == 2
        # The same host is logged once, not per attempt.
        err = capfd.readouterr().err
        assert err.count("rejected worker handshake") == 1


# ----------------------------------------------------------------------
# Chaos soak: seeded fault schedules through the full TCP stack
# ----------------------------------------------------------------------


_SOAK_GRAPH = gnp_random_graph(8, 0.45, seed=3)


@functools.lru_cache(maxsize=None)
def _soak_expected(mode: str) -> frozenset:
    return frozenset(serial_answers(_SOAK_GRAPH, mode=mode))


@pytest.mark.slow
class TestChaosSoak:
    @pytest.mark.parametrize("mode", ["UG", "UP"])
    @pytest.mark.parametrize("seed", range(10))
    def test_chaotic_fleet_matches_serial(self, seed, mode):
        def spawn(address):
            threads = []
            for index in range(2):
                spec = ChaosSpec(
                    seed=seed * 1000 + index,
                    drop=0.05, dup=0.05, corrupt=0.05, reset=0.02,
                    delay=0.1, delay_ms=1.0,
                )
                config = WorkerConfig(
                    heartbeat_s=0.2,
                    max_retries=100,
                    connect_timeout_s=5.0,
                    backoff_base_s=0.01,
                    backoff_cap_s=0.05,
                    chaos=ChaosInjector(spec),
                )
                thread = threading.Thread(
                    target=run_worker, args=(address, config), daemon=True
                )
                thread.start()
                threads.append(thread)
            return threads

        result = run_distributed(
            EnumerationJob(_SOAK_GRAPH, mode=mode),
            spawn=spawn,
            batch_timeout_s=1.0,
        )
        assert answer_set(result.triangulations) == set(
            _soak_expected(mode)
        ), (seed, mode)


# ----------------------------------------------------------------------
# Checkpoint CRC salvage (generation rotation, truncation, resume)
# ----------------------------------------------------------------------


class TestCheckpointSalvage:
    GRAPH = gnp_random_graph(9, 0.4, seed=13)

    def _seeded(self, tmp_path):
        """A checkpointed partial run leaving both generations on disk."""
        path = tmp_path / "state.ckpt"
        first = EnumerationEngine("serial").run(
            EnumerationJob(
                self.GRAPH,
                checkpoint_path=path,
                checkpoint_every=1,
                max_results=4,
            )
        )
        fingerprint = json.loads(path.read_text())["fingerprint"]
        manager = CheckpointManager(path, fingerprint)
        assert manager.previous_path.exists()
        return path, manager, first

    def test_rotation_keeps_previous_generation_intact(self, tmp_path):
        path, manager, __ = self._seeded(tmp_path)
        document = manager.load_document()  # newest, silently
        previous = manager._read_document(manager.previous_path)
        assert document.regions and previous.regions

    def test_every_prefix_truncation_salvages_previous(self, tmp_path):
        path, manager, __ = self._seeded(tmp_path)
        newest = path.read_bytes()
        previous = manager._read_document(manager.previous_path)
        for cut in range(len(newest)):
            path.write_bytes(newest[:cut])
            with pytest.warns(RuntimeWarning, match="damaged"):
                document = manager.load_document()
            assert document.delivered == previous.delivered, cut
            assert (
                document.regions[0].yielded == previous.regions[0].yielded
            ), cut
        path.write_bytes(newest)  # restored: loads silently again
        manager.load_document()

    def test_every_prefix_truncation_of_both_is_typed(self, tmp_path):
        path, manager, __ = self._seeded(tmp_path)
        newest = path.read_bytes()
        older = manager.previous_path.read_bytes()
        for cut in range(min(len(newest), len(older))):
            path.write_bytes(newest[:cut])
            manager.previous_path.write_bytes(older[:cut])
            with pytest.raises(CheckpointIntegrityError, match="no intact"):
                manager.load_document()

    def test_bit_flips_are_caught_by_the_crc(self, tmp_path):
        path, manager, __ = self._seeded(tmp_path)
        newest = bytearray(path.read_bytes())
        for index in range(0, len(newest), 97):
            flipped = bytearray(newest)
            flipped[index] ^= 0x20
            if bytes(flipped) == bytes(newest):  # pragma: no cover
                continue
            path.write_bytes(bytes(flipped))
            with pytest.warns(RuntimeWarning, match="damaged"):
                manager.load_document()

    def test_resume_after_truncation_never_loses_answers(self, tmp_path):
        expected = serial_answers(self.GRAPH)
        for cut_at in ("start", "middle", "end"):
            subdir = tmp_path / cut_at
            subdir.mkdir()
            path, __, first = self._seeded(subdir)
            newest = path.read_bytes()
            cut = {"start": 0, "middle": len(newest) // 2,
                   "end": len(newest) - 1}[cut_at]
            path.write_bytes(newest[:cut])
            with pytest.warns(RuntimeWarning, match="damaged"):
                rest = EnumerationEngine("serial").run(
                    EnumerationJob(
                        self.GRAPH, checkpoint_path=path, resume=True
                    )
                )
            got_first = answer_set(first.triangulations)
            got_rest = answer_set(rest.triangulations)
            # No loss: the union covers the full enumeration, and the
            # resumed half never duplicates itself internally.
            assert got_first | got_rest == expected, cut_at
            assert len(got_rest) == rest.count, cut_at

    def test_missing_newest_falls_back_to_previous(self, tmp_path):
        path, manager, __ = self._seeded(tmp_path)
        path.unlink()
        with pytest.warns(RuntimeWarning, match="damaged"):
            document = manager.load_document()
        assert document.regions
        # ... and a resume against only the previous generation works.
        with pytest.warns(RuntimeWarning, match="damaged"):
            rest = EnumerationEngine("serial").run(
                EnumerationJob(self.GRAPH, checkpoint_path=path, resume=True)
            )
        assert rest.completed
