"""Unit tests for the separator-graph SGR and Extend (S14–S15)."""

from __future__ import annotations

import pytest

from helpers import small_random_graphs
from repro.baselines.brute_force import brute_force_maximal_parallel_families
from repro.chordal.chordal_separators import minimal_separators_of_chordal
from repro.chordal.minimal_separators import (
    all_minimal_separators,
    are_crossing,
    is_pairwise_parallel,
)
from repro.chordal.sandwich import is_minimal_triangulation
from repro.core.extend import extend_parallel_set, minimal_triangulation_via
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.sgr.enum_mis import enumerate_maximal_independent_sets
from repro.sgr.separator_graph import MinimalSeparatorSGR


class TestSGRInterface:
    def test_nodes_are_minimal_separators(self):
        g = cycle_graph(5)
        sgr = MinimalSeparatorSGR(g)
        assert set(sgr.iter_nodes()) == all_minimal_separators(g)

    def test_edges_are_crossings(self):
        g = cycle_graph(6)
        sgr = MinimalSeparatorSGR(g)
        s, t = frozenset({0, 3}), frozenset({1, 4})
        assert sgr.has_edge(s, t) == are_crossing(g, s, t)
        assert sgr.has_edge(s, t)

    def test_properties(self):
        g = cycle_graph(4)
        sgr = MinimalSeparatorSGR(g, triangulator="lb_triang")
        assert sgr.graph is g
        assert sgr.triangulator.name == "lb_triang"

    def test_unknown_triangulator_rejected(self):
        with pytest.raises(ValueError):
            MinimalSeparatorSGR(cycle_graph(4), triangulator="nope")


class TestExtend:
    def test_empty_input_gives_maximal_family(self):
        for g in small_random_graphs(20, max_nodes=8, seed=601):
            family = extend_parallel_set(g, [])
            assert is_pairwise_parallel(g, family)
            families = brute_force_maximal_parallel_families(g)
            assert frozenset(family) in families

    def test_extension_contains_input(self):
        g = cycle_graph(6)
        phi = [frozenset({0, 2})]
        family = extend_parallel_set(g, phi)
        assert frozenset({0, 2}) in family
        assert is_pairwise_parallel(g, family)

    def test_extension_is_maximal(self):
        for g in small_random_graphs(15, max_nodes=7, seed=607):
            family = extend_parallel_set(g, [])
            for candidate in all_minimal_separators(g):
                if candidate in family:
                    continue
                # Adding any other separator must cross something.
                assert any(
                    are_crossing(g, candidate, member) for member in family
                )

    def test_all_triangulators_give_valid_extensions(self):
        g = grid_graph(3, 3)
        phi = []
        for name in ("mcs_m", "lb_triang", "min_fill", "min_degree", "complete"):
            family = extend_parallel_set(g, phi, triangulator=name)
            assert is_pairwise_parallel(g, family)
            assert family  # a 3x3 grid has separators

    def test_result_identifies_minimal_triangulation(self):
        # g[extend(phi)] must be a minimal triangulation whose minimal
        # separators are exactly the returned family (Thm 4.1).
        for g in small_random_graphs(12, max_nodes=7, seed=613):
            family = extend_parallel_set(g, [])
            saturated = g.saturated(family)
            assert is_minimal_triangulation(g, saturated)
            assert minimal_separators_of_chordal(saturated) == set(family)

    def test_chordal_graph_family_is_full_minsep(self):
        g = path_graph(5)
        family = extend_parallel_set(g, [])
        assert set(family) == all_minimal_separators(g)


class TestMinimalTriangulationVia:
    def test_minimal_for_all_backends(self):
        for name in ("mcs_m", "lb_triang", "min_fill", "natural", "complete"):
            for g in small_random_graphs(8, max_nodes=7, seed=617):
                filled = minimal_triangulation_via(g, name)
                assert is_minimal_triangulation(g, filled)


class TestEndToEndMIS:
    def test_families_match_brute_force(self):
        for g in small_random_graphs(15, max_nodes=7, seed=619):
            from repro.graph.components import is_connected

            if not is_connected(g):
                continue
            sgr = MinimalSeparatorSGR(g)
            produced = set(enumerate_maximal_independent_sets(sgr))
            assert produced == brute_force_maximal_parallel_families(g)
