"""Wire-format hardening: untrusted bytes must fail typed, never crash.

The distributed runner feeds :mod:`repro.engine.wire` bytes straight
off a TCP socket, so every decoder must treat its input as hostile:
truncation, bit flips, and adversarial length words raise
:class:`WireDecodeError` (a :class:`repro.engine.EngineError`), never
IndexError/ValueError surprises or multi-gigabyte allocations.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.engine.base import EngineError
from repro.engine.wire import (
    MAX_WIRE_FIELD_BYTES,
    PackedBatch,
    PackedResult,
    WireDecodeError,
    batch_from_bytes,
    batch_to_bytes,
    decode_batch,
    decode_result,
    encode_batch,
    encode_result,
    result_from_bytes,
    result_to_bytes,
    validate_batch,
    validate_result,
)
from repro.sgr.enum_mis import EnumMISStatistics


def _random_answers(rng: random.Random, words: int, count: int):
    limit = (1 << (64 * words)) - 1
    return [
        tuple(
            rng.randint(0, limit)
            for _ in range(rng.randint(0, 4))
        )
        for _ in range(count)
    ]


def _random_batch(rng: random.Random) -> PackedBatch:
    words = rng.randint(1, 3)
    answers = _random_answers(rng, words, rng.randint(0, 6))
    directions = tuple(
        rng.randint(0, (1 << (64 * words)) - 1)
        for _ in range(rng.randint(0, 3))
    )
    return encode_batch(rng.randint(0, (1 << 64) - 1), answers, directions, words)


def _random_result(rng: random.Random) -> PackedResult:
    words = rng.randint(1, 3)
    stats = EnumMISStatistics()
    stats.answers_extended = rng.randint(0, 100)
    stats.kernel_tiers["numpy"] = 1
    return encode_result(
        _random_answers(rng, words, rng.randint(0, 6)),
        words,
        rng.randint(0, 10**12),
        stats,
    )


class TestRoundTrip:
    def test_batch_bytes_round_trip_property(self):
        rng = random.Random(0xB17)
        for _ in range(50):
            batch = _random_batch(rng)
            again = batch_from_bytes(batch_to_bytes(batch))
            assert again == batch
            assert decode_batch(again) == decode_batch(batch)

    def test_result_bytes_round_trip_property(self):
        rng = random.Random(0x5EED)
        for _ in range(50):
            result = _random_result(rng)
            again = result_from_bytes(result_to_bytes(result))
            assert again.words == result.words
            assert again.table == result.table
            assert again.answer_refs == result.answer_refs
            assert again.answer_lens == result.answer_lens
            assert again.compute_ns == result.compute_ns
            assert decode_result(again) == decode_result(result)

    def test_result_stats_round_trip(self):
        stats = EnumMISStatistics()
        stats.answers_extended = 7
        stats.redundant_extensions["mcs_m"] = 3
        stats.kernel_tiers["native"] = 2
        result = encode_result([(1,)], 1, 42, stats)
        again = result_from_bytes(result_to_bytes(result))
        assert again.stats.snapshot() == stats.snapshot()

    def test_empty_batch_round_trips(self):
        batch = encode_batch(0, [], (), 1)
        assert batch_from_bytes(batch_to_bytes(batch)) == batch


class TestTruncationFuzz:
    """Every proper prefix and many random corruptions decode safely."""

    def test_batch_prefixes_raise_typed(self):
        data = batch_to_bytes(_random_batch(random.Random(1)))
        for cut in range(len(data)):
            with pytest.raises(WireDecodeError):
                batch_from_bytes(data[:cut])

    def test_result_prefixes_raise_typed(self):
        data = result_to_bytes(_random_result(random.Random(2)))
        for cut in range(len(data)):
            with pytest.raises(WireDecodeError):
                result_from_bytes(data[:cut])

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_random_corruption_never_escapes(self, seed):
        rng = random.Random(seed)
        base = batch_to_bytes(_random_batch(rng))
        for _ in range(300):
            data = bytearray(base)
            for _ in range(rng.randint(1, 8)):
                data[rng.randrange(len(data))] = rng.randrange(256)
            try:
                batch = batch_from_bytes(bytes(data))
                decode_batch(batch)  # decoding a valid-shaped batch is fine
            except WireDecodeError:
                pass  # the only acceptable failure mode

    def test_random_bytes_never_escape(self):
        rng = random.Random(6)
        for size in (0, 1, 7, 24, 25, 100, 4096):
            for _ in range(50):
                blob = bytes(rng.randrange(256) for _ in range(size))
                for decoder in (batch_from_bytes, result_from_bytes):
                    try:
                        decoder(blob)
                    except WireDecodeError:
                        pass


class TestAdversarialLengths:
    """A corrupt length word must not provoke a giant allocation."""

    def test_oversized_field_length_rejected(self):
        import struct

        huge = MAX_WIRE_FIELD_BYTES + 1
        header = struct.pack("!IIIIII", 1, 8, huge, 0, 0, 0)
        with pytest.raises(WireDecodeError, match="exceeds"):
            batch_from_bytes(header + b"\x00" * 64)

    def test_sum_overflowing_lengths_rejected(self):
        import struct

        # Each field under the cap, sum far beyond the actual payload.
        header = struct.pack(
            "!IIIIII", 1, 8, MAX_WIRE_FIELD_BYTES, MAX_WIRE_FIELD_BYTES, 0, 0
        )
        with pytest.raises(WireDecodeError):
            batch_from_bytes(header + b"\x00" * 128)


class TestValidation:
    def test_out_of_range_ref_rejected(self):
        batch = encode_batch(3, [(1, 2)], (1,), 1)
        bad = batch._replace(
            answer_refs=np.asarray([99], dtype="<u4").tobytes()
        )
        with pytest.raises(WireDecodeError, match="ref"):
            decode_batch(bad)

    def test_misaligned_refs_rejected(self):
        batch = encode_batch(3, [(1, 2)], (1,), 1)
        bad = batch._replace(answer_refs=batch.answer_refs + b"\x01")
        with pytest.raises(WireDecodeError):
            decode_batch(bad)

    def test_lens_sum_mismatch_rejected(self):
        batch = encode_batch(3, [(1, 2)], (1,), 1)
        bad = batch._replace(
            answer_lens=np.asarray([3], dtype="<u4").tobytes()
        )
        with pytest.raises(WireDecodeError):
            decode_batch(bad)

    def test_misaligned_table_rejected(self):
        batch = encode_batch(3, [(1, 2)], (1,), 1)
        bad = batch._replace(table=batch.table + b"\x00")
        with pytest.raises(WireDecodeError):
            validate_batch(bad)

    def test_zero_words_rejected(self):
        batch = encode_batch(3, [(1, 2)], (1,), 1)
        with pytest.raises(WireDecodeError, match="words"):
            validate_batch(batch._replace(words=0))

    def test_result_validation_mirrors_batch(self):
        result = encode_result([(1, 2)], 1, 0, EnumMISStatistics())
        bad = result._replace(
            answer_refs=np.asarray([7], dtype="<u4").tobytes()
        )
        with pytest.raises(WireDecodeError):
            validate_result(bad)

    def test_bad_stats_blob_rejected(self):
        result = encode_result([(1,)], 1, 0, EnumMISStatistics())
        data = bytearray(result_to_bytes(result))
        # Stats JSON is the trailing field; corrupt its first byte.
        data[-1] ^= 0xFF
        with pytest.raises(WireDecodeError):
            result_from_bytes(bytes(data))

    def test_wire_error_is_engine_error(self):
        assert issubclass(WireDecodeError, EngineError)
