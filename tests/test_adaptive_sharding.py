"""Tests for the sharded engine's data plane and scheduler (ISSUE 5).

Covers the adaptive cost-driven batcher (deterministic injected clock,
no wall-time dependence), the packed batch wire codec, the
shared-memory graph payload and its lifecycle (graceful close,
interrupt, killed worker), the stage timers, and the correctness
smoke that runs the scheduler at an aggressively tiny batch target
against the serial reference — the batch policy may never trade
answers for throughput.
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from helpers import small_random_graphs
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.engine import EngineError, EnumerationEngine, EnumerationJob, wire
from repro.engine.batching import AdaptiveBatcher
from repro.engine.pool import (
    GraphPayload,
    InlineRunner,
    PoolRunner,
    make_payload,
)
from repro.graph.bitset_np import SharedPackedBuffer, word_count
from repro.graph.generators import gnp_random_graph
from repro.sgr.enum_mis import EnumMISStatistics


def answer_set(triangulations) -> set[frozenset]:
    return {frozenset(t.fill_edges) for t in triangulations}


def serial_answers(graph, **kwargs) -> set[frozenset]:
    return answer_set(enumerate_minimal_triangulations(graph, **kwargs))


# ----------------------------------------------------------------------
# AdaptiveBatcher
# ----------------------------------------------------------------------


class FakeClock:
    """A deterministic nanosecond clock advanced by hand."""

    def __init__(self) -> None:
        self.ns = 0

    def __call__(self) -> int:
        return self.ns

    def advance_ms(self, ms: float) -> None:
        self.ns += int(ms * 1e6)


class TestAdaptiveBatcher:
    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError, match="target_ms"):
            AdaptiveBatcher(2, target_ms=0)

    def test_uses_injected_clock(self):
        clock = FakeClock()
        batcher = AdaptiveBatcher(2, clock=clock)
        assert batcher.now() == 0
        clock.advance_ms(5)
        assert batcher.now() == 5_000_000

    def test_bootstrap_sizes_match_static_policy(self):
        # Before any observation the batcher falls back to the
        # conservative static heuristic the adaptive policy replaced.
        serial = AdaptiveBatcher(1)
        assert serial.pop_chunk_size(100, 10) == 1
        pool = AdaptiveBatcher(4)
        assert pool.pop_chunk_size(100, 10) == 12  # 100 // (2*4)
        assert pool.pop_chunk_size(2, 10) == 1
        assert pool.barrier_chunk_size(1000) == 32
        assert pool.barrier_chunk_size(8) == 1

    def test_sizes_target_batch_duration(self):
        batcher = AdaptiveBatcher(2, target_ms=100)
        # 10 pairs took 10 ms of compute → 1 ms per pair.
        batcher.observe(pairs=10, compute_ns=10_000_000)
        assert batcher.pair_cost_ns == pytest.approx(1_000_000)
        # 5 directions → 5 ms per answer → 20 answers hit 100 ms.
        assert batcher.pop_chunk_size(1_000_000, directions=5) == 20
        # One direction per answer in a barrier → 100 answers.
        assert batcher.barrier_chunk_size(1_000_000) == 100

    def test_ewma_follows_cost_drift(self):
        batcher = AdaptiveBatcher(2, target_ms=100)
        batcher.observe(1, 1_000_000)
        first = batcher.pair_cost_ns
        for __ in range(50):
            batcher.observe(1, 4_000_000)
        assert batcher.pair_cost_ns > first
        assert batcher.pair_cost_ns == pytest.approx(4_000_000, rel=0.05)

    def test_zero_compute_does_not_explode_sizes(self):
        batcher = AdaptiveBatcher(2, target_ms=100)
        batcher.observe(pairs=64, compute_ns=0)
        # Cost floors at 1 ns → sizes hit the hard cap, not infinity.
        assert 1 <= batcher.pop_chunk_size(10**9, 1) <= 1024
        assert 1 <= batcher.barrier_chunk_size(10**9) <= 4096

    def test_stealable_work_cap(self):
        batcher = AdaptiveBatcher(4, target_ms=100)
        batcher.observe(pairs=1, compute_ns=1000)
        # The cost model alone would take everything; the cap leaves a
        # queue share per worker.
        assert batcher.pop_chunk_size(8, directions=1) == 2
        assert batcher.barrier_chunk_size(8) == 2
        # A single-worker batcher has nobody to steal for.
        solo = AdaptiveBatcher(1, target_ms=100)
        solo.observe(pairs=1, compute_ns=1000)
        assert solo.pop_chunk_size(8, directions=1) == 8

    def test_max_inflight(self):
        assert AdaptiveBatcher(1).max_inflight() == 1
        assert AdaptiveBatcher(4).max_inflight() == 12


# ----------------------------------------------------------------------
# Packed wire codec
# ----------------------------------------------------------------------


class TestWireCodec:
    def _random_answers(self, rng, pool, count):
        return [
            tuple(rng.sample(pool, rng.randint(1, min(8, len(pool)))))
            for __ in range(count)
        ]

    def test_batch_round_trip(self):
        rng = random.Random(7)
        words = word_count(2000)
        pool = [rng.getrandbits(2000) | 1 for __ in range(40)]
        answers = self._random_answers(rng, pool, 16)
        directions = tuple(rng.sample(pool, 12))
        batch = wire.encode_batch(123, answers, directions, words)
        region, got_answers, got_directions = wire.decode_batch(batch)
        assert region == 123
        assert got_answers == answers
        assert got_directions == directions

    def test_result_round_trip(self):
        rng = random.Random(9)
        words = word_count(200)
        pool = [rng.getrandbits(200) | 1 for __ in range(25)]
        answers = self._random_answers(rng, pool, 10)
        stats = EnumMISStatistics(extend_calls=10, extend_time_ns=555)
        result = wire.encode_result(answers, words, 777, stats)
        assert wire.decode_result(result) == answers
        assert result.compute_ns == 777
        assert result.stats.extend_time_ns == 555

    def test_empty_batch_and_result(self):
        batch = wire.encode_batch(0, [], (), 4)
        assert wire.decode_batch(batch) == (0, [], ())
        result = wire.encode_result([], 4, 0, EnumMISStatistics())
        assert wire.decode_result(result) == []

    def test_masks_are_interned_once(self):
        words = word_count(2000)
        mask = (1 << 1999) | (1 << 3) | 1
        answers = [(mask,)] * 50
        batch = wire.encode_batch(1, answers, (mask,), words)
        # 50 answer references + 1 direction reference, but one table row.
        assert len(batch.table) == words * 8
        assert len(batch.answer_refs) == 50 * 4
        assert len(batch.direction_refs) == 4

    def test_payload_shrinks_vs_pickled_ints(self):
        # The acceptance-criterion shape at n = 2000 (the exact
        # simulation microbench_parallel.py records — both sides use
        # wire.reference_batch/legacy_batch): answers overlap heavily
        # and the direction set is shared, so the interned packed
        # format must undercut per-reference pickled big ints by at
        # least 4x.
        import pickle

        answers, directions, words = wire.reference_batch(2000)
        packed = wire.encode_batch(1, answers, directions, words)
        packed_bytes = len(pickle.dumps(packed))
        legacy_bytes = len(
            pickle.dumps(wire.legacy_batch(1, answers, directions, words))
        )
        assert legacy_bytes >= 4 * packed_bytes


# ----------------------------------------------------------------------
# Graph payloads and worker rebuild
# ----------------------------------------------------------------------


class TestGraphPayload:
    def test_payload_is_packed_not_int_masks(self):
        g = gnp_random_graph(20, 0.4, seed=3)
        payload = make_payload(g, "mcs_m")
        assert payload.adj is None
        assert payload.packed is not None
        assert payload.rows == len(g.core.adj)

    def test_inline_rebuild_round_trips_graph(self):
        g = gnp_random_graph(20, 0.4, seed=3)
        runner = InlineRunner(make_payload(g, "mcs_m"))
        rebuilt = runner._state.graph
        assert rebuilt.node_set() == g.node_set()
        assert set(rebuilt.edge_set()) == set(g.edge_set())
        assert rebuilt.core.adj == g.core.adj

    def test_int_mask_fallback_rebuilds(self):
        # The numpy-less payload form keeps working.
        g = gnp_random_graph(12, 0.4, seed=4)
        payload = GraphPayload(
            labels=tuple(g.interner.labels_dense),
            alive=g.core.alive,
            num_edges=g.core.num_edges,
            triangulator="mcs_m",
            backend="indexed",
            rows=len(g.core.adj),
            words=0,
            adj=tuple(g.core.adj),
        )
        runner = InlineRunner(payload)
        assert runner._state.graph.core.adj == g.core.adj

    def test_numpy_backend_worker_adopts_packed_mirror(self):
        from repro.graph.bitset_np import NumpyGraphCore, convert_graph

        g = convert_graph(gnp_random_graph(25, 0.4, seed=6), "numpy")
        runner = InlineRunner(make_payload(g, "mcs_m"))
        core = runner._state.graph.core
        assert isinstance(core, NumpyGraphCore)
        assert core._packed is not None
        assert not core._packed.flags.writeable
        assert core.adj == g.core.adj

    def test_readonly_mirror_detaches_on_saturate(self):
        from repro.graph.bitset_np import NumpyGraphCore, convert_graph

        g = convert_graph(gnp_random_graph(25, 0.25, seed=6), "numpy")
        runner = InlineRunner(make_payload(g, "mcs_m"))
        core = runner._state.graph.core
        shared = core._packed
        mask = core.alive
        core.saturate(mask)
        # The mirror was copied before mutation, the original untouched.
        assert core._packed is not shared
        oracle = NumpyGraphCore.from_indexed(g.core)
        oracle.saturate(mask)
        assert core.adj == oracle.adj


class TestSharedMemoryLifecycle:
    def _segments(self) -> set[str]:
        try:
            return {
                name
                for name in os.listdir("/dev/shm")
                if name.startswith("psm_")
            }
        except FileNotFoundError:  # pragma: no cover - non-Linux
            pytest.skip("/dev/shm not available")

    def test_buffer_create_attach_unlink(self):
        import numpy as np

        matrix = np.arange(12, dtype=np.uint64).reshape(3, 4)
        owner = SharedPackedBuffer.create(matrix)
        attached = SharedPackedBuffer.attach(owner.name, 3, 4)
        assert (attached.matrix == matrix).all()
        assert not attached.matrix.flags.writeable
        attached.close()
        owner.unlink()
        with pytest.raises(FileNotFoundError):
            SharedPackedBuffer.attach(owner.name, 3, 4)

    def test_pool_runner_unlinks_on_close(self):
        g = gnp_random_graph(14, 0.4, seed=8)
        before = self._segments()
        runner = PoolRunner(make_payload(g, "mcs_m"), workers=2)
        assert runner.wire_format == "packed"
        created = self._segments() - before
        assert len(created) == 1
        runner.close()
        assert self._segments() <= before

    def test_stream_close_unlinks_segment(self):
        # The consumer walking away mid-stream (the generator-close
        # path KeyboardInterrupt handling funnels into) must release
        # the segment.
        g = gnp_random_graph(13, 0.35, seed=9)
        before = self._segments()
        stream = EnumerationEngine("sharded", workers=2).stream(
            EnumerationJob(g)
        )
        for index, __ in enumerate(stream):
            if index >= 3:
                break
        stream.close()
        assert self._segments() <= before

    def test_keyboard_interrupt_unlinks_segment(self):
        g = gnp_random_graph(13, 0.35, seed=9)
        before = self._segments()
        stream = EnumerationEngine("sharded", workers=2).stream(
            EnumerationJob(g)
        )
        with pytest.raises(KeyboardInterrupt):
            try:
                for index, __ in enumerate(stream):
                    if index >= 2:
                        raise KeyboardInterrupt
            finally:
                stream.close()
        assert self._segments() <= before

    def test_killed_worker_leaves_no_segment(self):
        from concurrent.futures.process import BrokenProcessPool

        g = gnp_random_graph(14, 0.4, seed=8)
        before = self._segments()
        runner = PoolRunner(make_payload(g, "mcs_m"), workers=2)
        # Ensure the workers are up (initializer ran) before the kill.
        seed = tuple(sorted(g.mask_of(s) for s in serial_seed_family(g)))
        batch = wire.encode_batch(
            g.core.alive, [seed], (), word_count(len(g.core.adj))
        )
        runner.submit(batch).result()
        victim = next(iter(runner._executor._processes.values()))
        os.kill(victim.pid, signal.SIGKILL)
        with pytest.raises(BrokenProcessPool):
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                runner.submit(batch).result()
        runner.close()
        assert self._segments() <= before

    def test_cooperative_abort_leaves_no_segment(self, monkeypatch):
        # A batch aborted mid-saturate by the worker watchdog / poison
        # injection must not leak the graph segment: the worker frees
        # its scratch state and survives, the run completes through
        # quarantine salvage, and close() unlinks as usual.
        from repro.chordal.minimal_separators import minimal_separator_masks

        g = gnp_random_graph(12, 0.35, seed=11)
        poison = next(iter(minimal_separator_masks(g)))
        monkeypatch.setenv("REPRO_CHAOS_POISON", str(poison))
        monkeypatch.setenv("REPRO_CHAOS_POISON_MODE", "fail")
        before = self._segments()
        with pytest.warns(RuntimeWarning, match="quarantin"):
            result = EnumerationEngine("sharded", workers=2).run(
                EnumerationJob(g, max_batch_retries=0)
            )
        assert result.stats.batches_quarantined >= 1
        assert self._segments() <= before

    def test_worker_kill_and_restart_leave_no_segment(self, monkeypatch):
        # The hard-death flavour: the poisoned batch SIGKILLs its
        # worker (os._exit), the pool breaks, the coordinator restarts
        # it and quarantines the batch — across all of which exactly
        # one segment may exist, and none after close.
        from repro.chordal.minimal_separators import minimal_separator_masks

        g = gnp_random_graph(12, 0.35, seed=11)
        poison = next(iter(minimal_separator_masks(g)))
        monkeypatch.setenv("REPRO_CHAOS_POISON", str(poison))
        monkeypatch.setenv("REPRO_CHAOS_POISON_MODE", "kill")
        before = self._segments()
        with pytest.warns(RuntimeWarning, match="quarantin"):
            result = EnumerationEngine("sharded", workers=2).run(
                EnumerationJob(g, max_batch_retries=0)
            )
        assert result.stats.batches_quarantined >= 1
        assert self._segments() <= before


def serial_seed_family(graph):
    """Extend(∅) of ``graph`` — a convenient valid answer for tests."""
    from repro.core.extend import extend_parallel_set

    return extend_parallel_set(graph, (), "mcs_m")


class TestCrashTimeCheckpoint:
    def test_failed_batch_is_requeued_not_marked_processed(self):
        # A batch whose future raises (worker crash / broken pool) must
        # still count as in flight when the crash-path checkpoint is
        # taken: its results are lost, so recording its answers as
        # processed would skip their extends forever on resume.
        from concurrent.futures import Future

        from repro.engine.coordinator import MISCoordinator

        class FailingRunner:
            """Fails the first *pop* batch dispatched against a grown
            V-snapshot (≥ 2 directions; barrier batches always carry
            exactly one)."""

            workers = 1
            wire_format = "plain"

            def __init__(self, inner):
                self._inner = inner

            def submit(self, batch):
                __, jobs = batch
                if jobs and len(jobs[0][1]) >= 2:
                    future: Future = Future()
                    future.set_exception(RuntimeError("worker died"))
                    return future
                return self._inner.submit(batch)

            def close(self):
                pass

        g = gnp_random_graph(12, 0.35, seed=11)
        runner = FailingRunner(InlineRunner(make_payload(g, "mcs_m")))
        coordinator = MISCoordinator(g, g.core.alive, runner)
        with pytest.raises(RuntimeError, match="worker died"):
            for __ in coordinator.stream():
                pass
        entries = [
            e for e in coordinator._inflight.values() if e.kind == "pop"
        ]
        assert entries, "the failing batch must still be registered"
        snapshot = coordinator.control_snapshot()
        for entry in entries:
            assert set(entry.answers) <= set(snapshot.queue)
            assert not set(entry.answers) & set(snapshot.processed)


class TestInProcessMetering:
    """The cost model must see real compute through the inline runner."""

    def test_plain_result_carries_worker_compute_time(self):
        from repro.chordal.minimal_separators import minimal_separator_masks

        g = gnp_random_graph(10, 0.4, seed=2)
        runner = InlineRunner(make_payload(g, "mcs_m"))
        seed = tuple(sorted(g.mask_of(s) for s in serial_seed_family(g)))
        direction = next(iter(minimal_separator_masks(g)))
        out, stats, compute_ns = runner.submit(
            (g.core.alive, [(seed, (direction,))])
        ).result()
        assert len(out) == 1
        assert stats.extend_calls == 1
        assert compute_ns > 0

    def test_inline_runner_feeds_real_costs_to_batcher(self):
        # Regression: submitted_ns must be stamped before submit() —
        # the inline runner executes the batch synchronously inside
        # it, and a post-submit stamp would make every round-trip
        # (and hence the learned pair cost) collapse to ~zero,
        # ballooning serial checkpointed batches to the hard cap.
        from repro.engine.coordinator import MISCoordinator

        g = gnp_random_graph(12, 0.35, seed=11)
        runner = InlineRunner(make_payload(g, "mcs_m"))
        batcher = AdaptiveBatcher(1)
        coordinator = MISCoordinator(
            g, g.core.alive, runner, batcher=batcher
        )
        answers = list(coordinator.stream())
        assert len(answers) > 10
        # One Extend on this graph costs well over a microsecond; the
        # 1 ns floor would only appear if compute were mis-metered.
        assert batcher.pair_cost_ns is not None
        assert batcher.pair_cost_ns > 1_000


# ----------------------------------------------------------------------
# Stage timers
# ----------------------------------------------------------------------


class TestStageTimers:
    def test_serial_pipeline_reports_stage_timers(self):
        g = gnp_random_graph(12, 0.35, seed=11)
        stats = EnumMISStatistics()
        list(enumerate_minimal_triangulations(g, stats=stats))
        assert stats.extend_time_ns > 0
        assert stats.crossing_time_ns > 0
        assert stats.ipc_time_ns == 0
        assert stats.batches_dispatched == 0

    def test_sharded_run_reports_same_fields(self):
        g = gnp_random_graph(12, 0.35, seed=11)
        result = EnumerationEngine("sharded", workers=2).run(
            EnumerationJob(g)
        )
        stats = result.stats
        assert stats.extend_time_ns > 0
        assert stats.crossing_time_ns > 0
        assert stats.batches_dispatched > 0
        assert stats.ipc_payload_bytes > 0
        assert stats.batch_roundtrip_ns > 0
        assert result.mean_batch_latency > 0
        assert result.ipc_payload_bytes_per_batch > 0
        # Serial and sharded snapshots expose the same vocabulary.
        serial_stats = EnumMISStatistics()
        list(enumerate_minimal_triangulations(g, stats=serial_stats))
        assert set(stats.snapshot()) == set(serial_stats.snapshot())

    def test_timers_merge_and_round_trip(self):
        a = EnumMISStatistics(
            extend_time_ns=100, crossing_time_ns=7, ipc_time_ns=3,
            ipc_payload_bytes=512, batches_dispatched=2,
            batch_roundtrip_ns=40,
        )
        b = EnumMISStatistics(extend_time_ns=11, batches_dispatched=1)
        a.add(b)
        assert a.extend_time_ns == 111
        assert a.batches_dispatched == 3
        restored = EnumMISStatistics()
        restored.restore(a.snapshot())
        assert restored.snapshot() == a.snapshot()

    def test_timers_survive_checkpoint_resume(self, tmp_path):
        g = gnp_random_graph(13, 0.3, seed=21)
        path = tmp_path / "timers.ckpt.json"
        engine = EnumerationEngine("sharded", workers=2)
        first = engine.run(
            EnumerationJob(
                g, checkpoint_path=path, checkpoint_every=5, max_results=8
            )
        )
        assert first.stats.extend_time_ns > 0
        import json

        persisted = json.loads(path.read_text())["stats"]
        assert persisted["extend_time_ns"] > 0
        assert persisted["batches_dispatched"] > 0
        second = engine.run(
            EnumerationJob(g, checkpoint_path=path, resume=True)
        )
        # The resumed run's report covers the whole enumeration: it
        # restored the interrupted run's timers and kept accumulating.
        assert second.stats.extend_time_ns > persisted["extend_time_ns"]
        assert (
            second.stats.batches_dispatched
            > persisted["batches_dispatched"]
        )


# ----------------------------------------------------------------------
# The scheduler may never trade correctness for throughput
# ----------------------------------------------------------------------


class TestTinyBatchEquality:
    """The CI smoke: aggressively tiny batches == serial answer sets."""

    def test_property_corpus_tiny_batches(self):
        engine = EnumerationEngine("sharded", workers=2)
        for g in small_random_graphs(4, max_nodes=9, seed=515):
            expected = serial_answers(g)
            result = engine.run(EnumerationJob(g, batch_target_ms=0.01))
            assert answer_set(result.triangulations) == expected

    def test_modes_and_atoms_tiny_batches(self):
        g = gnp_random_graph(12, 0.3, seed=42)
        engine = EnumerationEngine("sharded", workers=2)
        for mode in ("UG", "UP"):
            expected = serial_answers(g, mode=mode)
            result = engine.run(
                EnumerationJob(g, mode=mode, batch_target_ms=0.01)
            )
            assert answer_set(result.triangulations) == expected
        expected = serial_answers(g, decompose="atoms")
        result = engine.run(
            EnumerationJob(g, decompose="atoms", batch_target_ms=0.01)
        )
        assert answer_set(result.triangulations) == expected

    def test_batch_target_validation(self):
        g = gnp_random_graph(6, 0.5, seed=1)
        with pytest.raises(EngineError, match="batch_target_ms"):
            EnumerationEngine("serial").run(
                EnumerationJob(g, batch_target_ms=0)
            )

    def test_checkpoint_resume_with_tiny_batches(self, tmp_path):
        g = gnp_random_graph(13, 0.3, seed=21)
        full = serial_answers(g)
        path = tmp_path / "tiny.ckpt.json"
        engine = EnumerationEngine("sharded", workers=2)
        first = engine.run(
            EnumerationJob(
                g, checkpoint_path=path, checkpoint_every=3,
                batch_target_ms=0.01, max_results=len(full) // 3,
            )
        )
        second = engine.run(
            EnumerationJob(
                g, checkpoint_path=path, resume=True, batch_target_ms=0.01
            )
        )
        got_first = answer_set(first.triangulations)
        got_second = answer_set(second.triangulations)
        assert not (got_first & got_second)
        assert got_first | got_second == full
