"""Distributed backend: TCP fleet equality, elasticity and failover.

Three kinds of coverage:

* **Answer-set equality** — the distributed backend enumerates exactly
  the serial reference answer set over the property corpus, in both
  printing modes and both decompositions, with workers running in
  threads (fast) and as real ``repro worker`` subprocesses (honest).
* **Fault injection** — a SIGKILLed worker's in-flight batches are
  requeued to survivors and the final answer set is still exact; an
  interrupted coordinator resumes from its checkpoint without
  re-yielding (graceful SIGINT/SIGTERM: exactly-once across the
  restart; hard SIGKILL: no loss, duplicates possible only in the
  unsaved window).
* **Protocol discipline** — handshake rejections are typed and fatal
  (no reconnect storm), malformed HELLOs get an ERROR frame back, and
  the kernel-tier/membership statistics surface in the merged report.
"""

from __future__ import annotations

import ast
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

pytest.importorskip("numpy")

from helpers import small_random_graphs

from repro.core.enumerate import enumerate_minimal_triangulations
from repro.engine import EngineError, EnumerationEngine, EnumerationJob
from repro.engine.distributed import DistributedBackend
from repro.engine.distributed import protocol
from repro.engine.distributed.worker import WorkerConfig, run_worker
from repro.engine.pool import make_payload
from repro.graph.generators import gnp_random_graph
from repro.graph.io import write_edge_list

SRC = Path(__file__).resolve().parents[1] / "src"

_FAST = WorkerConfig(heartbeat_s=0.2, max_retries=5, connect_timeout_s=5.0)


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _spawn_worker_proc(address) -> subprocess.Popen:
    """Launch a real ``repro worker`` subprocess against ``address``."""
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"{address[0]}:{address[1]}",
        ],
        env=_worker_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def answer_set(triangulations) -> set[frozenset]:
    return {frozenset(t.fill_edges) for t in triangulations}


def serial_answers(graph, **kwargs) -> set[frozenset]:
    return answer_set(enumerate_minimal_triangulations(graph, **kwargs))


def run_distributed(job, *, workers=2, spawn=None, **backend_kwargs):
    """Run ``job`` on the distributed backend with in-thread workers.

    ``spawn`` overrides how workers are launched (given the bound
    address, returns a list of joinables/processes).
    """
    launched = []

    def on_listening(address):
        if spawn is not None:
            launched.extend(spawn(address))
            return
        for _ in range(workers):
            thread = threading.Thread(
                target=run_worker, args=(address, _FAST), daemon=True
            )
            thread.start()
            launched.append(thread)

    backend = DistributedBackend(
        listen="127.0.0.1:0",
        expected_workers=workers,
        heartbeat_s=0.2,
        on_listening=on_listening,
        **backend_kwargs,
    )
    result = EnumerationEngine(backend).run(job)
    for item in launched:
        if isinstance(item, threading.Thread):
            item.join(timeout=10)
        else:
            item.wait(timeout=10)
    return result


class TestEquality:
    def test_matches_serial_on_property_corpus(self):
        for graph in small_random_graphs(6, max_nodes=8):
            expected = serial_answers(graph)
            result = run_distributed(EnumerationJob(graph))
            assert answer_set(result.triangulations) == expected

    def test_modes_and_decompositions(self):
        graph = gnp_random_graph(9, 0.35, seed=41)
        for mode in ("UG", "UP"):
            for decompose in ("components", "atoms"):
                expected = serial_answers(graph, decompose=decompose)
                result = run_distributed(
                    EnumerationJob(graph, mode=mode, decompose=decompose)
                )
                assert answer_set(result.triangulations) == expected, (
                    mode,
                    decompose,
                )

    def test_trivial_graphs_need_no_worker(self):
        from repro.graph.graph import Graph

        empty = Graph()
        result = EnumerationEngine(
            DistributedBackend(listen="127.0.0.1:0")
        ).run(EnumerationJob(empty))
        assert result.count == 1  # the empty triangulation

    def test_membership_and_tier_statistics(self):
        graph = gnp_random_graph(9, 0.4, seed=13)
        result = run_distributed(
            EnumerationJob(graph, graph_backend="numpy")
        )
        stats = result.stats
        assert stats.worker_joins >= 1
        assert sum(stats.kernel_tiers.values()) == stats.batches_dispatched
        # graph_backend="numpy" forces the packed tier on every host.
        assert set(stats.kernel_tiers) <= {"numpy", "native"}

    def test_unconfigured_backend_is_a_typed_error(self):
        graph = gnp_random_graph(6, 0.5, seed=3)
        with pytest.raises(EngineError, match="--listen"):
            EnumerationEngine("distributed").run(EnumerationJob(graph))


class TestElasticMembership:
    def test_job_waits_for_late_worker(self):
        graph = gnp_random_graph(8, 0.4, seed=23)
        expected = serial_answers(graph)

        def spawn_late(address):
            def later():
                time.sleep(0.6)
                run_worker(address, _FAST)

            thread = threading.Thread(target=later, daemon=True)
            thread.start()
            return [thread]

        result = run_distributed(
            EnumerationJob(graph), workers=1, spawn=spawn_late
        )
        assert answer_set(result.triangulations) == expected
        assert result.stats.worker_joins == 1

    def test_pending_timeout_fails_typed(self):
        graph = gnp_random_graph(7, 0.5, seed=29)
        backend = DistributedBackend(
            listen="127.0.0.1:0",
            heartbeat_s=0.1,
            pending_timeout_s=0.4,
        )
        with pytest.raises(EngineError, match="no workers"):
            EnumerationEngine(backend).run(EnumerationJob(graph))

    def test_checkpoint_resume_across_runner_instances(self, tmp_path):
        # The in-process analogue of a coordinator restart: a fresh
        # runner (fresh port, fresh fleet) resumes from the document
        # and yields exactly the remainder.
        graph = gnp_random_graph(11, 0.4, seed=31)  # 18 answers
        expected = serial_answers(graph)
        path = tmp_path / "dist.ckpt"
        first = run_distributed(
            EnumerationJob(
                graph, checkpoint_path=path, checkpoint_every=4,
                max_results=6,
            )
        )
        assert first.count == 6
        second = run_distributed(
            EnumerationJob(graph, checkpoint_path=path, resume=True)
        )
        got_first = answer_set(first.triangulations)
        got_second = answer_set(second.triangulations)
        assert got_first | got_second == expected
        assert not got_first & got_second


@pytest.mark.slow
class TestFaultInjection:
    def test_worker_sigkill_mid_job_requeues_exactly_once(self):
        graph = gnp_random_graph(12, 0.3, seed=5)  # 216 answers
        expected = serial_answers(graph)
        procs = []

        def spawn(address):
            procs.extend(_spawn_worker_proc(address) for _ in range(2))
            return []  # reaped explicitly below

        backend = DistributedBackend(
            listen="127.0.0.1:0",
            expected_workers=2,
            heartbeat_s=0.2,
            on_listening=spawn,
        )
        job = EnumerationJob(graph, batch_target_ms=5.0)
        engine = EnumerationEngine(backend)
        got = []
        stream = engine.stream(job)
        killed = False
        try:
            for t in stream:
                got.append(t)
                if not killed and len(got) == 25:
                    procs[0].kill()  # SIGKILL: no goodbye, no flush
                    killed = True
        finally:
            stream.close()
        for proc in procs:
            proc.wait(timeout=10)
        assert killed
        assert answer_set(got) == expected
        assert len(got) == len(expected)  # exactly-once, no duplicates


@pytest.mark.slow
class TestCoordinatorRestart:
    """Kill the coordinator process, resume from its checkpoint."""

    def _free_port(self) -> int:
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            return probe.getsockname()[1]

    def _coordinator(self, edges, ckpt, port, *extra) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "enumerate",
                str(edges),
                "--backend",
                "distributed",
                "--listen",
                f"127.0.0.1:{port}",
                "--expected-workers",
                "2",
                "--batch-target-ms",
                "5",
                "--checkpoint",
                str(ckpt),
                "--checkpoint-every",
                "8",
                "--show-fill",
                *extra,
            ],
            env=_worker_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    @staticmethod
    def _parse_answers(output: str) -> list[frozenset]:
        answers = []
        for line in output.splitlines():
            if " edges=" in line:
                edges = ast.literal_eval(line.split(" edges=", 1)[1])
                answers.append(frozenset(tuple(e) for e in edges))
        return answers

    def _run_to_answer(self, proc, count: int) -> list[str]:
        """Read coordinator stdout until ``count`` answer lines passed."""
        lines = []
        seen = 0
        deadline = time.monotonic() + 60
        while seen < count:
            assert time.monotonic() < deadline, "coordinator too slow"
            line = proc.stdout.readline()
            if not line:
                break
            lines.append(line)
            if " edges=" in line:
                seen += 1
        return lines

    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGKILL])
    def test_kill_and_resume(self, tmp_path, sig):
        graph = gnp_random_graph(12, 0.3, seed=5)
        expected = serial_answers(graph)
        edges = tmp_path / "graph.edges"
        write_edge_list(graph, edges)
        ckpt = tmp_path / "run.ckpt"
        port = self._free_port()

        first = self._coordinator(edges, ckpt, port)
        workers = [_spawn_worker_proc(("127.0.0.1", port)) for _ in range(2)]
        head = self._run_to_answer(first, 30)
        first.send_signal(sig)
        # Keep draining the *same* buffered reader `_run_to_answer`
        # used: communicate(timeout=...) reads the raw fd and would
        # silently discard any lines already sitting in the
        # BufferedReader, making delivered answers look lost.
        tail = first.stdout.read()
        first.wait(timeout=30)
        first_answers = self._parse_answers("".join(head) + tail)
        assert len(first_answers) >= 30
        assert ckpt.exists()
        for proc in workers:
            # The fleet outlives the coordinator, backs off, gives up.
            proc.wait(timeout=60)

        second = self._coordinator(edges, ckpt, port, "--resume")
        workers = [_spawn_worker_proc(("127.0.0.1", port)) for _ in range(2)]
        out, _ = second.communicate(timeout=120)
        assert second.returncode == 0, out
        second_answers = self._parse_answers(out)
        for proc in workers:
            proc.wait(timeout=10)

        got_first = set(first_answers)
        got_second = set(second_answers)
        assert got_first | got_second == expected
        if sig == signal.SIGINT:
            # Graceful interrupt saves on close: exactly-once across
            # the restart — no answer is ever yielded twice.
            assert not got_first & got_second
            assert len(first_answers) + len(second_answers) == len(expected)
        # A hard SIGKILL cannot save on the way down; answers delivered
        # after the last periodic save may repeat, but none are lost.


class TestProtocol:
    def test_parse_address(self):
        assert protocol.parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert protocol.parse_address(":9000") == ("0.0.0.0", 9000)
        with pytest.raises(EngineError):
            protocol.parse_address("no-port")
        with pytest.raises(EngineError):
            protocol.parse_address("host:not-a-number")

    def test_bad_magic_gets_error_frame(self):
        from repro.engine.distributed.runner import DistributedRunner

        graph = gnp_random_graph(6, 0.5, seed=2)
        payload = make_payload(graph, "mcs_m")
        runner = DistributedRunner(payload, ("127.0.0.1", 0))
        try:
            with socket.create_connection(runner.address, timeout=5) as sock:
                hello = protocol.encode_json(
                    {"magic": "wrong", "protocol": protocol.PROTOCOL_VERSION,
                     "wire_formats": ["packed"]}
                )
                protocol.send_frame(sock, protocol.MSG_HELLO, hello)
                frame = protocol.recv_frame(sock)
                assert frame.msg_type == protocol.MSG_ERROR
                detail = protocol.decode_json(frame.payload)
                assert "magic" in detail["error"]
        finally:
            runner.close()

    def test_version_mismatch_gets_error_frame(self):
        from repro.engine.distributed.runner import DistributedRunner

        graph = gnp_random_graph(6, 0.5, seed=2)
        runner = DistributedRunner(
            make_payload(graph, "mcs_m"), ("127.0.0.1", 0)
        )
        try:
            with socket.create_connection(runner.address, timeout=5) as sock:
                hello = protocol.encode_json(
                    {"magic": protocol.MAGIC, "protocol": 999,
                     "wire_formats": ["packed"]}
                )
                protocol.send_frame(sock, protocol.MSG_HELLO, hello)
                frame = protocol.recv_frame(sock)
                assert frame.msg_type == protocol.MSG_ERROR
                assert "version" in protocol.decode_json(frame.payload)["error"]
        finally:
            runner.close()

    def test_worker_treats_rejection_as_fatal(self):
        # A fake coordinator that rejects every HELLO: the worker must
        # exit 2 (fatal) instead of burning its reconnect budget.
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        address = server.getsockname()

        def reject():
            conn, _ = server.accept()
            with conn:
                protocol.recv_frame(conn)
                protocol.send_frame(
                    conn,
                    protocol.MSG_ERROR,
                    protocol.encode_json(
                        {"error": "unsupported", "fatal": True}
                    ),
                )

        thread = threading.Thread(target=reject, daemon=True)
        thread.start()
        try:
            code = run_worker(address, _FAST)
        finally:
            thread.join(timeout=5)
            server.close()
        assert code == 2

    def test_oversized_frame_rejected(self):
        from repro.engine.base import WireDecodeError

        with pytest.raises(WireDecodeError, match="cap"):
            protocol._validate_header(
                protocol.MSG_BATCH, protocol.MAX_FRAME_BYTES + 1
            )
        with pytest.raises(WireDecodeError, match="unknown"):
            protocol._validate_header(200, 0)
