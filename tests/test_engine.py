"""Tests for the pluggable enumeration engine (repro.engine)."""

from __future__ import annotations

import json

import pytest

from helpers import small_random_graphs
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.core.ranked import enumerate_minimal_triangulations_prioritized
from repro.engine import (
    CheckpointError,
    EngineError,
    EnumerationEngine,
    EnumerationJob,
    available_backends,
    get_backend,
)
from repro.engine.checkpoint import (
    CheckpointError as CheckpointErrorDirect,  # noqa: F401 - re-export check
    CheckpointManager,
    _document_crc,
    job_fingerprint,
    region_fingerprint,
)
from repro.experiments.runner import run_enumeration
from repro.graph.generators import cycle_graph, gnp_random_graph
from repro.graph.graph import Graph
from repro.sgr.enum_mis import EnumMISStatistics, merge_statistics


def answer_set(triangulations) -> set[frozenset]:
    return {frozenset(t.fill_edges) for t in triangulations}


def serial_answers(graph, **kwargs) -> set[frozenset]:
    return answer_set(enumerate_minimal_triangulations(graph, **kwargs))


def resign(data: dict) -> dict:
    """Recompute the CRC of a hand-tampered checkpoint document.

    Tests that assert *semantic* rejection (wrong shape, inconsistent
    product state) must present a document with a valid CRC — an
    unsigned tamper is indistinguishable from disk corruption and
    triggers generation fallback instead of the targeted error.
    """
    data.pop("crc32", None)
    data["crc32"] = _document_crc(data)
    return data


class TestEngineBasics:
    def test_backends_registered(self):
        assert {"serial", "sharded"} <= set(available_backends())

    def test_unknown_backend_raises(self):
        with pytest.raises(EngineError, match="unknown enumeration backend"):
            get_backend("quantum")

    def test_job_validation(self):
        g = cycle_graph(4)
        with pytest.raises(EngineError, match="mode"):
            EnumerationEngine().run(EnumerationJob(g, mode="XX"))
        with pytest.raises(EngineError, match="resume"):
            EnumerationEngine().run(EnumerationJob(g, resume=True))
        with pytest.raises(EngineError, match="max_results"):
            EnumerationEngine().run(EnumerationJob(g, max_results=-1))

    def test_serial_engine_matches_direct_pipeline(self):
        g = gnp_random_graph(12, 0.35, seed=11)
        result = EnumerationEngine("serial").run(EnumerationJob(g))
        assert result.completed
        assert answer_set(result.triangulations) == serial_answers(g)
        assert result.stats.answers == result.count

    def test_budgets_enforced(self):
        g = gnp_random_graph(12, 0.35, seed=11)
        result = EnumerationEngine("serial").run(EnumerationJob(g, max_results=5))
        assert result.count == 5 and not result.completed
        result = EnumerationEngine("serial").run(
            EnumerationJob(g, time_budget=0.0)
        )
        assert result.count == 1 and not result.completed

    def test_zero_answer_budget_yields_nothing(self):
        g = gnp_random_graph(12, 0.35, seed=11)
        result = EnumerationEngine("serial").run(EnumerationJob(g, max_results=0))
        assert result.count == 0 and not result.completed

    def test_empty_graph(self):
        for backend in ("serial", "sharded"):
            result = EnumerationEngine(backend, workers=1).run(
                EnumerationJob(Graph())
            )
            assert result.count == 1
            assert result.triangulations[0].fill_edges == ()


class TestSerialShardedEquivalence:
    """Both backends must enumerate identical answer *sets*."""

    def test_random_gnp_corpus(self):
        engine = EnumerationEngine("sharded", workers=2)
        for g in small_random_graphs(6, max_nodes=9, seed=2024):
            expected = serial_answers(g)
            result = engine.run(EnumerationJob(g))
            assert answer_set(result.triangulations) == expected

    def test_seeded_medium_graph_both_modes(self):
        g = gnp_random_graph(13, 0.3, seed=77)
        engine = EnumerationEngine("sharded", workers=2)
        for mode in ("UG", "UP"):
            expected = serial_answers(g, mode=mode)
            result = engine.run(EnumerationJob(g, mode=mode))
            assert answer_set(result.triangulations) == expected

    def test_core_counters_match_serial(self):
        g = gnp_random_graph(12, 0.35, seed=9)
        serial_stats = EnumMISStatistics()
        list(enumerate_minimal_triangulations(g, stats=serial_stats))
        result = EnumerationEngine("sharded", workers=2).run(EnumerationJob(g))
        # Work counters are execution-order independent; only the cache
        # hit/miss split differs (each worker warms its own cache).
        for key in ("extend_calls", "edge_oracle_calls", "answers",
                    "nodes_generated", "duplicates_suppressed"):
            assert getattr(result.stats, key) == getattr(serial_stats, key)

    def test_disconnected_graph(self):
        g = Graph(
            edges=[(1, 2), (2, 3), (3, 4), (4, 1), (10, 11), (11, 12),
                   (12, 13), (13, 10)]
        )
        expected = serial_answers(g)
        result = EnumerationEngine("sharded", workers=2).run(EnumerationJob(g))
        assert answer_set(result.triangulations) == expected

    def test_backend_parameter_on_core_entry_points(self):
        g = gnp_random_graph(11, 0.4, seed=31)
        expected = serial_answers(g)
        via_param = answer_set(
            enumerate_minimal_triangulations(g, backend="sharded", workers=2)
        )
        assert via_param == expected
        ranked_serial = [
            t.width
            for t in enumerate_minimal_triangulations_prioritized(g, "width")
        ]
        ranked_sharded = [
            t.width
            for t in enumerate_minimal_triangulations_prioritized(
                g, "width", backend="sharded", workers=2
            )
        ]
        assert sorted(ranked_serial) == sorted(ranked_sharded)
        assert ranked_sharded[0] == min(ranked_serial)

    def test_runner_trace_via_sharded_backend(self):
        g = gnp_random_graph(11, 0.4, seed=31)
        trace = run_enumeration(g, backend="sharded", workers=2, name="shard")
        assert trace.backend == "sharded"
        assert trace.completed
        assert trace.count == len(serial_answers(g))
        assert trace.stats.answers == trace.count


class TestRankedEngine:
    def test_sharded_best_first_order(self):
        g = gnp_random_graph(12, 0.4, seed=3)
        widths = [
            t.width
            for t in enumerate_minimal_triangulations_prioritized(g, "width")
        ]
        result = EnumerationEngine("sharded", workers=2).run(
            EnumerationJob(g, cost="width")
        )
        assert sorted(t.width for t in result.triangulations) == sorted(widths)
        assert result.triangulations[0].width == min(widths)


class TestStatisticsMerge:
    def test_merge_sums_counters(self):
        a = EnumMISStatistics(
            extend_calls=3, edge_oracle_calls=10, answers=2,
            edge_cache_hits=4, edge_cache_misses=1,
            redundant_extensions={"x": 1},
        )
        b = EnumMISStatistics(
            extend_calls=5, duplicates_suppressed=7, nodes_generated=2,
            edge_cache_hits=1, redundant_extensions={"x": 2, "y": 3},
        )
        total = merge_statistics([a, b])
        assert total.extend_calls == 8
        assert total.edge_oracle_calls == 10
        assert total.answers == 2
        assert total.duplicates_suppressed == 7
        assert total.nodes_generated == 2
        assert total.edge_cache_hits == 5
        assert total.edge_cache_misses == 1
        assert total.redundant_extensions == {"x": 3, "y": 3}

    def test_merge_of_nothing_is_zero(self):
        assert merge_statistics([]).snapshot() == EnumMISStatistics().snapshot()

    def test_snapshot_restore_round_trip(self):
        a = EnumMISStatistics(extend_calls=3, answers=9, edge_cache_hits=2)
        b = EnumMISStatistics()
        b.restore(a.snapshot())
        assert b.snapshot() == a.snapshot()

    def test_snapshot_restore_keeps_redundant_extensions(self):
        a = EnumMISStatistics(
            extend_calls=4,
            edge_cache_evictions=11,
            redundant_extensions={"mcs_m": 2, "lb_triang": 5},
        )
        b = EnumMISStatistics()
        b.restore(a.snapshot())
        assert b.redundant_extensions == {"mcs_m": 2, "lb_triang": 5}
        assert b.edge_cache_evictions == 11
        assert b.snapshot() == a.snapshot()
        # The snapshot holds a copy, not the live map.
        a.redundant_extensions["mcs_m"] = 99
        assert b.redundant_extensions["mcs_m"] == 2

    def test_restore_tolerates_old_checkpoints(self):
        # Checkpoints written before a counter existed lack its key;
        # restore must leave the current value alone, not crash.
        stats = EnumMISStatistics(redundant_extensions={"keep": 1})
        stats.restore({"extend_calls": 6, "unknown_future_counter": 3})
        assert stats.extend_calls == 6
        assert stats.redundant_extensions == {"keep": 1}

    def test_stats_survive_checkpoint_file_round_trip(self, tmp_path):
        from repro.engine.checkpoint import CheckpointManager, CheckpointState

        stats = EnumMISStatistics(
            answers=7,
            edge_cache_evictions=2,
            redundant_extensions={"mcs_m": 3},
        )
        manager = CheckpointManager(tmp_path / "stats.ckpt.json", "fp")
        manager.save(CheckpointState(stats=stats.snapshot()))
        restored = EnumMISStatistics()
        restored.restore(manager.load().stats)
        assert restored.snapshot() == stats.snapshot()
        assert restored.redundant_extensions == {"mcs_m": 3}


class TestCheckpointResume:
    def _round_trip(self, backend, workers, tmp_path, mode="UG"):
        g = gnp_random_graph(13, 0.3, seed=21)
        full = serial_answers(g, mode=mode)
        path = tmp_path / f"{backend}-{mode}.ckpt.json"
        engine = EnumerationEngine(backend, workers=workers)
        first = engine.run(
            EnumerationJob(
                g, mode=mode, checkpoint_path=path, checkpoint_every=5,
                max_results=len(full) // 3,
            )
        )
        second = engine.run(
            EnumerationJob(g, mode=mode, checkpoint_path=path, resume=True)
        )
        got_first = answer_set(first.triangulations)
        got_second = answer_set(second.triangulations)
        assert not (got_first & got_second), "resume re-yielded answers"
        assert got_first | got_second == full
        assert second.completed

    def test_serial_round_trip_ug(self, tmp_path):
        self._round_trip("serial", None, tmp_path, mode="UG")

    def test_serial_round_trip_up(self, tmp_path):
        self._round_trip("serial", None, tmp_path, mode="UP")

    def test_sharded_round_trip(self, tmp_path):
        self._round_trip("sharded", 2, tmp_path)

    def test_resume_after_completion_yields_nothing(self, tmp_path):
        g = gnp_random_graph(10, 0.4, seed=5)
        path = tmp_path / "done.ckpt.json"
        engine = EnumerationEngine("serial")
        done = engine.run(EnumerationJob(g, checkpoint_path=path))
        assert done.completed
        again = engine.run(EnumerationJob(g, checkpoint_path=path, resume=True))
        assert again.count == 0

    def test_checkpoint_state_is_json_with_fingerprint(self, tmp_path):
        g = gnp_random_graph(10, 0.4, seed=5)
        path = tmp_path / "state.ckpt.json"
        EnumerationEngine("serial").run(
            EnumerationJob(g, checkpoint_path=path, max_results=4)
        )
        data = json.loads(path.read_text())
        assert data["fingerprint"] == job_fingerprint(g, "UG", "mcs_m", "components")
        (section,) = data["regions"]
        assert section["region"] == region_fingerprint(g)
        assert section["queue"] or section["processed"]
        assert all(isinstance(m, int) for m in section["known_nodes"])
        assert data["arrivals"] == [] and data["delivered"] == 0

    def test_version1_checkpoint_still_loads(self, tmp_path):
        # Files written by the pre-multi-region format (one top-level
        # section, version 1) must keep resuming.
        g = gnp_random_graph(10, 0.4, seed=5)
        path = tmp_path / "v1.ckpt.json"
        full = serial_answers(g)
        engine = EnumerationEngine("serial")
        first = engine.run(
            EnumerationJob(g, checkpoint_path=path, max_results=3)
        )
        data = json.loads(path.read_text())
        (section,) = data.pop("regions")
        section.pop("region")
        data.pop("arrivals"), data.pop("delivered")
        path.write_text(json.dumps({**data, **section, "version": 1}))
        second = engine.run(
            EnumerationJob(g, checkpoint_path=path, resume=True)
        )
        got_first = answer_set(first.triangulations)
        got_second = answer_set(second.triangulations)
        assert not (got_first & got_second)
        assert got_first | got_second == full

    def test_resume_without_checkpoint_file_is_an_error(self, tmp_path):
        g = gnp_random_graph(10, 0.4, seed=5)
        with pytest.raises(CheckpointError, match="does not exist"):
            list(
                EnumerationEngine("serial").stream(
                    EnumerationJob(
                        g,
                        checkpoint_path=tmp_path / "missing.ckpt",
                        resume=True,
                    )
                )
            )

    def test_fingerprint_mismatch_is_rejected(self, tmp_path):
        g = gnp_random_graph(10, 0.4, seed=5)
        path = tmp_path / "other.ckpt.json"
        EnumerationEngine("serial").run(
            EnumerationJob(g, checkpoint_path=path, max_results=4)
        )
        other = gnp_random_graph(10, 0.4, seed=6)
        with pytest.raises(CheckpointError, match="different job"):
            EnumerationEngine("serial").run(
                EnumerationJob(other, checkpoint_path=path, resume=True)
            )

    def test_manager_round_trip_preserves_answers(self, tmp_path):
        from repro.engine.checkpoint import CheckpointState

        manager = CheckpointManager(tmp_path / "m.json", "fp", every=3)
        state = CheckpointState(
            known_nodes=[3, 12],
            exhausted=False,
            queue=[frozenset({5, 9})],
            processed=[frozenset({5}), frozenset()],
            yielded=[frozenset({5})],
            stats={"answers": 3},
        )
        manager.save(state)
        loaded = manager.load()
        assert loaded.known_nodes == [3, 12]
        assert loaded.queue == [frozenset({5, 9})]
        assert set(loaded.processed) == {frozenset({5}), frozenset()}
        assert loaded.stats["answers"] == 3

    def test_region_count_mismatch_is_rejected(self, tmp_path):
        # Same job fingerprint, fewer sections than regions: a
        # truncated document must be rejected, not silently resumed.
        g = _disconnected_graph()
        path = tmp_path / "truncated.ckpt.json"
        EnumerationEngine("serial").run(
            EnumerationJob(g, checkpoint_path=path, max_results=3)
        )
        data = json.loads(path.read_text())
        assert len(data["regions"]) == 3
        data["regions"] = data["regions"][:2]
        path.write_text(json.dumps(resign(data)))
        with pytest.raises(
            CheckpointError, match=r"2 region section\(s\)"
        ):
            EnumerationEngine("serial").run(
                EnumerationJob(g, checkpoint_path=path, resume=True)
            )

    def test_corrupt_product_state_is_rejected(self, tmp_path):
        g = _disconnected_graph()
        path = tmp_path / "corrupt.ckpt.json"
        engine = EnumerationEngine("serial")
        engine.run(EnumerationJob(g, checkpoint_path=path, max_results=3))
        pristine = path.read_text()

        data = json.loads(pristine)
        data["arrivals"][0] = -1
        path.write_text(json.dumps(resign(data)))
        with pytest.raises(CheckpointError, match="inconsistent"):
            engine.run(EnumerationJob(g, checkpoint_path=path, resume=True))

        data = json.loads(pristine)
        data["delivered"] = 10_000
        path.write_text(json.dumps(resign(data)))
        with pytest.raises(CheckpointError, match="delivered"):
            engine.run(EnumerationJob(g, checkpoint_path=path, resume=True))


def _disconnected_graph() -> Graph:
    """Two seeded Gnp components plus a path — three regions."""
    g = gnp_random_graph(8, 0.45, seed=13)
    other = gnp_random_graph(7, 0.5, seed=14)
    for u, v in other.edges():
        g.add_edge(f"b{u}", f"b{v}")
    g.add_edge("p0", "p1")
    g.add_edge("p1", "p2")
    return g


class TestMultiRegionCheckpoint:
    """Disconnected / atom-split jobs checkpoint and resume (ISSUE 4)."""

    def _round_trip(self, backend, workers, tmp_path, mode="UG",
                    decompose="components", graph=None):
        g = graph if graph is not None else _disconnected_graph()
        full = serial_answers(g, mode=mode, decompose=decompose)
        assert len(full) > 6
        path = tmp_path / f"{backend}-{mode}-{decompose}.ckpt.json"
        engine = EnumerationEngine(backend, workers=workers)
        first = engine.run(
            EnumerationJob(
                g, mode=mode, decompose=decompose, checkpoint_path=path,
                checkpoint_every=4, max_results=len(full) // 3,
            )
        )
        second = engine.run(
            EnumerationJob(
                g, mode=mode, decompose=decompose, checkpoint_path=path,
                resume=True,
            )
        )
        got_first = answer_set(first.triangulations)
        got_second = answer_set(second.triangulations)
        assert len(got_first) == len(full) // 3
        assert not (got_first & got_second), "resume re-yielded answers"
        assert got_first | got_second == full
        assert second.completed
        # Serial and sharded must agree on the combined answer set even
        # when the stream was interrupted and resumed mid-product.
        assert got_first | got_second == full

    def test_serial_disconnected_ug(self, tmp_path):
        self._round_trip("serial", None, tmp_path, mode="UG")

    def test_serial_disconnected_up(self, tmp_path):
        self._round_trip("serial", None, tmp_path, mode="UP")

    def test_sharded_disconnected_ug(self, tmp_path):
        self._round_trip("sharded", 2, tmp_path, mode="UG")

    def test_sharded_disconnected_up(self, tmp_path):
        self._round_trip("sharded", 2, tmp_path, mode="UP")

    def test_serial_atoms_round_trip(self, tmp_path):
        g = gnp_random_graph(12, 0.3, seed=42)
        self._round_trip(
            "serial", None, tmp_path, decompose="atoms", graph=g
        )

    def test_sharded_atoms_round_trip(self, tmp_path):
        g = gnp_random_graph(12, 0.3, seed=42)
        self._round_trip(
            "sharded", 2, tmp_path, decompose="atoms", graph=g
        )

    def test_every_interrupt_point_is_safe_serial(self, tmp_path):
        # Interrupt after every possible prefix length: the combined
        # answer set must always be exact with no duplicates.
        g = Graph(
            edges=[(1, 2), (2, 3), (3, 4), (4, 1),
                   (10, 11), (11, 12), (12, 13), (13, 10), (20, 21)]
        )
        full = serial_answers(g)
        engine = EnumerationEngine("serial")
        for k in range(1, len(full)):
            path = tmp_path / f"cut{k}.ckpt.json"
            first = engine.run(
                EnumerationJob(
                    g, checkpoint_path=path, checkpoint_every=1,
                    max_results=k,
                )
            )
            second = engine.run(
                EnumerationJob(g, checkpoint_path=path, resume=True)
            )
            got_first = answer_set(first.triangulations)
            got_second = answer_set(second.triangulations)
            assert not (got_first & got_second)
            assert got_first | got_second == full

    def test_multi_region_resume_after_completion(self, tmp_path):
        g = _disconnected_graph()
        path = tmp_path / "done.ckpt.json"
        engine = EnumerationEngine("serial")
        done = engine.run(EnumerationJob(g, checkpoint_path=path))
        assert done.completed
        again = engine.run(
            EnumerationJob(g, checkpoint_path=path, resume=True)
        )
        assert again.count == 0

    def test_multi_region_document_shape(self, tmp_path):
        g = _disconnected_graph()
        path = tmp_path / "doc.ckpt.json"
        EnumerationEngine("serial").run(
            EnumerationJob(g, checkpoint_path=path, max_results=5)
        )
        data = json.loads(path.read_text())
        assert len(data["regions"]) == 3
        fingerprints = {section["region"] for section in data["regions"]}
        assert len(fingerprints) == 3
        assert data["delivered"] == 5
        assert len(data["arrivals"]) == sum(
            len(section["yielded"]) for section in data["regions"]
        )
