"""Unit tests for exact treewidth / minimum fill-in (repro.core.treewidth)."""

from __future__ import annotations

import pytest

from helpers import small_chordal_graphs, small_random_graphs
from repro.chordal.cliques import tree_width
from repro.core.treewidth import min_fill_in_exact, treewidth_exact
from repro.graph.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_k_tree,
    random_tree,
    star_graph,
)
from repro.graph.graph import Graph


class TestTreewidthExact:
    def test_known_values(self):
        assert treewidth_exact(Graph()) == -1
        assert treewidth_exact(Graph(nodes=[1])) == 0
        assert treewidth_exact(path_graph(6)) == 1
        assert treewidth_exact(cycle_graph(7)) == 2
        assert treewidth_exact(complete_graph(5)) == 4
        assert treewidth_exact(star_graph(6)) == 1

    def test_grid_3xn_is_3(self):
        assert treewidth_exact(grid_graph(3, 3)) == 3
        assert treewidth_exact(grid_graph(3, 5)) == 3

    def test_grid_4x4(self):
        assert treewidth_exact(grid_graph(4, 4)) == 4

    def test_complete_bipartite(self):
        # tw(K_{m,n}) = min(m, n).
        assert treewidth_exact(complete_bipartite_graph(2, 4)) == 2
        assert treewidth_exact(complete_bipartite_graph(3, 3)) == 3

    def test_trees_have_width_one(self):
        for seed in range(4):
            assert treewidth_exact(random_tree(9, seed=seed)) == 1

    def test_k_trees(self):
        for k in (1, 2, 3):
            g = random_k_tree(8, k, seed=k)
            assert treewidth_exact(g) == k

    def test_chordal_matches_clique_width(self):
        for g in small_chordal_graphs(20, max_nodes=10, seed=401):
            assert treewidth_exact(g) == tree_width(g)

    def test_size_limit(self):
        with pytest.raises(ValueError):
            treewidth_exact(path_graph(25))

    def test_disconnected(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (5, 6)])
        assert treewidth_exact(g) == 2


class TestMinFillExact:
    def test_known_values(self):
        assert min_fill_in_exact(Graph()) == 0
        assert min_fill_in_exact(path_graph(5)) == 0
        assert min_fill_in_exact(complete_graph(4)) == 0
        # Cycles need n - 3 chords.
        for n in (4, 5, 6, 7):
            assert min_fill_in_exact(cycle_graph(n)) == n - 3

    def test_chordal_graphs_need_nothing(self):
        for g in small_chordal_graphs(15, max_nodes=10, seed=409):
            assert min_fill_in_exact(g) == 0

    def test_grid_3x3(self):
        assert min_fill_in_exact(grid_graph(3, 3)) == 5

    def test_size_limit(self):
        with pytest.raises(ValueError):
            min_fill_in_exact(path_graph(20))

    def test_lower_bounds_every_minimal_triangulation(self):
        from repro.core.enumerate import enumerate_minimal_triangulations

        for g in small_random_graphs(10, max_nodes=7, seed=419):
            optimum = min_fill_in_exact(g)
            fills = [t.fill for t in enumerate_minimal_triangulations(g)]
            assert min(fills) == optimum

    def test_treewidth_reached_by_some_minimal_triangulation(self):
        from repro.core.enumerate import enumerate_minimal_triangulations

        for g in small_random_graphs(10, max_nodes=7, seed=421):
            optimum = treewidth_exact(g)
            widths = [t.width for t in enumerate_minimal_triangulations(g)]
            assert min(widths) == optimum
