"""Unit tests for the Triangulation value object (repro.core.triangulation)."""

from __future__ import annotations

from repro.chordal.chordal_separators import minimal_separators_of_chordal
from repro.core.triangulation import Triangulation
from repro.graph.generators import cycle_graph, path_graph


class TestConstruction:
    def test_fill_canonicalised_and_sorted(self):
        g = cycle_graph(5)
        t = Triangulation(g, ((3, 0), (2, 0)))
        assert t.fill_edges == ((0, 2), (0, 3))

    def test_from_chordal_supergraph(self):
        g = cycle_graph(4)
        h = g.copy()
        h.add_edge(0, 2)
        t = Triangulation.from_chordal_supergraph(g, h)
        assert t.fill_edges == ((0, 2),)
        assert t.graph == h

    def test_graph_materialisation(self):
        g = cycle_graph(4)
        t = Triangulation(g, ((0, 2),))
        assert t.graph.has_edge(0, 2)
        assert t.base is g
        # The base is not mutated.
        assert not g.has_edge(0, 2)


class TestMeasures:
    def test_width_and_fill(self):
        g = cycle_graph(6)
        t = Triangulation(g, ((0, 2), (0, 3), (0, 4)))
        assert t.fill == 3
        assert t.width == 2  # fan triangulation: all triangles

    def test_width_of_chordal_base(self):
        g = path_graph(5)
        t = Triangulation(g, ())
        assert t.width == 1
        assert t.fill == 0

    def test_minimal_separators_identity(self):
        # MinSep(h) must match the direct extraction (Parra-Scheffler).
        g = cycle_graph(5)
        t = Triangulation(g, ((0, 2), (0, 3)))
        assert t.minimal_separators == frozenset(
            minimal_separators_of_chordal(t.graph)
        )

    def test_clique_forest_cached(self):
        g = cycle_graph(4)
        t = Triangulation(g, ((1, 3),))
        assert t.clique_forest is t.clique_forest

    def test_is_minimal_true_and_false(self):
        g = cycle_graph(4)
        assert Triangulation(g, ((0, 2),)).is_minimal()
        assert not Triangulation(g, ((0, 2), (1, 3))).is_minimal()


class TestEqualityAndRepr:
    def test_equality_by_fill(self):
        g = cycle_graph(4)
        assert Triangulation(g, ((0, 2),)) == Triangulation(g, ((2, 0),))
        assert Triangulation(g, ((0, 2),)) != Triangulation(g, ((1, 3),))

    def test_hashable(self):
        g = cycle_graph(4)
        bag = {Triangulation(g, ((0, 2),)), Triangulation(g, ((0, 2),))}
        assert len(bag) == 1

    def test_eq_other_type(self):
        g = cycle_graph(4)
        assert Triangulation(g, ()) != "something"

    def test_repr(self):
        g = cycle_graph(4)
        text = repr(Triangulation(g, ((0, 2),)))
        assert "width=2" in text and "fill=1" in text


class TestTreeDecompositionBridge:
    def test_tree_decomposition_is_valid_and_proper(self):
        g = cycle_graph(5)
        t = Triangulation(g, ((0, 2), (0, 3)))
        decomposition = t.tree_decomposition()
        decomposition.validate(g)
        assert decomposition.is_proper(g)
        assert decomposition.width == t.width
