"""Tests for the top-level public API surface (repro/__init__.py)."""

from __future__ import annotations

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstring_example(self):
        square = repro.Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        fills = sorted(
            t.fill_edges
            for t in repro.enumerate_minimal_triangulations(square)
        )
        assert fills == [((1, 3),), ((2, 4),)]


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj.__module__ == "repro.errors"
                and obj is not errors.ReproError
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_node_not_found_is_keyerror(self):
        from repro.errors import NodeNotFoundError

        assert issubclass(NodeNotFoundError, KeyError)

    def test_parse_error_carries_line(self):
        from repro.errors import ParseError

        err = ParseError("bad token", line_number=7)
        assert "line 7" in str(err)
        assert err.line_number == 7


class TestEndToEndSmoke:
    def test_full_pipeline_on_grid(self):
        """The README pipeline: graph -> triangulations -> decompositions."""
        from repro.graph.generators import grid_graph

        graph = grid_graph(3, 3)
        best = None
        for i, t in enumerate(
            repro.enumerate_minimal_triangulations(graph, triangulator="lb_triang")
        ):
            if best is None or t.width < best.width:
                best = t
            if i >= 20:
                break
        assert best is not None
        decomposition = best.tree_decomposition()
        decomposition.validate(graph)
        assert decomposition.width == best.width
        assert decomposition.is_proper(graph)

    def test_custom_triangulator_registration(self):
        from repro.chordal.triangulate import Triangulator

        calls = []

        def tracking_fill(graph):
            calls.append(graph.num_nodes)
            from repro.chordal.triangulate import mcs_m

            return mcs_m(graph)[0]

        custom = Triangulator("tracking", tracking_fill, guarantees_minimal=True)
        results = list(
            repro.enumerate_minimal_triangulations(
                repro.Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)]),
                triangulator=custom,
            )
        )
        assert len(results) == 2
        assert calls  # the custom heuristic was exercised
