"""Unit tests for the hypergraph substrate and covers (repro.hypergraph)."""

from __future__ import annotations

import pytest

from repro.hypergraph.covers import (
    UncoverableBagError,
    greedy_cover,
    minimum_cover,
)
from repro.hypergraph.hypergraph import Hypergraph


def triangle() -> Hypergraph:
    return Hypergraph({"R": ("x", "y"), "S": ("y", "z"), "T": ("z", "x")})


class TestHypergraphBasics:
    def test_vertices_collected_from_scopes(self):
        h = triangle()
        assert h.vertices() == ["x", "y", "z"]
        assert h.num_vertices == 3
        assert h.num_edges == 3

    def test_extra_isolated_vertices(self):
        h = Hypergraph({"R": ("a",)}, vertices=["b"])
        assert h.vertices() == ["a", "b"]

    def test_edge_access(self):
        h = triangle()
        assert h.edge("R") == frozenset({"x", "y"})
        with pytest.raises(KeyError):
            h.edge("missing")

    def test_edges_containing(self):
        assert triangle().edges_containing("x") == ["R", "T"]

    def test_rank(self):
        assert triangle().rank() == 2
        assert Hypergraph({}).rank() == 0
        assert Hypergraph({"R": ("a", "b", "c")}).rank() == 3

    def test_primal_graph(self):
        primal = triangle().primal_graph()
        assert primal.num_nodes == 3
        assert primal.num_edges == 3

    def test_primal_graph_saturates_wide_edges(self):
        h = Hypergraph({"R": ("a", "b", "c")})
        assert h.primal_graph().is_clique(["a", "b", "c"])

    def test_dual_hypergraph(self):
        dual = triangle().dual_hypergraph()
        assert set(dual.vertex_set()) == {"R", "S", "T"}
        assert dual.num_edges == 3

    def test_restricted_to(self):
        h = triangle().restricted_to({"x", "y"})
        assert h.vertex_set() == frozenset({"x", "y"})
        assert h.edge("R") == frozenset({"x", "y"})
        assert h.edge("S") == frozenset({"y"})

    def test_equality_and_hash(self):
        assert triangle() == triangle()
        assert hash(triangle()) == hash(triangle())
        assert triangle() != Hypergraph({"R": ("x", "y")})

    def test_repr(self):
        assert "num_vertices=3" in repr(triangle())


class TestAcyclicity:
    def test_triangle_is_cyclic(self):
        assert not triangle().is_alpha_acyclic()

    def test_path_query_is_acyclic(self):
        h = Hypergraph({"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d")})
        assert h.is_alpha_acyclic()

    def test_star_join_is_acyclic(self):
        h = Hypergraph(
            {"F": ("k1", "k2", "k3"), "D1": ("k1", "a"), "D2": ("k2", "b")}
        )
        assert h.is_alpha_acyclic()

    def test_alpha_but_not_berge(self):
        # The classic example: a big edge plus all its sub-pairs is
        # alpha-acyclic despite the cycles in the primal graph.
        h = Hypergraph(
            {
                "big": ("a", "b", "c"),
                "ab": ("a", "b"),
                "bc": ("b", "c"),
                "ca": ("c", "a"),
            }
        )
        assert h.is_alpha_acyclic()

    def test_empty_hypergraph(self):
        assert Hypergraph({}).is_alpha_acyclic()


class TestCovers:
    EDGES = {
        "R": frozenset({"x", "y"}),
        "S": frozenset({"y", "z"}),
        "T": frozenset({"z", "x"}),
        "W": frozenset({"x", "y", "z"}),
    }

    def test_greedy_prefers_large_edges(self):
        assert greedy_cover({"x", "y", "z"}, self.EDGES) == ["W"]

    def test_minimum_cover_exact(self):
        edges = {k: v for k, v in self.EDGES.items() if k != "W"}
        cover = minimum_cover({"x", "y", "z"}, edges)
        assert len(cover) == 2

    def test_empty_bag(self):
        assert greedy_cover(set(), self.EDGES) == []
        assert minimum_cover(set(), self.EDGES) == []

    def test_uncoverable_bag(self):
        with pytest.raises(UncoverableBagError) as excinfo:
            greedy_cover({"x", "q"}, self.EDGES)
        assert excinfo.value.missing == frozenset({"q"})
        with pytest.raises(UncoverableBagError):
            minimum_cover({"q"}, self.EDGES)

    def test_minimum_never_worse_than_greedy(self):
        import itertools
        import random

        rng = random.Random(5)
        universe = list("abcdefg")
        for __ in range(25):
            edges = {
                f"e{i}": frozenset(rng.sample(universe, rng.randint(1, 4)))
                for i in range(rng.randint(2, 7))
            }
            covered = frozenset(v for scope in edges.values() for v in scope)
            bag = frozenset(rng.sample(sorted(covered), min(4, len(covered))))
            exact = minimum_cover(bag, edges)
            greedy = greedy_cover(bag, edges)
            assert len(exact) <= len(greedy)
            # Both actually cover.
            for cover in (exact, greedy):
                union = frozenset(v for name in cover for v in edges[name])
                assert bag <= union
            # Exactness: no smaller subset covers.
            for size in range(len(exact)):
                for subset in itertools.combinations(sorted(edges), size):
                    union = frozenset(
                        v for name in subset for v in edges[name]
                    )
                    assert not bag <= union

    def test_deterministic_tie_break(self):
        edges = {
            "b": frozenset({"x"}),
            "a": frozenset({"x"}),
        }
        assert minimum_cover({"x"}, edges) == ["a"]
