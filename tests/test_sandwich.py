"""Unit tests for the minimal triangulation sandwich (repro.chordal.sandwich)."""

from __future__ import annotations

import pytest

from helpers import small_random_graphs
from repro.chordal.sandwich import (
    is_minimal_triangulation,
    minimal_triangulation_sandwich,
)
from repro.chordal.triangulate import elimination_game_triangulation
from repro.errors import NotATriangulationError
from repro.graph.generators import complete_graph, cycle_graph, path_graph
from repro.graph.graph import Graph


class TestSandwich:
    def test_complete_filling_shrinks_to_minimal(self):
        g = cycle_graph(6)
        minimal, fill = minimal_triangulation_sandwich(g, g.missing_edges())
        assert is_minimal_triangulation(g, minimal)
        assert len(fill) == 3  # C6 minimal triangulations have 3 chords

    def test_result_edges_between_input_and_triangulation(self):
        for g in small_random_graphs(20, max_nodes=8, seed=301):
            loose_fill = elimination_game_triangulation(g, "natural")
            minimal, fill = minimal_triangulation_sandwich(g, loose_fill)
            assert set(fill) <= set(loose_fill)
            assert g.edge_set() <= minimal.edge_set()

    def test_accepts_graph_argument(self):
        g = cycle_graph(5)
        over = g.copy()
        over.add_edges(g.missing_edges())
        minimal, fill = minimal_triangulation_sandwich(g, over)
        assert is_minimal_triangulation(g, minimal)
        assert len(fill) == 2

    def test_already_minimal_is_unchanged(self):
        g = cycle_graph(5)
        minimal_fill = [(0, 2), (0, 3)]
        result, fill = minimal_triangulation_sandwich(g, minimal_fill)
        assert sorted(fill) == minimal_fill

    def test_chordal_input_empty_fill(self):
        g = path_graph(4)
        result, fill = minimal_triangulation_sandwich(g, [])
        assert fill == []
        assert result == g

    def test_non_chordal_supergraph_rejected(self):
        g = cycle_graph(6)
        with pytest.raises(NotATriangulationError):
            minimal_triangulation_sandwich(g, [(0, 3)])  # still has C4s

    def test_wrong_node_set_rejected(self):
        g = path_graph(3)
        other = complete_graph(4)
        with pytest.raises(NotATriangulationError):
            minimal_triangulation_sandwich(g, other)

    def test_non_supergraph_rejected(self):
        g = cycle_graph(4)
        other = Graph(nodes=g.nodes())
        other.add_edge(0, 2)
        with pytest.raises(NotATriangulationError):
            minimal_triangulation_sandwich(g, other)

    def test_input_not_mutated(self):
        g = cycle_graph(6)
        over = g.copy()
        over.add_edges(g.missing_edges())
        before = over.num_edges
        minimal_triangulation_sandwich(g, over)
        assert over.num_edges == before


class TestIsMinimalTriangulation:
    def test_true_cases(self):
        g = cycle_graph(4)
        h = g.copy()
        h.add_edge(0, 2)
        assert is_minimal_triangulation(g, h)
        assert is_minimal_triangulation(path_graph(3), path_graph(3))

    def test_non_chordal_is_false(self):
        g = cycle_graph(4)
        assert not is_minimal_triangulation(g, g)

    def test_redundant_fill_is_false(self):
        g = cycle_graph(4)
        h = g.copy()
        h.add_edge(0, 2)
        h.add_edge(1, 3)
        assert not is_minimal_triangulation(g, h)

    def test_wrong_node_set_is_false(self):
        assert not is_minimal_triangulation(path_graph(3), path_graph(4))

    def test_missing_base_edge_is_false(self):
        g = path_graph(3)
        h = Graph(nodes=g.nodes())
        assert not is_minimal_triangulation(g, h)

    def test_matches_brute_force_minimality(self):
        from repro.baselines.brute_force import brute_force_minimal_triangulations

        for g in small_random_graphs(12, max_nodes=6, seed=307):
            oracle = brute_force_minimal_triangulations(g)
            fill_sets = {frozenset(map(frozenset, fs)) for fs in oracle}
            # Build each oracle triangulation and confirm the checker.
            for fill in fill_sets:
                h = g.copy()
                h.add_edges(tuple(edge) for edge in fill)
                assert is_minimal_triangulation(g, h)
