"""Unit tests for the experiment harness (S26)."""

from __future__ import annotations

from repro.experiments.figures import (
    fig10_quality_over_time,
    fig6_delay_by_edges,
    fig7_delay_by_size,
    fig8_printing_modes,
    fig9_cumulative_results,
)
from repro.experiments.render import ascii_table, sparkline
from repro.experiments.runner import EnumerationTrace, ResultRecord, run_enumeration
from repro.experiments.tables import quality_table, render_quality_table
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.workloads.tpch import tpch_query


class TestRunner:
    def test_completes_small_graph(self):
        trace = run_enumeration(cycle_graph(6), name="c6")
        assert trace.completed
        assert trace.count == 14
        assert trace.name == "c6"
        assert trace.triangulator == "mcs_m"

    def test_max_results_cap(self):
        trace = run_enumeration(cycle_graph(8), max_results=5)
        assert trace.count == 5
        assert not trace.completed

    def test_time_budget_stops(self):
        trace = run_enumeration(grid_graph(5, 5), time_budget=0.2)
        assert trace.elapsed < 60

    def test_records_monotone_in_time(self):
        trace = run_enumeration(cycle_graph(7))
        times = [r.elapsed for r in trace.records]
        assert times == sorted(times)

    def test_chordal_graph_single_record(self):
        trace = run_enumeration(path_graph(5))
        assert trace.completed and trace.count == 1
        assert trace.first_width == 1


class TestDerivedStats:
    def make_trace(self) -> EnumerationTrace:
        trace = EnumerationTrace(name="t", triangulator="mcs_m", mode="UG")
        data = [(0.1, 5, 10), (0.2, 4, 12), (0.3, 6, 8), (0.4, 4, 9)]
        for i, (t, w, f) in enumerate(data):
            trace.records.append(ResultRecord(i, t, w, f))
        trace.elapsed = 0.4
        trace.completed = True
        return trace

    def test_quality_stats(self):
        trace = self.make_trace()
        assert trace.count == 4
        assert trace.first_width == 5 and trace.min_width == 4
        assert trace.first_fill == 10 and trace.min_fill == 8
        assert trace.num_at_most_first_width == 3
        assert trace.num_at_most_first_fill == 3
        assert trace.width_improvement_percent == 20.0
        assert trace.fill_improvement_percent == 20.0
        assert abs(trace.average_delay - 0.1) < 1e-9

    def test_running_minimum(self):
        trace = self.make_trace()
        assert trace.running_minimum("width") == [(0.1, 5), (0.2, 4)]
        assert trace.running_minimum("fill") == [(0.1, 10), (0.3, 8)]

    def test_cumulative_counts(self):
        trace = self.make_trace()
        series = trace.cumulative_counts(bins=4)
        assert len(series) == 4
        final = series[-1]
        assert final[1] == 4  # all results visible at the horizon
        assert final[2] == 2  # two results of min width 4
        assert final[3] == 3  # three results with width <= 5

    def test_empty_trace(self):
        trace = EnumerationTrace(name="e", triangulator="mcs_m", mode="UG")
        assert trace.count == 0
        assert trace.min_width == -1
        assert trace.cumulative_counts() == []
        assert trace.width_improvement_percent == 0.0


class TestTables:
    def test_quality_table_rows(self):
        suites = {
            "Cycles": [("c6", cycle_graph(6)), ("c7", cycle_graph(7))],
        }
        rows = quality_table(suites, "mcs_m", "width", time_budget=5.0)
        assert len(rows) == 1
        row = rows[0]
        assert row.dataset == "Cycles"
        assert row.num_graphs == 2
        assert row.avg_count > 1

    def test_render_quality_table(self):
        suites = {"Cycles": [("c6", cycle_graph(6))]}
        rows = quality_table(suites, "mcs_m", "fill", time_budget=5.0)
        text = render_quality_table(rows, "fill")
        assert "Cycles (1)" in text
        assert "min-f" in text

    def test_invalid_measure(self):
        import pytest

        with pytest.raises(ValueError):
            quality_table({}, "mcs_m", "depth", time_budget=1.0)


class TestFigures:
    def test_fig6_points(self):
        suites = {"Tiny": [("c5", cycle_graph(5)), ("c6", cycle_graph(6))]}
        points = fig6_delay_by_edges(suites, "mcs_m", time_budget=5.0)
        assert len(points) == 2
        assert all(p.dataset == "Tiny" for p in points)
        assert all(p.count >= 1 for p in points)

    def test_fig7_series(self):
        sweep = [("g", cycle_graph(6), 6, 0.5)]
        series = fig7_delay_by_size(sweep, "mcs_m", time_budget=5.0)
        assert series[0][0] == 6 and series[0][1] == 0.5

    def test_fig8_modes_same_counts(self):
        traces = fig8_printing_modes(tpch_query("Q5"))
        assert traces["UG"].count == traces["UP"].count == 5

    def test_fig9_and_fig10(self):
        trace = run_enumeration(cycle_graph(7), name="c7")
        series = fig9_cumulative_results(trace, bins=5)
        assert len(series) == 5
        assert series[-1][1] == trace.count
        quality = fig10_quality_over_time(trace)
        assert quality["width"][0][1] >= quality["width"][-1][1]


class TestRender:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all lines equal width

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3, 4], width=10)
        assert len(line) == 10
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_empty_and_flat(self):
        assert sparkline([]) == ""
        flat = sparkline([5, 5, 5], width=5)
        assert len(flat) == 5


class TestFullReport:
    def test_full_report_sections(self):
        from repro.experiments.report import full_report

        text = full_report(budget=0.05, scale=0.02, max_results=5, tpch_cap=3)
        assert "Tables 1 and 2" in text
        assert "Figure 7" in text
        assert "case study" in text
        assert "TPC-H" in text
        assert "Q22" in text
