"""Unit tests for cost-guided enumeration (repro.core.ranked)."""

from __future__ import annotations

import pytest

from helpers import small_random_graphs
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.core.ranked import (
    best_triangulation,
    enumerate_minimal_triangulations_prioritized,
)
from repro.core.treewidth import min_fill_in_exact, treewidth_exact
from repro.graph.generators import cycle_graph, grid_graph
from repro.graph.graph import Graph


class TestCompleteness:
    def test_same_result_set_as_plain(self):
        for g in small_random_graphs(20, max_nodes=8, seed=1401):
            plain = {t.fill_edges for t in enumerate_minimal_triangulations(g)}
            ranked = {
                t.fill_edges
                for t in enumerate_minimal_triangulations_prioritized(g)
            }
            assert plain == ranked

    def test_no_duplicates(self):
        g = cycle_graph(7)
        produced = list(enumerate_minimal_triangulations_prioritized(g))
        assert len(produced) == len(set(produced))

    def test_fill_cost_same_set(self):
        g = grid_graph(2, 4)
        plain = {t.fill_edges for t in enumerate_minimal_triangulations(g)}
        ranked = {
            t.fill_edges
            for t in enumerate_minimal_triangulations_prioritized(g, cost="fill")
        }
        assert plain == ranked

    def test_disconnected_falls_back(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 8), (8, 5)])
        produced = list(enumerate_minimal_triangulations_prioritized(g))
        assert len(produced) == 2


class TestOrderBias:
    def test_first_result_is_heuristic_baseline(self):
        # The first answer is Extend(∅) in both variants.
        g = grid_graph(3, 3)
        plain_first = next(iter(enumerate_minimal_triangulations(g)))
        ranked_first = next(
            iter(enumerate_minimal_triangulations_prioritized(g))
        )
        assert plain_first == ranked_first

    def test_optimum_found_early_on_grid(self):
        # With width priority the exact treewidth must appear within
        # the first few percent of the (132-result) enumeration.
        g = grid_graph(3, 3)
        optimum = treewidth_exact(g)
        widths = [
            t.width
            for t in enumerate_minimal_triangulations_prioritized(g, cost="width")
        ]
        assert optimum in widths
        first_hit = widths.index(optimum)
        assert first_hit <= len(widths) // 4

    def test_custom_cost_function(self):
        g = cycle_graph(6)
        produced = list(
            enumerate_minimal_triangulations_prioritized(
                g, cost=lambda t: max(t.fill_edges)
            )
        )
        assert len(produced) == 14

    def test_invalid_cost_name(self):
        with pytest.raises(ValueError, match="unknown cost"):
            list(
                enumerate_minimal_triangulations_prioritized(
                    cycle_graph(4), cost="beauty"
                )
            )


class TestBestTriangulation:
    def test_exhaustive_finds_exact_optimum(self):
        for g in small_random_graphs(10, max_nodes=7, seed=1409):
            by_width = best_triangulation(g, cost="width", max_results=None)
            assert by_width.width == treewidth_exact(g)
            by_fill = best_triangulation(g, cost="fill", max_results=None)
            assert by_fill.fill == min_fill_in_exact(g)

    def test_bounded_search_returns_valid_result(self):
        g = grid_graph(3, 4)
        result = best_triangulation(g, max_results=10)
        assert result.is_minimal()

    def test_budgeted_no_worse_than_first(self):
        g = grid_graph(3, 3)
        first = next(iter(enumerate_minimal_triangulations(g)))
        found = best_triangulation(g, max_results=30)
        assert found.width <= first.width
