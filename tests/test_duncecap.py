"""Unit tests for the DunceCap-style baseline (S24)."""

from __future__ import annotations

import pytest

from repro.baselines.duncecap import (
    count_duncecap_decompositions,
    duncecap_tree_decompositions,
)
from repro.errors import EnumerationBudgetExceeded
from repro.graph.generators import complete_graph, cycle_graph, path_graph
from repro.graph.graph import Graph


class TestValidity:
    def test_all_outputs_are_valid_decompositions(self):
        g = cycle_graph(4)
        produced = list(duncecap_tree_decompositions(g, max_bag_size=3))
        assert produced
        for d in produced:
            d.validate(g)
            assert all(len(bag) <= 3 for bag in d.bags)

    def test_path(self):
        g = path_graph(3)
        produced = list(duncecap_tree_decompositions(g, max_bag_size=2))
        assert produced
        for d in produced:
            d.validate(g)

    def test_complete_graph_needs_full_bag(self):
        g = complete_graph(3)
        assert list(duncecap_tree_decompositions(g, max_bag_size=2)) == []
        produced = list(duncecap_tree_decompositions(g, max_bag_size=3))
        # Every plan needs the full bag somewhere; redundant-sub-bag
        # variants are part of the (intentionally wasteful) plan space.
        assert produced
        assert all(frozenset({0, 1, 2}) in d.bag_set() for d in produced)
        for d in produced:
            d.validate(g)

    def test_empty_graph(self):
        produced = list(duncecap_tree_decompositions(Graph(), max_bag_size=1))
        assert len(produced) == 1

    def test_invalid_bag_size(self):
        with pytest.raises(ValueError):
            list(duncecap_tree_decompositions(path_graph(2), max_bag_size=0))


class TestCoverage:
    def test_finds_optimal_width_decomposition(self):
        # For C4 (treewidth 2) some produced decomposition has width 2.
        g = cycle_graph(4)
        widths = {
            d.width for d in duncecap_tree_decompositions(g, max_bag_size=3)
        }
        assert 2 in widths

    def test_no_duplicates(self):
        g = cycle_graph(4)
        produced = list(duncecap_tree_decompositions(g, max_bag_size=4))
        keys = [(d.bag_multiset(), d.tree_edges) for d in produced]
        assert len(keys) == len(set(keys))

    def test_count_grows_with_bag_size(self):
        g = path_graph(4)
        small = count_duncecap_decompositions(g, max_bag_size=2)
        large = count_duncecap_decompositions(g, max_bag_size=3)
        assert large >= small >= 1

    def test_budget_guard(self):
        g = cycle_graph(5)
        with pytest.raises(EnumerationBudgetExceeded):
            list(duncecap_tree_decompositions(g, max_bag_size=5, max_results=2))

    def test_exhaustive_space_is_larger_than_proper_space(self):
        # The baseline searches a much larger space than the proper
        # tree decompositions — the quantitative reason the paper's
        # comparison shows orders-of-magnitude slowdowns.
        from repro.decomposition.proper import enumerate_proper_tree_decompositions

        g = cycle_graph(5)
        baseline_count = count_duncecap_decompositions(g, max_bag_size=4)
        proper_count = sum(
            1 for __ in enumerate_proper_tree_decompositions(g)
        )
        assert baseline_count > proper_count
