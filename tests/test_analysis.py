"""Tests for ``repro analyze`` — the static invariant checker suite.

Each rule gets a fixture tree (a tmp dir mirroring the package layout)
with a seeded violation, proving the rule *fires*; the final test runs
the full battery over the real installed tree, proving it is *clean* —
together they pin both directions of the gate.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    ANALYZER_VERSION,
    Finding,
    all_rules,
    get_rule,
    render_json,
    render_text,
    run_analysis,
)
from repro.analysis.rules.kernel_parity import render_lock
from repro.cli import main


def write_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialise ``{relpath: source}`` under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def findings_for(root: Path, rule_id: str) -> list[Finding]:
    return run_analysis([root], rule_ids=[rule_id])


class TestFramework:
    def test_rule_catalogue(self):
        rules = all_rules()
        assert [rule.id for rule in rules] == sorted(
            rule.id for rule in rules
        )
        assert {rule.id for rule in rules} >= {
            "async-blocking",
            "job-threading",
            "kernel-parity",
            "protocol-dispatch",
            "shm-ownership",
            "stats-registry",
        }
        assert all(rule.summary for rule in rules)

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("no-such-rule")

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(NotADirectoryError):
            run_analysis([tmp_path / "missing"])

    def test_parse_error_is_reported(self, tmp_path):
        write_tree(tmp_path, {"broken.py": "def f(:\n"})
        findings = run_analysis([tmp_path], rule_ids=[])
        assert [f.rule for f in findings] == ["parse-error"]

    def test_suppression_same_line(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """\
                async def f(sock):
                    sock.recv(1)  # repro: allow[async-blocking]
                """
            },
        )
        assert findings_for(tmp_path, "async-blocking") == []

    def test_suppression_line_above(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """\
                async def f(sock):
                    # repro: allow[async-blocking]
                    sock.recv(1)
                """
            },
        )
        assert findings_for(tmp_path, "async-blocking") == []

    def test_suppression_wildcard_and_wrong_id(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "a.py": """\
                async def f(sock):
                    sock.recv(1)  # repro: allow[*]
                """,
                "b.py": """\
                async def f(sock):
                    sock.recv(1)  # repro: allow[some-other-rule]
                """,
            },
        )
        findings = findings_for(tmp_path, "async-blocking")
        assert len(findings) == 1
        assert findings[0].path.endswith("b.py")


class TestStatsRegistryRule:
    BAD = """\
    class EnumMISStatistics:
        answers: int = 0
        forgotten: int = 0
        redundant: dict = None
        _SCALAR_FIELDS = ("answers", "ghost", "redundant")
        _MAP_FIELDS = ("redundant",)
    """

    def test_violations_fire(self, tmp_path):
        write_tree(tmp_path, {"sgr/enum_mis.py": self.BAD})
        messages = [
            f.message for f in findings_for(tmp_path, "stats-registry")
        ]
        assert any("'forgotten' is missing" in m for m in messages)
        assert any("'ghost' which is not a field" in m for m in messages)
        assert any(
            "'redundant' but the field is map-valued" in m
            for m in messages
        )

    def test_clean_fixture(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "sgr/enum_mis.py": """\
                class EnumMISStatistics:
                    answers: int = 0
                    tiers: dict = None
                    _SCALAR_FIELDS = ("answers",)
                    _MAP_FIELDS = ("tiers",)
                """
            },
        )
        assert findings_for(tmp_path, "stats-registry") == []


class TestProtocolDispatchRule:
    def tree(self, chaos_source: str) -> dict[str, str]:
        return {
            "engine/distributed/protocol.py": """\
            MSG_HELLO = 1
            MSG_ORPHAN = 2
            __all__ = ["MSG_HELLO"]
            """,
            "engine/distributed/runner.py": """\
            from . import protocol
            def serve():
                return protocol.MSG_HELLO
            """,
            "engine/distributed/worker.py": """\
            from .protocol import MSG_HELLO, MSG_ORPHAN
            def work():
                return MSG_HELLO, MSG_ORPHAN
            """,
            "engine/distributed/chaos.py": chaos_source,
        }

    GENERIC_CHAOS = """\
    class ChaosInjector:
        def send_stream(self, msg_type):
            return msg_type
    """

    def test_export_and_dispatch_gaps_fire(self, tmp_path):
        write_tree(tmp_path, self.tree(self.GENERIC_CHAOS))
        messages = [
            f.message for f in findings_for(tmp_path, "protocol-dispatch")
        ]
        assert any(
            "MSG_ORPHAN is not exported via __all__" in m
            for m in messages
        )
        assert any(
            "MSG_ORPHAN has no dispatch arm" in m and "runner.py" in m
            for m in messages
        )
        # The worker references both constants; the generic injector
        # covers every frame type by construction.
        assert not any("worker.py" in m for m in messages)
        assert not any("chaos" in m for m in messages)

    def test_explicit_chaos_must_enumerate_all(self, tmp_path):
        explicit = """\
        from .protocol import MSG_HELLO
        SCHEDULES = {MSG_HELLO: "drop"}
        """
        write_tree(tmp_path, self.tree(explicit))
        messages = [
            f.message for f in findings_for(tmp_path, "protocol-dispatch")
        ]
        assert any(
            "MSG_ORPHAN is not reachable by the chaos injector" in m
            for m in messages
        )


class TestAsyncBlockingRule:
    def test_blocking_calls_fire(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """\
                import subprocess
                import time

                async def coro(sock, lock):
                    time.sleep(0.1)
                    subprocess.run(["true"])
                    open("/tmp/x")
                    sock.recv(1)
                    lock.acquire()
                """
            },
        )
        findings = findings_for(tmp_path, "async-blocking")
        reasons = [f.message for f in findings]
        assert len(findings) == 5
        assert any("time.sleep" in m for m in reasons)
        assert any("subprocess.run" in m for m in reasons)
        assert any("open()" in m for m in reasons)
        assert any(".recv()" in m for m in reasons)
        assert any(".acquire() without await" in m for m in reasons)

    def test_awaited_and_nested_are_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """\
                import time

                async def coro(reader, lock):
                    data = await reader.recv(1)
                    await lock.acquire()

                    def helper():
                        # Runs only when called, likely via a thread
                        # pool executor — not the event loop's problem.
                        time.sleep(1)

                    return data, helper

                def plain():
                    time.sleep(1)
                """
            },
        )
        assert findings_for(tmp_path, "async-blocking") == []


class TestShmOwnershipRule:
    def test_unowned_create_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """\
                from repro.engine.pool import SharedPackedBuffer

                def leak(matrix):
                    return SharedPackedBuffer.create(matrix)
                """
            },
        )
        findings = findings_for(tmp_path, "shm-ownership")
        assert len(findings) == 1
        assert "has no owner" in findings[0].message

    def test_try_finally_owner_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """\
                from repro.engine.pool import SharedPackedBuffer

                def scoped(matrix):
                    buffer = None
                    try:
                        buffer = SharedPackedBuffer.create(matrix)
                        return buffer.digest()
                    finally:
                        if buffer is not None:
                            buffer.unlink()
                """
            },
        )
        assert findings_for(tmp_path, "shm-ownership") == []

    def test_class_owner_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """\
                from repro.engine.pool import SharedPackedBuffer

                class Owner:
                    def __init__(self, matrix):
                        self._buffer = SharedPackedBuffer.create(matrix)

                    def close(self):
                        self._buffer.unlink()
                """
            },
        )
        assert findings_for(tmp_path, "shm-ownership") == []


class TestKernelParityRule:
    NATIVE = """\
    _ABI_VERSION = 3
    _CDEF = \"\"\"
    int popcount_rows(const uint64_t *rows, int n);
    int missing_kernel(const uint64_t *rows, int n);
    \"\"\"
    __all__ = ["available", "popcount_rows", "no_fallback"]
    """
    KERNELS_C = "int popcount_rows(const uint64_t *rows, int n) { return 0; }\n"
    FALLBACK = "def popcount_rows(rows, n):\n    return 0\n"

    def tree(self, **overrides: str) -> dict[str, str]:
        files = {
            "graph/_native/native.py": self.NATIVE,
            "graph/_native/kernels.c": self.KERNELS_C,
            "graph/bitset_np.py": self.FALLBACK,
        }
        files.update(overrides)
        return files

    def lock_text(self) -> str:
        cdef = (
            "\nint popcount_rows(const uint64_t *rows, int n);\n"
            "int missing_kernel(const uint64_t *rows, int n);\n"
        )
        return render_lock(3, cdef)

    def test_cdef_fallback_and_missing_lock_fire(self, tmp_path):
        write_tree(tmp_path, self.tree())
        messages = [
            f.message for f in findings_for(tmp_path, "kernel-parity")
        ]
        assert any(
            "missing_kernel() but kernels.c does not define it" in m
            for m in messages
        )
        assert any(
            "'no_fallback' has no same-named numpy fallback" in m
            for m in messages
        )
        assert any("missing graph/_native/cdef.lock" in m for m in messages)

    def test_matching_lock_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            self.tree(
                **{
                    "graph/_native/native.py": """\
                    _ABI_VERSION = 3
                    _CDEF = \"\"\"
                    int popcount_rows(const uint64_t *rows, int n);
                    \"\"\"
                    __all__ = ["available", "popcount_rows"]
                    """,
                    "graph/_native/cdef.lock": render_lock(
                        3,
                        "int popcount_rows(const uint64_t *rows, int n);",
                    ),
                }
            ),
        )
        assert findings_for(tmp_path, "kernel-parity") == []

    def test_cdef_change_without_abi_bump_fires(self, tmp_path):
        stale = render_lock(3, "int old_signature(int n);")
        write_tree(
            tmp_path, self.tree(**{"graph/_native/cdef.lock": stale})
        )
        messages = [
            f.message for f in findings_for(tmp_path, "kernel-parity")
        ]
        assert any(
            "_CDEF changed" in m and "without an _ABI_VERSION bump" in m
            for m in messages
        )

    def test_stale_abi_in_lock_fires(self, tmp_path):
        old_abi = self.lock_text().replace("abi = 3", "abi = 2")
        write_tree(
            tmp_path, self.tree(**{"graph/_native/cdef.lock": old_abi})
        )
        messages = [
            f.message for f in findings_for(tmp_path, "kernel-parity")
        ]
        assert any("cdef.lock is stale" in m for m in messages)

    def test_whitespace_insensitive_digest(self):
        from repro.analysis.rules.kernel_parity import cdef_digest

        a = "int f(int n);\nint g(int n);"
        b = "  int  f(int n); \n\n int g(int  n);  "
        assert cdef_digest(a) == cdef_digest(b)


class TestJobThreadingRule:
    def test_unwired_field_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "engine/job.py": """\
                class EnumerationJob:
                    mode: str = "UG"
                    orphan_knob: float = 1.0
                    scratch: int = 0  # internal bookkeeping
                """,
                "cli.py": """\
                from repro.engine.job import EnumerationJob

                def run(args):
                    return EnumerationJob(mode=args.mode)
                """,
            },
        )
        findings = findings_for(tmp_path, "job-threading")
        assert len(findings) == 1
        assert "EnumerationJob.orphan_knob is not reachable" in (
            findings[0].message
        )

    def test_string_key_threading_counts(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "engine/job.py": """\
                class EnumerationJob:
                    batch_deadline_s: float = 0.0
                """,
                "cli.py": """\
                def run(args, kwargs):
                    kwargs["batch_deadline_s"] = 1.0
                """,
            },
        )
        assert findings_for(tmp_path, "job-threading") == []


class TestReporters:
    def sample(self) -> list[Finding]:
        return [Finding("pkg/mod.py", 3, "stats-registry", "boom")]

    def test_render_text(self):
        text = render_text(self.sample(), verbose=True)
        assert "pkg/mod.py:3: [stats-registry] boom" in text
        assert f"repro analyze {ANALYZER_VERSION}:" in text
        assert "1 finding(s)" in text

    def test_render_json_shape(self):
        payload = json.loads(render_json(self.sample()))
        assert payload["analyzer"]["version"] == ANALYZER_VERSION
        rule_ids = [r["id"] for r in payload["analyzer"]["rules"]]
        assert "kernel-parity" in rule_ids
        assert payload["count"] == 1
        assert payload["findings"][0] == {
            "path": "pkg/mod.py",
            "line": 3,
            "rule": "stats-registry",
            "message": "boom",
        }


class TestAnalyzeCLI:
    def seeded_root(self, tmp_path) -> str:
        write_tree(
            tmp_path,
            {
                "mod.py": """\
                import time

                async def f():
                    time.sleep(1)
                """
            },
        )
        return str(tmp_path)

    def test_strict_exit_code(self, tmp_path, capsys):
        root = self.seeded_root(tmp_path)
        assert main(["analyze", root, "--strict"]) == 1
        assert "async-blocking" in capsys.readouterr().out

    def test_non_strict_reports_but_passes(self, tmp_path, capsys):
        root = self.seeded_root(tmp_path)
        assert main(["analyze", root]) == 0
        assert "time.sleep" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        root = self.seeded_root(tmp_path)
        assert main(["analyze", root, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_rule_filter(self, tmp_path, capsys):
        root = self.seeded_root(tmp_path)
        assert (
            main(["analyze", root, "--strict", "--rule", "kernel-parity"])
            == 0
        )
        capsys.readouterr()

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path), "--rule", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out


class TestRealTreeIsClean:
    def test_installed_package_passes_strict(self):
        root = Path(repro.__file__).resolve().parent
        findings = run_analysis([root])
        assert findings == [], "\n".join(f.format() for f in findings)
