"""Unit tests for decomposition metrics (repro.decomposition.metrics)."""

from __future__ import annotations

import math

import pytest

from repro.decomposition.metrics import (
    adhesion_sizes,
    adhesion_skew,
    bag_size_histogram,
    caching_score,
    fill,
    log_table_volume,
    max_adhesion,
    summary,
    width,
)
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.graph.generators import cycle_graph, path_graph


def chain() -> TreeDecomposition:
    return TreeDecomposition.build(
        [{0, 1, 2}, {1, 2, 3}, {3, 4}], [(0, 1), (1, 2)]
    )


class TestBasics:
    def test_width(self):
        assert width(chain()) == 2

    def test_fill(self):
        g = cycle_graph(5)
        d = TreeDecomposition.build(
            [{0, 1, 2}, {0, 2, 3}, {0, 3, 4}], [(0, 1), (1, 2)]
        )
        assert fill(d, g) == 2

    def test_adhesion_sizes(self):
        assert sorted(adhesion_sizes(chain())) == [1, 2]
        assert max_adhesion(chain()) == 2

    def test_single_bag(self):
        single = TreeDecomposition.build([{0, 1}])
        assert adhesion_sizes(single) == []
        assert max_adhesion(single) == 0
        assert adhesion_skew(single) == 1.0
        assert caching_score(single) == 0.0

    def test_adhesion_skew(self):
        # Adhesions 2 and 1 -> max/mean = 2 / 1.5.
        assert adhesion_skew(chain()) == pytest.approx(2 / 1.5)

    def test_caching_score(self):
        assert caching_score(chain()) == 2**2 + 2**1

    def test_bag_size_histogram(self):
        assert bag_size_histogram(chain()) == {3: 2, 2: 1}


class TestTableVolume:
    def test_uniform_binary(self):
        # Bags of sizes 3, 3, 2 -> volume 8 + 8 + 4 = 20.
        assert log_table_volume(chain(), 2) == pytest.approx(math.log2(20))

    def test_per_variable_domains(self):
        d = TreeDecomposition.build([{0, 1}])
        volume = log_table_volume(d, {0: 3, 1: 4})
        assert volume == pytest.approx(math.log2(12))

    def test_empty_decomposition(self):
        assert log_table_volume(TreeDecomposition.build([]), 2) == float("-inf")


class TestSummary:
    def test_summary_keys(self):
        g = path_graph(5)
        from repro.decomposition.clique_tree import clique_tree

        report = summary(clique_tree(g), g)
        for key in (
            "width",
            "num_bags",
            "log_table_volume",
            "max_adhesion",
            "adhesion_skew",
            "caching_score",
            "fill",
        ):
            assert key in report
        assert report["fill"] == 0.0
        assert report["width"] == 1.0

    def test_summary_without_graph(self):
        report = summary(chain())
        assert "fill" not in report

    def test_metrics_usable_as_ranking_cost(self):
        # Integration: rank enumerated triangulations by table volume.
        from repro.core.ranked import enumerate_minimal_triangulations_prioritized
        from repro.graph.generators import grid_graph

        g = grid_graph(2, 4)
        produced = list(
            enumerate_minimal_triangulations_prioritized(
                g,
                cost=lambda t: log_table_volume(t.tree_decomposition(), 2),
            )
        )
        assert produced
        volumes = [
            log_table_volume(t.tree_decomposition(), 2) for t in produced
        ]
        # The first result is never the worst one under this priority.
        assert volumes[0] <= max(volumes)
