"""Unit tests for the graph substrate (repro.graph.graph)."""

from __future__ import annotations

import pytest

from repro.errors import (
    EdgeNotFoundError,
    NodeNotFoundError,
    SelfLoopError,
)
from repro.graph.graph import Graph, edge_key


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.nodes() == []
        assert g.edges() == []

    def test_nodes_only(self):
        g = Graph(nodes=[3, 1, 2])
        assert g.nodes() == [1, 2, 3]
        assert g.num_edges == 0

    def test_edges_add_endpoints(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.nodes() == [1, 2, 3]
        assert g.num_edges == 2

    def test_duplicate_edges_collapse(self):
        g = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            Graph(edges=[(1, 1)])

    def test_string_nodes(self):
        g = Graph(edges=[("a", "b")])
        assert g.has_edge("b", "a")

    def test_from_graph_copies(self):
        g = Graph(edges=[(1, 2)])
        h = Graph.from_graph(g)
        h.add_edge(2, 3)
        assert not g.has_node(3)


class TestMutation:
    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_node(1)
        assert g.num_nodes == 1

    def test_remove_node_drops_incident_edges(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert g.num_edges == 1
        assert g.has_edge(1, 3)
        assert not g.has_node(2)

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().remove_node(42)

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2)])
        g.remove_edge(2, 1)
        assert g.num_edges == 0
        assert g.num_nodes == 2

    def test_remove_missing_edge_raises(self):
        g = Graph(nodes=[1, 2])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 2)

    def test_remove_nodes_bulk(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        g.remove_nodes([2, 3])
        assert g.nodes() == [1, 4]
        assert g.num_edges == 0

    def test_saturate_returns_added_edges(self):
        g = Graph(edges=[(1, 2)])
        g.add_node(3)
        added = g.saturate([1, 2, 3])
        assert added == [(1, 3), (2, 3)]
        assert g.is_clique([1, 2, 3])

    def test_saturate_on_clique_adds_nothing(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        assert g.saturate([1, 2, 3]) == []

    def test_saturate_missing_node_raises(self):
        g = Graph(nodes=[1])
        with pytest.raises(NodeNotFoundError):
            g.saturate([1, 99])


class TestQueries:
    def test_degree_and_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.degree(1) == 2
        assert g.neighbors(1) == {2, 3}
        assert g.adjacency(3) == frozenset({1})

    def test_neighbors_returns_copy(self):
        g = Graph(edges=[(1, 2)])
        neigh = g.neighbors(1)
        neigh.add(99)
        assert g.neighbors(1) == {2}

    def test_degree_missing_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().degree(0)

    def test_neighborhood_of_set(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        assert g.neighborhood_of_set({2, 3}) == {1, 4}

    def test_closed_neighborhood(self):
        g = Graph(edges=[(1, 2)])
        assert g.closed_neighborhood(1) == {1, 2}

    def test_is_clique(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
        assert g.is_clique([1, 2, 3])
        assert not g.is_clique([1, 2, 4])
        assert g.is_clique([1])
        assert g.is_clique([])

    def test_is_independent_set(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        assert g.is_independent_set([1, 3])
        assert not g.is_independent_set([1, 2])

    def test_missing_edges(self):
        g = Graph(edges=[(1, 2)])
        g.add_nodes([3])
        assert g.missing_edges() == [(1, 3), (2, 3)]
        assert g.missing_edges([1, 2]) == []

    def test_contains(self):
        g = Graph(nodes=[1])
        assert 1 in g
        assert 2 not in g

    def test_edges_sorted_canonical(self):
        g = Graph(edges=[(3, 1), (2, 1)])
        assert g.edges() == [(1, 2), (1, 3)]

    def test_edge_key(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key("b", "a") == ("a", "b")


class TestDerivedGraphs:
    def test_subgraph(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3
        assert not sub.has_node(4)

    def test_subgraph_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph(nodes=[1]).subgraph([1, 2])

    def test_subgraph_is_independent_copy(self):
        g = Graph(edges=[(1, 2)])
        sub = g.subgraph([1, 2])
        sub_adj = sub.neighbors(1)
        assert sub_adj == {2}

    def test_without_nodes(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        rest = g.without_nodes([2])
        assert rest.nodes() == [1, 3]
        assert rest.num_edges == 0
        # Original untouched.
        assert g.num_edges == 2

    def test_saturated(self):
        g = Graph(nodes=[1, 2, 3, 4])
        h = g.saturated([[1, 2, 3], [3, 4]])
        assert h.is_clique([1, 2, 3])
        assert h.has_edge(3, 4)
        assert g.num_edges == 0

    def test_complement(self):
        g = Graph(edges=[(1, 2)])
        g.add_node(3)
        comp = g.complement()
        assert not comp.has_edge(1, 2)
        assert comp.has_edge(1, 3)
        assert comp.has_edge(2, 3)

    def test_complement_involution(self):
        g = Graph(edges=[(1, 2), (3, 4), (1, 4)])
        assert g.complement().complement() == g

    def test_relabeled(self):
        g = Graph(edges=[(1, 2)])
        h = g.relabeled({1: "a", 2: "b"})
        assert h.has_edge("a", "b")
        assert g.has_edge(1, 2)

    def test_relabeled_partial_mapping(self):
        g = Graph(edges=[(1, 2)])
        h = g.relabeled({1: 10})
        assert h.has_edge(10, 2)

    def test_relabeled_non_injective_raises(self):
        g = Graph(nodes=[1, 2])
        with pytest.raises(ValueError):
            g.relabeled({1: "x", 2: "x"})


class TestDunders:
    def test_equality_by_structure(self):
        g = Graph(edges=[(1, 2)])
        h = Graph(edges=[(2, 1)])
        assert g == h
        h.add_node(3)
        assert g != h

    def test_equality_other_type(self):
        assert Graph() != "not a graph"

    def test_hash_consistent_with_eq(self):
        g = Graph(edges=[(1, 2)])
        h = Graph(edges=[(1, 2)])
        assert hash(g) == hash(h)

    def test_len_and_iter(self):
        g = Graph(nodes=[2, 1])
        assert len(g) == 2
        assert list(g) == [1, 2]

    def test_repr_and_summary(self):
        g = Graph(edges=[(1, 2)])
        assert "num_nodes=2" in repr(g)
        assert "2 nodes" in g.summary()

    def test_mixed_node_types_deterministic(self):
        g = Graph(nodes=["b", 1, "a", 2])
        assert g.nodes() == g.nodes()
        assert len(g.nodes()) == 4
