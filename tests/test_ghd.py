"""Unit tests for generalized hypertree decompositions (repro.hypergraph.ghd)."""

from __future__ import annotations

import itertools

import pytest

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.hypergraph.ghd import (
    GeneralizedHypertreeDecomposition,
    enumerate_ghds,
    ghd_from_tree_decomposition,
    ghw_upper_bound,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.workloads.tpch import tpch_hypergraph, tpch_query


def triangle() -> Hypergraph:
    return Hypergraph({"R": ("x", "y"), "S": ("y", "z"), "T": ("z", "x")})


def cycle4() -> Hypergraph:
    return Hypergraph(
        {"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d"), "U": ("d", "a")}
    )


class TestGhdConstruction:
    def test_triangle_single_bag(self):
        ghd = ghd_from_tree_decomposition(
            triangle(), TreeDecomposition.build([{"x", "y", "z"}])
        )
        ghd.validate(triangle())
        assert ghd.width == 2

    def test_greedy_vs_exact(self):
        h = triangle()
        d = TreeDecomposition.build([{"x", "y", "z"}])
        exact = ghd_from_tree_decomposition(h, d, exact_covers=True)
        greedy = ghd_from_tree_decomposition(h, d, exact_covers=False)
        assert exact.width <= greedy.width

    def test_validate_rejects_bad_cover(self):
        h = triangle()
        d = TreeDecomposition.build([{"x", "y", "z"}])
        bad = GeneralizedHypertreeDecomposition(d, (("R",),))
        with pytest.raises(ValueError, match="misses"):
            bad.validate(h)

    def test_validate_rejects_cover_count_mismatch(self):
        h = cycle4()
        d = TreeDecomposition.build(
            [{"a", "b", "c"}, {"a", "c", "d"}], [(0, 1)]
        )
        with pytest.raises(ValueError, match="one cover per bag"):
            GeneralizedHypertreeDecomposition(d, (("R",),)).validate(h)

    def test_repr(self):
        ghd = ghd_from_tree_decomposition(
            triangle(), TreeDecomposition.build([{"x", "y", "z"}])
        )
        assert "width=2" in repr(ghd)


class TestEnumeration:
    def test_cycle4_ghds(self):
        produced = list(enumerate_ghds(cycle4()))
        # Two minimal triangulations of the 4-cycle primal graph.
        assert len(produced) == 2
        for ghd in produced:
            ghd.validate(cycle4())
            assert ghd.width == 2

    def test_every_ghd_valid_on_tpch(self):
        h = tpch_hypergraph("Q5")
        for ghd in itertools.islice(enumerate_ghds(h), 5):
            ghd.validate(h)

    def test_full_enumeration_mode(self):
        produced = list(enumerate_ghds(cycle4(), per_class=False))
        assert len(produced) >= 2


class TestGhwUpperBound:
    def test_acyclic_reaches_one(self):
        h = Hypergraph({"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d")})
        assert ghw_upper_bound(h) == 1

    def test_triangle_is_two(self):
        assert ghw_upper_bound(triangle()) == 2

    def test_cycle4_is_two(self):
        assert ghw_upper_bound(cycle4()) == 2

    def test_empty(self):
        assert ghw_upper_bound(Hypergraph({})) == 0

    def test_wide_acyclic_star(self):
        h = Hypergraph(
            {"F": ("k1", "k2", "k3", "k4"), "D1": ("k1", "a"), "D2": ("k2", "b")}
        )
        assert ghw_upper_bound(h) == 1

    def test_tpch_queries_have_small_ghw(self):
        for name in ("Q3", "Q5", "Q7", "Q9"):
            h = tpch_hypergraph(name)
            bound = ghw_upper_bound(h, time_budget=5.0, max_decompositions=30)
            assert 1 <= bound <= 3, name

    def test_budget_zero_still_returns_a_bound(self):
        bound = ghw_upper_bound(triangle(), time_budget=0.0)
        assert bound >= 1


class TestTpchHypergraphs:
    def test_primal_matches_query_graph(self):
        for name in ("Q1", "Q5", "Q7"):
            assert tpch_hypergraph(name).primal_graph() == tpch_query(name)

    def test_unknown_query(self):
        with pytest.raises(KeyError):
            tpch_hypergraph("Q99")
