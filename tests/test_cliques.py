"""Unit tests for clique forests (repro.chordal.cliques)."""

from __future__ import annotations

import pytest

from helpers import small_chordal_graphs
from repro.baselines.brute_force import brute_force_maximal_cliques
from repro.chordal.cliques import maximal_cliques, mcs_clique_forest, tree_width
from repro.errors import NotChordalError
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_k_tree,
    star_graph,
)
from repro.graph.graph import Graph


class TestMaximalCliques:
    def test_complete_graph_single_clique(self):
        cliques = maximal_cliques(complete_graph(5))
        assert cliques == [frozenset(range(5))]

    def test_path_graph_edges(self):
        cliques = maximal_cliques(path_graph(4))
        assert sorted(map(sorted, cliques)) == [[0, 1], [1, 2], [2, 3]]

    def test_star_graph(self):
        cliques = maximal_cliques(star_graph(4))
        assert len(cliques) == 4
        assert all(0 in c and len(c) == 2 for c in cliques)

    def test_triangle(self):
        assert maximal_cliques(cycle_graph(3)) == [frozenset({0, 1, 2})]

    def test_single_node(self):
        assert maximal_cliques(Graph(nodes=["x"])) == [frozenset({"x"})]

    def test_empty_graph(self):
        assert maximal_cliques(Graph()) == []

    def test_non_chordal_raises(self):
        with pytest.raises(NotChordalError):
            maximal_cliques(cycle_graph(4))

    def test_non_chordal_larger_cycle_raises(self):
        with pytest.raises(NotChordalError):
            maximal_cliques(cycle_graph(9))

    def test_matches_bron_kerbosch_oracle(self):
        for g in small_chordal_graphs(40, max_nodes=11):
            ours = set(maximal_cliques(g))
            oracle = brute_force_maximal_cliques(g)
            assert ours == oracle

    def test_chordal_graph_has_at_most_n_cliques(self):
        # Gavril / Fulkerson-Gross: a chordal graph has ≤ n maximal cliques.
        for g in small_chordal_graphs(25, max_nodes=12, seed=41):
            assert len(maximal_cliques(g)) <= max(g.num_nodes, 1)


class TestCliqueForest:
    def test_single_root_per_component(self):
        g = Graph(edges=[(0, 1), (1, 2), (5, 6)])
        forest = mcs_clique_forest(g)
        roots = [i for i, p in enumerate(forest.parent) if p is None]
        assert len(roots) == 2

    def test_separators_are_clique_intersections(self):
        for g in small_chordal_graphs(25, seed=61):
            forest = mcs_clique_forest(g)
            for child, parent, separator in forest.edges():
                assert separator == forest.cliques[child] & forest.cliques[parent] or (
                    separator <= forest.cliques[child]
                    and separator <= forest.cliques[parent]
                )

    def test_separator_subset_of_both_endpoints(self):
        for g in small_chordal_graphs(25, seed=67):
            forest = mcs_clique_forest(g)
            for child, parent, separator in forest.edges():
                assert separator <= forest.cliques[child]
                assert separator <= forest.cliques[parent]

    def test_clique_of_assignment_is_member(self):
        for g in small_chordal_graphs(20, seed=71):
            forest = mcs_clique_forest(g)
            for node, index in forest.clique_of.items():
                assert node in forest.cliques[index]

    def test_forest_covers_all_edges(self):
        # Every graph edge lies inside some maximal clique.
        for g in small_chordal_graphs(20, seed=73):
            forest = mcs_clique_forest(g)
            for u, v in g.edges():
                assert any(u in c and v in c for c in forest.cliques)

    def test_junction_property_of_clique_tree(self):
        # The clique forest, viewed as a tree decomposition, satisfies
        # the running-intersection property.
        from repro.decomposition.clique_tree import clique_tree

        for g in small_chordal_graphs(20, seed=79):
            decomposition = clique_tree(g)
            decomposition.validate(g)


class TestTreeWidth:
    def test_known_widths(self):
        assert tree_width(path_graph(5)) == 1
        assert tree_width(complete_graph(4)) == 3
        assert tree_width(cycle_graph(3)) == 2
        assert tree_width(Graph(nodes=[0])) == 0
        assert tree_width(Graph()) == -1

    def test_k_tree_width(self):
        for k in (1, 2, 3, 4):
            g = random_k_tree(10, k, seed=k)
            assert tree_width(g) == k
