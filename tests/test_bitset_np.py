"""Tests for the packed-bitset numpy layer and the batched edge oracle.

Covers the PR 3 acceptance properties: pack/unpack round-trips, the
vectorized crossing kernel against the scalar component walk, the
numpy graph core against ``IndexedGraph`` (identical crossing matrices
and identical enumerated triangulation sets in both printing modes),
size-adaptive backend selection, and bounded-cache eviction
correctness (an evicted pair recomputes and never flips).
"""

from __future__ import annotations

import random

import pytest

from helpers import small_random_graphs
from repro.chordal.minimal_separators import (
    are_crossing_batch_masks,
    are_crossing_masks,
    minimal_separator_masks,
)
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.graph import resolve_graph_backend
from repro.graph.bitset_np import (
    NARROW_MAX_DEGREE,
    NUMPY_THRESHOLD,
    NumpyGraphCore,
    convert_graph,
    crossing_batch,
    pack_mask,
    pack_masks,
    packed_view,
    popcount,
    select_core_class,
    unpack_row,
    unpack_rows,
    word_count,
)
from repro.graph.core import IndexedGraph
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import Graph
from repro.sgr.enum_mis import EnumMISStatistics
from repro.sgr.separator_graph import MinimalSeparatorSGR


class TestPacking:
    def test_round_trip(self):
        rng = random.Random(7)
        for __ in range(100):
            bits = rng.randint(1, 500)
            mask = rng.getrandbits(bits)
            words = word_count(bits)
            assert unpack_row(pack_mask(mask, words)) == mask

    def test_pack_masks_matrix(self):
        masks = [0, 1, (1 << 130) | 5, (1 << 64) - 1]
        words = word_count(131)
        matrix = pack_masks(masks, words)
        assert matrix.shape == (4, words)
        assert [unpack_row(row) for row in matrix] == masks

    def test_popcount_matches_bit_count(self):
        rng = random.Random(11)
        masks = [rng.getrandbits(rng.randint(1, 320)) for __ in range(40)]
        words = word_count(320)
        counts = popcount(pack_masks(masks, words))
        assert list(counts) == [mask.bit_count() for mask in masks]

    def test_word_count_floor(self):
        assert word_count(0) == 1
        assert word_count(64) == 1
        assert word_count(65) == 2


class TestCrossingKernel:
    def test_matches_scalar_on_corpus(self):
        for g in small_random_graphs(12, max_nodes=8, seed=31):
            seps = list(minimal_separator_masks(g))
            if not seps:
                continue
            core = g.core
            for s in seps:
                batch = are_crossing_batch_masks(core, s, seps)
                scalar = [are_crossing_masks(core, s, t) for t in seps]
                assert batch == scalar

    def test_kernel_direct(self):
        g = gnp_random_graph(24, 0.25, seed=5)
        seps = list(minimal_separator_masks(g))[:40]
        words = word_count(len(g.core.adj))
        for s in seps[:6]:
            components = pack_masks(g.core.components(s), words)
            remainders = pack_masks([t & ~s for t in seps], words)
            got = list(crossing_batch(components, remainders))
            expected = [are_crossing_masks(g.core, s, t) for t in seps]
            assert got == expected

    def test_empty_batch_and_many_components(self):
        # A separator with > 8 components (early-exit branch) against
        # an empty remainder matrix must return an empty vector, not
        # crash on a zero-size reduction.
        components = pack_masks([1 << i for i in range(10)], 1)
        assert list(crossing_batch(components, pack_masks([], 1))) == []
        assert list(crossing_batch(pack_masks([], 1), pack_masks([], 1))) == []
        got = crossing_batch(components, pack_masks([3, 1 | 1 << 9], 1))
        assert list(got) == [True, True]

    def test_empty_remainder_is_parallel(self):
        g = gnp_random_graph(10, 0.5, seed=3)
        seps = list(minimal_separator_masks(g))
        s = seps[0]
        # T ⊆ S gives an all-zero remainder row, which must be False.
        assert are_crossing_batch_masks(g.core, s, [s] * 6) == [False] * 6


class TestNumpyGraphCore:
    def test_query_equivalence(self):
        rng = random.Random(13)
        for n, p in ((25, 0.15), (60, 0.08), (40, 0.4)):
            g = gnp_random_graph(n, p, seed=n)
            ng = convert_graph(g, "numpy")
            assert type(ng.core) is NumpyGraphCore
            for __ in range(25):
                mask = rng.getrandbits(n) & g.core.alive
                assert g.core.neighborhood_of_set(mask) == (
                    ng.core.neighborhood_of_set(mask)
                )
                assert g.core.components(mask) == ng.core.components(mask)

    def test_mutation_invalidates_packed_cache(self):
        g = gnp_random_graph(30, 0.2, seed=9)
        ng = convert_graph(g, "numpy")
        core = ng.core
        full = core.alive
        before = core.neighborhood_of_set(full & ~3)
        u, v = 0, 1
        had = core.has_edge(u, v)
        if had:
            core.remove_edge(u, v)
        else:
            core.add_edge(u, v)
        # Recompute against the mutated adjacency through the packed path.
        mirror = IndexedGraph.__new__(IndexedGraph)
        mirror.adj = list(core.adj)
        mirror.alive = core.alive
        mirror.num_edges = core.num_edges
        assert core.neighborhood_of_set(full & ~3) == (
            mirror.neighborhood_of_set(full & ~3)
        )
        if had:
            core.add_edge(u, v)
            assert core.neighborhood_of_set(full & ~3) == before

    def test_derived_graphs_keep_backend(self):
        g = convert_graph(gnp_random_graph(20, 0.3, seed=2), "numpy")
        core = g.core
        assert type(core.copy()) is NumpyGraphCore
        assert type(core.subgraph(core.alive >> 2)) is NumpyGraphCore
        assert type(core.complement()) is NumpyGraphCore
        sub = core.subgraph(core.alive)
        assert sub.adj == core.adj and sub.alive == core.alive


class TestBackendSelection:
    def test_auto_threshold(self):
        assert select_core_class(NUMPY_THRESHOLD - 1) is IndexedGraph
        # At or above the threshold, auto picks the packed tier: the
        # native core when its compiled extension loads, else numpy.
        selected = select_core_class(NUMPY_THRESHOLD)
        assert issubclass(selected, NumpyGraphCore)
        assert select_core_class(10, "numpy") is NumpyGraphCore
        assert select_core_class(10_000, "indexed") is IndexedGraph

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            select_core_class(10, "csr")

    def test_convert_preserves_interner(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
        ng = convert_graph(g, "numpy")
        assert ng is not g
        assert ng == g
        # Identical index assignment: masks are interchangeable.
        assert ng.mask_of({"a", "c"}) == g.mask_of({"a", "c"})
        back = convert_graph(ng, "indexed")
        assert type(back.core) is IndexedGraph
        assert back == g

    def test_auto_never_downgrades_explicit_numpy(self):
        g = convert_graph(gnp_random_graph(12, 0.3, seed=1), "numpy")
        assert convert_graph(g, "auto") is g

    def test_resolve_small_graph_is_identity(self):
        g = gnp_random_graph(12, 0.3, seed=1)
        assert resolve_graph_backend(g) is g
        assert resolve_graph_backend(g, None) is g


class TestBatchOracleEquivalence:
    def test_batch_matches_scalar_on_corpus(self):
        for g in small_random_graphs(12, max_nodes=8, seed=41):
            seps = [
                g.label_set(m) for m in minimal_separator_masks(g)
            ]
            if not seps:
                continue
            batch_sgr = MinimalSeparatorSGR(g)
            scalar_sgr = MinimalSeparatorSGR(g)
            for v in seps:
                batch = batch_sgr.has_edges_batch(v, seps)
                scalar = [scalar_sgr.has_edge(v, u) for u in seps]
                assert batch == scalar

    def test_batch_counters_and_memoization(self):
        g = gnp_random_graph(14, 0.35, seed=17)
        seps = [g.label_set(m) for m in minimal_separator_masks(g)]
        stats = EnumMISStatistics()
        sgr = MinimalSeparatorSGR(g, stats=stats)
        v = seps[0]
        first = sgr.has_edges_batch(v, seps)
        assert stats.edge_cache_misses == len(seps)
        assert stats.edge_cache_hits == 0
        second = sgr.has_edges_batch(v, seps)
        assert second == first
        assert stats.edge_cache_hits == len(seps)
        # The scalar oracle shares the same cache rows.
        assert [sgr.has_edge(v, u) for u in seps] == first
        assert stats.edge_cache_misses == len(seps)

    def test_reversed_orientation_reuses_cached_pair(self):
        # Crossing is symmetric: a pair cached under one query node
        # must be found (as a hit, not a recompute) when the same pair
        # is queried through the scalar oracle the other way round.
        g = gnp_random_graph(12, 0.4, seed=37)
        seps = [g.label_set(m) for m in minimal_separator_masks(g)]
        u, v = seps[0], seps[1]
        stats = EnumMISStatistics()
        sgr = MinimalSeparatorSGR(g, stats=stats)
        first = sgr.has_edge(u, v)
        assert (stats.edge_cache_hits, stats.edge_cache_misses) == (0, 1)
        assert sgr.has_edge(v, u) == first
        assert (stats.edge_cache_hits, stats.edge_cache_misses) == (1, 1)

    def test_identical_crossing_matrices_across_backends(self):
        for g in small_random_graphs(8, max_nodes=8, seed=47):
            ng = convert_graph(g, "numpy")
            seps = [g.label_set(m) for m in minimal_separator_masks(g)]
            if not seps:
                continue
            sgr_indexed = MinimalSeparatorSGR(g)
            sgr_numpy = MinimalSeparatorSGR(ng)
            matrix_indexed = [
                sgr_indexed.has_edges_batch(v, seps) for v in seps
            ]
            matrix_numpy = [
                sgr_numpy.has_edges_batch(v, seps) for v in seps
            ]
            assert matrix_indexed == matrix_numpy


class TestEnumerationEquivalence:
    def test_identical_answer_sets_both_modes(self):
        for g in small_random_graphs(10, max_nodes=8, seed=53):
            for mode in ("UG", "UP"):
                indexed = {
                    t.fill_edges
                    for t in enumerate_minimal_triangulations(g, mode=mode)
                }
                numpy_backend = {
                    t.fill_edges
                    for t in enumerate_minimal_triangulations(
                        g, mode=mode, graph_backend="numpy"
                    )
                }
                assert indexed == numpy_backend

    def test_engine_backends_with_numpy_core(self):
        from repro.engine import EnumerationEngine, EnumerationJob

        g = gnp_random_graph(13, 0.35, seed=29)
        reference = {
            t.fill_edges
            for t in EnumerationEngine("serial").stream(EnumerationJob(g))
        }
        forced = {
            t.fill_edges
            for t in EnumerationEngine("serial").stream(
                EnumerationJob(g, graph_backend="numpy")
            )
        }
        sharded = {
            t.fill_edges
            for t in EnumerationEngine("sharded", workers=2).stream(
                EnumerationJob(g, graph_backend="numpy")
            )
        }
        assert reference == forced == sharded
        assert reference

    def test_job_rejects_unknown_graph_backend(self):
        from repro.engine import EngineError, EnumerationJob

        job = EnumerationJob(gnp_random_graph(6, 0.5, seed=1), graph_backend="csr")
        with pytest.raises(EngineError):
            job.validate()


class TestBoundedEdgeCache:
    def test_eviction_recomputes_and_never_flips(self):
        g = gnp_random_graph(12, 0.4, seed=11)
        seps = [g.label_set(m) for m in minimal_separator_masks(g)]
        reference = MinimalSeparatorSGR(g, edge_cache_limit=None)
        answers = {
            (u, v): reference.has_edge(u, v)
            for u in seps
            for v in seps
        }
        stats = EnumMISStatistics()
        sgr = MinimalSeparatorSGR(g, stats=stats, edge_cache_limit=8)
        rng = random.Random(3)
        pairs = list(answers)
        for __ in range(4):
            rng.shuffle(pairs)
            for u, v in pairs:
                assert sgr.has_edge(u, v) == answers[(u, v)]
        assert stats.edge_cache_evictions > 0
        # Two generations of at most the limit each.
        assert sgr.edge_cache_size <= 2 * 8

    def test_eviction_correct_through_batch_oracle(self):
        g = gnp_random_graph(12, 0.4, seed=19)
        seps = [g.label_set(m) for m in minimal_separator_masks(g)]
        reference = MinimalSeparatorSGR(g, edge_cache_limit=None)
        expected = {
            v: reference.has_edges_batch(v, seps) for v in seps
        }
        stats = EnumMISStatistics()
        sgr = MinimalSeparatorSGR(g, stats=stats, edge_cache_limit=5)
        for __ in range(3):
            for v in seps:
                assert sgr.has_edges_batch(v, seps) == expected[v]
        assert stats.edge_cache_evictions > 0
        assert (
            stats.edge_cache_hits + stats.edge_cache_misses
            == 3 * len(seps) * len(seps)
        )

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            MinimalSeparatorSGR(
                gnp_random_graph(5, 0.5, seed=1), edge_cache_limit=0
            )

    def test_unbounded_cache_never_evicts(self):
        g = gnp_random_graph(10, 0.4, seed=23)
        seps = [g.label_set(m) for m in minimal_separator_masks(g)]
        stats = EnumMISStatistics()
        sgr = MinimalSeparatorSGR(g, stats=stats, edge_cache_limit=None)
        for v in seps:
            sgr.has_edges_batch(v, seps)
        assert stats.edge_cache_evictions == 0
        assert sgr.edge_cache_size == len(seps) * len(seps)


class TestWidthAdaptiveGate:
    """Deep/narrow graphs route back to the int-mask Extend path."""

    def _numpy_graph(self, graph: Graph) -> Graph:
        return convert_graph(graph, "numpy")

    def test_narrow_shapes_are_gated(self):
        from repro.graph.generators import cycle_graph, path_graph

        for g in (cycle_graph(60), path_graph(40)):
            core = self._numpy_graph(g).core
            assert core.is_narrow()
            assert packed_view(core) is None

    def test_wide_shapes_are_not_gated(self):
        g = self._numpy_graph(gnp_random_graph(40, 0.3, seed=12))
        assert not g.core.is_narrow()
        assert packed_view(g.core) is not None

    def test_one_chord_flips_the_gate(self):
        from repro.graph.generators import cycle_graph

        g = cycle_graph(30)
        assert self._numpy_graph(g).core.is_narrow()
        g.add_edge(0, 15)  # one degree-3 vertex: no longer narrow
        assert not self._numpy_graph(g).core.is_narrow()

    def test_gate_threshold_is_frontier_width_two(self):
        assert NARROW_MAX_DEGREE == 2

    def test_cached_verdict_invalidates_on_mutation(self):
        from repro.graph.generators import cycle_graph

        core = self._numpy_graph(cycle_graph(20)).core
        assert core.is_narrow() and core.is_narrow()  # cached path too
        core.add_edge(0, 10)
        assert not core.is_narrow()
        core.remove_edge(0, 10)
        assert core.is_narrow()
        # Saturation raises degrees in place (the one mutation that
        # keeps the packed mirror live) and must drop the verdict too.
        core.saturate(0b1111)
        assert not core.is_narrow()

    def test_gated_triangulation_matches_reference(self):
        # The gate only selects kernels: a numpy-backed long cycle must
        # produce exactly the int-mask results through the whole Extend
        # pipeline (MCS-M, LB-Triang, the enumeration on top).
        from repro.chordal.triangulate import lb_triang, mcs_m
        from repro.graph.generators import cycle_graph

        long_cycle = cycle_graph(48)
        packed_cycle = self._numpy_graph(long_cycle)
        assert mcs_m(packed_cycle) == mcs_m(long_cycle)
        assert lb_triang(packed_cycle) == lb_triang(long_cycle)
        # Full enumeration on a cycle short enough to finish (the
        # minimal triangulations of C_n number Catalan(n - 2)).
        indexed = cycle_graph(9)
        packed = self._numpy_graph(indexed)
        expected = {
            frozenset(t.fill_edges)
            for t in enumerate_minimal_triangulations(indexed)
        }
        got = {
            frozenset(t.fill_edges)
            for t in enumerate_minimal_triangulations(
                packed, graph_backend=None
            )
        }
        assert got == expected

    def test_unpack_rows_round_trips(self):
        rng = random.Random(31)
        masks = [rng.getrandbits(200) for __ in range(17)]
        words = word_count(200)
        assert unpack_rows(pack_masks(masks, words)) == masks
