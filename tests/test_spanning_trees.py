"""Unit tests for maximum-spanning-tree enumeration (S21)."""

from __future__ import annotations

import itertools
import random

from repro.decomposition.spanning_trees import (
    enumerate_maximum_spanning_trees,
    enumerate_spanning_trees,
    maximum_spanning_tree,
    maximum_spanning_weight,
)


def brute_force_spanning_trees(num_nodes, edges):
    """All spanning forests (max #edges acyclic sets) by exhaustion."""
    # Determine forest size = n - #components of the whole graph.
    def component_count(chosen):
        parent = list(range(num_nodes))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        merges = 0
        for index in chosen:
            u, v = edges[index][0], edges[index][1]
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
                merges += 1
        return num_nodes - merges

    target_components = component_count(range(len(edges)))
    size = num_nodes - target_components
    found = set()
    for subset in itertools.combinations(range(len(edges)), size):
        if component_count(subset) == target_components:
            found.add(frozenset(subset))
    return found


class TestKruskal:
    def test_simple_triangle(self):
        edges = [(0, 1, 5), (1, 2, 3), (0, 2, 1)]
        tree = maximum_spanning_tree(3, edges)
        assert tree == [0, 1]
        assert maximum_spanning_weight(3, edges) == 8

    def test_forest_on_disconnected(self):
        edges = [(0, 1, 2), (2, 3, 7)]
        assert maximum_spanning_tree(4, edges) == [0, 1]

    def test_empty(self):
        assert maximum_spanning_tree(3, []) == []
        assert maximum_spanning_weight(0, []) == 0


class TestAllSpanningTrees:
    def test_triangle_has_three(self):
        trees = set(enumerate_spanning_trees(3, [(0, 1), (1, 2), (0, 2)]))
        assert len(trees) == 3

    def test_matches_brute_force(self):
        rng = random.Random(8)
        for __ in range(15):
            n = rng.randint(2, 6)
            pairs = list(itertools.combinations(range(n), 2))
            m = rng.randint(1, len(pairs))
            chosen = rng.sample(pairs, m)
            edges = [(u, v, 1) for u, v in chosen]
            ours = set(enumerate_spanning_trees(n, [(u, v) for u, v, _ in edges]))
            oracle = brute_force_spanning_trees(n, edges)
            assert ours == oracle

    def test_parallel_edges_distinct(self):
        # A multigraph with two parallel edges has two spanning trees.
        trees = set(enumerate_spanning_trees(2, [(0, 1), (0, 1)]))
        assert trees == {frozenset({0}), frozenset({1})}

    def test_single_node(self):
        assert set(enumerate_spanning_trees(1, [])) == {frozenset()}


class TestAllMaximumSpanningTrees:
    def test_uniform_weights_equals_all_spanning_trees(self):
        pairs = [(0, 1), (1, 2), (0, 2), (2, 3)]
        weighted = [(u, v, 1) for u, v in pairs]
        msts = set(enumerate_maximum_spanning_trees(4, weighted))
        all_trees = set(enumerate_spanning_trees(4, pairs))
        assert msts == all_trees

    def test_unique_maximum(self):
        edges = [(0, 1, 9), (1, 2, 9), (0, 2, 1)]
        msts = list(enumerate_maximum_spanning_trees(3, edges))
        assert msts == [frozenset({0, 1})]

    def test_tie_between_light_edges(self):
        edges = [(0, 1, 9), (1, 2, 1), (0, 2, 1)]
        msts = set(enumerate_maximum_spanning_trees(3, edges))
        assert msts == {frozenset({0, 1}), frozenset({0, 2})}

    def test_matches_brute_force_weighted(self):
        rng = random.Random(21)
        for __ in range(20):
            n = rng.randint(2, 6)
            pairs = list(itertools.combinations(range(n), 2))
            m = rng.randint(1, len(pairs))
            chosen = rng.sample(pairs, m)
            edges = [(u, v, rng.randint(1, 3)) for u, v in chosen]
            best = maximum_spanning_weight(n, edges)
            oracle = {
                tree
                for tree in brute_force_spanning_trees(n, edges)
                if sum(edges[i][2] for i in tree) == best
            }
            ours = set(enumerate_maximum_spanning_trees(n, edges))
            assert ours == oracle

    def test_every_result_has_maximum_weight(self):
        edges = [(0, 1, 2), (1, 2, 2), (2, 3, 1), (3, 0, 1), (0, 2, 2)]
        best = maximum_spanning_weight(4, edges)
        for tree in enumerate_maximum_spanning_trees(4, edges):
            assert sum(edges[i][2] for i in tree) == best

    def test_no_duplicates(self):
        pairs = list(itertools.combinations(range(5), 2))
        edges = [(u, v, 1) for u, v in pairs]
        produced = list(enumerate_maximum_spanning_trees(5, edges))
        assert len(produced) == len(set(produced))
        # Cayley: K5 has 125 spanning trees.
        assert len(produced) == 125

    def test_zero_nodes(self):
        assert list(enumerate_maximum_spanning_trees(0, [])) == [frozenset()]
