"""Property tests for the integer-indexed bitset core (graph/core.py).

The label-based :class:`Graph` façade and the :class:`IndexedGraph`
core must agree on every structural question; these tests drive both
through the shared random-graph corpus and through targeted mutation
sequences, plus round-trip tests for the :class:`NodeInterner` on
mixed int/str label sets.
"""

from __future__ import annotations

import pytest

from helpers import small_chordal_graphs, small_random_graphs

from repro.errors import NodeNotFoundError
from repro.graph.components import components_without, connected_components
from repro.graph.core import IndexedGraph, NodeInterner, bit_list, iter_bits
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import Graph


CORPUS = small_random_graphs(25) + small_chordal_graphs(10)


def mask_to_labels(graph: Graph, mask: int) -> frozenset:
    return frozenset(graph.label_of(i) for i in iter_bits(mask))


class TestBitHelpers:
    def test_iter_bits_matches_binary(self):
        for mask in [0, 1, 2, 0b1011, 1 << 40, (1 << 100) | 7]:
            expected = [i for i in range(mask.bit_length()) if mask >> i & 1]
            assert list(iter_bits(mask)) == expected
            assert bit_list(mask) == expected


class TestInternerRoundTrip:
    def test_mixed_labels_round_trip(self):
        interner = NodeInterner()
        labels = [3, "a", 0, "b", ("t", 1), 7]
        indices = [interner.intern(label) for label in labels]
        assert len(set(indices)) == len(labels)
        for label, index in zip(labels, indices):
            assert interner.label_of(index) == label
            assert interner.index(label) == index
            assert label in interner
        assert sorted(interner.items(), key=lambda kv: kv[1]) == list(
            zip(labels, indices)
        )

    def test_intern_is_idempotent(self):
        interner = NodeInterner()
        assert interner.intern("x") == interner.intern("x")
        assert len(interner) == 1

    def test_release_recycles_slots(self):
        interner = NodeInterner()
        a = interner.intern("a")
        interner.intern("b")
        freed = interner.release("a")
        assert freed == a
        assert "a" not in interner
        assert interner.intern("c") == a  # slot reuse
        assert interner.label_of(a) == "c"

    def test_relabeled_requires_injectivity(self):
        interner = NodeInterner()
        interner.intern(1)
        interner.intern(2)
        renamed = interner.relabeled({1: "one"})
        assert renamed.index("one") == interner.index(1)
        assert renamed.index(2) == interner.index(2)
        with pytest.raises(ValueError):
            interner.relabeled({1: 2})

    def test_graph_round_trip_through_interner(self):
        g = Graph(edges=[("a", 1), (1, "b"), ("b", "a"), (2, "a")])
        for node in g.nodes():
            assert g.label_of(g.index_of(node)) == node
        assert g.label_set(g.mask_of(["a", 1])) == frozenset(["a", 1])
        with pytest.raises(NodeNotFoundError):
            g.mask_of(["missing"])
        assert g.mask_of(["missing"], strict=False) == 0


class TestCoreAgreesWithGraph:
    def test_nodes_edges_degrees(self):
        for g in CORPUS:
            core = g.core
            assert core.num_vertices == g.num_nodes
            assert core.num_edges == g.num_edges
            assert mask_to_labels(g, core.alive) == g.node_set()
            for node in g.nodes():
                index = g.index_of(node)
                assert core.degree(index) == g.degree(node)
                assert mask_to_labels(g, core.adj[index]) == g.adjacency(node)

    def test_edge_pairs_match_edge_set(self):
        for g in CORPUS:
            pairs = {
                frozenset((g.label_of(u), g.label_of(v)))
                for u, v in g.core.edge_pairs()
            }
            assert pairs == set(g.edge_set())

    def test_neighborhood_of_set(self):
        for g in CORPUS:
            nodes = g.nodes()
            for k in (1, 2, max(1, len(nodes) // 2)):
                subset = nodes[:k]
                mask = g.mask_of(subset)
                assert mask_to_labels(
                    g, g.core.neighborhood_of_set(mask)
                ) == g.neighborhood_of_set(subset)

    def test_clique_and_independence(self):
        for g in CORPUS:
            nodes = g.nodes()
            subset = nodes[: max(1, len(nodes) // 2)]
            mask = g.mask_of(subset)
            assert g.core.is_clique(mask) == g.is_clique(subset)
            assert g.core.is_independent_set(mask) == g.is_independent_set(subset)
            assert g.core.missing_pair_count(mask) == len(g.missing_edges(subset))

    def test_saturation_agrees(self):
        for g in CORPUS:
            nodes = g.nodes()
            subset = nodes[: max(2, len(nodes) // 2)]
            by_labels = g.copy()
            label_fill = {frozenset(e) for e in by_labels.saturate(subset)}
            by_masks = g.copy()
            mask_fill = {
                frozenset((g.label_of(u), g.label_of(v)))
                for u, v in by_masks.core.saturate(g.mask_of(subset))
            }
            assert label_fill == mask_fill
            assert by_labels == by_masks
            assert by_masks.num_edges == by_masks.core.num_edges

    def test_components_agree_with_bfs_oracle(self):
        for g in CORPUS:
            nodes = g.nodes()
            removed = nodes[: len(nodes) // 3]
            got = components_without(g, removed)
            # Oracle: label-level BFS.
            expected = []
            seen: set = set(removed)
            for start in nodes:
                if start in seen:
                    continue
                component = {start}
                stack = [start]
                while stack:
                    node = stack.pop()
                    for neigh in g.neighbors(node):
                        if neigh not in seen and neigh not in component:
                            component.add(neigh)
                            stack.append(neigh)
                seen |= component
                expected.append(frozenset(component))
            assert got == expected

    def test_subgraph_and_complement(self):
        for g in CORPUS:
            nodes = g.nodes()
            keep = nodes[: max(1, 2 * len(nodes) // 3)]
            sub = g.subgraph(keep)
            assert sub.node_set() == frozenset(keep)
            assert sub.num_edges == sub.core.num_edges
            for u, v in sub.edges():
                assert g.has_edge(u, v)
            comp = g.complement()
            n = g.num_nodes
            assert comp.num_edges == n * (n - 1) // 2 - g.num_edges
            assert comp.core.num_edges == comp.num_edges


class TestEdgeCounterIsMaintained:
    def test_counter_through_mutations(self):
        g = gnp_random_graph(12, 0.4, seed=3)

        def recount(graph: Graph) -> int:
            return sum(graph.degree(node) for node in graph.nodes()) // 2

        assert g.num_edges == recount(g)
        g.add_edge("new", 0)
        g.add_edge("new", 1)
        assert g.num_edges == recount(g)
        g.remove_edge("new", 0)
        assert g.num_edges == recount(g)
        g.remove_node(1)
        assert g.num_edges == recount(g)
        g.saturate(list(g.nodes())[:5])
        assert g.num_edges == recount(g)
        g.remove_nodes(list(g.nodes())[:3])
        assert g.num_edges == recount(g)

    def test_counter_after_node_slot_reuse(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        g.remove_node(1)
        assert g.num_edges == 0
        g.add_edge(1, 0)  # 1 gets a recycled slot
        g.add_edge(1, 2)
        assert g.num_edges == 2
        assert g.neighbors(1) == {0, 2}


class TestDeterminismSurvivesInterningOrder:
    def test_insertion_order_does_not_change_results(self):
        base = gnp_random_graph(10, 0.5, seed=11)
        edges = base.edges()
        shuffled = Graph(nodes=reversed(base.nodes()), edges=reversed(edges))
        assert shuffled == base
        assert shuffled.nodes() == base.nodes()
        assert shuffled.edges() == base.edges()
        assert connected_components(shuffled) == connected_components(base)

    def test_separator_and_enumeration_order_invariant(self):
        from repro.chordal.minimal_separators import minimal_separators
        from repro.core.enumerate import enumerate_minimal_triangulations

        base = gnp_random_graph(9, 0.45, seed=13)
        shuffled = Graph(nodes=reversed(base.nodes()), edges=reversed(base.edges()))
        assert list(minimal_separators(shuffled)) == list(minimal_separators(base))
        first_of = lambda g: [
            t.fill_edges
            for __, t in zip(range(5), enumerate_minimal_triangulations(g))
        ]
        assert first_of(shuffled) == first_of(base)


class TestSGREdgeCacheCounters:
    def test_cache_hits_and_misses_are_counted(self):
        from repro.core.enumerate import enumerate_minimal_triangulations
        from repro.sgr.enum_mis import EnumMISStatistics

        g = gnp_random_graph(9, 0.5, seed=21)
        stats = EnumMISStatistics()
        list(enumerate_minimal_triangulations(g, stats=stats))
        assert stats.edge_cache_misses > 0
        # Every oracle call is either a hit or a miss.
        assert (
            stats.edge_cache_hits + stats.edge_cache_misses
            == stats.edge_oracle_calls
        )
        snapshot = stats.snapshot()
        assert snapshot["edge_cache_hits"] == stats.edge_cache_hits
        assert snapshot["edge_cache_misses"] == stats.edge_cache_misses

    def test_memoized_oracle_agrees_with_plain_crossing(self):
        from repro.chordal.minimal_separators import (
            all_minimal_separators,
            are_crossing,
        )
        from repro.sgr.separator_graph import MinimalSeparatorSGR

        for g in small_random_graphs(8, max_nodes=7, seed=5):
            sgr = MinimalSeparatorSGR(g)
            separators = sorted(all_minimal_separators(g), key=sorted)
            for s in separators:
                for t in separators:
                    assert sgr.has_edge(s, t) == are_crossing(g, s, t)
            # Asking again is served from the cache and stays consistent.
            for s in separators:
                for t in separators:
                    assert sgr.has_edge(s, t) == are_crossing(g, s, t)


class TestIndexedGraphStandalone:
    def test_direct_core_usage(self):
        core = IndexedGraph(4)
        core.add_edge(0, 1)
        core.add_edge(1, 2)
        assert core.num_edges == 2
        assert core.has_edge(2, 1)
        assert not core.has_edge(0, 2)
        assert core.components() == [0b111, 0b1000]
        core.remove_vertex(1)
        assert core.num_edges == 0
        assert list(core.vertices()) == [0, 2, 3]

    def test_expand_component_restricted(self):
        core = IndexedGraph(5)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            core.add_edge(u, v)
        # Remove the middle vertex: two components.
        assert core.components(removed=0b100) == [0b11, 0b11000]
        assert core.full_components(0b100) == [0b11, 0b11000]
