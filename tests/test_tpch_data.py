"""Unit tests for the synthetic TPC-H instance generator."""

from __future__ import annotations

import itertools

from repro.db import evaluate_naive, evaluate_with_ghd
from repro.hypergraph import Hypergraph, enumerate_ghds
from repro.workloads.tpch_data import instance_for, tpch_instance


class TestInstanceGeneration:
    def test_one_relation_per_edge(self):
        h = Hypergraph({"R": ("x", "y"), "S": ("y", "z")})
        instance = instance_for(h, rows_per_relation=30, seed=1)
        assert set(instance) == {"R", "S"}
        for name, relation in instance.items():
            assert set(relation.attributes) == set(map(str, h.edge(name)))
            assert 1 <= len(relation) <= 30

    def test_deterministic(self):
        h = Hypergraph({"R": ("x", "y")})
        assert instance_for(h, seed=5) == instance_for(h, seed=5)
        assert instance_for(h, seed=5) != instance_for(h, seed=6)

    def test_skew_produces_hot_values(self):
        h = Hypergraph({"R": ("x",)})
        instance = instance_for(h, rows_per_relation=400, domain=50, skew=1.5, seed=2)
        values = [row[0] for row in instance["R"].rows]
        # With heavy skew, low ranks dominate the support.
        assert min(values) == 0

    def test_tpch_instance_wrapper(self):
        hypergraph, instance = tpch_instance("Q5", rows_per_relation=20, seed=3)
        assert set(instance) == set(hypergraph.edge_names())


class TestEvaluationOnTpchData:
    def test_q5_all_plans_agree(self):
        hypergraph, instance = tpch_instance("Q5", rows_per_relation=25, seed=4)
        expected = evaluate_naive(hypergraph, instance)
        for ghd in itertools.islice(enumerate_ghds(hypergraph), 4):
            result = evaluate_with_ghd(hypergraph, instance, ghd)
            assert result == expected.project(result.attributes)

    def test_acyclic_query_evaluates(self):
        hypergraph, instance = tpch_instance("Q3", rows_per_relation=25, seed=5)
        expected = evaluate_naive(hypergraph, instance)
        ghd = next(enumerate_ghds(hypergraph))
        result = evaluate_with_ghd(hypergraph, instance, ghd)
        assert result == expected.project(result.attributes)
