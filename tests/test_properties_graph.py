"""Property-based tests (hypothesis) for the graph substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import (
    components_without,
    connected_components,
    is_separator,
)
from repro.graph.graph import Graph, edge_key


@st.composite
def graphs(draw, max_nodes: int = 10):
    """Random simple graphs on nodes 0..n-1."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    g = Graph(nodes=range(n))
    if n >= 2:
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        chosen = draw(
            st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        )
        g.add_edges(chosen)
    return g


@given(graphs())
def test_components_partition_nodes(g):
    comps = connected_components(g)
    union = set()
    for comp in comps:
        assert not (union & comp)
        union |= comp
    assert union == g.node_set()


@given(graphs(), st.data())
def test_components_without_exclude_removed(g, data):
    removed = data.draw(
        st.lists(st.sampled_from(sorted(g.node_set()) or [0]), unique=True)
        if g.num_nodes
        else st.just([])
    )
    removed = [r for r in removed if g.has_node(r)]
    comps = components_without(g, removed)
    for comp in comps:
        assert not (comp & set(removed))


@given(graphs())
def test_complement_involution(g):
    assert g.complement().complement() == g


@given(graphs())
def test_complement_edge_count(g):
    n = g.num_nodes
    assert g.num_edges + g.complement().num_edges == n * (n - 1) // 2


@given(graphs())
def test_copy_is_equal_but_independent(g):
    h = g.copy()
    assert g == h
    h.add_node("sentinel")
    assert not g.has_node("sentinel")


@given(graphs(), st.data())
def test_saturate_makes_clique(g, data):
    if g.num_nodes == 0:
        return
    subset = data.draw(
        st.lists(st.sampled_from(g.nodes()), unique=True, min_size=1)
    )
    added = g.saturate(subset)
    assert g.is_clique(subset)
    for u, v in added:
        assert edge_key(u, v) == (u, v)
    # Saturating again adds nothing.
    assert g.saturate(subset) == []


@given(graphs(), st.data())
def test_subgraph_edges_are_restriction(g, data):
    subset = data.draw(
        st.lists(st.sampled_from(g.nodes()), unique=True)
        if g.num_nodes
        else st.just([])
    )
    sub = g.subgraph(subset)
    assert sub.node_set() == frozenset(subset)
    for u in subset:
        for v in subset:
            if u != v:
                assert sub.has_edge(u, v) == g.has_edge(u, v)


@given(graphs())
@settings(max_examples=50)
def test_degree_sum_equals_twice_edges(g):
    assert sum(g.degree(v) for v in g.nodes()) == 2 * g.num_edges


@given(graphs(max_nodes=8), st.data())
def test_separator_check_stable_under_node_order(g, data):
    if g.num_nodes < 3:
        return
    subset = data.draw(st.lists(st.sampled_from(g.nodes()), unique=True, max_size=3))
    assert is_separator(g, subset) == is_separator(g, list(reversed(subset)))
