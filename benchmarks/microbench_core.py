#!/usr/bin/env python
"""Microbenchmark: enumeration wall-clock versus a recorded baseline.

Measures ``enumerate_minimal_triangulations`` on the canonical
acceptance graph (seeded 30-node Gnp(0.35), first 200 results) and
compares against the baseline committed in ``baselines.json``.  The
shipped baseline was measured from the seed (pre-bitset-core)
implementation at commit ``eeb433e`` on the reference dev container;
the refactor of the graph substrate onto the integer-indexed bitset
core was accepted at ≥3× against it.

Each entry in ``baselines.json`` is ``label → {seconds, ...}``; future
PRs append their own labelled measurements with ``--record <label>`` so
the file accumulates a perf trajectory::

    PYTHONPATH=src python benchmarks/microbench_core.py                # compare
    PYTHONPATH=src python benchmarks/microbench_core.py --record pr7  # append
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time
from pathlib import Path

from repro.core.enumerate import enumerate_minimal_triangulations
from repro.graph.generators import gnp_random_graph

BASELINES_PATH = Path(__file__).parent / "baselines.json"

GRAPH_NODES = 30
GRAPH_P = 0.35
GRAPH_SEED = 12345
RESULTS = 200
REPEATS = 3


def measure_once() -> float:
    graph = gnp_random_graph(GRAPH_NODES, GRAPH_P, seed=GRAPH_SEED)
    start = time.perf_counter()
    produced = 0
    for __ in enumerate_minimal_triangulations(graph):
        produced += 1
        if produced >= RESULTS:
            break
    elapsed = time.perf_counter() - start
    if produced < RESULTS:
        raise RuntimeError(
            f"benchmark graph yielded only {produced} < {RESULTS} results"
        )
    return elapsed


def measure() -> float:
    return statistics.median(measure_once() for __ in range(REPEATS))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record",
        metavar="LABEL",
        help="append the measurement to baselines.json under LABEL",
    )
    parser.add_argument(
        "--against",
        default="seed",
        help="baseline label to compare against (default: seed)",
    )
    args = parser.parse_args()

    baselines = json.loads(BASELINES_PATH.read_text())
    seconds = measure()
    print(
        f"enumerate_minimal_triangulations: Gnp({GRAPH_NODES}, {GRAPH_P}, "
        f"seed={GRAPH_SEED}), first {RESULTS} results, median of {REPEATS}: "
        f"{seconds:.3f}s"
    )

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1

    reference = baselines.get(args.against)
    if reference is None:
        print(f"no baseline named {args.against!r} in {BASELINES_PATH.name}")
    elif "cores" in reference and reference["cores"] != cores:
        # Baselines are conditioned on the machine they were measured
        # on; comparisons match on the cores field, not the name alone.
        print(
            f"baseline '{args.against}' was recorded on "
            f"{reference['cores']} core(s); this machine has {cores} — "
            "not comparable, skipping speedup"
        )
    else:
        speedup = reference["seconds"] / seconds
        print(
            f"baseline '{args.against}': {reference['seconds']:.3f}s "
            f"→ speedup {speedup:.2f}x"
        )

    if args.record:
        baselines[args.record] = {
            "seconds": round(seconds, 4),
            "graph": {"n": GRAPH_NODES, "p": GRAPH_P, "seed": GRAPH_SEED},
            "results": RESULTS,
            "repeats": REPEATS,
            "cores": cores,
        }
        BASELINES_PATH.write_text(json.dumps(baselines, indent=2) + "\n")
        print(f"recorded as '{args.record}' in {BASELINES_PATH.name}")


if __name__ == "__main__":
    main()
