#!/usr/bin/env python
"""Quick per-stage timing smoke for the enumeration pipeline.

Runs each hot stage of the pipeline on seeded random graphs and prints
a small timing table — enough to spot a regression at a glance and to
give CI a perf trajectory without the full benchmark suite.  Sizes are
tiny by default; scale with ``--nodes`` / ``--results`` locally.

Usage::

    PYTHONPATH=src python benchmarks/run_quick.py [--nodes 30] [--p 0.35]
                                                  [--results 200] [--seed 12345]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis import ANALYZER_VERSION, all_rules
from repro.chordal.cliques import mcs_clique_forest
from repro.chordal.minimal_separators import (
    all_minimal_separators,
    are_crossing,
)
from repro.chordal.triangulate import lb_triang, mcs_m
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.core.extend import minimal_triangulation_via
from repro.graph import bitset_np
from repro.graph._native import native
from repro.graph.components import connected_components
from repro.graph.generators import gnp_random_graph
from repro.sgr.enum_mis import EnumMISStatistics


def timed(label: str, fn, *args, repeat: int = 1, **kwargs):
    start = time.perf_counter()
    result = None
    for __ in range(repeat):
        result = fn(*args, **kwargs)
    elapsed = (time.perf_counter() - start) / repeat
    print(f"  {label:<38} {elapsed * 1000:10.2f} ms")
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--p", type=float, default=0.35)
    parser.add_argument("--results", type=int, default=200)
    parser.add_argument("--seed", type=int, default=12345)
    args = parser.parse_args()

    graph = gnp_random_graph(args.nodes, args.p, seed=args.seed)
    print(
        f"graph: Gnp(n={args.nodes}, p={args.p}, seed={args.seed}) — "
        f"{graph.num_nodes} nodes, {graph.num_edges} edges"
    )
    packed_tier = "native (compiled C)" if native.available() else "numpy"
    print(
        f"kernel tier: {bitset_np.core_backend_name(graph.core)} core "
        f"active for this graph; packed tier above "
        f"n={bitset_np.NUMPY_THRESHOLD}: {packed_tier}"
    )
    # Recorded next to the kernel tier so a perf measurement states
    # which invariant battery the tree passed when it was taken.
    print(
        f"analyzer: repro analyze {ANALYZER_VERSION} "
        f"({len(all_rules())} rules)"
    )
    print("per-stage timings (average of repeats):")

    timed("connected_components", connected_components, graph, repeat=20)
    fill, __ = timed("mcs_m (minimal triangulation)", mcs_m, graph, repeat=5)
    print(f"    mcs_m fill edges: {len(fill)}")
    timed("lb_triang (min_fill heuristic)", lb_triang, graph, repeat=3)
    triangulated = timed(
        "minimal_triangulation_via('mcs_m')",
        minimal_triangulation_via,
        graph,
        "mcs_m",
        repeat=5,
    )
    timed("mcs_clique_forest (chordal)", mcs_clique_forest, triangulated, repeat=5)
    separators = timed("all_minimal_separators", all_minimal_separators, graph)
    print(f"    |MinSep| = {len(separators)}")
    sample = sorted(separators, key=sorted)[:30]

    def crossing_scan():
        return sum(
            1 for s in sample for t in sample if are_crossing(graph, s, t)
        )

    timed(f"are_crossing ({len(sample)}x{len(sample)} pairs)", crossing_scan)

    stats = EnumMISStatistics()

    def enumerate_some():
        count = 0
        for __ in enumerate_minimal_triangulations(graph, stats=stats):
            count += 1
            if count >= args.results:
                break
        return count

    start = time.perf_counter()
    produced = enumerate_some()
    elapsed = time.perf_counter() - start
    print(
        f"  enumerate_minimal_triangulations       {elapsed * 1000:10.2f} ms"
        f"  ({produced} results)"
    )
    snap = stats.snapshot()
    print(
        "    stats: "
        f"extend_calls={snap['extend_calls']} "
        f"edge_oracle_calls={snap['edge_oracle_calls']} "
        f"cache_hits={snap['edge_cache_hits']} "
        f"cache_misses={snap['edge_cache_misses']}"
    )


if __name__ == "__main__":
    main()
