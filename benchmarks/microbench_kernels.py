#!/usr/bin/env python
"""Microbenchmark: numpy vs native C word-matrix kernels.

Times the raw packed-``uint64`` kernels of the two vectorized graph
tiers against each other on identical buffers — no graph objects, no
enumeration state, just the kernel call.  This isolates exactly what
the PR 6 native tier replaces: numpy per-call dispatch and temporary
allocation in the inner loops that :mod:`repro.graph.bitset_np` cannot
fuse.

Measured kernels (the first two are the PR 6 acceptance micro-kernels;
the target is >= 5x native-over-numpy at ``n >= 2500``):

* ``crossing_batch``   — fused ANDN + early-exit component count over
  ``(k, words) x (m, words)`` row pairs (the separator edge oracle);
* ``saturate_batch``   — missing-pair extraction inside a vertex mask
  (the ``Extend`` saturation step);
* ``popcount``         — per-row popcount (numpy 2.x has a native
  ``bitwise_count`` ufunc, so this one is close to parity — reported
  for context, not gated);
* ``union_rows``       — OR-reduction of selected rows to an int mask.

``--check`` verifies the native kernels return bit-identical results
to the numpy tier on every measured case and exits non-zero on any
mismatch or if the native extension is unavailable.  ``--record
LABEL`` appends the measurements (with the ``cores`` field convention
of the PR 2+ benchmarks) to ``baselines.json``::

    PYTHONPATH=src python benchmarks/microbench_kernels.py
    PYTHONPATH=src python benchmarks/microbench_kernels.py --check
    PYTHONPATH=src python benchmarks/microbench_kernels.py \\
        --record native-kernel-pr6
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.graph import bitset_np
from repro.graph._native import native

BASELINES_PATH = Path(__file__).parent / "baselines.json"

SEED = 12345
COMPONENTS = 6
REMAINDERS = 256
MASK_MEMBERS = 400
AVG_DEGREE = 24


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def dense_rows(rng: np.random.Generator, rows: int, n: int) -> np.ndarray:
    """``rows`` random packed masks over ``n`` bits, ~50% density."""
    words = bitset_np.word_count(n)
    matrix = rng.integers(
        0, np.iinfo(np.int64).max, size=(rows, words), dtype=np.int64
    ).view(np.uint64)
    tail = n % bitset_np.WORD_BITS
    if tail:
        matrix[:, -1] &= np.uint64((1 << tail) - 1)
    return np.ascontiguousarray(matrix)


def sparse_adjacency(rng: np.random.Generator, n: int) -> np.ndarray:
    """A random symmetric packed adjacency with ~AVG_DEGREE neighbours."""
    words = bitset_np.word_count(n)
    matrix = np.zeros((n, words), dtype=np.uint64)
    ends = rng.integers(0, n, size=(n * AVG_DEGREE // 2, 2))
    one = np.uint64(1)
    for u, v in ends:
        if u == v:
            continue
        matrix[u, v // 64] |= one << np.uint64(v % 64)
        matrix[v, u // 64] |= one << np.uint64(u % 64)
    return matrix


def build_case(n: int) -> dict:
    """The shared buffers every kernel pair is measured on."""
    rng = np.random.default_rng(SEED)
    words = bitset_np.word_count(n)
    members = np.sort(
        rng.choice(n, size=min(MASK_MEMBERS, n), replace=False)
    ).astype(np.int64)
    return {
        "components": dense_rows(rng, COMPONENTS, n),
        "remainders": dense_rows(rng, REMAINDERS, n),
        "adjacency": sparse_adjacency(rng, n),
        "mask": int(bitset_np.indices_to_mask(members, words)),
        "indices": members,
    }


def kernel_calls(case: dict) -> list[tuple[str, tuple]]:
    """(kernel name, args) — same args for both namespaces."""
    return [
        ("crossing_batch", (case["components"], case["remainders"])),
        ("saturate_batch", (case["adjacency"], case["mask"])),
        ("popcount", (case["adjacency"],)),
        ("union_rows", (case["adjacency"], case["indices"])),
    ]


def agree(name: str, a, b) -> bool:
    if name == "crossing_batch":
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    if name == "saturate_batch":
        return bool(
            np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        )
    if name == "popcount":
        return bool(np.array_equal(a, b))
    return a == b  # union_rows: int masks


def measure(fn, args, repeats: int) -> float:
    samples = []
    for __ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default="2500,4000",
        help="comma-separated bit widths (default: 2500,4000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=15,
        help="repetitions; the median is reported (default: 15)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify native kernels are bit-identical to the numpy tier "
        "on every case; exit 1 on mismatch or missing extension",
    )
    parser.add_argument(
        "--record",
        metavar="LABEL",
        help="append the measurements to baselines.json under LABEL",
    )
    args = parser.parse_args()
    sizes = [int(size) for size in args.sizes.split(",") if size]

    info = native.kernel_info()
    print(f"native tier: {'available' if info['available'] else 'UNAVAILABLE'}")
    if not info["available"]:
        print(f"  reason: {info['reason']}")
        return 1
    print(f"  compiler: {info['compiler_id']}")

    failed = False
    results: dict[str, dict] = {}
    for n in sizes:
        case = build_case(n)
        per_kernel: dict[str, dict] = {}
        for name, call_args in kernel_calls(case):
            numpy_fn = getattr(bitset_np, name)
            native_fn = getattr(native, name)
            if not agree(name, numpy_fn(*call_args), native_fn(*call_args)):
                failed = True
                print(f"n={n} {name}: MISMATCH — native != numpy")
                continue
            if args.check:
                print(f"n={n} {name}: OK — native == numpy")
                continue
            numpy_s = measure(numpy_fn, call_args, args.repeats)
            native_s = measure(native_fn, call_args, args.repeats)
            speedup = numpy_s / native_s
            per_kernel[name] = {
                "numpy_seconds": round(numpy_s, 9),
                "native_seconds": round(native_s, 9),
                "speedup": round(speedup, 2),
            }
            print(
                f"n={n:<5} {name:<16} numpy {numpy_s * 1e6:10.1f}us  "
                f"native {native_s * 1e6:10.1f}us  → speedup {speedup:.2f}x"
            )
        results[str(n)] = per_kernel

    if failed:
        return 1
    if args.check:
        return 0

    if args.record:
        baselines = json.loads(BASELINES_PATH.read_text())
        baselines[args.record] = {
            "repeats": args.repeats,
            "cores": usable_cores(),
            "compiler": info["compiler_id"],
            "case": {
                "components": COMPONENTS,
                "remainders": REMAINDERS,
                "mask_members": MASK_MEMBERS,
                "avg_degree": AVG_DEGREE,
                "seed": SEED,
            },
            "sizes": results,
        }
        BASELINES_PATH.write_text(json.dumps(baselines, indent=2) + "\n")
        print(f"recorded as '{args.record}' in {BASELINES_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
