"""E2 — paper Figure 7: average delay on Erdős–Rényi G(n, p) graphs.

Regenerates Figures 7a/7b: average delay vs n for p ∈ {0.3, 0.5, 0.7}
under both triangulation back-ends.  Expected shape (Section 6.2.2):
delay increases with n, denser graphs are slower, and LB-Triang is
slower per result than MCS-M.
"""

from __future__ import annotations

import pytest

from conftest import BUDGET, MAX_RESULTS
from repro.experiments.figures import fig7_delay_by_size
from repro.experiments.render import ascii_table
from repro.workloads.random_graphs import PAPER_DENSITIES, random_sweep

NODE_COUNTS = (30, 50, 70)


def _run(triangulator: str):
    sweep = random_sweep(node_counts=NODE_COUNTS, densities=PAPER_DENSITIES)
    return fig7_delay_by_size(
        sweep, triangulator, time_budget=BUDGET, max_results=MAX_RESULTS
    )


@pytest.mark.parametrize("triangulator", ["lb_triang", "mcs_m"])
def test_fig7_delay_vs_n(benchmark, report, triangulator):
    series = benchmark.pedantic(_run, args=(triangulator,), rounds=1, iterations=1)
    rows = [
        [str(n), f"{p:.1f}", f"{delay:.4f}"]
        for n, p, delay in sorted(series, key=lambda row: (row[1], row[0]))
    ]
    table = ascii_table(["n", "p", "avg delay (s)"], rows)
    # Check the monotone-in-density trend on the largest n.
    largest = max(NODE_COUNTS)
    by_density = {p: d for n, p, d in series if n == largest}
    shape = (
        f"expected shape: delay grows with n and with p "
        f"(at n={largest}: {', '.join(f'p={p}: {by_density[p]:.3f}s' for p in sorted(by_density))})"
    )
    report(f"Figure 7 ({triangulator}), budget {BUDGET}s/graph\n{table}\n{shape}")
    assert len(series) == len(NODE_COUNTS) * len(PAPER_DENSITIES)
