"""E7 — paper Table 2: fill statistics per dataset × triangulator.

Regenerates Table 2 (same layout as Table 1, fill instead of width).
Expected shape (Section 6.3): the enumeration amplifies fill quality
even more than width quality for MCS-M — a large share of MCS-M's
results beat its own first fill — while LB-Triang's first fill is
already strong, so its #≤f1 share is small.
"""

from __future__ import annotations

import pytest

from conftest import BUDGET, MAX_RESULTS, SCALE
from repro.experiments.tables import quality_table, render_quality_table
from repro.workloads.pgm import pgm_suites


def _run(triangulator: str):
    suites = pgm_suites(scale=SCALE)
    return quality_table(
        suites,
        triangulator,
        measure="fill",
        time_budget=BUDGET,
        max_results=MAX_RESULTS,
    )


@pytest.mark.parametrize("triangulator", ["mcs_m", "lb_triang"])
def test_table2_fill_statistics(benchmark, report, triangulator):
    rows = benchmark.pedantic(_run, args=(triangulator,), rounds=1, iterations=1)
    table = render_quality_table(rows, "fill")
    paper = (
        "paper (30min, MCS-M): Promedas #<=f1 73.5% / %fv 18.1 ; "
        "ObjDet 27.5% / 19.9 ; CSP 63.9% / 35.2\n"
        "paper (30min, LB-Triang): Promedas 4.1% / 0.2 ; "
        "ObjDet 15.3% / 10.4 ; CSP 5.6% / 1.4"
    )
    report(
        f"Table 2 — fill ({triangulator}), budget {BUDGET}s/graph, "
        f"scale {SCALE}\n{table}\n{paper}"
    )
    assert all(row.avg_count >= 1 for row in rows)
