"""E11 — ablation: clique-minimal-separator (atom) decomposition.

Not a paper artefact; quantifies the extension of
:mod:`repro.chordal.atoms`.  On graphs with clique cut-sets the
separator space factorises over the atoms and the enumeration turns
from one big EnumMIS run into a product of small ones — the result set
is identical but the cost collapses.  Graphs without clique separators
(e.g. cycles) are a single atom and pay only the decomposition check.
"""

from __future__ import annotations

import time

from repro.core.enumerate import enumerate_minimal_triangulations
from repro.experiments.render import ascii_table
from repro.graph.generators import cycle_graph
from repro.graph.graph import Graph

RESULT_CAP = 3000


def chained_cycles(num_cycles: int, cycle_length: int) -> Graph:
    """``num_cycles`` copies of C_n connected by bridge edges."""
    graph = Graph()
    for k in range(num_cycles):
        base = k * cycle_length
        for i in range(cycle_length):
            graph.add_edge(base + i, base + (i + 1) % cycle_length)
        if k:
            graph.add_edge(base - 1, base)
    return graph


def _run():
    cases = [
        ("2 chained C6", chained_cycles(2, 6)),
        ("3 chained C6", chained_cycles(3, 6)),
        ("2 chained C7", chained_cycles(2, 7)),
        ("single C8 (one atom)", cycle_graph(8)),
    ]
    rows = []
    for name, graph in cases:
        timings = {}
        counts = {}
        for decompose in ("none", "atoms"):
            start = time.monotonic()
            count = 0
            for __ in enumerate_minimal_triangulations(
                graph, decompose=decompose
            ):
                count += 1
                if count >= RESULT_CAP:
                    break
            timings[decompose] = time.monotonic() - start
            counts[decompose] = count
        rows.append((name, graph, counts, timings))
    return rows


def test_atoms_ablation(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_rows = []
    for name, graph, counts, timings in rows:
        speedup = timings["none"] / max(timings["atoms"], 1e-9)
        table_rows.append(
            [
                name,
                str(graph.num_nodes),
                str(counts["none"]),
                f"{timings['none']:.3f}",
                f"{timings['atoms']:.3f}",
                f"{speedup:.1f}x",
            ]
        )
    table = ascii_table(
        ["graph", "n", "#mintri", "plain (s)", "atoms (s)", "speedup"],
        table_rows,
    )
    report(
        "Ablation — atom decomposition vs plain enumeration "
        f"(cap {RESULT_CAP} results)\n"
        + table
        + "\nexpected shape: large speedups on clique-separated graphs, "
        "parity (small overhead) on single-atom graphs"
    )
    for name, graph, counts, timings in rows:
        assert counts["none"] == counts["atoms"]
    # The chained cases must show a real speedup.
    chained = [r for r in rows if "chained" in r[0]]
    assert any(
        t["none"] / max(t["atoms"], 1e-9) > 5 for __, __, __, t in chained
    )
