"""E5 — paper Figure 10: running minimum width and fill over time.

Regenerates the second Section 6.4 case-study series: the best width
and best fill observed as the enumeration progresses.  Expected shape:
both decrease over time; the minimum width is reached quickly while
the minimum fill keeps improving for longer.
"""

from __future__ import annotations

from conftest import BUDGET
from repro.experiments.figures import fig10_quality_over_time
from repro.experiments.render import ascii_table
from repro.experiments.runner import run_enumeration
from repro.workloads.pgm import promedas_like

CASE_STUDY_BUDGET = max(BUDGET * 5, 5.0)


def _run():
    graph = promedas_like(num_diseases=40, num_findings=70, seed=11)
    return run_enumeration(
        graph, triangulator="mcs_m", time_budget=CASE_STUDY_BUDGET, name="case_study"
    )


def test_fig10_running_minima(benchmark, report):
    trace = benchmark.pedantic(_run, rounds=1, iterations=1)
    series = fig10_quality_over_time(trace)
    rows = []
    for measure in ("width", "fill"):
        for t, value in series[measure]:
            rows.append([measure, f"{t:.3f}", str(value)])
    table = ascii_table(["measure", "t (s)", "running min"], rows)
    width_settle = series["width"][-1][0] if series["width"] else 0.0
    fill_settle = series["fill"][-1][0] if series["fill"] else 0.0
    report(
        f"Figure 10 (Promedas-like case study, {CASE_STUDY_BUDGET:.0f}s budget)\n"
        + table
        + f"\nwidth last improved at {width_settle:.3f}s; "
        f"fill last improved at {fill_settle:.3f}s"
        + "\nexpected shape: min width settles early, min fill keeps dropping longer"
    )
    assert series["width"]
    assert series["fill"]
