#!/usr/bin/env python
"""Microbenchmark: scalar vs batched separator-crossing oracle.

Isolates the edge-oracle kernel of the separator-graph SGR — the
dominant cost of EnumMIS direction steps — at three graph sizes:

* ``n=30``   — the canonical acceptance graph, Gnp(30, 0.35);
* ``n=200``  — a sparse Gnp where packed ``uint64`` rows span several
  words (the acceptance criterion for the PR 3 crossing kernel is
  >= 2x batch-over-scalar throughput here);
* ``n=2000`` — a cycle graph above the ``auto`` graph-backend
  threshold, whose minimal separators (non-adjacent vertex pairs) are
  constructed directly so the benchmark measures the oracle, not the
  separator enumerator.

Each measurement clears the crossing-pair memo cache and then asks, for
a handful of probe separators v, whether v crosses each of the
candidate separators — the scalar path via one
:meth:`~repro.sgr.separator_graph.MinimalSeparatorSGR.has_edge` call
per pair, the batch path via one
:meth:`~repro.sgr.separator_graph.MinimalSeparatorSGR.has_edges_batch`
call per probe.  Both share warm component caches, so the difference is
exactly the per-pair Python overhead the vectorized kernel removes.

``--check`` verifies the two oracles agree on every pair and exits
non-zero on any mismatch — the hardware-independent correctness gate
run in CI.  ``--graph-backend`` selects the graph-core backend the
case is built on (comma-separated values form an axis: the PR 6
``native`` C tier is measured against ``numpy`` on identical cases;
CI runs the gate with ``--graph-backend native``).  ``--record
LABEL`` appends the measurements (with the ``cores`` field convention
of the PR 2 benchmarks) to ``baselines.json``::

    PYTHONPATH=src python benchmarks/microbench_crossing.py
    PYTHONPATH=src python benchmarks/microbench_crossing.py --check
    PYTHONPATH=src python benchmarks/microbench_crossing.py \\
        --check --graph-backend native
    PYTHONPATH=src python benchmarks/microbench_crossing.py \\
        --graph-backend numpy,native --record crossing-kernel-pr6
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.chordal.minimal_separators import (
    are_crossing_batch_masks,
    minimal_separator_masks,
)
from repro.graph import resolve_graph_backend
from repro.graph.generators import cycle_graph, gnp_random_graph
from repro.sgr.separator_graph import MinimalSeparatorSGR

BASELINES_PATH = Path(__file__).parent / "baselines.json"

PROBES = 8


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_case(n: int, candidates: int, backend: str = "auto"):
    """Return (graph, probe separators, candidate separators) for size n."""
    if n == 2000:
        # Cycle graph: every non-adjacent pair is a minimal separator,
        # so the separator set is constructed directly — enumerating it
        # through A_V would dwarf the oracle being measured.
        graph = resolve_graph_backend(cycle_graph(n), backend)
        probes = [frozenset({i, i + n // 2}) for i in range(PROBES)]
        half, quarter = n // 2, n // 4
        pool = []
        for i in itertools.count(PROBES + 1):
            if len(pool) >= candidates:
                break
            # Alternate crossing pairs (one node per arc of the probe
            # cut) with parallel pairs (both nodes in one arc).
            if i % 2:
                pool.append(frozenset({i, i + half}))
            else:
                pool.append(frozenset({i, i + quarter}))
        return graph, probes, pool
    if n == 30:
        graph = gnp_random_graph(n, 0.35, seed=12345)
    else:
        graph = gnp_random_graph(n, 0.05, seed=12345)
    graph = resolve_graph_backend(graph, backend)
    masks = list(
        itertools.islice(minimal_separator_masks(graph), candidates + PROBES)
    )
    separators = [graph.label_set(mask) for mask in masks]
    return graph, separators[:PROBES], separators[PROBES:]


def clear_cache(sgr: MinimalSeparatorSGR) -> None:
    sgr._edge_cache.clear()
    sgr._edge_cache_old.clear()
    sgr._edge_entries = 0
    sgr._edge_entries_old = 0


def run_scalar(sgr, probes, candidates) -> list[list[bool]]:
    has_edge = sgr.has_edge
    return [[has_edge(v, u) for u in candidates] for v in probes]


def run_batch(sgr, probes, candidates) -> list[list[bool]]:
    has_edges_batch = sgr.has_edges_batch
    return [has_edges_batch(v, candidates) for v in probes]


def measure(runner, sgr, probes, candidates, repeats: int) -> float:
    samples = []
    for __ in range(repeats):
        clear_cache(sgr)
        start = time.perf_counter()
        runner(sgr, probes, candidates)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default="30,200,2000",
        help="comma-separated graph sizes (default: 30,200,2000)",
    )
    parser.add_argument(
        "--candidates",
        type=int,
        default=192,
        help="candidate separators per probe (default: 192)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="repetitions; the median is reported (default: 5)",
    )
    parser.add_argument(
        "--graph-backend",
        default="auto",
        help="comma-separated graph-core backends forming the "
        "measurement axis (auto/indexed/numpy/native; default: auto)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify batch and scalar oracles agree on every pair; "
        "exit 1 on mismatch (correctness gate, no timing)",
    )
    parser.add_argument(
        "--record",
        metavar="LABEL",
        help="append the measurements to baselines.json under LABEL",
    )
    args = parser.parse_args()
    sizes = [int(size) for size in args.sizes.split(",") if size]
    backends = [b for b in args.graph_backend.split(",") if b]
    if "native" in backends:
        from repro.graph._native import native

        if not native.available():
            message = (
                f"native backend unavailable "
                f"({native.kernel_info()['reason']})"
            )
            if args.check:
                print(f"FAILED: {message}")
                return 1
            print(f"note: {message} — skipped")
            backends = [b for b in backends if b != "native"]

    results: dict[str, dict] = {}
    failed = False
    for n, backend in itertools.product(sizes, backends):
        graph, probes, candidates = build_case(n, args.candidates, backend)
        pairs = len(probes) * len(candidates)
        sgr = MinimalSeparatorSGR(graph)

        batch_answers = run_batch(sgr, probes, candidates)
        clear_cache(sgr)
        scalar_answers = run_scalar(sgr, probes, candidates)
        agree = batch_answers == scalar_answers
        if args.check and agree:
            # Third, stateless oracle: the cache-free mask-level batch
            # test must agree with both memoized SGR paths.
            stateless = [
                are_crossing_batch_masks(
                    graph.core,
                    graph.mask_of(v),
                    [graph.mask_of(u) for u in candidates],
                )
                for v in probes
            ]
            agree = stateless == batch_answers
        if not agree:
            failed = True
            bad = sum(
                b != s
                for bs, ss in zip(batch_answers, scalar_answers)
                for b, s in zip(bs, ss)
            )
            print(
                f"n={n} [{backend}]: MISMATCH — batch and scalar oracles "
                f"disagree on {bad}/{pairs} pairs"
            )
        if args.check:
            if agree:
                crossings = sum(map(sum, batch_answers))
                print(
                    f"n={n} [{backend}]: OK — batch == scalar on "
                    f"{pairs} pairs ({crossings} crossing)"
                )
            continue

        scalar_s = measure(run_scalar, sgr, probes, candidates, args.repeats)
        batch_s = measure(run_batch, sgr, probes, candidates, args.repeats)
        speedup = scalar_s / batch_s
        results.setdefault(str(n), {})[backend] = {
            "pairs": pairs,
            "scalar_seconds": round(scalar_s, 6),
            "batch_seconds": round(batch_s, 6),
            "speedup": round(speedup, 2),
        }
        print(
            f"n={n:<5} [{backend:<7}] {pairs} pairs: "
            f"scalar {scalar_s * 1e3:8.3f}ms  "
            f"batch {batch_s * 1e3:8.3f}ms  → speedup {speedup:.2f}x"
        )

    if failed:
        return 1
    if args.check:
        return 0

    if args.record:
        baselines = json.loads(BASELINES_PATH.read_text())
        baselines[args.record] = {
            "repeats": args.repeats,
            "cores": usable_cores(),
            "backends": backends,
            "sizes": results,
        }
        BASELINES_PATH.write_text(json.dumps(baselines, indent=2) + "\n")
        print(f"recorded as '{args.record}' in {BASELINES_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
