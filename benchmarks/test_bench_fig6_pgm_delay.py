"""E1 — paper Figure 6: average delay vs #edges on the PGM suites.

Regenerates the scatter behind Figures 6a (LB-Triang) and 6b (MCS-M):
for each probabilistic-graphical-model benchmark graph, the average
delay between consecutive minimal triangulations under a fixed
wall-clock budget.  Expected shape (paper Section 6.2.1): the delay
grows with the number of edges, with MCS-M generally faster per result
than LB-Triang.
"""

from __future__ import annotations

import pytest

from conftest import BUDGET, MAX_RESULTS, SCALE
from repro.experiments.figures import fig6_delay_by_edges
from repro.experiments.render import ascii_table
from repro.workloads.pgm import pgm_suites


def _run(triangulator: str):
    suites = pgm_suites(scale=SCALE)
    # Bound the largest Promedas instances so one graph cannot eat the
    # whole budget (the paper likewise reports many graphs as "too
    # difficult" and lets the 30-minute budget cut them off).
    return fig6_delay_by_edges(
        suites, triangulator, time_budget=BUDGET, max_results=MAX_RESULTS
    )


@pytest.mark.parametrize("triangulator", ["lb_triang", "mcs_m"])
def test_fig6_delay_vs_edges(benchmark, report, triangulator):
    points = benchmark.pedantic(_run, args=(triangulator,), rounds=1, iterations=1)
    rows = [
        [
            p.dataset,
            p.name,
            str(p.num_nodes),
            str(p.num_edges),
            str(p.count),
            f"{p.average_delay:.4f}",
            "yes" if p.completed else "no",
        ]
        for p in sorted(points, key=lambda p: (p.dataset, p.num_edges))
    ]
    table = ascii_table(
        ["dataset", "graph", "n", "m", "#results", "avg delay (s)", "done"],
        rows,
    )
    shape = (
        "expected shape: delay grows with #edges; "
        "MCS-M delays below LB-Triang on the same graph"
    )
    report(f"Figure 6 ({triangulator}), budget {BUDGET}s/graph\n{table}\n{shape}")
    assert points
