#!/usr/bin/env python
"""Microbenchmark: serial vs sharded enumeration wall-clock.

Enumerates the first ``--results`` (default 1000) minimal
triangulations of the canonical acceptance graph — seeded 30-node
Gnp(0.35) — through the enumeration engine, once with the ``serial``
backend and once with the ``sharded`` backend at ``--workers``
processes, and reports the speedup.  ``--record`` appends both
measurements (plus the machine's usable core count, which is what the
sharded number is conditioned on) to ``baselines.json`` next to the
existing perf trajectory::

    PYTHONPATH=src python benchmarks/microbench_parallel.py
    PYTHONPATH=src python benchmarks/microbench_parallel.py \\
        --workers 4 --record engine-pr2

The sharded backend pays one process-pool spawn plus a pickle of a few
ints per separator; with the per-(answer, direction) extend tasks each
running a full triangulation, the compute/IPC ratio is high and the
speedup approaches the worker count on machines that actually have the
cores.  On a single-core container the sharded run degrades to serial
plus IPC overhead, so ``--record`` *refuses* to write a baseline there
unless ``--allow-single-core`` is passed explicitly (the entry is then
annotated as coordination-overhead-only).  Comparisons against
previously recorded baselines (``--against LABEL``) match on the
``cores`` field, not the label alone: a sharded number is conditioned
on the core count it was measured with, and comparing across machines
with different usable cores is meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.engine import EnumerationEngine, EnumerationJob
from repro.graph.generators import gnp_random_graph

BASELINES_PATH = Path(__file__).parent / "baselines.json"

GRAPH_NODES = 30
GRAPH_P = 0.35
GRAPH_SEED = 12345


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure_once(backend: str, workers: int | None, results: int) -> float:
    graph = gnp_random_graph(GRAPH_NODES, GRAPH_P, seed=GRAPH_SEED)
    engine = EnumerationEngine(backend, workers=workers)
    job = EnumerationJob(graph, max_results=results)
    start = time.perf_counter()
    produced = sum(1 for __ in engine.stream(job))
    elapsed = time.perf_counter() - start
    if produced < results:
        raise RuntimeError(
            f"benchmark graph yielded only {produced} < {results} results"
        )
    return elapsed


def measure(
    backend: str, workers: int | None, results: int, repeats: int
) -> float:
    return statistics.median(
        measure_once(backend, workers, results) for __ in range(repeats)
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results",
        type=int,
        default=1000,
        help="answers to enumerate per run (default: 1000)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes for the sharded run (default: 4)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions per backend; the median is reported (default: 3)",
    )
    parser.add_argument(
        "--record",
        metavar="LABEL",
        help="append measurements to baselines.json as LABEL-serial / "
        "LABEL-sharded (refused on single-core machines unless "
        "--allow-single-core is given)",
    )
    parser.add_argument(
        "--allow-single-core",
        action="store_true",
        help="record even with 1 usable core; the entry is annotated "
        "as measuring coordination overhead only",
    )
    parser.add_argument(
        "--against",
        metavar="LABEL",
        default=None,
        help="compare the sharded run against baselines.json entry "
        "LABEL-sharded; only entries whose 'cores' field matches this "
        "machine are considered comparable",
    )
    args = parser.parse_args()

    cores = usable_cores()
    graph_desc = f"Gnp({GRAPH_NODES}, {GRAPH_P}, seed={GRAPH_SEED})"
    print(
        f"{graph_desc}, first {args.results} results, median of "
        f"{args.repeats}; machine has {cores} usable core(s)"
    )

    serial = measure("serial", None, args.results, args.repeats)
    print(f"serial backend:             {serial:.3f}s")
    sharded = measure("sharded", args.workers, args.results, args.repeats)
    speedup = serial / sharded
    print(
        f"sharded backend ({args.workers} workers): {sharded:.3f}s "
        f"→ speedup {speedup:.2f}x"
    )
    single_core = cores < 2
    if single_core:
        print(
            "note: <2 usable cores — the sharded figure measures pure "
            "coordination overhead, not parallel speedup"
        )

    baselines = json.loads(BASELINES_PATH.read_text())
    if args.against:
        reference = comparable_baseline(
            baselines, f"{args.against}-sharded", cores
        )
        if reference is None:
            recorded = baselines.get(f"{args.against}-sharded")
            if recorded is None:
                print(f"no baseline named '{args.against}-sharded'")
            else:
                print(
                    f"baseline '{args.against}-sharded' was recorded on "
                    f"{recorded.get('cores', '?')} core(s); this machine "
                    f"has {cores} — not comparable, skipping"
                )
        else:
            print(
                f"baseline '{args.against}-sharded' ({cores} cores): "
                f"{reference['seconds']:.3f}s → this run is "
                f"{reference['seconds'] / sharded:.2f}x of it"
            )

    if args.record:
        if single_core and not args.allow_single_core:
            print(
                f"refusing to record '{args.record}' on a {cores}-core "
                "machine: the sharded number would measure coordination "
                "overhead only and poison later comparisons.  Re-record "
                "on multi-core hardware, or pass --allow-single-core to "
                "force an annotated entry."
            )
            return 2
        common = {
            "graph": {"n": GRAPH_NODES, "p": GRAPH_P, "seed": GRAPH_SEED},
            "results": args.results,
            "repeats": args.repeats,
            "cores": cores,
        }
        if single_core:
            common["note"] = (
                "single-core machine: sharded measures coordination "
                "overhead only, not parallel speedup"
            )
        baselines[f"{args.record}-serial"] = {
            "seconds": round(serial, 4),
            **common,
        }
        baselines[f"{args.record}-sharded"] = {
            "seconds": round(sharded, 4),
            "workers": args.workers,
            "speedup_vs_serial": round(speedup, 3),
            **common,
        }
        BASELINES_PATH.write_text(json.dumps(baselines, indent=2) + "\n")
        print(
            f"recorded as '{args.record}-serial' / '{args.record}-sharded' "
            f"in {BASELINES_PATH.name}"
        )
    return 0


def comparable_baseline(
    baselines: dict, label: str, cores: int
) -> dict | None:
    """Return baseline ``label`` only if its ``cores`` matches ``cores``.

    Entries without a ``cores`` field predate the convention and are
    never considered comparable — name alone says nothing about the
    machine regime a sharded number came from.
    """
    entry = baselines.get(label)
    if entry is None or entry.get("cores") != cores:
        return None
    return entry


if __name__ == "__main__":
    sys.exit(main())
