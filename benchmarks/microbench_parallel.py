#!/usr/bin/env python
"""Microbenchmark: serial vs sharded enumeration wall-clock.

Enumerates the first ``--results`` (default 1000) minimal
triangulations of the canonical acceptance graph — seeded 30-node
Gnp(0.35) — through the enumeration engine, once with the ``serial``
backend and once with the ``sharded`` backend at ``--workers``
processes, and reports the speedup.  ``--record`` appends both
measurements (plus the machine's usable core count, which is what the
sharded number is conditioned on) to ``baselines.json`` next to the
existing perf trajectory::

    PYTHONPATH=src python benchmarks/microbench_parallel.py
    PYTHONPATH=src python benchmarks/microbench_parallel.py \\
        --workers 4 --record engine-pr2

``--transport tcp`` swaps the parallel run onto the distributed
backend over loopback — ``--workers`` real ``repro worker``
subprocesses behind the asyncio TCP coordinator — so the recorded
figure captures the coordination overhead a multi-host run adds
(fleet spin-up, handshake + one graph ship, per-batch socket
round-trips) with zero network variance.  Entries land as
``LABEL-distributed`` with a ``transport`` field.

The sharded backend pays one process-pool spawn, one shared-memory
graph segment, and a packed (interned-mask) batch pickle per dispatch;
with the per-(answer, direction) extend tasks each running a full
triangulation and batches sized adaptively to ``--batch-target-ms`` of
compute, the compute/IPC ratio is high and the speedup approaches the
worker count on machines that actually have the cores.  Recorded
sharded entries carry the per-batch wire columns (``payload_bytes``,
``mean_batch_latency_ms``, ``ipc_cumulative_seconds`` — the last sums
off-CPU time over concurrently pipelined batches, so it can exceed
wall clock) from the run's statistics
plus a ``payload_format_n2000`` comparison of the packed wire format
against the original per-separator pickled-int format on a
representative batch at n = 2000.  On a single-core container the sharded run degrades to serial
plus IPC overhead, so ``--record`` *refuses* to write a baseline there
unless ``--allow-single-core`` is passed explicitly (the entry is then
annotated as coordination-overhead-only).  Comparisons against
previously recorded baselines (``--against LABEL``) match on the
``cores`` field, not the label alone: a sharded number is conditioned
on the core count it was measured with, and comparing across machines
with different usable cores is meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro.engine import EnumerationEngine, EnumerationJob
from repro.graph.generators import gnp_random_graph
from repro.sgr.enum_mis import EnumMISStatistics

BASELINES_PATH = Path(__file__).parent / "baselines.json"

GRAPH_NODES = 30
GRAPH_P = 0.35
GRAPH_SEED = 12345

#: Graph size of the wire-format byte comparison (the acceptance shape:
#: big-int masks are ~n/8 bytes each, so the interned packed format's
#: win is conditioned on n).
PAYLOAD_NODES = 2000


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _spawn_tcp_worker(address) -> subprocess.Popen:
    """One ``repro worker`` subprocess pointed at ``address``."""
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[1] / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"{address[0]}:{address[1]}",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def measure_once(
    backend: str,
    workers: int | None,
    results: int,
    batch_target_ms: float | None,
    transport: str = "process",
) -> tuple[float, EnumMISStatistics]:
    graph = gnp_random_graph(GRAPH_NODES, GRAPH_P, seed=GRAPH_SEED)
    fleet: list[subprocess.Popen] = []
    if transport == "tcp" and backend != "serial":
        # Same coordinator discipline, TCP loopback transport: the
        # timed region includes the fleet spin-up (worker interpreter
        # start, handshake, one graph ship) plus per-batch socket
        # round-trips — exactly the overhead a multi-host run adds.
        from repro.engine.distributed import DistributedBackend

        count = max(1, workers or 1)
        engine = EnumerationEngine(
            DistributedBackend(
                listen="127.0.0.1:0",
                expected_workers=count,
                wait_for_workers_s=60.0,
                on_listening=lambda addr: fleet.extend(
                    _spawn_tcp_worker(addr) for _ in range(count)
                ),
            )
        )
    else:
        engine = EnumerationEngine(backend, workers=workers)
    kwargs = {}
    if batch_target_ms is not None:
        kwargs["batch_target_ms"] = batch_target_ms
    job = EnumerationJob(graph, max_results=results, **kwargs)
    stats = EnumMISStatistics()
    start = time.perf_counter()
    produced = sum(1 for __ in engine.stream(job, stats))
    elapsed = time.perf_counter() - start
    for proc in fleet:
        proc.wait(timeout=30)
    if produced < results:
        raise RuntimeError(
            f"benchmark graph yielded only {produced} < {results} results"
        )
    return elapsed, stats


def measure(
    backend: str,
    workers: int | None,
    results: int,
    repeats: int,
    batch_target_ms: float | None = None,
    transport: str = "process",
) -> tuple[float, EnumMISStatistics]:
    """Median elapsed time (and that run's statistics) over ``repeats``."""
    runs = sorted(
        (
            measure_once(backend, workers, results, batch_target_ms, transport)
            for __ in range(repeats)
        ),
        key=lambda run: run[0],
    )
    return runs[len(runs) // 2]


def batch_wire_columns(stats: EnumMISStatistics) -> dict:
    """Per-batch wire metrics of a sharded run, for the baseline entry."""
    batches = stats.batches_dispatched
    if not batches:
        return {}
    return {
        "batches": batches,
        "payload_bytes": round(stats.ipc_payload_bytes / batches, 1),
        "mean_batch_latency_ms": round(
            stats.batch_roundtrip_ns / batches / 1e6, 3
        ),
        # Summed per-batch off-CPU time across *concurrently pipelined*
        # batches — a latency × count quantity that can exceed the
        # run's wall clock, not a share of it.
        "ipc_cumulative_seconds": round(stats.ipc_time_ns / 1e9, 4),
    }


def payload_format_bytes(n: int = PAYLOAD_NODES) -> dict:
    """Pickled bytes of one representative batch, old format vs packed.

    The workload shape and the legacy structure both come from
    :mod:`repro.engine.wire` (``reference_batch`` / ``legacy_batch``)
    so this recorded comparison and the tested ≥ 4× bound in
    ``tests/test_adaptive_sharding.py`` can never drift onto different
    simulations.
    """
    from repro.engine import wire

    answers, directions, words = wire.reference_batch(n)
    packed = wire.encode_batch(1, answers, directions, words)
    legacy = len(
        pickle.dumps(wire.legacy_batch(1, answers, directions, words))
    )
    new = len(pickle.dumps(packed))
    return {
        "n": n,
        "legacy_bytes": legacy,
        "packed_bytes": new,
        "shrink": round(legacy / new, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results",
        type=int,
        default=1000,
        help="answers to enumerate per run (default: 1000)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes for the sharded run (default: 4)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions per backend; the median is reported (default: 3)",
    )
    parser.add_argument(
        "--record",
        metavar="LABEL",
        help="append measurements to baselines.json as LABEL-serial / "
        "LABEL-sharded (refused on single-core machines unless "
        "--allow-single-core is given)",
    )
    parser.add_argument(
        "--allow-single-core",
        action="store_true",
        help="record even with 1 usable core; the entry is annotated "
        "as measuring coordination overhead only",
    )
    parser.add_argument(
        "--against",
        metavar="LABEL",
        default=None,
        help="compare the sharded run against baselines.json entry "
        "LABEL-sharded; only entries whose 'cores' field matches this "
        "machine are considered comparable",
    )
    parser.add_argument(
        "--batch-target-ms",
        type=float,
        default=None,
        help="batch duration target handed to the sharded job "
        "(default: the engine default of 100 ms)",
    )
    parser.add_argument(
        "--transport",
        choices=("process", "tcp"),
        default="process",
        help="parallel transport: 'process' (the sharded "
        "multiprocessing pool) or 'tcp' (the distributed backend over "
        "loopback with --workers `repro worker` subprocesses — "
        "measures the coordination overhead a multi-host run adds: "
        "fleet spin-up, handshake + one graph ship, and per-batch "
        "socket round-trips)",
    )
    args = parser.parse_args()

    cores = usable_cores()
    graph_desc = f"Gnp({GRAPH_NODES}, {GRAPH_P}, seed={GRAPH_SEED})"
    print(
        f"{graph_desc}, first {args.results} results, median of "
        f"{args.repeats}; machine has {cores} usable core(s)"
    )

    serial, serial_stats = measure("serial", None, args.results, args.repeats)
    print(
        f"serial backend:             {serial:.3f}s "
        f"(extend {serial_stats.extend_time_ns / 1e9:.3f}s, "
        f"crossing {serial_stats.crossing_time_ns / 1e9:.3f}s)"
    )
    parallel_name = (
        "sharded" if args.transport == "process" else "distributed"
    )
    sharded, sharded_stats = measure(
        "sharded", args.workers, args.results, args.repeats,
        args.batch_target_ms, args.transport,
    )
    speedup = serial / sharded
    wire_columns = batch_wire_columns(sharded_stats)
    print(
        f"{parallel_name} backend ({args.workers} workers, "
        f"{args.transport} transport): {sharded:.3f}s "
        f"→ speedup {speedup:.2f}x"
    )
    if args.transport == "tcp" and sharded_stats.batches_requeued:
        print(
            f"  note: {sharded_stats.batches_requeued} batches were "
            "requeued off lost workers during the measured run"
        )
    if wire_columns:
        print(
            f"  {wire_columns['batches']} batches, "
            f"{wire_columns['payload_bytes']:.0f} payload bytes/batch, "
            f"{wire_columns['mean_batch_latency_ms']:.2f} ms mean batch "
            f"latency, {wire_columns['ipc_cumulative_seconds']:.3f}s "
            "cumulative off-CPU (overlaps across pipelined batches)"
        )
    single_core = cores < 2
    if single_core:
        overhead = max(0.0, sharded / serial - 1.0)
        print(
            "note: <2 usable cores — the sharded figure measures pure "
            f"coordination overhead ({overhead:.1%}), not parallel "
            "speedup"
        )

    wire_format = payload_format_bytes()
    print(
        f"wire format at n={wire_format['n']}: "
        f"{wire_format['legacy_bytes']} B/batch pickled-int → "
        f"{wire_format['packed_bytes']} B/batch packed "
        f"({wire_format['shrink']}x smaller)"
    )

    baselines = json.loads(BASELINES_PATH.read_text())
    against_key = f"{args.against}-{parallel_name}" if args.against else None
    if args.against:
        reference = comparable_baseline(baselines, against_key, cores)
        if reference is None:
            recorded = baselines.get(against_key)
            if recorded is None:
                print(f"no baseline named '{against_key}'")
            else:
                print(
                    f"baseline '{against_key}' was recorded on "
                    f"{recorded.get('cores', '?')} core(s); this machine "
                    f"has {cores} — not comparable, skipping"
                )
        else:
            print(
                f"baseline '{against_key}' ({cores} cores): "
                f"{reference['seconds']:.3f}s → this run is "
                f"{reference['seconds'] / sharded:.2f}x of it"
            )

    if args.record:
        if single_core and not args.allow_single_core:
            print(
                f"refusing to record '{args.record}' on a {cores}-core "
                "machine: the sharded number would measure coordination "
                "overhead only and poison later comparisons.  Re-record "
                "on multi-core hardware, or pass --allow-single-core to "
                "force an annotated entry."
            )
            return 2
        common = {
            "graph": {"n": GRAPH_NODES, "p": GRAPH_P, "seed": GRAPH_SEED},
            "results": args.results,
            "repeats": args.repeats,
            "cores": cores,
        }
        if single_core:
            common["note"] = (
                "single-core machine: sharded measures coordination "
                "overhead only, not parallel speedup"
            )
        baselines[f"{args.record}-serial"] = {
            "seconds": round(serial, 4),
            **common,
        }
        parallel_key = f"{args.record}-{parallel_name}"
        baselines[parallel_key] = {
            "seconds": round(sharded, 4),
            "workers": args.workers,
            "transport": args.transport,
            "speedup_vs_serial": round(speedup, 3),
            **wire_columns,
            "payload_format_n2000": wire_format,
            **common,
        }
        if args.transport == "tcp":
            baselines[parallel_key]["note_transport"] = (
                "loopback TCP: the figure includes fleet spin-up, "
                "handshake + one graph ship, and per-batch socket "
                "round-trips"
            )
        if args.batch_target_ms is not None:
            baselines[parallel_key]["batch_target_ms"] = args.batch_target_ms
        BASELINES_PATH.write_text(json.dumps(baselines, indent=2) + "\n")
        print(
            f"recorded as '{args.record}-serial' / '{parallel_key}' "
            f"in {BASELINES_PATH.name}"
        )
    return 0


def comparable_baseline(
    baselines: dict, label: str, cores: int
) -> dict | None:
    """Return baseline ``label`` only if its ``cores`` matches ``cores``.

    Entries without a ``cores`` field predate the convention and are
    never considered comparable — name alone says nothing about the
    machine regime a sharded number came from.
    """
    entry = baselines.get(label)
    if entry is None or entry.get("cores") != cores:
        return None
    return entry


if __name__ == "__main__":
    sys.exit(main())
