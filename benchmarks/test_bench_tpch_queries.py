"""E8 — paper Section 6.2.3: TPC-H query enumeration.

Regenerates the database-query experiment: for each of the 22 TPC-H
primal graphs, whether it is chordal, how many minimal triangulations
it has, the best width found, and the enumeration time.  Expected
shape (paper): roughly half the queries are chordal (one minimal
triangulation — themselves); all but two of the rest have at most 5;
Q7 and Q9 have two orders of magnitude more (paper: 700 and 588 with
the LogicBlox encodings; our reconstructions give the same
two-outliers pattern); the whole suite completes in seconds; the
largest bag stays close to the largest relation arity (treewidth ≤ 7).
"""

from __future__ import annotations

import time

from repro.chordal.peo import is_chordal
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.experiments.render import ascii_table
from repro.workloads.tpch import tpch_suite

PER_QUERY_CAP = 2000


def _run():
    results = []
    for name, graph in tpch_suite():
        start = time.monotonic()
        count = 0
        best_width = None
        for t in enumerate_minimal_triangulations(graph):
            count += 1
            if best_width is None or t.width < best_width:
                best_width = t.width
            if count >= PER_QUERY_CAP:
                break
        results.append(
            (
                name,
                graph.num_nodes,
                graph.num_edges,
                is_chordal(graph),
                count,
                best_width,
                time.monotonic() - start,
            )
        )
    return results


def test_tpch_all_queries(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            name,
            str(n),
            str(m),
            "yes" if chordal else "no",
            str(count),
            str(width),
            f"{elapsed:.2f}",
        ]
        for name, n, m, chordal, count, width, elapsed in results
    ]
    table = ascii_table(
        ["query", "n", "m", "chordal", "#mintri", "best width", "time (s)"], rows
    )
    counts = {r[0]: r[4] for r in results}
    outliers = sorted(counts, key=counts.get, reverse=True)[:2]
    report(
        "TPC-H enumeration (paper Section 6.2.3)\n"
        + table
        + f"\ntop-2 queries by #mintri: {outliers} "
        "(paper: Q7=700, Q9=588; encodings differ, see EXPERIMENTS.md)"
        + "\nexpected shape: ~half chordal; all but Q7/Q9 have <=5; "
        "suite completes in seconds"
    )
    assert set(outliers) == {"Q7", "Q9"}
    small = [r for r in results if r[0] not in ("Q7", "Q9")]
    assert all(r[4] <= 5 for r in small)
    chordal_count = sum(1 for r in results if r[3])
    assert chordal_count >= 10
    widths = [r[5] for r in results if r[5] is not None]
    assert max(widths) <= 8
