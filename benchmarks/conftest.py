"""Shared infrastructure for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index) and *prints* the regenerated
artefact so that ``pytest benchmarks/ --benchmark-only | tee …``
captures it.  Results are also written to ``benchmarks/results/``.

Budgets are scaled down from the paper's 30-minute runs; override via
environment variables:

* ``REPRO_BENCH_BUDGET``  — per-graph enumeration budget in seconds
  (default 1.0);
* ``REPRO_BENCH_SCALE``   — fraction of each dataset family to run
  (default 0.06, ≥1 graph per family);
* ``REPRO_BENCH_RESULTS`` — hard cap on results per graph (default 500).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

BUDGET = float(os.environ.get("REPRO_BENCH_BUDGET", "1.0"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.06"))
MAX_RESULTS = int(os.environ.get("REPRO_BENCH_RESULTS", "500"))


@pytest.fixture
def report(request):
    """Print a benchmark artefact through capture and save it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(text: str) -> None:
        banner = f"\n===== {request.node.name} =====\n"
        payload = banner + text + "\n"
        out_path = RESULTS_DIR / f"{request.node.name}.txt"
        out_path.write_text(payload, encoding="utf-8")
        capman = request.config.pluginmanager.getplugin("capturemanager")
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(payload, flush=True)
        else:
            print(payload, flush=True)

    return emit
