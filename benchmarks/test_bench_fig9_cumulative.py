"""E4 — paper Figure 9: cumulative result counts over time (case study).

Regenerates the Section 6.4 case-study series on a Promedas-like
network: cumulative number of (a) all minimal triangulations, (b)
those of the minimum observed width, and (c) those at least as good as
the first result.  Expected shape: the growth rate of new
triangulations tapers off over time (incremental polynomial time
rather than polynomial delay).
"""

from __future__ import annotations

from conftest import BUDGET
from repro.experiments.figures import fig9_cumulative_results
from repro.experiments.render import ascii_table, sparkline
from repro.experiments.runner import run_enumeration
from repro.workloads.pgm import promedas_like

CASE_STUDY_BUDGET = max(BUDGET * 5, 5.0)


def _run():
    graph = promedas_like(num_diseases=40, num_findings=70, seed=11)
    return run_enumeration(
        graph, triangulator="mcs_m", time_budget=CASE_STUDY_BUDGET, name="case_study"
    )


def test_fig9_cumulative_counts(benchmark, report):
    trace = benchmark.pedantic(_run, rounds=1, iterations=1)
    series = fig9_cumulative_results(trace, bins=12)
    rows = [
        [f"{t:.2f}", str(all_count), str(min_w), str(leq_first)]
        for t, all_count, min_w, leq_first in series
    ]
    table = ascii_table(["t (s)", "all results", "min-width", "<=w1"], rows)
    growth = [row[1] for row in series]
    first_half = growth[len(growth) // 2] - growth[0]
    second_half = growth[-1] - growth[len(growth) // 2]
    report(
        f"Figure 9 (Promedas-like case study, {CASE_STUDY_BUDGET:.0f}s budget)\n"
        + table
        + f"\ncumulative growth |{sparkline([row[1] for row in series], width=48)}|"
        + f"\nexpected shape: growth tapers (first half {first_half}, "
        f"second half {second_half} new results)"
    )
    assert trace.count > 0
