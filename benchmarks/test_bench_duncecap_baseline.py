"""E9 — paper Section 6.1.3: comparison against the DunceCap baseline.

The paper reports that the DunceCap-style exhaustive plan enumerator
is 3–4 orders of magnitude slower than the SGR enumeration on small
TPC-H queries and does not terminate on Q7/Q9 within two hours.  This
bench times our per-class proper-tree-decomposition enumeration
against the exhaustive baseline on the small queries, and shows the
baseline's plan count exploding where our output stays small.
"""

from __future__ import annotations

import time

from repro.baselines.duncecap import duncecap_tree_decompositions
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.errors import EnumerationBudgetExceeded
from repro.experiments.render import ascii_table
from repro.workloads.tpch import tpch_query

SMALL_QUERIES = ("Q4", "Q6", "Q13", "Q14", "Q5")
BASELINE_CAP = 20_000


def _run():
    rows = []
    for name in SMALL_QUERIES:
        graph = tpch_query(name)
        # Give the baseline the same bag-size room our best result uses.
        max_bag = (
            max(t.width for t in enumerate_minimal_triangulations(graph)) + 1
        )

        start = time.monotonic()
        ours = sum(1 for __ in enumerate_minimal_triangulations(graph))
        ours_time = time.monotonic() - start

        start = time.monotonic()
        baseline_count = 0
        exhausted_budget = False
        try:
            for __ in duncecap_tree_decompositions(
                graph, max_bag_size=max_bag, max_results=BASELINE_CAP
            ):
                baseline_count += 1
        except EnumerationBudgetExceeded:
            exhausted_budget = True
        baseline_time = time.monotonic() - start

        rows.append(
            (
                name,
                graph.num_nodes,
                ours,
                ours_time,
                baseline_count,
                baseline_time,
                exhausted_budget,
            )
        )
    return rows


def test_duncecap_baseline_comparison(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = ascii_table(
        [
            "query",
            "n",
            "#mintri (ours)",
            "ours (s)",
            "#plans (baseline)",
            "baseline (s)",
            "capped",
        ],
        [
            [
                name,
                str(n),
                str(ours),
                f"{ours_time:.3f}",
                str(baseline),
                f"{baseline_time:.3f}",
                "yes" if capped else "no",
            ]
            for name, n, ours, ours_time, baseline, baseline_time, capped in rows
        ],
    )
    blowups = [
        (baseline / max(ours, 1))
        for __, __, ours, __, baseline, __, __ in rows
    ]
    report(
        "DunceCap-style baseline vs SGR enumeration (small TPC-H queries)\n"
        + table
        + f"\nplan-space blowup factors: {[f'{b:.0f}x' for b in blowups]}"
        + "\nexpected shape: the baseline enumerates a far larger plan space "
        "(orders of magnitude) for the same decompositions"
    )
    # The baseline space must dominate ours on every query.
    for __, __, ours, __, baseline, __, __ in rows:
        assert baseline >= ours
    assert max(blowups) >= 100
