#!/usr/bin/env python
"""Microbenchmark: int-mask vs packed-kernel ``Extend`` pipeline.

Isolates the paper's ``Extend`` procedure — saturate ``g[φ]``,
triangulate it, extract the minimal separators of the result via the
clique forest — which PR 3 left as the dominant serial cost of every
enumeration step.  The same graph is measured on both graph-core
backends:

* ``indexed`` — the single-int bitmask core; MCS-M / LB-Triang / the
  clique-forest scan run their int-mask reference implementations;
* ``numpy``   — the packed ``uint64`` word-matrix core; the same
  algorithms route through the vectorized kernels of
  :mod:`repro.graph.bitset_np` (``PackedMCSQueue`` argmax selection,
  ``weight_level_rows`` threshold levels, ``union_rows`` /
  ``frontier_sweep`` neighbourhood unions, ``saturate_batch`` fill
  extraction);
* ``native``  — the same packed layout dispatched to the compiled C
  kernels of :mod:`repro.graph._native.native` (PR 6); skipped with a
  note when the extension is unavailable.

The backend list is an axis: ``--backends indexed,numpy,native``
measures each backend on the same graph and reports speedups relative
to the ``indexed`` reference.

The benchmark graph per size is *near-chordal*: a seeded random
chordal graph with 1% of its edges deleted.  That is the distribution
``Extend`` actually sees inside EnumMIS — ``g[φ]`` is already close to
triangulated once a few separators are saturated — and it keeps the
fill (whose label materialisation costs the same on both backends)
from drowning the kernel comparison.  Deep, narrow graphs (long
cycles) are the packed tier's known worst case: their frontier sweeps
have width ≤ 2, so there is nothing to vectorize and the per-round
dispatch checks cost a few percent.

``--check`` verifies the packed kernels against the int-mask oracles —
identical MCS-M fill + ordering, LB-Triang fills for every heuristic,
PEO verdicts, chordal separator sets, and ``Extend`` outputs — on the
seeded property corpus and exits non-zero on any mismatch: the
hardware-independent correctness gate run in CI.  The gate runs on the
backend named by ``--graph-backend`` (default ``numpy``; CI also runs
it with ``--graph-backend native``).  ``--record LABEL`` appends the
measurements (with the ``cores`` field convention of the PR 2/3
benchmarks) to ``baselines.json``::

    PYTHONPATH=src python benchmarks/microbench_extend.py
    PYTHONPATH=src python benchmarks/microbench_extend.py --check
    PYTHONPATH=src python benchmarks/microbench_extend.py \\
        --check --graph-backend native
    PYTHONPATH=src python benchmarks/microbench_extend.py \\
        --record extend-kernel-pr6-native
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time
from pathlib import Path

from repro.chordal.chordal_separators import minimal_separators_of_chordal
from repro.chordal.peo import (
    is_perfect_elimination_ordering,
    maximum_cardinality_search,
)
from repro.chordal.triangulate import lb_triang, mcs_m
from repro.core.extend import extend_parallel_set
from repro.graph import resolve_graph_backend
from repro.graph.generators import (
    cycle_graph,
    gnp_random_graph,
    random_chordal_graph,
)

BASELINES_PATH = Path(__file__).parent / "baselines.json"

SEED = 12345
DELETE_FRACTION = 0.01


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def near_chordal_graph(n: int, seed: int = SEED):
    """A random chordal graph with 1% of its edges deleted."""
    graph = random_chordal_graph(n, 0.05, seed=seed)
    rng = random.Random(seed)
    edges = graph.edges()
    for u, v in rng.sample(edges, max(1, int(len(edges) * DELETE_FRACTION))):
        graph.remove_edge(u, v)
    return graph


def measure(fn, repeats: int) -> float:
    samples = []
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def run_check(backend: str = "numpy") -> int:
    """Packed kernels vs int-mask oracles on the property corpus."""
    if backend == "native":
        from repro.graph._native import native

        if not native.available():
            print(
                f"FAILED: native backend requested but unavailable "
                f"({native.kernel_info()['reason']})"
            )
            return 1
    rng = random.Random(7)
    corpus = [
        gnp_random_graph(
            rng.randint(4, 14),
            rng.choice([0.2, 0.35, 0.5, 0.7]),
            seed=1000 + index,
        )
        for index in range(10)
    ]
    corpus += [
        gnp_random_graph(48, 0.15, seed=21),
        gnp_random_graph(96, 0.06, seed=22),
        cycle_graph(64),
        near_chordal_graph(128, seed=23),
    ]
    chordal = [
        random_chordal_graph(rng.randint(3, 20), d, seed=500 + i)
        for i, d in enumerate([0.2, 0.4, 0.7, 1.0, 0.3, 0.5])
    ] + [random_chordal_graph(90, 0.15, seed=24)]

    failures = 0
    for index, graph in enumerate(corpus):
        packed = resolve_graph_backend(graph, backend)
        pairs = [
            ("mcs_m", lambda g: mcs_m(g)),
            ("lb_triang:min_fill", lambda g: lb_triang(g)),
            (
                "lb_triang:min_degree",
                lambda g: lb_triang(g, heuristic="min_degree"),
            ),
            (
                "lb_triang:natural",
                lambda g: lb_triang(g, heuristic="natural"),
            ),
            ("extend", lambda g: extend_parallel_set(g, ())),
        ]
        for name, fn in pairs:
            if fn(graph) != fn(packed):
                failures += 1
                print(f"graph {index}: MISMATCH in {name}")
        order = graph.nodes()
        rng.shuffle(order)
        mcs_order = list(reversed(maximum_cardinality_search(graph)))
        for candidate in (order, mcs_order):
            if is_perfect_elimination_ordering(
                graph, candidate
            ) != is_perfect_elimination_ordering(packed, candidate):
                failures += 1
                print(f"graph {index}: MISMATCH in peo-check")
    for index, graph in enumerate(chordal):
        packed = resolve_graph_backend(graph, backend)
        if minimal_separators_of_chordal(
            graph
        ) != minimal_separators_of_chordal(packed):
            failures += 1
            print(f"chordal graph {index}: MISMATCH in separator extraction")
    if failures:
        print(f"FAILED: {failures} packed-vs-oracle mismatches")
        return 1
    print(
        f"OK — packed ({backend}) Extend kernels match the int-mask "
        f"oracles on {len(corpus)} graphs + {len(chordal)} chordal graphs"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default="300,1500,2500",
        help="comma-separated graph sizes (default: 300,1500,2500)",
    )
    parser.add_argument(
        "--triangulators",
        default="mcs_m,lb_triang",
        help="heuristics to measure (default: mcs_m,lb_triang)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions; the median is reported (default: 3)",
    )
    parser.add_argument(
        "--backends",
        default="indexed,numpy,native",
        help="comma-separated backend axis for the timing mode "
        "(default: indexed,numpy,native; native is skipped with a "
        "note when the extension is unavailable)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the packed kernels match the int-mask oracles on "
        "the property corpus; exit 1 on mismatch (correctness gate, "
        "no timing)",
    )
    parser.add_argument(
        "--graph-backend",
        default="numpy",
        choices=("numpy", "native"),
        help="packed backend the --check gate pins against the "
        "int-mask oracles (default: numpy)",
    )
    parser.add_argument(
        "--record",
        metavar="LABEL",
        help="append the measurements to baselines.json under LABEL",
    )
    args = parser.parse_args()

    if args.check:
        return run_check(args.graph_backend)

    sizes = [int(size) for size in args.sizes.split(",") if size]
    triangulators = [t for t in args.triangulators.split(",") if t]
    backends = [b for b in args.backends.split(",") if b]
    if "native" in backends:
        from repro.graph._native import native

        if not native.available():
            print(
                f"note: native backend unavailable "
                f"({native.kernel_info()['reason']}) — skipped"
            )
            backends = [b for b in backends if b != "native"]
    results: dict[str, dict] = {}
    for n in sizes:
        graph = near_chordal_graph(n)
        resolved = {
            backend: resolve_graph_backend(graph, backend)
            for backend in backends
        }
        per_size: dict[str, dict] = {}
        for name in triangulators:
            row: dict[str, float] = {}
            for backend in backends:
                instance = resolved[backend]
                seconds = measure(
                    lambda: extend_parallel_set(instance, (), name),
                    args.repeats,
                )
                row[f"{backend}_seconds"] = round(seconds, 6)
            reference = row.get(
                f"{backends[0]}_seconds", next(iter(row.values()))
            )
            for backend in backends[1:]:
                row[f"speedup_{backend}"] = round(
                    reference / row[f"{backend}_seconds"], 2
                )
            per_size[name] = row
            cells = "  ".join(
                f"{backend} {row[f'{backend}_seconds'] * 1e3:9.3f}ms"
                for backend in backends
            )
            ratios = "  ".join(
                f"{backend} {row[f'speedup_{backend}']:.2f}x"
                for backend in backends[1:]
            )
            print(f"n={n:<5} {name:<10} {cells}  → vs {backends[0]}: {ratios}")
        results[str(n)] = per_size

    if args.record:
        baselines = json.loads(BASELINES_PATH.read_text())
        baselines[args.record] = {
            "repeats": args.repeats,
            "cores": usable_cores(),
            "graph": {
                "family": "near-chordal",
                "density": 0.05,
                "deleted": DELETE_FRACTION,
                "seed": SEED,
            },
            "note": "Extend(∅) pipeline (triangulate + clique-forest "
            "extraction), backend axis on the same graph; speedups are "
            "relative to the first backend listed",
            "backends": backends,
            "sizes": results,
        }
        BASELINES_PATH.write_text(json.dumps(baselines, indent=2) + "\n")
        print(f"recorded as '{args.record}' in {BASELINES_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
