"""E6 — paper Table 1: width statistics per dataset × triangulator.

Regenerates Table 1: for each PGM dataset family and each of MCS-M /
LB-Triang, the number of triangulations generated in the budget, the
best width, the number (and share) of results at least as good as the
first, and the average/maximum relative width improvement.  Expected
shape (Section 6.3): MCS-M generates roughly twice as many
triangulations; LB-Triang's triangulations are usually of better
quality; both improve upon the first (heuristic-only) result.
"""

from __future__ import annotations

import pytest

from conftest import BUDGET, MAX_RESULTS, SCALE
from repro.experiments.tables import quality_table, render_quality_table
from repro.workloads.pgm import pgm_suites


def _run(triangulator: str):
    suites = pgm_suites(scale=SCALE)
    return quality_table(
        suites,
        triangulator,
        measure="width",
        time_budget=BUDGET,
        max_results=MAX_RESULTS,
    )


@pytest.mark.parametrize("triangulator", ["mcs_m", "lb_triang"])
def test_table1_width_statistics(benchmark, report, triangulator):
    rows = benchmark.pedantic(_run, args=(triangulator,), rounds=1, iterations=1)
    table = render_quality_table(rows, "width")
    paper = (
        "paper (30min, MCS-M): Promedas #trng 11064.5 / min-w 25.8 ; "
        "ObjDet 100349.9 / 6.1 ; Grids 40319.8 / 18.4\n"
        "paper (30min, LB-Triang): Promedas 4220.7 / 18.6 ; "
        "ObjDet 33295.4 / 5.8 ; Grids 13881.3 / 24.5"
    )
    report(
        f"Table 1 — width ({triangulator}), budget {BUDGET}s/graph, "
        f"scale {SCALE}\n{table}\n{paper}"
    )
    assert all(row.avg_count >= 1 for row in rows)
