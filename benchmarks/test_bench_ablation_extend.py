"""E10 — ablation: where does the enumeration spend its work?

Not a paper artefact; DESIGN.md calls this out as an ablation over the
design choices.  It decomposes the cost of the pipeline on one graph:

* how many ``Extend`` calls / edge-oracle calls / SGR nodes the
  EnumMIS bookkeeping needs per produced answer;
* how the choice of the plugged-in triangulation heuristic changes the
  per-answer cost (including the non-minimal heuristics that must pay
  for the sandwich step);
* how many redundant extensions (duplicates) the algorithm suppresses,
  which is the price of incremental polynomial time.
"""

from __future__ import annotations

import time

from repro.experiments.render import ascii_table
from repro.experiments.runner import run_enumeration
from repro.workloads.pgm import object_detection_like

TRIANGULATORS = ("mcs_m", "lb_triang", "lex_m", "min_fill", "min_degree")
CAP = 60


def _run():
    graph = object_detection_like(seed=3)
    rows = []
    for triangulator in TRIANGULATORS:
        start = time.monotonic()
        trace = run_enumeration(
            graph, triangulator=triangulator, max_results=CAP, name="ablation"
        )
        elapsed = time.monotonic() - start
        stats = trace.stats
        rows.append(
            (
                triangulator,
                trace.count,
                elapsed,
                stats.extend_calls,
                stats.edge_oracle_calls,
                stats.nodes_generated,
                stats.duplicates_suppressed,
                trace.min_width,
            )
        )
    return rows


def test_ablation_extend_cost(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = ascii_table(
        [
            "triangulator",
            "#results",
            "time (s)",
            "Extend calls",
            "edge-oracle calls",
            "SGR nodes",
            "dups suppressed",
            "min width",
        ],
        [
            [
                name,
                str(count),
                f"{elapsed:.2f}",
                str(extends),
                str(oracle),
                str(nodes),
                str(dups),
                str(width),
            ]
            for name, count, elapsed, extends, oracle, nodes, dups, width in rows
        ],
    )
    per_answer = {
        name: extends / max(count, 1)
        for name, count, __, extends, *__rest in rows
    }
    report(
        "Ablation — Extend cost per produced answer (object-detection MRF, "
        f"first {CAP} results)\n"
        + table
        + "\nExtend calls per answer: "
        + ", ".join(f"{k}={v:.1f}" for k, v in per_answer.items())
        + "\nexpected shape: minimal heuristics (mcs_m, lb_triang) skip the "
        "sandwich; elimination-game heuristics pay extra time per Extend"
    )
    for __, count, *__rest in rows:
        assert count == CAP
