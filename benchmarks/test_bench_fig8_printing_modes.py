"""E3 — paper Figure 8: UG vs UP printing modes on TPC-H Q7.

Regenerates the delay-behaviour comparison of Section 6.2.3: the same
enumeration printed Upon Generation (EnumMIS) versus Upon Pop
(EnumMISHold).  Expected shape, as in the paper: UG's curve has bursts
of high-frequency prints followed by quiet periods while UP's pace is
steadier; the **last result arrives earlier under UG** ("despite the
fact that the last result of UG is printed earlier than that of UP,
termination is at the same time in both modes"); both modes print the
same result set.
"""

from __future__ import annotations

from repro.experiments.figures import fig8_printing_modes
from repro.experiments.render import ascii_table, sparkline
from repro.workloads.tpch import tpch_query


def _run():
    graph = tpch_query("Q7")
    # Run to completion: the UG-vs-UP contrast is about when the *last*
    # results arrive, which a result cap would hide.
    return fig8_printing_modes(graph, max_results=None)


def test_fig8_ug_vs_up(benchmark, report):
    traces = benchmark.pedantic(_run, rounds=1, iterations=1)
    ug, up = traces["UG"], traces["UP"]

    bins = 24
    lines = []
    for label, trace in (("UG", ug), ("UP", up)):
        horizon = max(trace.elapsed, 1e-9)
        counts = [0] * bins
        for record in trace.records:
            slot = min(int(record.elapsed / horizon * bins), bins - 1)
            counts[slot] += 1
        lines.append(
            f"{label}: results={trace.count} last-result@{trace.records[-1].elapsed:.2f}s "
            f"terminated@{trace.elapsed:.2f}s per-bin rate |{sparkline(counts, width=bins)}|"
        )
    rows = []
    for label, trace in (("UG", ug), ("UP", up)):
        gaps = [
            b.elapsed - a.elapsed
            for a, b in zip(trace.records, trace.records[1:])
        ]
        rows.append(
            [
                label,
                f"{trace.records[-1].elapsed:.2f}",
                f"{trace.elapsed:.2f}",
                f"{max(gaps):.3f}",
                f"{max(gaps) / (sum(gaps) / len(gaps)):.1f}x",
            ]
        )
    table = ascii_table(
        ["mode", "last result (s)", "terminated (s)", "max gap (s)", "max/mean gap"],
        rows,
    )
    report(
        "Figure 8 (TPC-H Q7, UG vs UP, full enumeration)\n"
        + "\n".join(lines)
        + "\n"
        + table
        + "\nexpected shape: UG's last result arrives no later than UP's; "
        "termination times match; same result count"
    )
    assert ug.count == up.count
    # The defining property (Theorem 3.4's premise): every answer is
    # printed under UG no later than under UP — check it for the last.
    assert ug.records[-1].elapsed <= up.records[-1].elapsed * 1.5
