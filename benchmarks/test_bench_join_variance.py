"""E12 — join-plan variance across same-width decompositions.

Regenerates the observation that motivates the paper's enumeration for
databases (Section 1, citing Kalinsky et al.): isomorphic-width tree
decompositions of the same join query can differ by large factors in
join performance.  We enumerate the GHDs of a 5-cycle query through
the library, evaluate the full join under each with the Yannakakis
engine, and report the spread in maximum intermediate size — all plans
have the same width and the same answer.
"""

from __future__ import annotations

from repro.db import EvaluationStatistics, Relation, evaluate_naive, evaluate_with_ghd
from repro.experiments.render import ascii_table
from repro.hypergraph import Hypergraph, enumerate_ghds


def _run():
    hypergraph = Hypergraph(
        {
            "R": ("a", "b"),
            "S": ("b", "c"),
            "T": ("c", "d"),
            "U": ("d", "e"),
            "V": ("e", "a"),
        }
    )
    instance = {
        "R": Relation.random(("a", "b"), 300, 25, seed=41),
        "S": Relation.random(("b", "c"), 60, 25, seed=42),
        "T": Relation.random(("c", "d"), 60, 25, seed=43),
        "U": Relation.random(("d", "e"), 60, 25, seed=44),
        "V": Relation.random(("e", "a"), 60, 25, seed=45),
    }
    expected = evaluate_naive(hypergraph, instance)
    plans = []
    for ghd in enumerate_ghds(hypergraph):
        stats = EvaluationStatistics()
        result = evaluate_with_ghd(hypergraph, instance, ghd, stats)
        assert result == expected.project(result.attributes)
        plans.append(
            (
                ghd.width,
                [sorted(map(str, bag)) for bag in ghd.decomposition.bags],
                stats.max_intermediate,
                stats.total_intermediate,
            )
        )
    return len(expected), plans


def test_join_plan_variance(benchmark, report):
    answer_size, plans = benchmark.pedantic(_run, rounds=1, iterations=1)
    plans.sort(key=lambda plan: plan[2])
    rows = [
        [
            str(width),
            " ".join("{" + ",".join(bag) + "}" for bag in bags),
            str(max_intermediate),
            str(total),
        ]
        for width, bags, max_intermediate, total in plans
    ]
    table = ascii_table(
        ["width", "bags", "max intermediate", "total intermediate"], rows
    )
    spread = plans[-1][2] / plans[0][2]
    report(
        f"Join-plan variance (5-cycle query, {answer_size} answers, "
        f"{len(plans)} proper decompositions)\n"
        + table
        + f"\nspread: worst/best max-intermediate = {spread:.2f}x at equal width"
        + "\nexpected shape: same width, same answer, materially different cost"
    )
    widths = {width for width, *__ in plans}
    assert widths == {2}
    assert spread >= 1.5
