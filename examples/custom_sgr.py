"""Using the SGR framework directly: maximal independent sets at scale.

Run with ``python examples/custom_sgr.py``.

The paper's enumeration engine is generic: any *succinct graph
representation* with a polynomial-delay node iterator, a polynomial
edge oracle and a tractable expansion gets incremental-polynomial-time
enumeration of its maximal independent sets (Theorem 3.1).  This
example defines a custom SGR whose graph is never materialised — the
conflict graph of intervals (nodes = intervals, edges = overlaps) —
and enumerates its maximal independent sets, i.e. all maximal sets of
pairwise-disjoint intervals.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.sgr.base import SuccinctGraphRepresentation
from repro.sgr.enum_mis import enumerate_maximal_independent_sets

Interval = tuple[int, int]


class IntervalConflictSGR(SuccinctGraphRepresentation):
    """Nodes are intervals; edges connect overlapping intervals.

    ``extend`` greedily packs intervals by right endpoint — a valid
    tractable expansion because any non-maximal independent set leaves
    a gap that the earliest-finishing disjoint interval can fill.
    """

    def __init__(self, intervals: list[Interval]) -> None:
        self._intervals = sorted(set(intervals), key=lambda iv: (iv[1], iv[0]))

    def iter_nodes(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def has_edge(self, u: Interval, v: Interval) -> bool:
        return u != v and u[0] < v[1] and v[0] < u[1]

    def extend(self, independent_set: frozenset[Interval]) -> frozenset[Interval]:
        chosen = set(independent_set)
        for interval in self._intervals:
            if interval in chosen:
                continue
            if all(not self.has_edge(interval, other) for other in chosen):
                chosen.add(interval)
        return frozenset(chosen)


def main() -> None:
    rng = random.Random(42)
    intervals = []
    while len(intervals) < 12:
        start = rng.randint(0, 30)
        length = rng.randint(2, 8)
        intervals.append((start, start + length))

    sgr = IntervalConflictSGR(intervals)
    print(f"{len(intervals)} intervals; maximal disjoint packings:")
    for packing in enumerate_maximal_independent_sets(sgr):
        laid_out = sorted(packing)
        print("  " + ", ".join(f"[{a},{b})" for a, b in laid_out))


if __name__ == "__main__":
    main()
