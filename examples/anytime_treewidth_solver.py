"""A PACE-style anytime treewidth solver built on the enumeration.

Run with ``python examples/anytime_treewidth_solver.py [file.gr]``.

Combines three pieces of the library into a practical tool:

1. cheap treewidth lower bounds (degeneracy, MMD+, greedy clique);
2. the cost-guided best-first enumeration of minimal triangulations
   (every graph's treewidth is realised by *some* minimal
   triangulation, so the search space is complete);
3. the PACE ``.td`` writer for the certificate.

When the best width found matches the lower bound the answer is
provably exact — on many structured graphs that happens within
milliseconds; otherwise the tool reports the best upper bound found
within the budget, anytime-style.
"""

from __future__ import annotations

import sys
import time

from repro.core.bounds import (
    clique_lower_bound,
    degeneracy_lower_bound,
    mmd_plus_lower_bound,
)
from repro.core.ranked import anytime_treewidth
from repro.decomposition.io import write_pace_td
from repro.graph.generators import grid_graph
from repro.graph.io import read_pace_graph


def main() -> None:
    if len(sys.argv) > 1:
        graph = read_pace_graph(sys.argv[1])
        print(f"loaded {sys.argv[1]}: {graph.summary()}")
    else:
        graph = grid_graph(4, 5)
        print(f"demo input: 4x5 grid ({graph.summary()})")

    print("lower bounds:")
    print(f"  degeneracy : {degeneracy_lower_bound(graph)}")
    print(f"  MMD+       : {mmd_plus_lower_bound(graph)}")
    print(f"  clique     : {clique_lower_bound(graph)}")

    start = time.monotonic()
    width, best, optimal = anytime_treewidth(graph, time_budget=15.0)
    elapsed = time.monotonic() - start
    verdict = "EXACT (matches lower bound or search exhausted)" if optimal else "upper bound"
    print(f"\ntreewidth = {width}  [{verdict}]  in {elapsed:.2f}s")
    print(f"fill of the certificate triangulation: {best.fill}")

    out = "solution.td"
    write_pace_td(best.tree_decomposition(), graph, out)
    print(f"certificate written to {out} (PACE format)")


if __name__ == "__main__":
    main()
