"""Anytime behaviour case study (the paper's Figures 9 and 10).

Run with ``python examples/anytime_case_study.py``.

Reproduces the paper's Section 6.4 case study on a Promedas-like
medical-diagnosis network: run the enumeration for a fixed budget and
watch (a) the cumulative number of results, split into all / minimum
width / at-least-as-good-as-first, and (b) the running minimum width
and fill.  The expected shape: the result rate tapers off (incremental
polynomial time, not polynomial delay), the minimum width is reached
quickly, and the minimum fill keeps improving for longer.
"""

from __future__ import annotations

from repro.experiments import (
    fig9_cumulative_results,
    fig10_quality_over_time,
    run_enumeration,
    sparkline,
)
from repro.workloads.pgm import promedas_like


def main() -> None:
    graph = promedas_like(num_diseases=40, num_findings=70, seed=11)
    print(f"Promedas-like case study graph: {graph.summary()}")

    trace = run_enumeration(graph, triangulator="mcs_m", time_budget=10.0)
    print(f"enumerated {trace.count} minimal triangulations in {trace.elapsed:.1f}s\n")

    print("cumulative results over time (Figure 9):")
    print(f"{'t (s)':>8}  {'all':>6}  {'min-width':>9}  {'<=w1':>6}")
    for t, all_count, min_w_count, leq_count in fig9_cumulative_results(trace, bins=10):
        print(f"{t:8.2f}  {all_count:6d}  {min_w_count:9d}  {leq_count:6d}")

    counts = [row[1] for row in fig9_cumulative_results(trace, bins=60)]
    print(f"\n  growth: |{sparkline(counts)}|")

    print("\nrunning minima over time (Figure 10):")
    series = fig10_quality_over_time(trace)
    print("  width:", " -> ".join(f"{w}@{t:.2f}s" for t, w in series["width"]))
    print("  fill :", " -> ".join(f"{f}@{t:.2f}s" for t, f in series["fill"]))


if __name__ == "__main__":
    main()
