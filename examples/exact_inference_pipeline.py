"""End-to-end exact inference: enumerate decompositions, pick, calibrate.

Run with ``python examples/exact_inference_pipeline.py``.

The full pipeline the paper enables for probabilistic graphical
models: build a Markov network, enumerate proper tree decompositions
of its primal graph for a small budget, select the one minimising the
*total junction-tree table volume* (not just the width!), and run
sum-product calibration on it.  The partition function is verified to
be identical across decompositions — only the cost changes.
"""

from __future__ import annotations

import itertools
import time

from repro.core.enumerate import enumerate_minimal_triangulations
from repro.decomposition.metrics import log_table_volume, summary
from repro.graph.generators import grid_graph
from repro.inference import MarkovNetwork, calibrate


def main() -> None:
    graph = grid_graph(3, 4)
    model = MarkovNetwork.random(graph, seed=23, domain_size=3)
    print(f"Markov network on {graph.summary()}, ternary variables")

    candidates = []
    start = time.monotonic()
    for triangulation in itertools.islice(
        enumerate_minimal_triangulations(graph, triangulator="lb_triang"), 40
    ):
        decomposition = triangulation.tree_decomposition()
        candidates.append(
            (log_table_volume(decomposition, 3), decomposition, triangulation)
        )
    elapsed = time.monotonic() - start
    print(f"enumerated {len(candidates)} decompositions in {elapsed:.2f}s")

    candidates.sort(key=lambda item: item[0])
    best_volume, best, __ = candidates[0]
    worst_volume, worst, __ = candidates[-1]
    print(f"table volume: best 2^{best_volume:.2f}, worst 2^{worst_volume:.2f} "
          f"({2 ** (worst_volume - best_volume):.1f}x difference)")
    print("best decomposition metrics:", summary(best, graph, 3))

    z_values = []
    for label, decomposition in (("best", best), ("worst", worst)):
        start = time.monotonic()
        result = calibrate(model, decomposition)
        elapsed = time.monotonic() - start
        z_values.append(result.partition_function)
        print(
            f"{label}: Z={result.partition_function:.6e} "
            f"max table={result.max_table_entries} "
            f"total tables={result.total_table_entries} "
            f"time={elapsed * 1000:.1f}ms"
        )
    spread = abs(z_values[0] - z_values[1]) / z_values[0]
    print(f"partition functions agree to relative error {spread:.2e}")

    variable = graph.nodes()[0]
    marginal = calibrate(model, best).normalized_marginal(variable)
    print(f"marginal of {variable}: {[round(p, 4) for p in marginal]}")


if __name__ == "__main__":
    main()
