"""Quickstart: enumerate the minimal triangulations of a small graph.

Run with ``python examples/quickstart.py``.

Builds the 4-cycle plus a pendant node, enumerates its minimal
triangulations and proper tree decompositions, and shows the
correspondence between the two (paper Sections 4 and 5).
"""

from repro import (
    Graph,
    enumerate_minimal_triangulations,
    enumerate_proper_tree_decompositions,
    is_chordal,
)


def main() -> None:
    # A 4-cycle a-b-c-d plus a pendant node e attached to a.
    graph = Graph(edges=[("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "e")])
    print(f"input: {graph.summary()}, chordal: {is_chordal(graph)}")

    print("\nminimal triangulations:")
    for triangulation in enumerate_minimal_triangulations(graph):
        print(
            f"  fill={list(triangulation.fill_edges)}  "
            f"width={triangulation.width}  fill-size={triangulation.fill}  "
            f"minimal={triangulation.is_minimal()}"
        )

    print("\nproper tree decompositions (one per bag-equivalence class):")
    for decomposition in enumerate_proper_tree_decompositions(graph, per_class=True):
        bags = [sorted(bag) for bag in decomposition.bags]
        print(f"  bags={bags}  width={decomposition.width}")

    print("\nall proper tree decompositions (every clique tree):")
    count = sum(1 for __ in enumerate_proper_tree_decompositions(graph))
    print(f"  total: {count}")


if __name__ == "__main__":
    main()
