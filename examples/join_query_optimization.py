"""Join-query optimisation: pick the best tree decomposition for a query.

Run with ``python examples/join_query_optimization.py [QUERY]``.

This is the scenario that motivates the paper's database angle
(Section 1 and the TPC-H experiment): a join query's primal graph
admits many proper tree decompositions; rather than trusting a single
heuristic, enumerate a batch of them and let the *application's own
cost function* choose.  Kalinsky et al. observed order-of-magnitude
join-performance differences between same-width decompositions, so
the width alone is a poor proxy.

The toy cost model below scores a decomposition by the estimated
intermediate-result volume: the product of per-bag sizes, where a bag
over k variables costs ``base**k``, discounted by adhesion (shared
variables with the parent are already bound).  Swap in your own.
"""

from __future__ import annotations

import sys
import time

from repro import enumerate_proper_tree_decompositions
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.workloads.tpch import tpch_query, tpch_query_names


def estimated_cost(decomposition: TreeDecomposition, base: float = 10.0) -> float:
    """A crude join-cost model: sum of bag volumes, adhesion-discounted."""
    adjacency = decomposition.neighbors()
    # Root the tree at bag 0 and account shared variables to the parent.
    order = [0]
    parent: dict[int, int | None] = {0: None}
    for current in order:
        for neighbor in adjacency[current]:
            if neighbor not in parent:
                parent[neighbor] = current
                order.append(neighbor)
    cost = 0.0
    for index in order:
        bag = decomposition.bags[index]
        up = parent[index]
        bound = len(bag & decomposition.bags[up]) if up is not None else 0
        cost += base ** (len(bag) - bound)
    return cost


def main() -> None:
    query = sys.argv[1] if len(sys.argv) > 1 else "Q7"
    if query not in tpch_query_names():
        raise SystemExit(f"unknown query {query}; choose from {tpch_query_names()}")
    graph = tpch_query(query)
    print(f"TPC-H {query}: {graph.summary()}")

    best: TreeDecomposition | None = None
    best_cost = float("inf")
    first_cost = None
    count = 0
    start = time.monotonic()
    budget_seconds = 10.0
    for decomposition in enumerate_proper_tree_decompositions(graph, per_class=True):
        count += 1
        cost = estimated_cost(decomposition)
        if first_cost is None:
            first_cost = cost
        if cost < best_cost:
            best, best_cost = decomposition, cost
            print(
                f"  [{time.monotonic() - start:6.2f}s] improved: "
                f"cost={cost:,.0f} width={decomposition.width} "
                f"bags={decomposition.num_bags}"
            )
        if time.monotonic() - start > budget_seconds:
            print(f"  (stopping after {budget_seconds}s anytime budget)")
            break

    assert best is not None and first_cost is not None
    print(f"\nexamined {count} decompositions")
    print(f"first (heuristic-only) cost : {first_cost:,.0f}")
    print(f"best cost found             : {best_cost:,.0f}")
    print(f"improvement                 : {first_cost / best_cost:.2f}x")
    print("best decomposition bags:")
    for bag in best.bags:
        print(f"  {sorted(bag)}")


if __name__ == "__main__":
    main()
