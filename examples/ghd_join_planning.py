"""GHD-based join planning: same width, very different plans.

Run with ``python examples/ghd_join_planning.py``.

The database story of the paper (and of Kalinsky et al.): the primal
graph of a join query has many proper tree decompositions, they all
compute the same answer, and — even at equal width — they differ
substantially in intermediate-result sizes.  This example builds a
5-cycle join query with skewed synthetic relations, enumerates its
generalized hypertree decompositions through the library, evaluates
the full join under each with the Yannakakis-style engine, and ranks
the plans by their measured maximum intermediate size.
"""

from __future__ import annotations

from repro.db import EvaluationStatistics, Relation, evaluate_naive, evaluate_with_ghd
from repro.hypergraph import Hypergraph, enumerate_ghds


def build_query() -> tuple[Hypergraph, dict[str, Relation]]:
    hypergraph = Hypergraph(
        {
            "R": ("a", "b"),
            "S": ("b", "c"),
            "T": ("c", "d"),
            "U": ("d", "e"),
            "V": ("e", "a"),
        }
    )
    # Skewed relations: R is large, the others small — plans that
    # materialise R-heavy bags early pay for it.
    instance = {
        "R": Relation.random(("a", "b"), 300, 25, seed=41),
        "S": Relation.random(("b", "c"), 60, 25, seed=42),
        "T": Relation.random(("c", "d"), 60, 25, seed=43),
        "U": Relation.random(("d", "e"), 60, 25, seed=44),
        "V": Relation.random(("e", "a"), 60, 25, seed=45),
    }
    return hypergraph, instance


def main() -> None:
    hypergraph, instance = build_query()
    print("query: 5-cycle join R(a,b) S(b,c) T(c,d) U(d,e) V(e,a)")
    print("sizes:", {name: len(rel) for name, rel in instance.items()})

    naive_stats = EvaluationStatistics()
    expected = evaluate_naive(hypergraph, instance, naive_stats)
    print(
        f"naive fold join: {len(expected)} answers, "
        f"max intermediate {naive_stats.max_intermediate}"
    )

    plans = []
    for ghd in enumerate_ghds(hypergraph):
        stats = EvaluationStatistics()
        result = evaluate_with_ghd(hypergraph, instance, ghd, stats)
        assert result == expected.project(result.attributes)
        plans.append((stats.max_intermediate, stats.total_intermediate, ghd))

    plans.sort(key=lambda plan: plan[0])
    print(f"\n{len(plans)} GHD plans, all width "
          f"{plans[0][2].width}, all returning the same answer:")
    for max_intermediate, total, ghd in plans:
        bags = [
            "{" + ",".join(sorted(map(str, bag))) + "}"
            for bag in ghd.decomposition.bags
        ]
        print(
            f"  max-int {max_intermediate:6d}  total {total:7d}  "
            f"bags {' '.join(bags)}"
        )
    best, worst = plans[0][0], plans[-1][0]
    print(f"\nbest plan beats worst by {worst / best:.2f}x on max "
          "intermediate size — same width, same answer")


if __name__ == "__main__":
    main()
