"""Junction-tree inference: shrink the width of a Markov network.

Run with ``python examples/probabilistic_inference.py``.

Exact inference in a probabilistic graphical model is exponential in
the width of the junction tree used, so every saved unit of width is a
constant-factor speedup of the whole inference workload.  This example
takes an object-detection-style Markov Random Field, runs the anytime
enumeration for a few seconds with both triangulation back-ends, and
reports the width/fill improvements over the plain heuristics — the
paper's Section 6.3 measurement in miniature.
"""

from __future__ import annotations

from repro.experiments import run_enumeration
from repro.workloads.pgm import object_detection_like


def main() -> None:
    graph = object_detection_like(seed=7)
    print(f"object-detection MRF: {graph.summary()}")

    for triangulator in ("mcs_m", "lb_triang"):
        trace = run_enumeration(
            graph,
            triangulator=triangulator,
            time_budget=5.0,
            name="objdetect",
        )
        print(f"\n{triangulator} (5s anytime budget):")
        print(f"  triangulations generated : {trace.count}")
        print(f"  width  first -> best     : {trace.first_width} -> {trace.min_width}")
        print(f"  fill   first -> best     : {trace.first_fill} -> {trace.min_fill}")
        print(
            "  results at least as good as the plain heuristic: "
            f"{trace.num_at_most_first_width} by width, "
            f"{trace.num_at_most_first_fill} by fill"
        )
        saved = trace.first_width - trace.min_width
        if saved > 0:
            # A table over k binary variables has 2^k entries.
            print(
                f"  junction-tree speedup for binary variables: ~2^{saved} = "
                f"{2 ** saved}x smaller largest table"
            )


if __name__ == "__main__":
    main()
