"""Maximal cliques and clique forests of chordal graphs (system S6).

For a chordal graph, a single Maximum Cardinality Search yields, in
linear time, the maximal cliques *and* a clique tree (one tree per
connected component — a clique forest), following Blair–Peyton and
Galinier–Habib–Paul:

* visiting order ``x_1, …, x_n``; ``M(x_i)`` is the set of
  already-visited neighbours of ``x_i``;
* ``x_i`` *continues* the current clique when
  ``|M(x_i)| = |M(x_{i-1})| + 1`` (then ``M(x_i)`` equals the clique
  built so far) and otherwise *starts* a new clique ``{x_i} ∪ M(x_i)``;
* the parent of a new clique is the clique that absorbed the
  last-visited vertex of ``M(x_i)``, and the clique-tree edge label
  (= a minimal separator) is ``M(x_i)``.

The invariants above hold for every MCS execution on a chordal graph;
they are asserted at runtime and a violation raises
:class:`~repro.errors.NotChordalError`, so feeding a non-chordal graph
fails loudly rather than silently producing garbage.  The test suite
cross-checks the cliques against a Bron–Kerbosch oracle and the
separators against the brute-force definition on hundreds of random
chordal graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NotChordalError
from repro.graph.core import MaxWeightBuckets, iter_bits
from repro.graph.graph import Graph, Node

try:  # numpy unavailable: only the int-mask reference path exists
    import numpy as _np

    from repro.graph import bitset_np as _kernel
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None
    _kernel = None

__all__ = [
    "CliqueForest",
    "clique_forest_masks",
    "mcs_clique_forest",
    "maximal_cliques",
    "tree_width",
]


@dataclass(frozen=True)
class CliqueForest:
    """A clique forest (one clique tree per connected component).

    Attributes
    ----------
    cliques:
        The maximal cliques, in creation (MCS) order.
    parent:
        ``parent[i]`` is the index of clique ``i``'s parent in its
        clique tree, or ``None`` for the root clique of a component.
    separators:
        ``separators[i]`` is the clique-tree edge label between clique
        ``i`` and its parent (``cliques[i] ∩ cliques[parent[i]]``), or
        ``None`` for roots.  The *set* of non-``None`` labels is
        exactly ``MinSep`` of a connected chordal graph.
    clique_of:
        For every node, the index of the clique it was assigned to
        during the search (the node is a member of that clique).
    """

    cliques: tuple[frozenset[Node], ...]
    parent: tuple[int | None, ...]
    separators: tuple[frozenset[Node] | None, ...]
    clique_of: dict[Node, int] = field(hash=False)

    def edges(self) -> list[tuple[int, int, frozenset[Node]]]:
        """Return the clique-tree edges as ``(child, parent, separator)``."""
        return [
            (i, p, sep)
            for i, (p, sep) in enumerate(zip(self.parent, self.separators))
            if p is not None and sep is not None
        ]

    @property
    def width(self) -> int:
        """Max clique size − 1 (the treewidth of the chordal graph)."""
        if not self.cliques:
            return -1
        return max(len(clique) for clique in self.cliques) - 1


def clique_forest_masks(
    graph: Graph,
) -> tuple[list[int], list[int | None], list[int | None], list[int]]:
    """The mask-level MCS clique-forest scan.

    Returns ``(clique_masks, parent, separator_masks, clique_of_idx)``
    — the label-free core of :func:`mcs_clique_forest`, which the
    ``Extend`` pipeline consumes directly (it only needs separator
    masks, so skipping the label translation of every clique is a
    measurable win per call).

    The search runs on the bitmask core: cliques under construction and
    the visited set are masks, so the continuation and parent-clique
    invariants are single integer comparisons.  On a numpy-backed core
    the selection queue, the weight bumps and the last-visited argmax
    run as packed-kernel reductions; the int-mask structures stay the
    reference path.

    Raises
    ------
    NotChordalError
        If the construction invariants fail, which happens exactly when
        ``graph`` is not chordal.
    """
    core = graph.core
    adj = core.adj
    if not core.alive:
        return [], [], [], []

    ranks = graph.ranks()
    # Unvisited vertices bucketed by weight (= number of visited
    # neighbours); max-weight extraction and weight bumps are mask ops.
    unvisited = core.alive
    matrix = _kernel.packed_view(core) if _kernel is not None else None
    if matrix is not None:
        ns = _kernel.kernels_for(core)
        words = matrix.shape[1]
        visit_time = _np.zeros(len(adj), dtype=_np.int64)
        queue = ns.PackedMCSQueue(unvisited, ranks, words)
    else:
        weights = [0] * len(adj)
        visit_time = [0] * len(adj)
        queue = MaxWeightBuckets(unvisited)

    visited = 0
    n_visited = 0
    clique_masks: list[int] = []
    parent: list[int | None] = []
    separator_masks: list[int | None] = []
    clique_of_idx = [0] * len(adj)
    current_clique = -1
    prev_card = -1
    n = core.num_vertices

    while n_visited < n:
        node = (
            queue.pop_max() if matrix is not None else queue.pop_max(ranks)
        )
        bit_node = 1 << node
        unvisited &= ~bit_node
        visited_neighbors = adj[node] & visited
        card = visited_neighbors.bit_count()
        if card == prev_card + 1 and current_clique >= 0:
            # Continuation: node extends the clique under construction.
            if visited_neighbors != clique_masks[current_clique]:
                raise NotChordalError(
                    f"{graph.summary()} is not chordal "
                    "(MCS clique-continuation invariant failed)"
                )
            clique_masks[current_clique] |= 1 << node
        else:
            # New clique {node} ∪ M(node).
            if card > 0:
                if matrix is not None and card >= ns.BATCH_MIN:
                    members = ns.mask_to_indices(visited_neighbors, words)
                    last_visited = int(
                        members[_np.argmax(visit_time[members])]
                    )
                else:
                    last_visited = max(
                        iter_bits(visited_neighbors),
                        key=visit_time.__getitem__,
                    )
                parent_index = clique_of_idx[last_visited]
                if visited_neighbors & ~clique_masks[parent_index]:
                    raise NotChordalError(
                        f"{graph.summary()} is not chordal "
                        "(MCS parent-clique invariant failed)"
                    )
                parent.append(parent_index)
                separator_masks.append(visited_neighbors)
            else:
                parent.append(None)
                separator_masks.append(None)
            clique_masks.append(visited_neighbors | 1 << node)
            current_clique = len(clique_masks) - 1
        clique_of_idx[node] = current_clique
        visit_time[node] = n_visited
        n_visited += 1
        visited |= bit_node
        prev_card = card
        if matrix is not None:
            queue.bump_mask(adj[node] & unvisited)
        else:
            queue.bump_all(adj[node] & unvisited, weights)

    return clique_masks, parent, separator_masks, clique_of_idx


def mcs_clique_forest(graph: Graph) -> CliqueForest:
    """Build the clique forest of a chordal ``graph`` via one MCS pass.

    A label-level view over :func:`clique_forest_masks`; raises
    :class:`NotChordalError` exactly when the graph is not chordal.
    """
    clique_masks, parent, separator_masks, clique_of_idx = (
        clique_forest_masks(graph)
    )
    if not clique_masks:
        return CliqueForest((), (), (), {})
    label_set = graph.label_set
    label_of = graph.label_of
    return CliqueForest(
        tuple(label_set(mask) for mask in clique_masks),
        tuple(parent),
        tuple(
            label_set(mask) if mask is not None else None
            for mask in separator_masks
        ),
        {label_of(i): clique_of_idx[i] for i in iter_bits(graph.core.alive)},
    )


def maximal_cliques(graph: Graph) -> list[frozenset[Node]]:
    """Return the maximal cliques of a chordal ``graph`` (MCS order).

    Raises :class:`NotChordalError` on non-chordal input.
    """
    return list(mcs_clique_forest(graph).cliques)


def tree_width(graph: Graph) -> int:
    """Return the treewidth of a *chordal* graph (max clique size − 1)."""
    return mcs_clique_forest(graph).width
