"""Maximal cliques and clique forests of chordal graphs (system S6).

For a chordal graph, a single Maximum Cardinality Search yields, in
linear time, the maximal cliques *and* a clique tree (one tree per
connected component — a clique forest), following Blair–Peyton and
Galinier–Habib–Paul:

* visiting order ``x_1, …, x_n``; ``M(x_i)`` is the set of
  already-visited neighbours of ``x_i``;
* ``x_i`` *continues* the current clique when
  ``|M(x_i)| = |M(x_{i-1})| + 1`` (then ``M(x_i)`` equals the clique
  built so far) and otherwise *starts* a new clique ``{x_i} ∪ M(x_i)``;
* the parent of a new clique is the clique that absorbed the
  last-visited vertex of ``M(x_i)``, and the clique-tree edge label
  (= a minimal separator) is ``M(x_i)``.

The invariants above hold for every MCS execution on a chordal graph;
they are asserted at runtime and a violation raises
:class:`~repro.errors.NotChordalError`, so feeding a non-chordal graph
fails loudly rather than silently producing garbage.  The test suite
cross-checks the cliques against a Bron–Kerbosch oracle and the
separators against the brute-force definition on hundreds of random
chordal graphs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import NotChordalError
from repro.graph.graph import Graph, Node, _sort_nodes

__all__ = ["CliqueForest", "mcs_clique_forest", "maximal_cliques", "tree_width"]


@dataclass(frozen=True)
class CliqueForest:
    """A clique forest (one clique tree per connected component).

    Attributes
    ----------
    cliques:
        The maximal cliques, in creation (MCS) order.
    parent:
        ``parent[i]`` is the index of clique ``i``'s parent in its
        clique tree, or ``None`` for the root clique of a component.
    separators:
        ``separators[i]`` is the clique-tree edge label between clique
        ``i`` and its parent (``cliques[i] ∩ cliques[parent[i]]``), or
        ``None`` for roots.  The *set* of non-``None`` labels is
        exactly ``MinSep`` of a connected chordal graph.
    clique_of:
        For every node, the index of the clique it was assigned to
        during the search (the node is a member of that clique).
    """

    cliques: tuple[frozenset[Node], ...]
    parent: tuple[int | None, ...]
    separators: tuple[frozenset[Node] | None, ...]
    clique_of: dict[Node, int] = field(hash=False)

    def edges(self) -> list[tuple[int, int, frozenset[Node]]]:
        """Return the clique-tree edges as ``(child, parent, separator)``."""
        return [
            (i, p, sep)
            for i, (p, sep) in enumerate(zip(self.parent, self.separators))
            if p is not None and sep is not None
        ]

    @property
    def width(self) -> int:
        """Max clique size − 1 (the treewidth of the chordal graph)."""
        if not self.cliques:
            return -1
        return max(len(clique) for clique in self.cliques) - 1


def _key(node: Node) -> tuple[str, str]:
    return (type(node).__name__, repr(node))


def mcs_clique_forest(graph: Graph) -> CliqueForest:
    """Build the clique forest of a chordal ``graph`` via one MCS pass.

    Raises
    ------
    NotChordalError
        If the construction invariants fail, which happens exactly when
        ``graph`` is not chordal.
    """
    adj = graph._adj  # noqa: SLF001 - hot path
    if not adj:
        return CliqueForest((), (), (), {})

    weights: dict[Node, int] = {node: 0 for node in adj}
    heap: list[tuple[int, tuple[str, str], Node]] = []
    for node in _sort_nodes(adj.keys()):
        heapq.heappush(heap, (0, _key(node), node))

    visit_time: dict[Node, int] = {}
    cliques: list[set[Node]] = []
    parent: list[int | None] = []
    separators: list[frozenset[Node] | None] = []
    clique_of: dict[Node, int] = {}
    current_clique = -1
    prev_card = -1

    while len(visit_time) < len(adj):
        weight, __, node = heapq.heappop(heap)
        if node in visit_time or -weight != weights[node]:
            continue
        visited_neighbors = {n for n in adj[node] if n in visit_time}
        card = len(visited_neighbors)
        if card == prev_card + 1 and current_clique >= 0:
            # Continuation: node extends the clique under construction.
            if visited_neighbors != cliques[current_clique]:
                raise NotChordalError(
                    f"{graph.summary()} is not chordal "
                    "(MCS clique-continuation invariant failed)"
                )
            cliques[current_clique].add(node)
        else:
            # New clique {node} ∪ M(node).
            if card > 0:
                last_visited = max(visited_neighbors, key=visit_time.__getitem__)
                parent_index = clique_of[last_visited]
                if not visited_neighbors <= cliques[parent_index]:
                    raise NotChordalError(
                        f"{graph.summary()} is not chordal "
                        "(MCS parent-clique invariant failed)"
                    )
                parent.append(parent_index)
                separators.append(frozenset(visited_neighbors))
            else:
                parent.append(None)
                separators.append(None)
            cliques.append(visited_neighbors | {node})
            current_clique = len(cliques) - 1
        clique_of[node] = current_clique
        visit_time[node] = len(visit_time)
        prev_card = card
        for neigh in adj[node]:
            if neigh not in visit_time:
                weights[neigh] += 1
                heapq.heappush(heap, (-weights[neigh], _key(neigh), neigh))

    return CliqueForest(
        tuple(frozenset(clique) for clique in cliques),
        tuple(parent),
        tuple(separators),
        clique_of,
    )


def maximal_cliques(graph: Graph) -> list[frozenset[Node]]:
    """Return the maximal cliques of a chordal ``graph`` (MCS order).

    Raises :class:`NotChordalError` on non-chordal input.
    """
    return list(mcs_clique_forest(graph).cliques)


def tree_width(graph: Graph) -> int:
    """Return the treewidth of a *chordal* graph (max clique size − 1)."""
    return mcs_clique_forest(graph).width
