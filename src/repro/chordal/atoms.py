"""Clique minimal separator decomposition into atoms (extension).

A *clique minimal separator* of g is a minimal separator that is also a
clique (the ``ClqMinSep`` of the paper's Section 4.1).  Decomposing a
graph on its clique minimal separators yields its *atoms* — the unique
family of maximal connected subgraphs without clique separators
(Tarjan; Leimer; Berry–Pogorelcnik–Simonet).

The decomposition matters for enumeration because minimal
triangulations never add fill across a clique minimal separator:

    MinTri(g)  ≅  Π over atoms A of MinTri(g|A)

— every minimal triangulation of g restricts to a minimal triangulation
of each atom, and every combination of per-atom minimal triangulations
is a minimal triangulation of g (fill-edge sets are disjoint because
atoms pairwise overlap only inside cliques).  The top-level enumerator
exposes this as ``decompose="atoms"``, which can shrink the separator
space exponentially on graphs with clique cut-sets.

Finding ``ClqMinSep(g)`` uses the paper's own toolbox: by Theorem 4.4
every clique minimal separator of g is a minimal separator of *every*
minimal triangulation h, and conversely a minimal separator of h that
is a clique in g is a clique minimal separator of g (Theorem 4.1).  So
one MCS-M pass plus the linear-time chordal extraction suffices.
"""

from __future__ import annotations

from repro.chordal.chordal_separators import minimal_separators_of_chordal
from repro.chordal.triangulate import mcs_m
from repro.graph.components import components_without, connected_components
from repro.graph.graph import Graph, Node

__all__ = ["clique_minimal_separators", "atoms"]


def clique_minimal_separators(graph: Graph) -> set[frozenset[Node]]:
    """Return ``ClqMinSep(graph)``: the minimal separators that are cliques.

    Computed through one minimal triangulation (MCS-M): a set is a
    clique minimal separator of g iff it is a minimal separator of the
    triangulation and a clique of g.  The empty separator of a
    disconnected graph is excluded — component splitting is handled
    separately by :func:`atoms`.
    """
    fill, __ = mcs_m(graph)
    triangulated = graph.copy()
    triangulated.add_edges(fill)
    candidates = minimal_separators_of_chordal(triangulated)
    return {
        separator
        for separator in candidates
        if separator and graph.is_clique(separator)
    }


def atoms(graph: Graph) -> list[frozenset[Node]]:
    """Return the atoms of ``graph`` as node sets, deterministically ordered.

    An atom is a maximal induced subgraph with no clique minimal
    separator; distinct atoms overlap only in clique separators.  The
    decomposition is computed by recursively splitting on any clique
    minimal separator (the atom set is known to be independent of the
    splitting order).  A disconnected graph decomposes per component.
    """
    result: list[frozenset[Node]] = []
    stack = [frozenset(component) for component in connected_components(graph)]
    while stack:
        region = stack.pop()
        subgraph = graph.subgraph(region)
        separators = clique_minimal_separators(subgraph)
        separator = _smallest(separators)
        if separator is None:
            result.append(region)
            continue
        for component in components_without(subgraph, separator):
            stack.append(frozenset(component | separator))
    result.sort(key=lambda atom: (sorted(map(_node_key, atom))))
    return result


def _smallest(separators: set[frozenset[Node]]) -> frozenset[Node] | None:
    if not separators:
        return None
    return min(separators, key=lambda s: (len(s), sorted(map(_node_key, s))))


def _node_key(node: Node) -> tuple[str, str]:
    return (type(node).__name__, repr(node))
