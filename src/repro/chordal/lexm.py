"""LEX-M: minimal triangulation by lexicographic search (extension).

LEX-M (Rose–Tarjan–Lueker 1976) is the historical ancestor of MCS-M
and the third classic member of the pluggable ``Triangulate`` family:
vertices carry *lexicographic labels* instead of integer weights, are
numbered from n down to 1 by largest label, and a vertex u is updated
(label extended, fill edge added) when it is reachable from the chosen
vertex v through unnumbered vertices whose labels are all strictly
smaller than u's.  The output is a minimal triangulation together with
a minimal elimination ordering, exactly like MCS-M — but the two
algorithms explore different orderings, so plugging LEX-M into
``Extend`` diversifies the enumeration differently.

Registered in the triangulator registry as ``"lex_m"``.
"""

from __future__ import annotations

import heapq

from repro.graph.core import iter_bits
from repro.graph.graph import Graph, Node, edge_key, sort_edges

__all__ = ["lex_m"]


def lex_m(graph: Graph) -> tuple[list[tuple[Node, Node]], list[Node]]:
    """Run LEX-M; return ``(fill_edges, minimal_elimination_ordering)``.

    ``graph + fill`` is a minimal triangulation of ``graph`` and the
    returned ordering (eliminated-first first) is a perfect elimination
    ordering of it.  Vertices are handled as core indices; the
    lexicographic labels live in a dense list keyed by index.
    """
    core = graph.core
    adj = core.adj
    labels: list[tuple[int, ...]] = [()] * len(adj)
    sorted_order = graph.sorted_indices()
    label_of = graph.label_of
    unnumbered = core.alive
    fill: list[tuple[Node, Node]] = []
    reverse_order: list[Node] = []
    n = core.num_vertices

    for number in range(n, 0, -1):
        # Largest lexicographic label; ties go to the first vertex in
        # label-sorted order, matching ``max(sorted(nodes), key=...)``.
        v = -1
        v_label: tuple[int, ...] | None = None
        for i in sorted_order:
            if not unnumbered >> i & 1:
                continue
            if v_label is None or labels[i] > v_label:
                v, v_label = i, labels[i]
        unnumbered &= ~(1 << v)
        reverse_order.append(label_of(v))
        reachable = _lexm_reachable(adj, labels, unnumbered, v)
        adj_v = adj[v]
        node_v = label_of(v)
        for u in reachable:
            labels[u] = labels[u] + (number,)
            if not adj_v >> u & 1:
                fill.append(edge_key(label_of(u), node_v))

    reverse_order.reverse()
    return sort_edges(fill), reverse_order


def _lexm_reachable(
    adj: list[int],
    labels: list[tuple[int, ...]],
    unnumbered: int,
    v: int,
) -> list[int]:
    """Vertices u reachable from v through strictly smaller-labelled paths.

    Minimax Dijkstra over lexicographic labels: ``key(u)`` is the
    minimum over v→u paths of the maximum internal label (``None``
    playing −∞ for direct edges); u qualifies iff ``key(u) < label(u)``.
    """
    best: dict[int, tuple[int, ...] | None] = {}
    counter = 0
    heap: list[tuple[tuple[int, ...], int, int]] = []
    not_v = ~(1 << v)
    for u in iter_bits(adj[v] & unnumbered):
        best[u] = None
        heap.append(((), counter, u))
        counter += 1
    heapq.heapify(heap)
    while heap:
        key_tuple, __, u = heapq.heappop(heap)
        current = best.get(u, ())
        if current is not None and key_tuple != current:
            continue
        through = max(
            key_tuple if current is not None else (),
            labels[u],
        )
        for x in iter_bits(adj[u] & unnumbered & not_v):
            existing = best.get(x, _MISSING)
            if existing is _MISSING or (
                existing is not None and through < existing
            ):
                best[x] = through
                heapq.heappush(heap, (through, counter, x))
                counter += 1
    result = []
    for u, key_value in best.items():
        threshold = labels[u]
        if key_value is None or key_value < threshold:
            result.append(u)
    return result


_MISSING = object()
