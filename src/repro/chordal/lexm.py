"""LEX-M: minimal triangulation by lexicographic search (extension).

LEX-M (Rose–Tarjan–Lueker 1976) is the historical ancestor of MCS-M
and the third classic member of the pluggable ``Triangulate`` family:
vertices carry *lexicographic labels* instead of integer weights, are
numbered from n down to 1 by largest label, and a vertex u is updated
(label extended, fill edge added) when it is reachable from the chosen
vertex v through unnumbered vertices whose labels are all strictly
smaller than u's.  The output is a minimal triangulation together with
a minimal elimination ordering, exactly like MCS-M — but the two
algorithms explore different orderings, so plugging LEX-M into
``Extend`` diversifies the enumeration differently.

Registered in the triangulator registry as ``"lex_m"``.
"""

from __future__ import annotations

import heapq

from repro.graph.graph import Graph, Node, _sort_nodes, edge_key, sort_edges

__all__ = ["lex_m"]


def _key(node: Node) -> tuple[str, str]:
    return (type(node).__name__, repr(node))


def lex_m(graph: Graph) -> tuple[list[tuple[Node, Node]], list[Node]]:
    """Run LEX-M; return ``(fill_edges, minimal_elimination_ordering)``.

    ``graph + fill`` is a minimal triangulation of ``graph`` and the
    returned ordering (eliminated-first first) is a perfect elimination
    ordering of it.
    """
    adj = graph._adj  # noqa: SLF001
    labels: dict[Node, tuple[int, ...]] = {node: () for node in adj}
    unnumbered: set[Node] = set(adj)
    fill: list[tuple[Node, Node]] = []
    reverse_order: list[Node] = []
    n = len(adj)

    for number in range(n, 0, -1):
        v = max(
            _sort_nodes(unnumbered),
            key=lambda node: labels[node],
        )
        unnumbered.discard(v)
        reverse_order.append(v)
        reachable = _lexm_reachable(adj, labels, unnumbered, v)
        for u in reachable:
            labels[u] = labels[u] + (number,)
            if u not in adj[v]:
                fill.append(edge_key(u, v))

    reverse_order.reverse()
    return sort_edges(fill), reverse_order


def _lexm_reachable(
    adj: dict[Node, set[Node]],
    labels: dict[Node, tuple[int, ...]],
    unnumbered: set[Node],
    v: Node,
) -> list[Node]:
    """Vertices u reachable from v through strictly smaller-labelled paths.

    Minimax Dijkstra over lexicographic labels: ``key(u)`` is the
    minimum over v→u paths of the maximum internal label (``None``
    playing −∞ for direct edges); u qualifies iff ``key(u) < label(u)``.
    """
    best: dict[Node, tuple[int, ...] | None] = {}
    counter = 0
    heap: list[tuple[tuple[int, ...], int, Node]] = []
    for u in adj[v]:
        if u in unnumbered:
            best[u] = None
            heapq.heappush(heap, ((), counter, u))
            counter += 1
    while heap:
        key_tuple, __, u = heapq.heappop(heap)
        current = best.get(u, ())
        normalised = () if current is None else key_tuple
        if current is not None and key_tuple != current:
            continue
        through = max(
            key_tuple if current is not None else (),
            labels[u],
        )
        for x in adj[u]:
            if x not in unnumbered or x == v:
                continue
            existing = best.get(x, _MISSING)
            if existing is _MISSING or (
                existing is not None and through < existing
            ):
                best[x] = through
                heapq.heappush(heap, (through, counter, x))
                counter += 1
    result = []
    for u, key_value in best.items():
        threshold = labels[u]
        if key_value is None or key_value < threshold:
            result.append(u)
    return result


_MISSING = object()
