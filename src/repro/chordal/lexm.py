"""LEX-M: minimal triangulation by lexicographic search (extension).

LEX-M (Rose–Tarjan–Lueker 1976) is the historical ancestor of MCS-M
and the third classic member of the pluggable ``Triangulate`` family:
vertices carry *lexicographic labels* instead of integer weights, are
numbered from n down to 1 by largest label, and a vertex u is updated
(label extended, fill edge added) when it is reachable from the chosen
vertex v through unnumbered vertices whose labels are all strictly
smaller than u's.  The output is a minimal triangulation together with
a minimal elimination ordering, exactly like MCS-M — but the two
algorithms explore different orderings, so plugging LEX-M into
``Extend`` diversifies the enumeration differently.

The reachability step uses the same *bucket-mask threshold sweep* as
MCS-M (:func:`repro.chordal.triangulate._mcs_m_update_mask`): group
the unnumbered vertices into bitmasks by label, then for ascending
label thresholds t grow the set reachable through internal vertices of
label ≤ t by whole-mask frontier expansion.  A vertex first reached at
threshold t has minimax path key t and qualifies iff its own label
exceeds t; direct neighbours of v always qualify.  Each sweep round is
a few wide integer operations, replacing the per-edge heap traversal
of the minimax Dijkstra (kept as :func:`_lexm_reachable_heap`, the
verification oracle for the property corpus).  The only difference
from MCS-M is that label values are tuples, so the buckets are
rebuilt per step from a dict keyed by tuple instead of reusing the
search queue's integer weight levels.

Registered in the triangulator registry as ``"lex_m"``.
"""

from __future__ import annotations

import heapq

from repro.graph.core import iter_bits
from repro.graph.graph import Graph, Node, edge_key, sort_edges

__all__ = ["lex_m"]


def lex_m(graph: Graph) -> tuple[list[tuple[Node, Node]], list[Node]]:
    """Run LEX-M; return ``(fill_edges, minimal_elimination_ordering)``.

    ``graph + fill`` is a minimal triangulation of ``graph`` and the
    returned ordering (eliminated-first first) is a perfect elimination
    ordering of it.  Vertices are handled as core indices; the
    lexicographic labels live in a dense list keyed by index.
    """
    core = graph.core
    adj = core.adj
    labels: list[tuple[int, ...]] = [()] * len(adj)
    sorted_order = graph.sorted_indices()
    label_of = graph.label_of
    unnumbered = core.alive
    fill: list[tuple[Node, Node]] = []
    reverse_order: list[Node] = []
    n = core.num_vertices

    for number in range(n, 0, -1):
        # Largest lexicographic label; ties go to the first vertex in
        # label-sorted order, matching ``max(sorted(nodes), key=...)``.
        v = -1
        v_label: tuple[int, ...] | None = None
        for i in sorted_order:
            if not unnumbered >> i & 1:
                continue
            if v_label is None or labels[i] > v_label:
                v, v_label = i, labels[i]
        unnumbered &= ~(1 << v)
        reverse_order.append(label_of(v))
        reachable = _lexm_reachable_mask(adj, labels, unnumbered, v)
        adj_v = adj[v]
        node_v = label_of(v)
        for u in iter_bits(reachable):
            labels[u] = labels[u] + (number,)
            if not adj_v >> u & 1:
                fill.append(edge_key(label_of(u), node_v))

    reverse_order.reverse()
    return sort_edges(fill), reverse_order


def _lexm_reachable_mask(
    adj: list[int],
    labels: list[tuple[int, ...]],
    unnumbered: int,
    v: int,
) -> int:
    """The LEX-M update set for ``v`` as a bitmask (threshold sweep).

    ``u`` qualifies iff ``key(u) < label(u)``, where ``key(u)`` is the
    minimum over v→u paths through unnumbered vertices of the maximum
    internal label (−∞ for a direct edge).  Sweeping ascending label
    thresholds t: the set reachable through internal vertices of label
    ≤ t is grown by whole-mask frontier expansion; vertices first
    reached at threshold t have ``key = t`` and qualify iff their own
    label is > t — i.e. they are not in the ≤ t bucket union yet.
    """
    avail = unnumbered
    reached = adj[v] & avail
    if not reached:
        return 0
    update_set = reached  # key = −∞ < label(u) for every vertex
    if reached == avail:
        return update_set

    buckets: dict[tuple[int, ...], int] = {}
    m = avail
    while m:
        low = m & -m
        buckets[labels[low.bit_length() - 1]] = (
            buckets.get(labels[low.bit_length() - 1], 0) | low
        )
        m ^= low

    processed = 0
    weight_le = 0
    for t in sorted(buckets):
        weight_le |= buckets[t]
        while True:
            frontier = reached & weight_le & ~processed
            if not frontier:
                break
            processed |= frontier
            grown = 0
            while frontier:
                low = frontier & -frontier
                grown |= adj[low.bit_length() - 1]
                frontier ^= low
            new = grown & avail & ~reached
            if new:
                reached |= new
                update_set |= new & ~weight_le  # key = t < label(x)
        if reached == avail:
            break
    return update_set


def _lexm_reachable_heap(
    adj: list[int],
    labels: list[tuple[int, ...]],
    unnumbered: int,
    v: int,
) -> list[int]:
    """Reference minimax Dijkstra over lexicographic labels.

    The pre-bucket-mask implementation, kept as the verification
    oracle: ``key(u)`` is the minimum over v→u paths of the maximum
    internal label (``None`` playing −∞ for direct edges); u qualifies
    iff ``key(u) < label(u)``.
    """
    best: dict[int, tuple[int, ...] | None] = {}
    counter = 0
    heap: list[tuple[tuple[int, ...], int, int]] = []
    not_v = ~(1 << v)
    for u in iter_bits(adj[v] & unnumbered):
        best[u] = None
        heap.append(((), counter, u))
        counter += 1
    heapq.heapify(heap)
    while heap:
        key_tuple, __, u = heapq.heappop(heap)
        current = best.get(u, ())
        if current is not None and key_tuple != current:
            continue
        through = max(
            key_tuple if current is not None else (),
            labels[u],
        )
        for x in iter_bits(adj[u] & unnumbered & not_v):
            existing = best.get(x, _MISSING)
            if existing is _MISSING or (
                existing is not None and through < existing
            ):
                best[x] = through
                heapq.heappush(heap, (through, counter, x))
                counter += 1
    result = []
    for u, key_value in best.items():
        threshold = labels[u]
        if key_value is None or key_value < threshold:
            result.append(u)
    return result


_MISSING = object()
