"""Minimal separators: enumeration and the crossing relation (S7–S8).

This module provides the two access algorithms of the separator-graph
SGR (paper Section 3.1.1):

* :func:`minimal_separators` — ``Ams_V``: a polynomial-delay generator
  of all minimal separators, the variation of Berry–Bordat–Cogis shown
  in the paper's Figure 2.  Separators close to single-node
  neighbourhoods seed a queue; popping a separator S and removing
  ``S ∪ N(x)`` for each ``x ∈ S`` reveals new separators as component
  neighbourhoods.  The delay between results is O(|V|³).
* :func:`are_crossing` — ``Ams_E``: S crosses T iff removing S leaves
  nodes of T in at least two connected components (equivalently, S is
  a (u, v)-separator for some u, v ∈ T).  The relation is symmetric
  (Parra–Scheffler / Kloks–Kratsch–Spinrad).

Both run entirely on the bitmask core: separators are single-int masks
while inside the enumeration (so the seen-set hashes machine ints, not
frozensets), and labels are materialised only when a separator is
yielded.  The mask-level variants (:func:`minimal_separator_masks`,
:func:`are_crossing_masks`) are exposed for the SGR layer, which
interns separator masks and memoizes crossing queries on top of them.

Conventions
-----------
For a *disconnected* graph the empty set is, by the paper's
definitions, a minimal (u, v)-separator for u and v in different
components; the enumerator therefore yields ``frozenset()`` exactly
once for disconnected inputs.  The empty separator crosses nothing.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.graph.components import is_separator
from repro.graph.core import IndexedGraph, iter_bits
from repro.graph.graph import Graph, Node

__all__ = [
    "minimal_separators",
    "minimal_separator_masks",
    "all_minimal_separators",
    "are_crossing",
    "are_crossing_masks",
    "are_crossing_batch_masks",
    "are_parallel",
    "is_minimal_separator",
    "is_pairwise_parallel",
    "count_minimal_separators",
]

Separator = frozenset[Node]

#: Minimum batch size before the packed numpy kernel is engaged by the
#: batch crossing oracles; tiny batches are faster through the scalar
#: component walk (no packing, no numpy call overhead).
BATCH_KERNEL_MIN = 4


def minimal_separator_masks(graph: Graph) -> Iterator[int]:
    """Enumerate ``MinSep(graph)`` as vertex bitmasks (paper Figure 2).

    The mask-level engine behind :func:`minimal_separators`: every
    separator is produced exactly once, as a single int, with the same
    polynomial delay bound.  Deterministic in label order: candidate
    vertices *and* component starts are visited in label-sorted order,
    so the yield order does not depend on node insertion order.
    """
    core = graph.core
    if not core.alive:
        return

    adj = core.adj
    order = graph.sorted_indices()
    ranks = graph.ranks()

    queue: deque[int] = deque()
    seen: set[int] = set()

    def discover(separator: int) -> None:
        if separator not in seen:
            seen.add(separator)
            queue.append(separator)

    # Seeds: neighbourhoods of the components of g \ N[v] for every v.
    for v in order:
        closed = adj[v] | 1 << v
        for component in core.components(closed, order=order):
            discover(core.neighborhood_of_set(component))

    # The empty set is a minimal separator iff the graph is disconnected,
    # in which case it already appeared as a seed (a foreign component
    # has an empty neighbourhood).  A connected graph never seeds it.
    while queue:
        separator = queue.popleft()
        for x in sorted(iter_bits(separator), key=ranks.__getitem__):
            removed = separator | adj[x]
            for component in core.components(removed, order=order):
                discover(core.neighborhood_of_set(component))
        yield separator


def minimal_separators(graph: Graph) -> Iterator[Separator]:
    """Enumerate ``MinSep(graph)`` with polynomial delay (paper Figure 2).

    Yields each minimal separator exactly once, as a frozenset.  The
    generator is lazy: consuming k results costs O(k · |V|³) in the
    worst case regardless of |MinSep|, which is what makes it usable as
    the node iterator of the separator-graph SGR.
    """
    for mask in minimal_separator_masks(graph):
        yield graph.label_set(mask)


def all_minimal_separators(graph: Graph) -> set[Separator]:
    """Return ``MinSep(graph)`` as a set (drains :func:`minimal_separators`)."""
    return set(minimal_separators(graph))


def count_minimal_separators(graph: Graph) -> int:
    """Return ``|MinSep(graph)|``."""
    return sum(1 for __ in minimal_separator_masks(graph))


def are_crossing_masks(core: IndexedGraph, s: int, t: int) -> bool:
    """Mask-level crossing test: is S a (u, v)-separator for u, v ∈ T?"""
    remainder = t & ~s
    if not remainder:
        return False
    touched = 0
    for component in core.components(s):
        if component & remainder:
            touched += 1
            if touched >= 2:
                return True
    return False


def are_crossing_batch_masks(
    core: IndexedGraph, s: int, targets: Iterable[int]
) -> list[bool]:
    """Batched mask-level crossing test: does S cross each of ``targets``?

    Computes the components of ``g \\ S`` once, then answers every
    target in a single vectorized pass of the packed-bitset kernel
    (:func:`repro.graph.bitset_np.crossing_batch`) when numpy is
    available, falling back to the scalar component walk otherwise.
    Semantically ``[are_crossing_masks(core, s, t) for t in targets]``.

    This is the stateless form of the batch oracle; the separator-graph
    SGR layers interning and a bounded memo cache on top of the same
    kernel (:meth:`repro.sgr.separator_graph.MinimalSeparatorSGR.has_edges_batch`).
    """
    targets = list(targets)
    components = core.components(s)
    try:
        from repro.graph import bitset_np as _kernel
    except ImportError:
        _kernel = None  # type: ignore[assignment]
    if _kernel is None or len(targets) < BATCH_KERNEL_MIN:
        results = []
        for t in targets:
            remainder = t & ~s
            touched = 0
            for component in components:
                if component & remainder:
                    touched += 1
                    if touched >= 2:
                        break
            results.append(touched >= 2)
        return results
    words = _kernel.word_count(len(core.adj))
    packed = _kernel.pack_masks(components, words)
    remainders = _kernel.pack_masks((t & ~s for t in targets), words)
    ns = _kernel.kernels_for(core)
    return [bool(x) for x in ns.crossing_batch(packed, remainders)]


def are_crossing(graph: Graph, s: Iterable[Node], t: Iterable[Node]) -> bool:
    """Return whether minimal separators S and T cross (``S ♮ T``).

    S crosses T iff S is a (u, v)-separator for some u, v ∈ T, i.e.
    the nodes of ``T \\ S`` meet at least two connected components of
    ``g \\ S``.  Symmetric for minimal separators.
    """
    return are_crossing_masks(
        graph.core,
        graph.mask_of(set(s), strict=False),
        graph.mask_of(set(t), strict=False),
    )


def are_parallel(graph: Graph, s: Iterable[Node], t: Iterable[Node]) -> bool:
    """Return whether S and T are parallel (non-crossing)."""
    return not are_crossing(graph, s, t)


def is_pairwise_parallel(graph: Graph, separators: Iterable[Iterable[Node]]) -> bool:
    """Return whether every two separators in the collection are parallel."""
    core = graph.core
    masks = [graph.mask_of(set(sep)) for sep in separators]
    for i, s in enumerate(masks):
        for t in masks[i + 1 :]:
            if are_crossing_masks(core, s, t):
                return False
    return True


def is_minimal_separator(graph: Graph, candidate: Iterable[Node]) -> bool:
    """Return whether ``candidate`` is a minimal separator of ``graph``.

    Uses the classical characterisation: S is a minimal separator iff
    ``g \\ S`` has at least two *full* components (components C with
    ``N(C) = S``).  The empty set qualifies exactly when the graph is
    disconnected.
    """
    return is_separator(graph, candidate)
