"""Triangulation algorithms (system S10): the pluggable ``Triangulate`` box.

The paper's ``Extend`` procedure (Figure 3) accepts *any* polynomial
time triangulation heuristic.  This module implements the two
algorithms used in the paper's experiments plus the classic
elimination-game baselines:

* :func:`mcs_m` — **MCS-M** (Berry–Blair–Heggernes 2002): Maximum
  Cardinality Search extended with a weighted-path rule; produces a
  *minimal* triangulation together with its minimal elimination
  ordering.
* :func:`lb_triang` — **LB-Triang** (Berry–Bordat–Heggernes–Simonet–
  Villanger 2006): processes vertices in an arbitrary (possibly
  dynamically chosen) order, making each vertex *LB-simplicial* by
  saturating the neighbourhoods of the components of ``H \\ N_H[v]``;
  produces a *minimal* triangulation for every ordering.
* :func:`elimination_game_triangulation` — the textbook elimination
  game with *min-fill*, *min-degree* or *natural* orderings; **not**
  guaranteed minimal, which exercises the ``MinTriSandwich`` path of
  ``Extend``.

All functions leave the input graph untouched and return the fill as a
sorted list of canonical edges; :class:`Triangulator` packages a
heuristic with its minimality guarantee for use by
:mod:`repro.core.extend`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.chordal.peo import elimination_fill_in
from repro.graph.core import MaxWeightBuckets, iter_bits
from repro.graph.graph import Graph, Node, edge_key, sort_edges

__all__ = [
    "mcs_m",
    "lb_triang",
    "min_fill_order",
    "min_degree_order",
    "elimination_game_triangulation",
    "Triangulator",
    "get_triangulator",
    "available_triangulators",
    "register_triangulator",
]


def _key(node: Node) -> tuple[str, str]:
    return (type(node).__name__, repr(node))


# ----------------------------------------------------------------------
# MCS-M
# ----------------------------------------------------------------------


def mcs_m(graph: Graph, first: Node | None = None) -> tuple[list[tuple[Node, Node]], list[Node]]:
    """Run MCS-M; return ``(fill_edges, minimal_elimination_ordering)``.

    MCS-M numbers vertices from n down to 1.  At each step it picks an
    unnumbered vertex ``v`` of maximum weight and finds the set S of
    unnumbered vertices ``u`` reachable from ``v`` through unnumbered
    paths whose *internal* vertices all have weight strictly smaller
    than ``w(u)``; every such ``u`` gains weight 1, and ``{u, v}``
    becomes a fill edge if not already an edge.  ``graph + fill`` is a
    minimal triangulation and the returned ordering (eliminated-first
    first) is a minimal elimination ordering of it.

    Parameters
    ----------
    first:
        Optional vertex forced to receive the highest number (be chosen
        first); varying it diversifies the produced triangulation.
    """
    core = graph.core
    adj = core.adj
    weights = [0] * len(adj)
    ranks = graph.ranks()
    unnumbered = core.alive
    queue = MaxWeightBuckets(unnumbered)
    if first is not None:
        if first not in graph:
            raise KeyError(first)
        index = graph.index_of(first)
        weights[index] = 1
        queue.bump(index, 0)
    label_of = graph.label_of
    fill: list[tuple[Node, Node]] = []
    reverse_order: list[Node] = []

    while unnumbered:
        v = queue.pop_max(ranks)
        unnumbered &= ~(1 << v)
        reverse_order.append(label_of(v))
        update_set = _mcs_m_update_mask(adj, queue.buckets, unnumbered, v)
        queue.bump_all(update_set, weights)
        label_v = label_of(v)
        m = update_set & ~adj[v]
        while m:
            low = m & -m
            m ^= low
            fill.append(edge_key(label_of(low.bit_length() - 1), label_v))

    reverse_order.reverse()
    fill = sort_edges(fill)
    return fill, reverse_order


def _mcs_m_update_mask(
    adj: list[int],
    buckets: dict[int, int],
    unnumbered: int,
    v: int,
) -> int:
    """Return the MCS-M update set S for vertex ``v`` as a bitmask.

    ``u ∈ S`` iff there is a path from v to u through unnumbered
    vertices whose internal vertices all have weight < w(u) — i.e.
    ``key(u) < w(u)`` where ``key(u)`` is the minimum over paths of the
    maximum internal weight (−1 when a direct edge exists).

    Because MCS-M weights are small integers, the minimax Dijkstra
    collapses into a *threshold sweep* over the caller's weight-bucket
    masks: for ascending thresholds t, grow the set reachable through
    internal vertices of weight ≤ t by whole-mask frontier expansion.
    A vertex first reached at threshold t has ``key = t`` and qualifies
    iff ``w > t``; direct neighbours (key −1) always qualify.  Each
    sweep round costs a few wide integer operations, so the whole
    update is O(levels · rounds) big-int ops instead of a per-edge heap
    traversal.
    """
    avail = unnumbered
    reached = adj[v] & avail
    if not reached:
        return 0
    update_set = reached  # key = −1 < w(u) for every unnumbered vertex
    if reached == avail:
        return update_set

    processed = 0
    weight_le = 0
    for t in sorted(buckets):
        bucket = buckets[t] & avail
        if not bucket:
            continue
        weight_le |= bucket
        while True:
            frontier = reached & weight_le & ~processed
            if not frontier:
                break
            processed |= frontier
            grown = 0
            while frontier:
                low = frontier & -frontier
                grown |= adj[low.bit_length() - 1]
                frontier ^= low
            new = grown & avail & ~reached
            if new:
                reached |= new
                update_set |= new & ~weight_le  # key = t < w(x)
        if reached == avail:
            break
    return update_set


# ----------------------------------------------------------------------
# LB-Triang
# ----------------------------------------------------------------------


def lb_triang(
    graph: Graph,
    order: Sequence[Node] | None = None,
    heuristic: str = "min_fill",
) -> list[tuple[Node, Node]]:
    """Run LB-Triang; return the fill edges of a minimal triangulation.

    Vertices are processed once each, either in the explicit ``order``
    or chosen dynamically by ``heuristic``:

    * ``"min_fill"`` — next vertex minimises the number of missing
      edges in its current neighbourhood (the heuristic used in the
      paper's experiments);
    * ``"min_degree"`` — next vertex has minimum current degree;
    * ``"natural"`` — sorted node order.

    Processing v saturates ``N_H(C)`` for every connected component C
    of ``H \\ N_H[v]`` (H is the evolving filled graph), which makes v
    LB-simplicial; by Berry et al.'s confluence theorem the final H is
    a minimal triangulation for every ordering.
    """
    filled = graph.copy()
    core = filled.core
    adj = core.adj
    remaining = core.alive
    label_of = filled.label_of
    explicit: list[int] | None = None
    if order is not None:
        order_list = list(order)
        if len(order_list) != graph.num_nodes or set(order_list) != graph.node_set():
            raise ValueError("order must be a permutation of the node set")
        explicit = [filled.index_of(node) for node in order_list]
    if explicit is None and heuristic not in {"min_fill", "min_degree", "natural"}:
        raise ValueError(f"unknown LB-Triang heuristic {heuristic!r}")
    sorted_order = filled.sorted_indices()
    ranks = filled.ranks()
    fill: list[tuple[Node, Node]] = []
    # Fill-deficiency cache for the dynamic min-fill heuristic: an entry
    # goes stale only when the node's neighbourhood or the edges inside
    # it change, i.e. for the endpoints of an added edge and for their
    # common neighbours.
    deficiency: dict[int, int] = {}
    step = 0
    while remaining:
        if explicit is not None:
            v = explicit[step]
            step += 1
        else:
            v = _pick_dynamic(core, remaining, heuristic, deficiency, sorted_order)
        remaining &= ~(1 << v)
        closed = adj[v] | 1 << v
        added_this_step: list[tuple[int, int]] = []
        for component in core.components(closed):
            separator = core.neighborhood_of_set(component)
            added_this_step.extend(core.saturate(separator))
        for a, b in added_this_step:
            fill.append(edge_key(label_of(a), label_of(b)))
        if explicit is None and heuristic == "min_fill" and added_this_step:
            for a, b in added_this_step:
                deficiency.pop(a, None)
                deficiency.pop(b, None)
                for common in iter_bits(adj[a] & adj[b]):
                    deficiency.pop(common, None)
    return sort_edges(fill)


def _pick_dynamic(
    core,
    remaining: int,
    heuristic: str,
    deficiency: dict[int, int],
    sorted_order: list[int],
) -> int:
    adj = core.adj
    if heuristic == "natural":
        for i in sorted_order:
            if remaining >> i & 1:
                return i
        raise AssertionError("no remaining vertex")
    best = -1
    best_score = -1
    for i in sorted_order:
        if not remaining >> i & 1:
            continue
        if heuristic == "min_degree":
            score = adj[i].bit_count()
        else:
            score = deficiency.get(i)
            if score is None:
                score = core.missing_pair_count(adj[i])
                deficiency[i] = score
        if best < 0 or score < best_score:
            best, best_score = i, score
    assert best >= 0
    return best


# ----------------------------------------------------------------------
# Elimination-game heuristics (not necessarily minimal)
# ----------------------------------------------------------------------


def min_fill_order(graph: Graph) -> list[Node]:
    """Return a min-fill elimination ordering (greedy, recomputed each step)."""
    return _greedy_elimination_order(graph, "min_fill")


def min_degree_order(graph: Graph) -> list[Node]:
    """Return a min-degree elimination ordering (greedy)."""
    return _greedy_elimination_order(graph, "min_degree")


def _greedy_elimination_order(graph: Graph, heuristic: str) -> list[Node]:
    """Greedy elimination on a scratch core: score, saturate, remove."""
    core = graph.core.copy()
    adj = core.adj
    sorted_order = graph.sorted_indices()
    label_of = graph.label_of
    order: list[Node] = []
    while core.alive:
        best = -1
        best_score = -1
        for i in sorted_order:
            if not core.alive >> i & 1:
                continue
            if heuristic == "min_degree":
                score = adj[i].bit_count()
            else:
                score = core.missing_pair_count(adj[i])
            if best < 0 or score < best_score:
                best, best_score = i, score
        order.append(label_of(best))
        core.saturate(adj[best])
        core.remove_vertex(best)
    return order


def elimination_game_triangulation(
    graph: Graph, ordering: str | Sequence[Node] = "min_fill"
) -> list[tuple[Node, Node]]:
    """Triangulate via the elimination game; return the fill edges.

    ``ordering`` may be ``"min_fill"``, ``"min_degree"``, ``"natural"``
    or an explicit node sequence.  The result is a triangulation but is
    **not** guaranteed minimal — callers that need minimality must pass
    it through :func:`repro.chordal.sandwich.minimal_triangulation_sandwich`.
    """
    if isinstance(ordering, str):
        if ordering == "min_fill":
            order = min_fill_order(graph)
        elif ordering == "min_degree":
            order = min_degree_order(graph)
        elif ordering == "natural":
            order = graph.nodes()
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
    else:
        order = list(ordering)
    return elimination_fill_in(graph, order)


# ----------------------------------------------------------------------
# Triangulator registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Triangulator:
    """A named triangulation heuristic with its minimality guarantee.

    ``fill`` maps a graph to the list of fill edges of a triangulation
    of it; ``guarantees_minimal`` tells ``Extend`` whether the sandwich
    step can be skipped (it is skipped for MCS-M and LB-Triang, exactly
    as in the paper's experiments).
    """

    name: str
    fill: Callable[[Graph], list[tuple[Node, Node]]]
    guarantees_minimal: bool

    def triangulate(self, graph: Graph) -> tuple[Graph, list[tuple[Node, Node]]]:
        """Return ``(filled graph, fill edges)`` for ``graph``."""
        fill_edges = self.fill(graph)
        filled = graph.copy()
        filled.add_edges(fill_edges)
        return filled, fill_edges


_REGISTRY: dict[str, Triangulator] = {}


def register_triangulator(triangulator: Triangulator) -> None:
    """Register a custom heuristic under ``triangulator.name``."""
    _REGISTRY[triangulator.name] = triangulator


def get_triangulator(name: str | Triangulator) -> Triangulator:
    """Resolve ``name`` to a :class:`Triangulator` (identity on instances)."""
    if isinstance(name, Triangulator):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown triangulator {name!r} (known: {known})") from None


def available_triangulators() -> list[str]:
    """Return the names of all registered heuristics."""
    return sorted(_REGISTRY)


register_triangulator(
    Triangulator("mcs_m", lambda g: mcs_m(g)[0], guarantees_minimal=True)
)
register_triangulator(
    Triangulator("lb_triang", lambda g: lb_triang(g), guarantees_minimal=True)
)
register_triangulator(
    Triangulator(
        "lb_triang_min_degree",
        lambda g: lb_triang(g, heuristic="min_degree"),
        guarantees_minimal=True,
    )
)
register_triangulator(
    Triangulator(
        "min_fill",
        lambda g: elimination_game_triangulation(g, "min_fill"),
        guarantees_minimal=False,
    )
)
register_triangulator(
    Triangulator(
        "min_degree",
        lambda g: elimination_game_triangulation(g, "min_degree"),
        guarantees_minimal=False,
    )
)
register_triangulator(
    Triangulator(
        "natural",
        lambda g: elimination_game_triangulation(g, "natural"),
        guarantees_minimal=False,
    )
)
register_triangulator(
    Triangulator(
        "complete",
        lambda g: g.missing_edges(),
        guarantees_minimal=False,
    )
)


def _lex_m_fill(graph: Graph) -> list[tuple[Node, Node]]:
    from repro.chordal.lexm import lex_m

    return lex_m(graph)[0]


register_triangulator(
    Triangulator("lex_m", _lex_m_fill, guarantees_minimal=True)
)
