"""Triangulation algorithms (system S10): the pluggable ``Triangulate`` box.

The paper's ``Extend`` procedure (Figure 3) accepts *any* polynomial
time triangulation heuristic.  This module implements the two
algorithms used in the paper's experiments plus the classic
elimination-game baselines:

* :func:`mcs_m` — **MCS-M** (Berry–Blair–Heggernes 2002): Maximum
  Cardinality Search extended with a weighted-path rule; produces a
  *minimal* triangulation together with its minimal elimination
  ordering.
* :func:`lb_triang` — **LB-Triang** (Berry–Bordat–Heggernes–Simonet–
  Villanger 2006): processes vertices in an arbitrary (possibly
  dynamically chosen) order, making each vertex *LB-simplicial* by
  saturating the neighbourhoods of the components of ``H \\ N_H[v]``;
  produces a *minimal* triangulation for every ordering.
* :func:`elimination_game_triangulation` — the textbook elimination
  game with *min-fill*, *min-degree* or *natural* orderings; **not**
  guaranteed minimal, which exercises the ``MinTriSandwich`` path of
  ``Extend``.

All functions leave the input graph untouched and return the fill as a
sorted list of canonical edges; :class:`Triangulator` packages a
heuristic with its minimality guarantee for use by
:mod:`repro.core.extend`.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.chordal.peo import elimination_fill_in
from repro.graph.components import components_without
from repro.graph.graph import Graph, Node, _sort_nodes, edge_key, sort_edges

__all__ = [
    "mcs_m",
    "lb_triang",
    "min_fill_order",
    "min_degree_order",
    "elimination_game_triangulation",
    "Triangulator",
    "get_triangulator",
    "available_triangulators",
    "register_triangulator",
]


def _key(node: Node) -> tuple[str, str]:
    return (type(node).__name__, repr(node))


# ----------------------------------------------------------------------
# MCS-M
# ----------------------------------------------------------------------


def mcs_m(graph: Graph, first: Node | None = None) -> tuple[list[tuple[Node, Node]], list[Node]]:
    """Run MCS-M; return ``(fill_edges, minimal_elimination_ordering)``.

    MCS-M numbers vertices from n down to 1.  At each step it picks an
    unnumbered vertex ``v`` of maximum weight and finds the set S of
    unnumbered vertices ``u`` reachable from ``v`` through unnumbered
    paths whose *internal* vertices all have weight strictly smaller
    than ``w(u)``; every such ``u`` gains weight 1, and ``{u, v}``
    becomes a fill edge if not already an edge.  ``graph + fill`` is a
    minimal triangulation and the returned ordering (eliminated-first
    first) is a minimal elimination ordering of it.

    Parameters
    ----------
    first:
        Optional vertex forced to receive the highest number (be chosen
        first); varying it diversifies the produced triangulation.
    """
    adj = graph._adj  # noqa: SLF001
    weights: dict[Node, int] = {node: 0 for node in adj}
    if first is not None:
        if first not in adj:
            raise KeyError(first)
        weights[first] = 1
    unnumbered: set[Node] = set(adj)
    heap: list[tuple[int, tuple[str, str], Node]] = [
        (-weights[node], _key(node), node) for node in _sort_nodes(adj.keys())
    ]
    heapq.heapify(heap)
    fill: list[tuple[Node, Node]] = []
    reverse_order: list[Node] = []

    while unnumbered:
        while True:
            weight, __, v = heapq.heappop(heap)
            if v in unnumbered and -weight == weights[v]:
                break
        unnumbered.discard(v)
        reverse_order.append(v)
        reachable = _mcs_m_reachable(adj, weights, unnumbered, v)
        for u in reachable:
            weights[u] += 1
            heapq.heappush(heap, (-weights[u], _key(u), u))
            if u not in adj[v]:
                fill.append(edge_key(u, v))

    reverse_order.reverse()
    fill = sort_edges(fill)
    return fill, reverse_order


def _mcs_m_reachable(
    adj: dict[Node, set[Node]],
    weights: dict[Node, int],
    unnumbered: set[Node],
    v: Node,
) -> list[Node]:
    """Return the MCS-M update set S for vertex ``v``.

    ``u ∈ S`` iff there is a path from v to u through unnumbered
    vertices whose internal vertices all have weight < w(u).  Computed
    with a minimax Dijkstra: ``key(u)`` is the minimum over paths of
    the maximum internal weight (−1 when a direct edge exists); then
    ``u ∈ S ⟺ key(u) < w(u)``.
    """
    key: dict[Node, int] = {}
    heap: list[tuple[int, tuple[str, str], Node]] = []
    for u in adj[v]:
        if u in unnumbered:
            key[u] = -1
            heapq.heappush(heap, (-1, _key(u), u))
    while heap:
        k, __, u = heapq.heappop(heap)
        if k != key.get(u):
            continue
        # Expand through u: u becomes an internal vertex.
        through = max(k, weights[u])
        for x in adj[u]:
            if x not in unnumbered or x == v:
                continue
            if through < key.get(x, _INF):
                key[x] = through
                heapq.heappush(heap, (through, _key(x), x))
    return [u for u, k in key.items() if k < weights[u]]


_INF = float("inf")


# ----------------------------------------------------------------------
# LB-Triang
# ----------------------------------------------------------------------


def lb_triang(
    graph: Graph,
    order: Sequence[Node] | None = None,
    heuristic: str = "min_fill",
) -> list[tuple[Node, Node]]:
    """Run LB-Triang; return the fill edges of a minimal triangulation.

    Vertices are processed once each, either in the explicit ``order``
    or chosen dynamically by ``heuristic``:

    * ``"min_fill"`` — next vertex minimises the number of missing
      edges in its current neighbourhood (the heuristic used in the
      paper's experiments);
    * ``"min_degree"`` — next vertex has minimum current degree;
    * ``"natural"`` — sorted node order.

    Processing v saturates ``N_H(C)`` for every connected component C
    of ``H \\ N_H[v]`` (H is the evolving filled graph), which makes v
    LB-simplicial; by Berry et al.'s confluence theorem the final H is
    a minimal triangulation for every ordering.
    """
    filled = graph.copy()
    remaining = set(filled.node_set())
    explicit = list(order) if order is not None else None
    if explicit is not None and (
        set(explicit) != remaining or len(explicit) != len(remaining)
    ):
        raise ValueError("order must be a permutation of the node set")
    if explicit is None and heuristic not in {"min_fill", "min_degree", "natural"}:
        raise ValueError(f"unknown LB-Triang heuristic {heuristic!r}")
    fill: list[tuple[Node, Node]] = []
    # Fill-deficiency cache for the dynamic min-fill heuristic: an entry
    # goes stale only when the node's neighbourhood or the edges inside
    # it change, i.e. for the endpoints of an added edge and for their
    # common neighbours.
    deficiency: dict[Node, int] = {}
    step = 0
    while remaining:
        if explicit is not None:
            v = explicit[step]
            step += 1
        else:
            v = _pick_dynamic(filled, remaining, heuristic, deficiency)
        remaining.discard(v)
        closed = filled.adjacency(v) | {v}
        added_this_step: list[tuple[Node, Node]] = []
        for component in components_without(filled, closed):
            separator = filled.neighborhood_of_set(component)
            added_this_step.extend(filled.saturate(separator))
        fill.extend(added_this_step)
        if explicit is None and heuristic == "min_fill":
            adj = filled._adj  # noqa: SLF001
            for a, b in added_this_step:
                deficiency.pop(a, None)
                deficiency.pop(b, None)
                for common in adj[a] & adj[b]:
                    deficiency.pop(common, None)
    return sort_edges(fill)


def _pick_dynamic(
    filled: Graph,
    remaining: set[Node],
    heuristic: str,
    deficiency: dict[Node, int],
) -> Node:
    candidates = _sort_nodes(remaining)
    if heuristic == "natural":
        return candidates[0]
    if heuristic == "min_degree":
        return min(candidates, key=lambda node: (filled.degree(node), _key(node)))
    best: Node | None = None
    best_score: tuple[int, tuple[str, str]] | None = None
    for node in candidates:
        score = deficiency.get(node)
        if score is None:
            score = len(filled.missing_edges(filled.adjacency(node)))
            deficiency[node] = score
        ranked = (score, _key(node))
        if best_score is None or ranked < best_score:
            best, best_score = node, ranked
    assert best is not None
    return best


# ----------------------------------------------------------------------
# Elimination-game heuristics (not necessarily minimal)
# ----------------------------------------------------------------------


def min_fill_order(graph: Graph) -> list[Node]:
    """Return a min-fill elimination ordering (greedy, recomputed each step)."""
    work = graph.copy()
    order: list[Node] = []
    while work.num_nodes:
        node = min(
            work.nodes(),
            key=lambda v: (len(work.missing_edges(work.adjacency(v))), _key(v)),
        )
        order.append(node)
        work.saturate(work.adjacency(node))
        work.remove_node(node)
    return order


def min_degree_order(graph: Graph) -> list[Node]:
    """Return a min-degree elimination ordering (greedy)."""
    work = graph.copy()
    order: list[Node] = []
    while work.num_nodes:
        node = min(work.nodes(), key=lambda v: (work.degree(v), _key(v)))
        order.append(node)
        work.saturate(work.adjacency(node))
        work.remove_node(node)
    return order


def elimination_game_triangulation(
    graph: Graph, ordering: str | Sequence[Node] = "min_fill"
) -> list[tuple[Node, Node]]:
    """Triangulate via the elimination game; return the fill edges.

    ``ordering`` may be ``"min_fill"``, ``"min_degree"``, ``"natural"``
    or an explicit node sequence.  The result is a triangulation but is
    **not** guaranteed minimal — callers that need minimality must pass
    it through :func:`repro.chordal.sandwich.minimal_triangulation_sandwich`.
    """
    if isinstance(ordering, str):
        if ordering == "min_fill":
            order = min_fill_order(graph)
        elif ordering == "min_degree":
            order = min_degree_order(graph)
        elif ordering == "natural":
            order = graph.nodes()
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
    else:
        order = list(ordering)
    return elimination_fill_in(graph, order)


# ----------------------------------------------------------------------
# Triangulator registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Triangulator:
    """A named triangulation heuristic with its minimality guarantee.

    ``fill`` maps a graph to the list of fill edges of a triangulation
    of it; ``guarantees_minimal`` tells ``Extend`` whether the sandwich
    step can be skipped (it is skipped for MCS-M and LB-Triang, exactly
    as in the paper's experiments).
    """

    name: str
    fill: Callable[[Graph], list[tuple[Node, Node]]]
    guarantees_minimal: bool

    def triangulate(self, graph: Graph) -> tuple[Graph, list[tuple[Node, Node]]]:
        """Return ``(filled graph, fill edges)`` for ``graph``."""
        fill_edges = self.fill(graph)
        filled = graph.copy()
        filled.add_edges(fill_edges)
        return filled, fill_edges


_REGISTRY: dict[str, Triangulator] = {}


def register_triangulator(triangulator: Triangulator) -> None:
    """Register a custom heuristic under ``triangulator.name``."""
    _REGISTRY[triangulator.name] = triangulator


def get_triangulator(name: str | Triangulator) -> Triangulator:
    """Resolve ``name`` to a :class:`Triangulator` (identity on instances)."""
    if isinstance(name, Triangulator):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown triangulator {name!r} (known: {known})") from None


def available_triangulators() -> list[str]:
    """Return the names of all registered heuristics."""
    return sorted(_REGISTRY)


register_triangulator(
    Triangulator("mcs_m", lambda g: mcs_m(g)[0], guarantees_minimal=True)
)
register_triangulator(
    Triangulator("lb_triang", lambda g: lb_triang(g), guarantees_minimal=True)
)
register_triangulator(
    Triangulator(
        "lb_triang_min_degree",
        lambda g: lb_triang(g, heuristic="min_degree"),
        guarantees_minimal=True,
    )
)
register_triangulator(
    Triangulator(
        "min_fill",
        lambda g: elimination_game_triangulation(g, "min_fill"),
        guarantees_minimal=False,
    )
)
register_triangulator(
    Triangulator(
        "min_degree",
        lambda g: elimination_game_triangulation(g, "min_degree"),
        guarantees_minimal=False,
    )
)
register_triangulator(
    Triangulator(
        "natural",
        lambda g: elimination_game_triangulation(g, "natural"),
        guarantees_minimal=False,
    )
)
register_triangulator(
    Triangulator(
        "complete",
        lambda g: g.missing_edges(),
        guarantees_minimal=False,
    )
)


def _lex_m_fill(graph: Graph) -> list[tuple[Node, Node]]:
    from repro.chordal.lexm import lex_m

    return lex_m(graph)[0]


register_triangulator(
    Triangulator("lex_m", _lex_m_fill, guarantees_minimal=True)
)
