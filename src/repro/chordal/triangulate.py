"""Triangulation algorithms (system S10): the pluggable ``Triangulate`` box.

The paper's ``Extend`` procedure (Figure 3) accepts *any* polynomial
time triangulation heuristic.  This module implements the two
algorithms used in the paper's experiments plus the classic
elimination-game baselines:

* :func:`mcs_m` — **MCS-M** (Berry–Blair–Heggernes 2002): Maximum
  Cardinality Search extended with a weighted-path rule; produces a
  *minimal* triangulation together with its minimal elimination
  ordering.
* :func:`lb_triang` — **LB-Triang** (Berry–Bordat–Heggernes–Simonet–
  Villanger 2006): processes vertices in an arbitrary (possibly
  dynamically chosen) order, making each vertex *LB-simplicial* by
  saturating the neighbourhoods of the components of ``H \\ N_H[v]``;
  produces a *minimal* triangulation for every ordering.
* :func:`elimination_game_triangulation` — the textbook elimination
  game with *min-fill*, *min-degree* or *natural* orderings; **not**
  guaranteed minimal, which exercises the ``MinTriSandwich`` path of
  ``Extend``.

All functions leave the input graph untouched and return the fill as a
sorted list of canonical edges; :class:`Triangulator` packages a
heuristic with its minimality guarantee for use by
:mod:`repro.core.extend`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.chordal.peo import elimination_fill_in
from repro.graph.core import MaxWeightBuckets, iter_bits
from repro.graph.graph import Graph, Node, edge_key, sort_edges

try:  # numpy unavailable: only the int-mask reference paths exist
    import numpy as _np

    from repro.graph import bitset_np as _kernel
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None
    _kernel = None


def _packed_view(core):
    """The core's packed adjacency matrix, or ``None`` on the int tier."""
    if _kernel is None:
        return None
    return _kernel.packed_view(core)


def _kernels_for(core):
    """The kernel namespace serving ``core`` (numpy module or native)."""
    return _kernel.kernels_for(core)

__all__ = [
    "mcs_m",
    "lb_triang",
    "min_fill_order",
    "min_degree_order",
    "elimination_game_triangulation",
    "Triangulator",
    "get_triangulator",
    "available_triangulators",
    "register_triangulator",
]


def _key(node: Node) -> tuple[str, str]:
    return (type(node).__name__, repr(node))


# ----------------------------------------------------------------------
# MCS-M
# ----------------------------------------------------------------------


def mcs_m(graph: Graph, first: Node | None = None) -> tuple[list[tuple[Node, Node]], list[Node]]:
    """Run MCS-M; return ``(fill_edges, minimal_elimination_ordering)``.

    MCS-M numbers vertices from n down to 1.  At each step it picks an
    unnumbered vertex ``v`` of maximum weight and finds the set S of
    unnumbered vertices ``u`` reachable from ``v`` through unnumbered
    paths whose *internal* vertices all have weight strictly smaller
    than ``w(u)``; every such ``u`` gains weight 1, and ``{u, v}``
    becomes a fill edge if not already an edge.  ``graph + fill`` is a
    minimal triangulation and the returned ordering (eliminated-first
    first) is a minimal elimination ordering of it.

    Parameters
    ----------
    first:
        Optional vertex forced to receive the highest number (be chosen
        first); varying it diversifies the produced triangulation.
    """
    core = graph.core
    adj = core.adj
    ranks = graph.ranks()
    unnumbered = core.alive
    matrix = _packed_view(core)
    label_of = graph.label_of
    fill: list[tuple[Node, Node]] = []
    reverse_order: list[Node] = []

    if matrix is not None:
        # Packed tier: flat argmax selection queue, fancy-indexed
        # weight bumps, and the threshold sweep routed through the
        # word matrix.  MCS-M never mutates the graph, so the matrix
        # stays valid for the whole run.  The int-mask branch below is
        # the reference implementation this one is tested against.
        ns = _kernels_for(core)
        words = matrix.shape[1]
        queue = ns.PackedMCSQueue(unnumbered, ranks, words)
        if first is not None:
            if first not in graph:
                raise KeyError(first)
            queue.bump_mask(1 << graph.index_of(first))
        while unnumbered:
            v = queue.pop_max()
            unnumbered &= ~(1 << v)
            reverse_order.append(label_of(v))
            update_set = _mcs_m_update_mask_packed(
                matrix, adj, queue.weights, unnumbered, v, ns
            )
            queue.bump_mask(update_set)
            label_v = label_of(v)
            rank_v = ranks[v]
            m = update_set & ~adj[v]
            # Canonical (sorted) edge tuples via the precomputed label
            # ranks — same order edge_key produces, without a label
            # comparison per fill edge.
            if m.bit_count() >= ns.BATCH_MIN:
                for u in ns.mask_to_indices(m, words):
                    label_u = label_of(u)
                    fill.append(
                        (label_u, label_v)
                        if ranks[u] < rank_v
                        else (label_v, label_u)
                    )
            else:
                while m:
                    low = m & -m
                    m ^= low
                    u = low.bit_length() - 1
                    label_u = label_of(u)
                    fill.append(
                        (label_u, label_v)
                        if ranks[u] < rank_v
                        else (label_v, label_u)
                    )
        reverse_order.reverse()
        fill = sort_edges(fill)
        return fill, reverse_order

    weights = [0] * len(adj)
    queue = MaxWeightBuckets(unnumbered)
    if first is not None:
        if first not in graph:
            raise KeyError(first)
        index = graph.index_of(first)
        weights[index] = 1
        queue.bump(index, 0)

    while unnumbered:
        v = queue.pop_max(ranks)
        unnumbered &= ~(1 << v)
        reverse_order.append(label_of(v))
        update_set = _mcs_m_update_mask(adj, queue.buckets, unnumbered, v)
        queue.bump_all(update_set, weights)
        label_v = label_of(v)
        m = update_set & ~adj[v]
        while m:
            low = m & -m
            m ^= low
            fill.append(edge_key(label_of(low.bit_length() - 1), label_v))

    reverse_order.reverse()
    fill = sort_edges(fill)
    return fill, reverse_order


def _mcs_m_update_mask(
    adj: list[int],
    buckets: dict[int, int],
    unnumbered: int,
    v: int,
) -> int:
    """Return the MCS-M update set S for vertex ``v`` as a bitmask.

    ``u ∈ S`` iff there is a path from v to u through unnumbered
    vertices whose internal vertices all have weight < w(u) — i.e.
    ``key(u) < w(u)`` where ``key(u)`` is the minimum over paths of the
    maximum internal weight (−1 when a direct edge exists).

    Because MCS-M weights are small integers, the minimax Dijkstra
    collapses into a *threshold sweep* over the caller's weight-bucket
    masks: for ascending thresholds t, grow the set reachable through
    internal vertices of weight ≤ t by whole-mask frontier expansion.
    A vertex first reached at threshold t has ``key = t`` and qualifies
    iff ``w > t``; direct neighbours (key −1) always qualify.  Each
    sweep round costs a few wide integer operations, so the whole
    update is O(levels · rounds) big-int ops instead of a per-edge heap
    traversal.

    This is the int-mask reference implementation;
    :func:`_mcs_m_update_mask_packed` is the word-matrix port used on
    numpy-backed cores.
    """
    avail = unnumbered
    reached = adj[v] & avail
    if not reached:
        return 0
    update_set = reached  # key = −1 < w(u) for every unnumbered vertex
    if reached == avail:
        return update_set

    processed = 0
    weight_le = 0
    for t in sorted(buckets):
        bucket = buckets[t] & avail
        if not bucket:
            continue
        weight_le |= bucket
        while True:
            frontier = reached & weight_le & ~processed
            if not frontier:
                break
            processed |= frontier
            grown = 0
            while frontier:
                low = frontier & -frontier
                grown |= adj[low.bit_length() - 1]
                frontier ^= low
            new = grown & avail & ~reached
            if new:
                reached |= new
                update_set |= new & ~weight_le  # key = t < w(x)
        if reached == avail:
            break
    return update_set


def _mcs_m_update_mask_packed(
    matrix,
    adj: list[int],
    weights,
    unnumbered: int,
    v: int,
    ns=None,
) -> int:
    """The MCS-M update sweep on the packed word-matrix tier.

    Same threshold sweep as :func:`_mcs_m_update_mask`, with the two
    per-member costs vectorized: the weight levels are derived from the
    flat weight array in one batched ``packbits``
    (:func:`repro.graph.bitset_np.weight_level_rows` — there are no
    bucket masks to maintain on this tier), and each wide frontier's
    neighbourhood union is one row reduction over the packed adjacency
    (:func:`repro.graph.bitset_np.union_rows`).  ``ns`` is the kernel
    namespace to dispatch through (numpy module or the native tier).
    """
    if ns is None:
        ns = _kernel
    avail = unnumbered
    reached = adj[v] & avail
    if not reached:
        return 0
    update_set = reached  # key = −1 < w(u) for every unnumbered vertex
    if reached == avail:
        return update_set

    words = matrix.shape[1]
    avail_idx = ns.mask_to_indices(avail, words)
    level_rows = ns.weight_level_rows(avail_idx, weights[avail_idx], words)
    batch_min = ns.BATCH_MIN
    union_rows = ns.union_rows
    mask_to_indices = ns.mask_to_indices
    processed = 0
    weight_le = 0
    for row in level_rows:
        # Lazy level decode: sweeps usually saturate `reached` well
        # before the last weight level.
        weight_le |= int.from_bytes(row.tobytes(), "little")
        while True:
            frontier = reached & weight_le & ~processed
            if not frontier:
                break
            processed |= frontier
            if frontier.bit_count() >= batch_min:
                grown = union_rows(matrix, mask_to_indices(frontier, words))
            else:
                grown = 0
                while frontier:
                    low = frontier & -frontier
                    grown |= adj[low.bit_length() - 1]
                    frontier ^= low
            new = grown & avail & ~reached
            if new:
                reached |= new
                update_set |= new & ~weight_le  # key = t < w(x)
        if reached == avail:
            break
    return update_set


# ----------------------------------------------------------------------
# LB-Triang
# ----------------------------------------------------------------------


def lb_triang(
    graph: Graph,
    order: Sequence[Node] | None = None,
    heuristic: str = "min_fill",
) -> list[tuple[Node, Node]]:
    """Run LB-Triang; return the fill edges of a minimal triangulation.

    Vertices are processed once each, either in the explicit ``order``
    or chosen dynamically by ``heuristic``:

    * ``"min_fill"`` — next vertex minimises the number of missing
      edges in its current neighbourhood (the heuristic used in the
      paper's experiments);
    * ``"min_degree"`` — next vertex has minimum current degree;
    * ``"natural"`` — sorted node order.

    Processing v saturates ``N_H(C)`` for every connected component C
    of ``H \\ N_H[v]`` (H is the evolving filled graph), which makes v
    LB-simplicial; by Berry et al.'s confluence theorem the final H is
    a minimal triangulation for every ordering.
    """
    filled = graph.copy()
    core = filled.core
    adj = core.adj
    remaining = core.alive
    label_of = filled.label_of
    explicit: list[int] | None = None
    if order is not None:
        order_list = list(order)
        if len(order_list) != graph.num_nodes or set(order_list) != graph.node_set():
            raise ValueError("order must be a permutation of the node set")
        explicit = [filled.index_of(node) for node in order_list]
    if explicit is None and heuristic not in {"min_fill", "min_degree", "natural"}:
        raise ValueError(f"unknown LB-Triang heuristic {heuristic!r}")
    ranks = filled.ranks()
    matrix = _packed_view(core)
    ns = _kernels_for(core) if matrix is not None else None
    ranks_arr = (
        _np.asarray(ranks, dtype=_np.int64) if matrix is not None else None
    )
    # Fill-deficiency cache for the dynamic min-fill heuristic: an entry
    # goes stale only when the node's neighbourhood or the edges inside
    # it change, i.e. for the endpoints of an added edge and for their
    # common neighbours.  The packed tier keeps it as a flat int64
    # array (−1 = stale) so the per-step selection scan is one lexsort
    # instead of one dict probe per remaining vertex.
    deficiency: dict[int, int] | object = (
        _np.full(len(adj), -1, dtype=_np.int64)
        if matrix is not None
        else {}
    )
    fill: list[tuple[Node, Node]] = []
    step = 0
    while remaining:
        if explicit is not None:
            v = explicit[step]
            step += 1
        else:
            v = _pick_dynamic(
                core, remaining, heuristic, deficiency, ranks, ranks_arr, ns
            )
        remaining &= ~(1 << v)
        closed = adj[v] | 1 << v
        added_this_step: list[tuple[int, int]] = []
        for component in core.components(closed):
            separator = core.neighborhood_of_set(component)
            added_this_step.extend(core.saturate(separator))
        for a, b in added_this_step:
            fill.append(edge_key(label_of(a), label_of(b)))
        if explicit is None and heuristic == "min_fill" and added_this_step:
            if matrix is not None:
                stale = 0
                for a, b in added_this_step:
                    stale |= 1 << a | 1 << b | (adj[a] & adj[b])
                deficiency[ns.mask_to_indices(stale, matrix.shape[1])] = -1
            else:
                for a, b in added_this_step:
                    deficiency.pop(a, None)
                    deficiency.pop(b, None)
                    for common in iter_bits(adj[a] & adj[b]):
                        deficiency.pop(common, None)
    return sort_edges(fill)


def _pick_dynamic(
    core,
    remaining: int,
    heuristic: str,
    deficiency,
    ranks: list[int],
    ranks_arr=None,
    ns=None,
) -> int:
    """The next LB-Triang vertex: lexicographic min of (score, rank).

    Equivalent to the historical first-strict-improvement scan in
    label-rank order, but iterating only the *remaining* vertices
    (instead of probing every slot against the mask each step) and,
    on a numpy-backed core (``ranks_arr`` given) with a wide remainder,
    resolving the pick with one vectorized score gather + lexsort
    through ``ns``, the core's kernel namespace.
    ``deficiency`` is the min-fill cache — a dict on the int tier, a
    flat −1-is-stale int64 array on the packed tier.
    """
    adj = core.adj
    if ns is None and ranks_arr is not None:
        ns = _kernels_for(core)
    if ranks_arr is not None and remaining.bit_count() >= ns.BATCH_MIN:
        matrix = _packed_view(core)
        idx = ns.mask_to_indices(remaining, matrix.shape[1])
        if heuristic == "natural":
            return int(idx[_np.argmin(ranks_arr[idx])])
        if heuristic == "min_degree":
            scores = ns.popcount(matrix[idx])
        else:
            stale = idx[deficiency[idx] < 0]
            for i in stale:
                # Per stale vertex, but the pair count itself runs on
                # the packed rows inside the core.
                deficiency[i] = core.missing_pair_count(adj[i])
            scores = deficiency[idx]
        return int(idx[_np.lexsort((ranks_arr[idx], scores))[0]])
    packed_cache = ranks_arr is not None
    best = -1
    best_score = -1
    best_rank = -1
    for i in iter_bits(remaining):
        if heuristic == "natural":
            score = 0
        elif heuristic == "min_degree":
            score = adj[i].bit_count()
        elif packed_cache:
            score = int(deficiency[i])
            if score < 0:
                score = core.missing_pair_count(adj[i])
                deficiency[i] = score
        else:
            score = deficiency.get(i)
            if score is None:
                score = core.missing_pair_count(adj[i])
                deficiency[i] = score
        rank = ranks[i]
        if best < 0 or score < best_score or (
            score == best_score and rank < best_rank
        ):
            best, best_score, best_rank = i, score, rank
    assert best >= 0
    return best


# ----------------------------------------------------------------------
# Elimination-game heuristics (not necessarily minimal)
# ----------------------------------------------------------------------


def min_fill_order(graph: Graph) -> list[Node]:
    """Return a min-fill elimination ordering (greedy, recomputed each step)."""
    return _greedy_elimination_order(graph, "min_fill")


def min_degree_order(graph: Graph) -> list[Node]:
    """Return a min-degree elimination ordering (greedy)."""
    return _greedy_elimination_order(graph, "min_degree")


def _greedy_elimination_order(graph: Graph, heuristic: str) -> list[Node]:
    """Greedy elimination on a scratch core: score, saturate, remove."""
    core = graph.core.copy()
    adj = core.adj
    sorted_order = graph.sorted_indices()
    label_of = graph.label_of
    order: list[Node] = []
    while core.alive:
        best = -1
        best_score = -1
        for i in sorted_order:
            if not core.alive >> i & 1:
                continue
            if heuristic == "min_degree":
                score = adj[i].bit_count()
            else:
                score = core.missing_pair_count(adj[i])
            if best < 0 or score < best_score:
                best, best_score = i, score
        order.append(label_of(best))
        core.saturate(adj[best])
        core.remove_vertex(best)
    return order


def elimination_game_triangulation(
    graph: Graph, ordering: str | Sequence[Node] = "min_fill"
) -> list[tuple[Node, Node]]:
    """Triangulate via the elimination game; return the fill edges.

    ``ordering`` may be ``"min_fill"``, ``"min_degree"``, ``"natural"``
    or an explicit node sequence.  The result is a triangulation but is
    **not** guaranteed minimal — callers that need minimality must pass
    it through :func:`repro.chordal.sandwich.minimal_triangulation_sandwich`.
    """
    if isinstance(ordering, str):
        if ordering == "min_fill":
            order = min_fill_order(graph)
        elif ordering == "min_degree":
            order = min_degree_order(graph)
        elif ordering == "natural":
            order = graph.nodes()
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
    else:
        order = list(ordering)
    return elimination_fill_in(graph, order)


# ----------------------------------------------------------------------
# Triangulator registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Triangulator:
    """A named triangulation heuristic with its minimality guarantee.

    ``fill`` maps a graph to the list of fill edges of a triangulation
    of it; ``guarantees_minimal`` tells ``Extend`` whether the sandwich
    step can be skipped (it is skipped for MCS-M and LB-Triang, exactly
    as in the paper's experiments).
    """

    name: str
    fill: Callable[[Graph], list[tuple[Node, Node]]]
    guarantees_minimal: bool

    def triangulate(self, graph: Graph) -> tuple[Graph, list[tuple[Node, Node]]]:
        """Return ``(filled graph, fill edges)`` for ``graph``."""
        fill_edges = self.fill(graph)
        filled = graph.copy()
        filled.add_edges(fill_edges)
        return filled, fill_edges


_REGISTRY: dict[str, Triangulator] = {}


def register_triangulator(triangulator: Triangulator) -> None:
    """Register a custom heuristic under ``triangulator.name``."""
    _REGISTRY[triangulator.name] = triangulator


def get_triangulator(name: str | Triangulator) -> Triangulator:
    """Resolve ``name`` to a :class:`Triangulator` (identity on instances)."""
    if isinstance(name, Triangulator):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown triangulator {name!r} (known: {known})") from None


def available_triangulators() -> list[str]:
    """Return the names of all registered heuristics."""
    return sorted(_REGISTRY)


register_triangulator(
    Triangulator("mcs_m", lambda g: mcs_m(g)[0], guarantees_minimal=True)
)
register_triangulator(
    Triangulator("lb_triang", lambda g: lb_triang(g), guarantees_minimal=True)
)
register_triangulator(
    Triangulator(
        "lb_triang_min_degree",
        lambda g: lb_triang(g, heuristic="min_degree"),
        guarantees_minimal=True,
    )
)
register_triangulator(
    Triangulator(
        "min_fill",
        lambda g: elimination_game_triangulation(g, "min_fill"),
        guarantees_minimal=False,
    )
)
register_triangulator(
    Triangulator(
        "min_degree",
        lambda g: elimination_game_triangulation(g, "min_degree"),
        guarantees_minimal=False,
    )
)
register_triangulator(
    Triangulator(
        "natural",
        lambda g: elimination_game_triangulation(g, "natural"),
        guarantees_minimal=False,
    )
)
register_triangulator(
    Triangulator(
        "complete",
        lambda g: g.missing_edges(),
        guarantees_minimal=False,
    )
)


def _lex_m_fill(graph: Graph) -> list[tuple[Node, Node]]:
    from repro.chordal.lexm import lex_m

    return lex_m(graph)[0]


register_triangulator(
    Triangulator("lex_m", _lex_m_fill, guarantees_minimal=True)
)
