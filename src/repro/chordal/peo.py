"""Chordality recognition via perfect elimination orderings (system S5).

A *perfect elimination ordering* (PEO) of a graph is an ordering
``v_1, …, v_n`` of its nodes such that for every ``v_i``, the later
neighbours ``madj(v_i) = N(v_i) ∩ {v_{i+1}, …, v_n}`` form a clique.
A graph is chordal iff it admits a PEO (Fulkerson–Gross / Rose).

This module provides:

* :func:`maximum_cardinality_search` — Tarjan–Yannakakis MCS; the
  reverse of the visit order is a PEO iff the graph is chordal;
* :func:`lex_bfs` — lexicographic BFS, an alternative linear-time
  search with the same property, used for cross-checking;
* :func:`is_perfect_elimination_ordering` — the classic linear-time
  verification (Rose–Tarjan–Lueker / Golumbic);
* :func:`is_chordal` — MCS followed by PEO verification;
* :func:`elimination_fill_in` / :func:`monotone_adjacencies` — the
  *elimination game* bookkeeping shared by the triangulation
  heuristics in :mod:`repro.chordal.triangulate`.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.errors import NotChordalError
from repro.graph.graph import Graph, Node, _sort_nodes, edge_key

__all__ = [
    "maximum_cardinality_search",
    "lex_bfs",
    "is_perfect_elimination_ordering",
    "is_chordal",
    "peo_or_none",
    "require_chordal",
    "monotone_adjacencies",
    "elimination_fill_in",
    "width_of_peo",
]


def maximum_cardinality_search(graph: Graph, first: Node | None = None) -> list[Node]:
    """Return the MCS *visit order* (first visited node first).

    MCS repeatedly visits an unvisited node with the maximum number of
    already-visited neighbours, breaking ties by node order for
    determinism.  The **reverse** of the returned list is a perfect
    elimination ordering iff ``graph`` is chordal.

    Parameters
    ----------
    first:
        Optional start node (visited first).  Varying the start node
        yields different PEOs of the same chordal graph.
    """
    adj = graph._adj  # noqa: SLF001 - hot path
    if first is not None and first not in adj:
        raise KeyError(first)
    weights: dict[Node, int] = {node: 0 for node in adj}
    if first is not None:
        weights[first] = 1  # forces `first` to be picked first
    visited: set[Node] = set()
    order: list[Node] = []
    # A lazy max-heap over (-weight, sort_key, node); stale entries are
    # skipped on pop.  sort_key makes tie-breaking deterministic.
    heap: list[tuple[int, tuple[str, str], Node]] = []
    for node in _sort_nodes(adj.keys()):
        heapq.heappush(heap, (-weights[node], _key(node), node))
    while len(order) < len(adj):
        weight, __, node = heapq.heappop(heap)
        if node in visited or -weight != weights[node]:
            continue
        visited.add(node)
        order.append(node)
        for neigh in adj[node]:
            if neigh not in visited:
                weights[neigh] += 1
                heapq.heappush(heap, (-weights[neigh], _key(neigh), neigh))
    return order


def _key(node: Node) -> tuple[str, str]:
    return (type(node).__name__, repr(node))


def lex_bfs(graph: Graph) -> list[Node]:
    """Return the Lex-BFS visit order (first visited node first).

    Implemented with partition refinement over a list of buckets.  As
    with MCS, the reverse of the visit order is a PEO iff the graph is
    chordal.
    """
    adj = graph._adj  # noqa: SLF001
    if not adj:
        return []
    buckets: list[list[Node]] = [_sort_nodes(adj.keys())]
    order: list[Node] = []
    while buckets:
        head = buckets[0]
        node = head.pop(0)
        if not head:
            buckets.pop(0)
        order.append(node)
        neighbours = adj[node]
        new_buckets: list[list[Node]] = []
        for bucket in buckets:
            inside = [candidate for candidate in bucket if candidate in neighbours]
            outside = [candidate for candidate in bucket if candidate not in neighbours]
            if inside:
                new_buckets.append(inside)
            if outside:
                new_buckets.append(outside)
        buckets = new_buckets
    return order


def is_perfect_elimination_ordering(graph: Graph, order: Sequence[Node]) -> bool:
    """Return whether ``order`` is a perfect elimination ordering.

    Uses the Rose–Tarjan–Lueker test: for each node ``v`` let ``p(v)``
    be its earliest later neighbour (its *parent*); the ordering is a
    PEO iff for every ``v``, ``madj(v) \\ {p(v)} ⊆ madj(p(v))``.  This
    avoids the quadratic all-pairs clique check.
    """
    adj = graph._adj  # noqa: SLF001
    if set(order) != set(adj) or len(order) != len(adj):
        raise ValueError("order must be a permutation of the node set")
    position = {node: i for i, node in enumerate(order)}
    madj: dict[Node, set[Node]] = {
        node: {neigh for neigh in adj[node] if position[neigh] > position[node]}
        for node in order
    }
    for node in order:
        later = madj[node]
        if not later:
            continue
        parent = min(later, key=position.__getitem__)
        if not (later - {parent}) <= madj[parent]:
            return False
    return True


def is_chordal(graph: Graph) -> bool:
    """Return whether ``graph`` is chordal (no induced cycle of length > 3)."""
    return peo_or_none(graph) is not None


def peo_or_none(graph: Graph) -> list[Node] | None:
    """Return a PEO of ``graph``, or ``None`` if the graph is not chordal."""
    order = maximum_cardinality_search(graph)
    order.reverse()
    if is_perfect_elimination_ordering(graph, order):
        return order
    return None


def require_chordal(graph: Graph) -> list[Node]:
    """Return a PEO of ``graph``; raise :class:`NotChordalError` otherwise."""
    peo = peo_or_none(graph)
    if peo is None:
        raise NotChordalError(f"{graph.summary()} is not chordal")
    return peo


def monotone_adjacencies(
    graph: Graph, order: Sequence[Node]
) -> dict[Node, frozenset[Node]]:
    """Return ``madj(v)`` (later neighbours of v) for every node of ``order``."""
    position = {node: i for i, node in enumerate(order)}
    adj = graph._adj  # noqa: SLF001
    return {
        node: frozenset(
            neigh for neigh in adj[node] if position[neigh] > position[node]
        )
        for node in order
    }


def elimination_fill_in(
    graph: Graph, order: Sequence[Node]
) -> list[tuple[Node, Node]]:
    """Play the *elimination game* along ``order`` and return the fill.

    Nodes are eliminated in the given order; eliminating a node
    saturates its not-yet-eliminated neighbourhood.  The returned list
    holds the added (fill) edges as canonical tuples, in elimination
    order.  ``graph`` is not modified.  The filled graph
    ``graph + fill`` is always a (not necessarily minimal)
    triangulation, and ``order`` is a PEO of it.
    """
    if set(order) != graph.node_set() or len(order) != graph.num_nodes:
        raise ValueError("order must be a permutation of the node set")
    position = {node: i for i, node in enumerate(order)}
    # Work adjacency restricted to not-yet-eliminated ("later") nodes.
    later_adj: dict[Node, set[Node]] = {
        node: {neigh for neigh in graph.neighbors(node) if position[neigh] > position[node]}
        for node in order
    }
    fill: list[tuple[Node, Node]] = []
    # For the saturation step we need, for each eliminated node, its
    # *current* higher neighbourhood, which grows as fill accumulates.
    current: dict[Node, set[Node]] = later_adj
    for node in order:
        higher = _sort_nodes(current[node])
        for i, u in enumerate(higher):
            for v in higher[i + 1 :]:
                if position[u] < position[v]:
                    low, high = u, v
                else:
                    low, high = v, u
                if high not in current[low]:
                    current[low].add(high)
                    fill.append(edge_key(u, v))
    return fill


def width_of_peo(graph: Graph, peo: Sequence[Node]) -> int:
    """Return the width (max clique size − 1) of a chordal graph via a PEO.

    For a chordal graph with PEO ``peo``, every maximal clique is of the
    form ``{v} ∪ madj(v)``, so the width is ``max |madj(v)|``.
    """
    if not peo:
        return -1
    madj = monotone_adjacencies(graph, peo)
    return max(len(later) for later in madj.values())
