"""Chordality recognition via perfect elimination orderings (system S5).

A *perfect elimination ordering* (PEO) of a graph is an ordering
``v_1, …, v_n`` of its nodes such that for every ``v_i``, the later
neighbours ``madj(v_i) = N(v_i) ∩ {v_{i+1}, …, v_n}`` form a clique.
A graph is chordal iff it admits a PEO (Fulkerson–Gross / Rose).

This module provides:

* :func:`maximum_cardinality_search` — Tarjan–Yannakakis MCS; the
  reverse of the visit order is a PEO iff the graph is chordal;
* :func:`lex_bfs` — lexicographic BFS, an alternative linear-time
  search with the same property, used for cross-checking;
* :func:`is_perfect_elimination_ordering` — the classic linear-time
  verification (Rose–Tarjan–Lueker / Golumbic);
* :func:`is_chordal` — MCS followed by PEO verification;
* :func:`elimination_fill_in` / :func:`monotone_adjacencies` — the
  *elimination game* bookkeeping shared by the triangulation
  heuristics in :mod:`repro.chordal.triangulate`.

All algorithms run on the integer-indexed bitset core: weights and
labels live in dense lists keyed by vertex index, adjacency tests are
single-bit probes, and the clique condition of the PEO check is one
mask-subset test per vertex.  The label-sorted rank order of the façade
is used for every tie-break, so results are exactly as deterministic as
the label-based implementation they replace.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.errors import NotChordalError
from repro.graph.core import iter_bits
from repro.graph.graph import Graph, Node, edge_key

try:  # numpy unavailable: only the int-mask reference path exists
    from repro.graph import bitset_np as _kernel
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _kernel = None

__all__ = [
    "maximum_cardinality_search",
    "lex_bfs",
    "is_perfect_elimination_ordering",
    "is_chordal",
    "peo_or_none",
    "require_chordal",
    "monotone_adjacencies",
    "elimination_fill_in",
    "width_of_peo",
]


def maximum_cardinality_search(graph: Graph, first: Node | None = None) -> list[Node]:
    """Return the MCS *visit order* (first visited node first).

    MCS repeatedly visits an unvisited node with the maximum number of
    already-visited neighbours, breaking ties by node order for
    determinism.  The **reverse** of the returned list is a perfect
    elimination ordering iff ``graph`` is chordal.

    Parameters
    ----------
    first:
        Optional start node (visited first).  Varying the start node
        yields different PEOs of the same chordal graph.
    """
    core = graph.core
    adj = core.adj
    if first is not None and first not in graph:
        raise KeyError(first)
    weights = [0] * len(adj)
    if first is not None:
        weights[graph.index_of(first)] = 1  # forces `first` to be picked first
    ranks = graph.ranks()
    visited = 0
    order: list[int] = []
    n = core.num_vertices
    # A lazy max-heap over (-weight, rank, index); stale entries are
    # skipped on pop.  The label rank makes tie-breaking deterministic.
    heap: list[tuple[int, int, int]] = [
        (-weights[i], ranks[i], i) for i in graph.sorted_indices()
    ]
    heapq.heapify(heap)
    while len(order) < n:
        weight, __, node = heapq.heappop(heap)
        if visited >> node & 1 or -weight != weights[node]:
            continue
        visited |= 1 << node
        order.append(node)
        for neigh in iter_bits(adj[node] & ~visited):
            weights[neigh] += 1
            heapq.heappush(heap, (-weights[neigh], ranks[neigh], neigh))
    label_of = graph.label_of
    return [label_of(i) for i in order]


def lex_bfs(graph: Graph) -> list[Node]:
    """Return the Lex-BFS visit order (first visited node first).

    Implemented with partition refinement over a list of buckets.  As
    with MCS, the reverse of the visit order is a PEO iff the graph is
    chordal.
    """
    core = graph.core
    if not core.alive:
        return []
    adj = core.adj
    buckets: list[list[int]] = [list(graph.sorted_indices())]
    order: list[int] = []
    while buckets:
        head = buckets[0]
        node = head.pop(0)
        if not head:
            buckets.pop(0)
        order.append(node)
        neighbours = adj[node]
        new_buckets: list[list[int]] = []
        for bucket in buckets:
            inside = [candidate for candidate in bucket if neighbours >> candidate & 1]
            outside = [
                candidate for candidate in bucket if not neighbours >> candidate & 1
            ]
            if inside:
                new_buckets.append(inside)
            if outside:
                new_buckets.append(outside)
        buckets = new_buckets
    label_of = graph.label_of
    return [label_of(i) for i in order]


def _order_indices(graph: Graph, order: Sequence[Node]) -> list[int]:
    """Translate a node ordering to indices, validating it is a permutation."""
    if len(order) != graph.num_nodes or set(order) != graph.node_set():
        raise ValueError("order must be a permutation of the node set")
    index_of = graph.index_of
    return [index_of(node) for node in order]


def is_perfect_elimination_ordering(graph: Graph, order: Sequence[Node]) -> bool:
    """Return whether ``order`` is a perfect elimination ordering.

    Uses the Rose–Tarjan–Lueker test: for each node ``v`` let ``p(v)``
    be its earliest later neighbour (its *parent*); the ordering is a
    PEO iff for every ``v``, ``madj(v) \\ {p(v)} ⊆ madj(p(v))``.  This
    avoids the quadratic all-pairs clique check.

    On a numpy-backed core the whole test runs as packed word-matrix
    reductions (:func:`repro.graph.bitset_np.is_peo_packed`); the
    int-mask path below stays the reference oracle.
    """
    indices = _order_indices(graph, order)
    if _kernel is not None and len(indices) >= _kernel.BATCH_MIN:
        matrix = _kernel.packed_view(graph.core)
        if matrix is not None:
            return _kernel.kernels_for(graph.core).is_peo_packed(
                matrix, indices
            )
    adj = graph.core.adj
    position = [0] * len(adj)
    for pos, index in enumerate(indices):
        position[index] = pos
    # madj as masks: later neighbours of each vertex.
    madj = [0] * len(adj)
    later = 0
    for index in reversed(indices):
        madj[index] = adj[index] & later
        later |= 1 << index
    for index in indices:
        later_mask = madj[index]
        if not later_mask:
            continue
        parent = min(iter_bits(later_mask), key=position.__getitem__)
        if (later_mask & ~(1 << parent)) & ~madj[parent]:
            return False
    return True


def is_chordal(graph: Graph) -> bool:
    """Return whether ``graph`` is chordal (no induced cycle of length > 3)."""
    return peo_or_none(graph) is not None


def peo_or_none(graph: Graph) -> list[Node] | None:
    """Return a PEO of ``graph``, or ``None`` if the graph is not chordal."""
    order = maximum_cardinality_search(graph)
    order.reverse()
    if is_perfect_elimination_ordering(graph, order):
        return order
    return None


def require_chordal(graph: Graph) -> list[Node]:
    """Return a PEO of ``graph``; raise :class:`NotChordalError` otherwise."""
    peo = peo_or_none(graph)
    if peo is None:
        raise NotChordalError(f"{graph.summary()} is not chordal")
    return peo


def monotone_adjacencies(
    graph: Graph, order: Sequence[Node]
) -> dict[Node, frozenset[Node]]:
    """Return ``madj(v)`` (later neighbours of v) for every node of ``order``."""
    indices = [graph.index_of(node) for node in order]
    adj = graph.core.adj
    label_set = graph.label_set
    result: dict[Node, frozenset[Node]] = {}
    later = 0
    madj_masks: list[int] = []
    for index in reversed(indices):
        madj_masks.append(adj[index] & later)
        later |= 1 << index
    madj_masks.reverse()
    for node, mask in zip(order, madj_masks):
        result[node] = label_set(mask)
    return result


def elimination_fill_in(
    graph: Graph, order: Sequence[Node]
) -> list[tuple[Node, Node]]:
    """Play the *elimination game* along ``order`` and return the fill.

    Nodes are eliminated in the given order; eliminating a node
    saturates its not-yet-eliminated neighbourhood.  The returned list
    holds the added (fill) edges as canonical tuples, in elimination
    order.  ``graph`` is not modified.  The filled graph
    ``graph + fill`` is always a (not necessarily minimal)
    triangulation, and ``order`` is a PEO of it.
    """
    indices = _order_indices(graph, order)
    adj = graph.core.adj
    ranks = graph.ranks()
    label_of = graph.label_of
    position = [0] * len(adj)
    for pos, index in enumerate(indices):
        position[index] = pos
    # Work adjacency restricted to later-positioned nodes, kept on the
    # earlier endpoint only and growing as fill accumulates.
    current = [0] * len(adj)
    later = 0
    for index in reversed(indices):
        current[index] = adj[index] & later
        later |= 1 << index
    fill: list[tuple[Node, Node]] = []
    for index in indices:
        higher = sorted(iter_bits(current[index]), key=ranks.__getitem__)
        for i, u in enumerate(higher):
            for v in higher[i + 1 :]:
                low, high = (u, v) if position[u] < position[v] else (v, u)
                if not current[low] >> high & 1:
                    current[low] |= 1 << high
                    fill.append(edge_key(label_of(u), label_of(v)))
    return fill


def width_of_peo(graph: Graph, peo: Sequence[Node]) -> int:
    """Return the width (max clique size − 1) of a chordal graph via a PEO.

    For a chordal graph with PEO ``peo``, every maximal clique is of the
    form ``{v} ∪ madj(v)``, so the width is ``max |madj(v)|``.
    """
    if not peo:
        return -1
    indices = _order_indices(graph, peo)
    adj = graph.core.adj
    later = 0
    width = 0
    for index in reversed(indices):
        size = (adj[index] & later).bit_count()
        if size > width:
            width = size
        later |= 1 << index
    return width
