"""Chordal-graph theory substrate: recognition, cliques, separators, heuristics."""

from repro.chordal.atoms import atoms, clique_minimal_separators
from repro.chordal.chordal_separators import minimal_separators_of_chordal
from repro.chordal.cliques import (
    CliqueForest,
    maximal_cliques,
    mcs_clique_forest,
)
from repro.chordal.lexm import lex_m
from repro.chordal.minimal_separators import (
    all_minimal_separators,
    are_crossing,
    are_parallel,
    count_minimal_separators,
    is_minimal_separator,
    is_pairwise_parallel,
    minimal_separators,
)
from repro.chordal.peo import (
    elimination_fill_in,
    is_chordal,
    is_perfect_elimination_ordering,
    lex_bfs,
    maximum_cardinality_search,
    monotone_adjacencies,
    peo_or_none,
    require_chordal,
    width_of_peo,
)
from repro.chordal.sandwich import (
    is_minimal_triangulation,
    minimal_triangulation_sandwich,
)
from repro.chordal.triangulate import (
    Triangulator,
    available_triangulators,
    elimination_game_triangulation,
    get_triangulator,
    lb_triang,
    mcs_m,
    min_degree_order,
    min_fill_order,
    register_triangulator,
)

__all__ = [
    "atoms",
    "clique_minimal_separators",
    "CliqueForest",
    "maximal_cliques",
    "mcs_clique_forest",
    "minimal_separators",
    "all_minimal_separators",
    "count_minimal_separators",
    "are_crossing",
    "are_parallel",
    "is_minimal_separator",
    "is_pairwise_parallel",
    "minimal_separators_of_chordal",
    "is_chordal",
    "is_perfect_elimination_ordering",
    "lex_bfs",
    "maximum_cardinality_search",
    "monotone_adjacencies",
    "peo_or_none",
    "require_chordal",
    "elimination_fill_in",
    "width_of_peo",
    "is_minimal_triangulation",
    "minimal_triangulation_sandwich",
    "Triangulator",
    "available_triangulators",
    "get_triangulator",
    "register_triangulator",
    "elimination_game_triangulation",
    "lb_triang",
    "mcs_m",
    "lex_m",
    "min_degree_order",
    "min_fill_order",
]
