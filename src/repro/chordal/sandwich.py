"""The minimal triangulation sandwich problem (system S11).

Given a graph ``g`` and an arbitrary triangulation ``h`` of it, find a
*minimal* triangulation ``h'`` with ``E(g) ⊆ E(h') ⊆ E(h)``.  This is
the ``MinTriSandwich`` subroutine of the paper's ``Extend`` (Figure 3);
it is only exercised when the plugged-in ``Triangulate`` heuristic does
not already guarantee minimality (e.g. the elimination game or the
trivial complete-graph triangulation).

The implementation follows the classic Rose–Tarjan–Lueker exchange
lemma: a triangulation is minimal iff no *single* fill edge can be
removed without breaking chordality, and greedily removing removable
fill edges one at a time always terminates in a minimal triangulation.
Candidate edges are rescanned after every successful removal because a
removal can turn a previously necessary edge removable — but never the
other way round within one pass, which keeps the loop quadratic in the
number of fill edges.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.chordal.peo import is_chordal, require_chordal
from repro.errors import NotATriangulationError
from repro.graph.graph import Graph, Node, edge_key, sort_edges

__all__ = ["minimal_triangulation_sandwich", "is_minimal_triangulation"]


def minimal_triangulation_sandwich(
    graph: Graph,
    triangulation: Graph | Iterable[tuple[Node, Node]],
) -> tuple[Graph, list[tuple[Node, Node]]]:
    """Shrink ``triangulation`` to a minimal triangulation of ``graph``.

    Parameters
    ----------
    graph:
        The base graph g.
    triangulation:
        Either a chordal supergraph h of g on the same node set, or the
        iterable of fill edges ``E(h) \\ E(g)``.

    Returns
    -------
    (minimal, fill):
        The minimal triangulation as a new graph, and its sorted fill
        edges.

    Raises
    ------
    NotATriangulationError
        If ``triangulation`` is not a chordal supergraph of ``graph``
        on the same node set.
    """
    filled, fill_edges = _as_filled(graph, triangulation)
    require_chordal_triangulation(graph, filled)

    candidates = sort_edges(fill_edges)
    changed = True
    while changed:
        changed = False
        survivors: list[tuple[Node, Node]] = []
        for u, v in candidates:
            filled.remove_edge(u, v)
            if is_chordal(filled):
                changed = True
            else:
                filled.add_edge(u, v)
                survivors.append((u, v))
        candidates = survivors
    return filled, candidates


def is_minimal_triangulation(graph: Graph, triangulation: Graph) -> bool:
    """Return whether ``triangulation`` is a *minimal* triangulation of ``graph``.

    Checks that it is a chordal supergraph on the same node set and
    that removing any single fill edge breaks chordality (the
    Rose–Tarjan–Lueker characterisation of minimality).
    """
    if triangulation.node_set() != graph.node_set():
        return False
    if not graph.edge_set() <= triangulation.edge_set():
        return False
    if not is_chordal(triangulation):
        return False
    work = triangulation.copy()
    for edge in triangulation.edge_set() - graph.edge_set():
        u, v = tuple(edge)
        work.remove_edge(u, v)
        chordal_without = is_chordal(work)
        work.add_edge(u, v)
        if chordal_without:
            return False
    return True


def _as_filled(
    graph: Graph,
    triangulation: Graph | Iterable[tuple[Node, Node]],
) -> tuple[Graph, list[tuple[Node, Node]]]:
    if isinstance(triangulation, Graph):
        if triangulation.node_set() != graph.node_set():
            raise NotATriangulationError(
                "triangulation must have the same node set as the base graph"
            )
        if not graph.edge_set() <= triangulation.edge_set():
            raise NotATriangulationError(
                "triangulation must be a supergraph of the base graph"
            )
        fill = [
            edge_key(*edge)
            for edge in (triangulation.edge_set() - graph.edge_set())
        ]
        return triangulation.copy(), fill
    filled = graph.copy()
    fill = []
    for u, v in triangulation:
        if not filled.has_edge(u, v):
            filled.add_edge(u, v)
            fill.append(edge_key(u, v))
    return filled, fill


def require_chordal_triangulation(graph: Graph, filled: Graph) -> None:
    """Raise :class:`NotATriangulationError` unless ``filled`` triangulates ``graph``."""
    try:
        require_chordal(filled)
    except Exception as exc:  # NotChordalError
        raise NotATriangulationError(str(exc)) from exc
