"""Minimal separators of a chordal graph in (near-)linear time (S9).

Kumar and Madhavan showed that the minimal separators of a chordal
graph can be computed in linear time; the paper's ``Extend`` uses this
as its final step (``ExtractMinSeps``).  We realise the same bound via
the clique forest: by the classical clique-tree theorem, the minimal
separators of a connected chordal graph are exactly the labels
``K_i ∩ K_j`` of the clique-tree edges, and the MCS construction of
:func:`repro.chordal.cliques.mcs_clique_forest` produces those labels
directly.

By the paper's definitions the empty set is additionally a minimal
separator of every *disconnected* graph, so it is included in that
case, keeping this function consistent with the general-purpose
enumerator in :mod:`repro.chordal.minimal_separators`.
"""

from __future__ import annotations

from repro.chordal.cliques import clique_forest_masks
from repro.graph.graph import Graph, Node

__all__ = ["chordal_separator_masks", "minimal_separators_of_chordal"]


def chordal_separator_masks(graph: Graph) -> tuple[set[int], bool]:
    """``MinSep(graph)`` of a chordal graph, at the mask level.

    Returns ``(separator_masks, include_empty)`` where ``include_empty``
    says whether the empty separator of a disconnected graph belongs in
    the set (the empty mask cannot be distinguished from "no separator"
    inside the mask set itself).  This is the ``ExtractMinSeps`` step of
    ``Extend``: working straight off the clique-forest scan skips the
    label translation of every maximal clique, which the enumeration
    inner loop would otherwise pay once per ``Extend`` call.

    Raises :class:`~repro.errors.NotChordalError` on non-chordal input.
    """
    __, parent, separator_masks, __ = clique_forest_masks(graph)
    separators = {mask for mask in separator_masks if mask is not None}
    component_roots = sum(1 for p in parent if p is None)
    return separators, component_roots > 1


def minimal_separators_of_chordal(graph: Graph) -> set[frozenset[Node]]:
    """Return ``MinSep(graph)`` for a chordal ``graph``.

    Raises :class:`~repro.errors.NotChordalError` on non-chordal input.
    A chordal graph has strictly fewer minimal separators than nodes
    (Rose), which is what makes the sets returned here small enough to
    serve as SGR independent sets.
    """
    masks, include_empty = chordal_separator_masks(graph)
    label_set = graph.label_set
    separators = {label_set(mask) for mask in masks}
    if include_empty:
        separators.add(frozenset())
    return separators
