"""Minimal separators of a chordal graph in (near-)linear time (S9).

Kumar and Madhavan showed that the minimal separators of a chordal
graph can be computed in linear time; the paper's ``Extend`` uses this
as its final step (``ExtractMinSeps``).  We realise the same bound via
the clique forest: by the classical clique-tree theorem, the minimal
separators of a connected chordal graph are exactly the labels
``K_i ∩ K_j`` of the clique-tree edges, and the MCS construction of
:func:`repro.chordal.cliques.mcs_clique_forest` produces those labels
directly.

By the paper's definitions the empty set is additionally a minimal
separator of every *disconnected* graph, so it is included in that
case, keeping this function consistent with the general-purpose
enumerator in :mod:`repro.chordal.minimal_separators`.
"""

from __future__ import annotations

from repro.chordal.cliques import mcs_clique_forest
from repro.graph.graph import Graph, Node

__all__ = ["minimal_separators_of_chordal"]


def minimal_separators_of_chordal(graph: Graph) -> set[frozenset[Node]]:
    """Return ``MinSep(graph)`` for a chordal ``graph``.

    Raises :class:`~repro.errors.NotChordalError` on non-chordal input.
    A chordal graph has strictly fewer minimal separators than nodes
    (Rose), which is what makes the sets returned here small enough to
    serve as SGR independent sets.
    """
    forest = mcs_clique_forest(graph)
    separators = {sep for sep in forest.separators if sep is not None}
    component_roots = sum(1 for p in forest.parent if p is None)
    if component_roots > 1:
        separators.add(frozenset())
    return separators
