"""Junction-tree (sum-product) inference over tree decompositions.

The full pipeline the paper enables: enumerate proper tree
decompositions of the model's primal graph, pick one by your cost
measure, and calibrate a junction tree on it.  The cost of calibration
is dominated by the largest bag table — exactly the width measure —
but the *total* work is the table-volume metric of
:mod:`repro.decomposition.metrics`, which different same-width
decompositions realise very differently.

The implementation is the classical Shafer–Shenoy two-pass scheme:

1. assign every factor to one bag containing its scope (one exists for
   every valid tree decomposition, paper Proposition 5.3);
2. collect messages towards a root, then distribute back;
3. bag beliefs are the bag potential times incoming messages; every
   bag then agrees with its neighbours on their adhesion, the
   partition function is the total mass of any bag, and per-variable
   marginals come from any bag containing the variable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.errors import InvalidTreeDecompositionError
from repro.graph.graph import Node
from repro.inference.factor import Factor
from repro.inference.model import MarkovNetwork

__all__ = ["CalibrationResult", "calibrate", "partition_function"]


@dataclass
class CalibrationResult:
    """Calibrated junction-tree state.

    Attributes
    ----------
    decomposition:
        The tree decomposition the junction tree was built on.
    beliefs:
        One calibrated (unnormalised) belief factor per bag.
    partition_function:
        The model's normalisation constant Z.
    max_table_entries:
        The largest intermediate table materialised — the memory
        bottleneck, ≈ product of domain sizes over the largest bag.
    total_table_entries:
        Total entries across bag beliefs (the table-volume metric).
    """

    decomposition: TreeDecomposition
    beliefs: list[Factor]
    partition_function: float
    max_table_entries: int
    total_table_entries: int

    def marginal(self, variable: Node) -> list[float]:
        """The unnormalised marginal of ``variable``."""
        for belief in self.beliefs:
            if variable in belief.variables:
                return [float(x) for x in belief.project_onto([variable]).table]
        raise KeyError(f"variable {variable!r} is in no bag")

    def normalized_marginal(self, variable: Node) -> list[float]:
        """The marginal of ``variable`` normalised to sum to 1."""
        raw = self.marginal(variable)
        total = sum(raw)
        if total <= 0:
            raise ValueError("zero partition function; cannot normalise")
        return [x / total for x in raw]


def calibrate(
    model: MarkovNetwork,
    decomposition: TreeDecomposition,
    evidence: dict[Node, int] | None = None,
) -> CalibrationResult:
    """Run two-pass sum-product over ``decomposition``.

    Parameters
    ----------
    evidence:
        Optional observed values; each observed variable's factors are
        sliced to the observed state (standard evidence absorption).
        The resulting ``partition_function`` is then the *evidence
        probability mass* P̃(e), and marginals are posteriors given e
        (observed variables collapse onto their observed state).

    Raises
    ------
    InvalidTreeDecompositionError
        If ``decomposition`` is not a valid tree decomposition of the
        model's primal graph (factor scopes would not fit in bags).
    """
    primal = model.primal_graph()
    decomposition.validate(primal)
    domains = model.domains
    if evidence:
        for variable, value in evidence.items():
            if variable not in domains:
                raise KeyError(f"evidence on unknown variable {variable!r}")
            if not 0 <= value < domains[variable]:
                raise ValueError(
                    f"evidence value {value} out of range for {variable!r}"
                )
        model = MarkovNetwork(
            dict(domains),
            list(model.factors)
            + [
                _indicator(variable, value, domains)
                for variable, value in evidence.items()
            ],
        )

    # 1. Assign each factor to the first bag containing its scope.
    bag_factors: list[list[Factor]] = [[] for __ in decomposition.bags]
    for factor in model.factors:
        scope = set(factor.variables)
        for index, bag in enumerate(decomposition.bags):
            if scope <= bag:
                bag_factors[index].append(factor)
                break
        else:  # pragma: no cover - excluded by validate()
            raise InvalidTreeDecompositionError(
                f"no bag contains factor scope {sorted(map(repr, scope))}"
            )

    max_entries = 0
    total_entries = 0

    def bag_potential(index: int) -> Factor:
        bag = sorted(decomposition.bags[index], key=repr)
        potential = Factor.uniform(bag, domains)
        for factor in bag_factors[index]:
            potential = potential.multiply(factor, domains)
        return potential

    potentials = [bag_potential(i) for i in range(decomposition.num_bags)]

    # 2. Orient the tree from a root and order bags leaves-first.
    adjacency = decomposition.neighbors()
    root = 0
    parent: dict[int, int | None] = {root: None}
    order = [root]
    for current in order:
        for neighbor in adjacency[current]:
            if neighbor not in parent:
                parent[neighbor] = current
                order.append(neighbor)

    # Collect: messages child -> parent.
    upward: dict[int, Factor] = {}
    for index in reversed(order):
        up = potentials[index]
        for neighbor in adjacency[index]:
            if parent.get(neighbor) == index:
                up = up.multiply(upward[neighbor], domains)
        max_entries = max(max_entries, up.num_entries)
        if parent[index] is not None:
            adhesion = decomposition.bags[index] & decomposition.bags[parent[index]]
            upward[index] = up.project_onto(adhesion)

    # Distribute: messages parent -> child, and final beliefs.
    downward: dict[int, Factor] = {}
    beliefs: list[Factor] = [Factor.constant()] * decomposition.num_bags
    for index in order:
        belief = potentials[index]
        if parent[index] is not None:
            belief = belief.multiply(downward[index], domains)
        for neighbor in adjacency[index]:
            if parent.get(neighbor) == index:
                belief = belief.multiply(upward[neighbor], domains)
        beliefs[index] = belief
        max_entries = max(max_entries, belief.num_entries)
        total_entries += belief.num_entries
        for neighbor in adjacency[index]:
            if parent.get(neighbor) == index:
                adhesion = (
                    decomposition.bags[index] & decomposition.bags[neighbor]
                )
                # The message to `neighbor` excludes its own upward
                # contribution: divide-free Shafer-Shenoy recomputation.
                message = potentials[index]
                if parent[index] is not None:
                    message = message.multiply(downward[index], domains)
                for other in adjacency[index]:
                    if other != neighbor and parent.get(other) == index:
                        message = message.multiply(upward[other], domains)
                downward[neighbor] = message.project_onto(adhesion)

    z = beliefs[root].total()
    return CalibrationResult(
        decomposition=decomposition,
        beliefs=beliefs,
        partition_function=z,
        max_table_entries=max_entries,
        total_table_entries=total_entries,
    )


def _indicator(variable: Node, value: int, domains: dict[Node, int]) -> Factor:
    """A one-hot factor pinning ``variable`` to ``value``."""
    table = [0.0] * domains[variable]
    table[value] = 1.0
    return Factor((variable,), table)


def partition_function(
    model: MarkovNetwork,
    decomposition: TreeDecomposition,
    evidence: dict[Node, int] | None = None,
) -> float:
    """Convenience wrapper returning only Z (or P̃(evidence))."""
    return calibrate(model, decomposition, evidence=evidence).partition_function
