"""Exact inference on junction trees (application substrate)."""

from repro.inference.bayes import BayesianNetwork
from repro.inference.factor import Factor
from repro.inference.junction_tree import (
    CalibrationResult,
    calibrate,
    partition_function,
)
from repro.inference.model import MarkovNetwork

__all__ = [
    "Factor",
    "BayesianNetwork",
    "MarkovNetwork",
    "CalibrationResult",
    "calibrate",
    "partition_function",
]
