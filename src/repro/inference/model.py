"""Discrete Markov networks (extension substrate).

A Markov network is a set of factors over discrete variables; its
primal graph (one node per variable, factor scopes saturated) is the
graph whose tree decompositions drive exact inference.  This mirrors
how the paper's Section 6 turns UAI models into benchmark graphs.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.graph.graph import Graph, Node
from repro.inference.factor import Factor

__all__ = ["MarkovNetwork"]


class MarkovNetwork:
    """A factorised non-negative distribution over discrete variables.

    Parameters
    ----------
    domains:
        Mapping from variable to its (positive) domain size.
    factors:
        The factors; every scope variable must appear in ``domains``
        and every table axis must match the declared domain size.
    """

    def __init__(self, domains: dict[Node, int], factors: list[Factor]) -> None:
        for variable, size in domains.items():
            if size <= 0:
                raise ValueError(f"domain of {variable!r} must be positive")
        for factor in factors:
            for variable in factor.variables:
                if variable not in domains:
                    raise ValueError(f"factor mentions unknown variable {variable!r}")
                if factor.domain_size(variable) != domains[variable]:
                    raise ValueError(
                        f"factor table axis for {variable!r} has size "
                        f"{factor.domain_size(variable)}, expected {domains[variable]}"
                    )
        self.domains = dict(domains)
        self.factors = list(factors)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def variables(self) -> list[Node]:
        """All variables in sorted order."""
        from repro.graph.graph import _sort_nodes

        return _sort_nodes(self.domains)

    def primal_graph(self) -> Graph:
        """The primal (moral) graph: factor scopes become cliques."""
        graph = Graph(nodes=self.domains)
        for factor in self.factors:
            graph.saturate(factor.variables)
        return graph

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        graph: Graph,
        seed: int,
        domain_size: int = 2,
        pairwise: bool = True,
    ) -> "MarkovNetwork":
        """A random strictly positive model with ``graph`` as primal graph.

        ``pairwise=True`` creates one factor per edge (plus a unary
        factor per node), which keeps the primal graph exactly
        ``graph``.
        """
        if not pairwise:
            raise NotImplementedError("only pairwise models are generated")
        rng = np.random.default_rng(seed)
        domains = {v: domain_size for v in graph.node_set()}
        factors = [
            Factor.random((v,), domains, rng) for v in graph.nodes()
        ]
        factors.extend(
            Factor.random((u, v), domains, rng) for u, v in graph.edges()
        )
        return cls(domains, factors)

    # ------------------------------------------------------------------
    # Brute-force reference semantics (exponential; test oracle)
    # ------------------------------------------------------------------

    def brute_force_partition_function(self) -> float:
        """Z = Σ over all assignments of the product of factors."""
        variables = self.variables()
        total = 0.0
        for assignment in itertools.product(
            *(range(self.domains[v]) for v in variables)
        ):
            value = 1.0
            lookup = dict(zip(variables, assignment))
            for factor in self.factors:
                index = tuple(lookup[v] for v in factor.variables)
                value *= float(factor.table[index])
            total += value
        return total

    def brute_force_marginal(self, variable: Node) -> list[float]:
        """The unnormalised marginal of ``variable`` (test oracle)."""
        variables = self.variables()
        sums = [0.0] * self.domains[variable]
        for assignment in itertools.product(
            *(range(self.domains[v]) for v in variables)
        ):
            lookup = dict(zip(variables, assignment))
            value = 1.0
            for factor in self.factors:
                index = tuple(lookup[v] for v in factor.variables)
                value *= float(factor.table[index])
            sums[lookup[variable]] += value
        return sums

    def __repr__(self) -> str:
        return (
            f"MarkovNetwork(num_variables={len(self.domains)}, "
            f"num_factors={len(self.factors)})"
        )
