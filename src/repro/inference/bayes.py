"""Bayesian networks and moralisation (extension substrate).

The paper's PGM benchmarks mix Markov networks and *Bayesian* networks
(Promedas, segmentation, pedigree); the latter reach the triangulation
machinery through **moralisation** — marry the parents of every node,
drop directions.  This module supplies a small directed model type
with CPT semantics, the moralisation into a
:class:`~repro.inference.model.MarkovNetwork` (exact inference then
runs unchanged on the junction tree), and the random generators used
by the workload suites.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph, Node, _sort_nodes
from repro.inference.factor import Factor
from repro.inference.model import MarkovNetwork

__all__ = ["BayesianNetwork"]


class BayesianNetwork:
    """A discrete Bayesian network: a DAG plus one CPT per node.

    Parameters
    ----------
    domains:
        Variable → domain size.
    parents:
        Variable → tuple of parent variables (must be acyclic).
    cpts:
        Variable → conditional probability table with axes
        ``(*parents, variable)``; every slice over the last axis must
        sum to 1.
    """

    def __init__(
        self,
        domains: dict[Node, int],
        parents: dict[Node, tuple[Node, ...]],
        cpts: dict[Node, np.ndarray],
    ) -> None:
        if set(domains) != set(parents) or set(domains) != set(cpts):
            raise ValueError("domains, parents and cpts must share keys")
        self.domains = dict(domains)
        self.parents = {v: tuple(ps) for v, ps in parents.items()}
        self._check_acyclic()
        self.cpts: dict[Node, np.ndarray] = {}
        for variable, table in cpts.items():
            array = np.asarray(table, dtype=float)
            expected = tuple(
                self.domains[p] for p in self.parents[variable]
            ) + (self.domains[variable],)
            if array.shape != expected:
                raise ValueError(
                    f"CPT of {variable!r} has shape {array.shape}, "
                    f"expected {expected}"
                )
            sums = array.sum(axis=-1)
            if not np.allclose(sums, 1.0):
                raise ValueError(f"CPT of {variable!r} rows must sum to 1")
            self.cpts[variable] = array

    def _check_acyclic(self) -> None:
        state: dict[Node, int] = {}

        def visit(node: Node) -> None:
            state[node] = 1
            for parent in self.parents[node]:
                mark = state.get(parent, 0)
                if mark == 1:
                    raise ValueError("parent structure contains a cycle")
                if mark == 0:
                    visit(parent)
            state[node] = 2

        for node in self.parents:
            if state.get(node, 0) == 0:
                visit(node)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def variables(self) -> list[Node]:
        return _sort_nodes(self.domains)

    def moral_graph(self) -> Graph:
        """The moral graph: child–parent edges plus married parents."""
        graph = Graph(nodes=self.domains)
        for child, parent_tuple in self.parents.items():
            graph.saturate((child, *parent_tuple))
        return graph

    def to_markov_network(self) -> MarkovNetwork:
        """One factor per CPT; primal graph = the moral graph."""
        factors = [
            Factor((*self.parents[v], v), self.cpts[v]) for v in self.variables()
        ]
        return MarkovNetwork(dict(self.domains), factors)

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        num_variables: int,
        max_parents: int,
        seed: int,
        domain_size: int = 2,
    ) -> "BayesianNetwork":
        """A random DAG over ``0..n-1`` (parents have smaller index)."""
        import random as pyrandom

        rng = pyrandom.Random(seed)
        np_rng = np.random.default_rng(seed)
        domains = {v: domain_size for v in range(num_variables)}
        parents: dict[Node, tuple[Node, ...]] = {}
        cpts: dict[Node, np.ndarray] = {}
        for v in range(num_variables):
            count = rng.randint(0, min(max_parents, v))
            chosen = tuple(sorted(rng.sample(range(v), count)))
            parents[v] = chosen
            shape = tuple(domain_size for __ in chosen) + (domain_size,)
            raw = np_rng.random(shape) + 0.05
            cpts[v] = raw / raw.sum(axis=-1, keepdims=True)
        return cls(domains, parents, cpts)

    # ------------------------------------------------------------------
    # Semantics (oracle)
    # ------------------------------------------------------------------

    def joint_probability(self, assignment: dict[Node, int]) -> float:
        """P(assignment) = Π CPT entries (full assignments only)."""
        if set(assignment) != set(self.domains):
            raise ValueError("assignment must cover every variable")
        probability = 1.0
        for variable, table in self.cpts.items():
            index = tuple(assignment[p] for p in self.parents[variable]) + (
                assignment[variable],
            )
            probability *= float(table[index])
        return probability

    def __repr__(self) -> str:
        return (
            f"BayesianNetwork(num_variables={len(self.domains)}, "
            f"edges={sum(len(p) for p in self.parents.values())})"
        )
