"""Discrete factors for junction-tree inference (extension substrate).

The paper's first application domain is exact inference in
probabilistic graphical models: the cost of junction-tree inference is
driven by the tree decomposition used, which is exactly what the
enumeration lets an application optimise.  This module implements the
factor algebra needed for a real sum-product engine: multiplication
(with broadcasting over variable unions) and marginalisation, on dense
numpy tables.

Variables are named by arbitrary hashable, orderable objects; a factor
stores its scope as an ordered tuple and its table with one axis per
scope variable, axis length = the variable's domain size.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.graph.graph import Node

__all__ = ["Factor"]


class Factor:
    """A non-negative real-valued function over discrete variables.

    Parameters
    ----------
    variables:
        The ordered scope.  Must be duplicate-free.
    table:
        Array-like with one axis per variable.
    """

    __slots__ = ("variables", "table")

    def __init__(self, variables: Sequence[Node], table) -> None:
        self.variables: tuple[Node, ...] = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError("factor scope contains duplicate variables")
        self.table = np.asarray(table, dtype=float)
        if self.table.ndim != len(self.variables):
            raise ValueError(
                f"table has {self.table.ndim} axes for "
                f"{len(self.variables)} variables"
            )
        if np.any(self.table < 0):
            raise ValueError("factor tables must be non-negative")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, value: float = 1.0) -> "Factor":
        """The scope-free constant factor."""
        return cls((), np.asarray(value, dtype=float))

    @classmethod
    def uniform(cls, variables: Sequence[Node], domains: Mapping[Node, int]) -> "Factor":
        """The all-ones factor over ``variables``."""
        shape = tuple(domains[v] for v in variables)
        return cls(variables, np.ones(shape))

    @classmethod
    def random(
        cls,
        variables: Sequence[Node],
        domains: Mapping[Node, int],
        rng: np.random.Generator,
    ) -> "Factor":
        """A random strictly positive factor (entries in (0.1, 1.1))."""
        shape = tuple(domains[v] for v in variables)
        return cls(variables, rng.random(shape) + 0.1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def domain_size(self, variable: Node) -> int:
        """Domain size of ``variable`` (its axis length)."""
        return self.table.shape[self.variables.index(variable)]

    @property
    def num_entries(self) -> int:
        """Number of table entries (the memory cost of this factor)."""
        return int(self.table.size)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def align_to(self, variables: Sequence[Node], domains: Mapping[Node, int]) -> np.ndarray:
        """Return the table broadcast to the axis order ``variables``.

        ``variables`` must be a superset of the scope; missing axes are
        broadcast (size-1 then expanded implicitly by numpy ops).
        """
        target = tuple(variables)
        missing = [v for v in self.variables if v not in target]
        if missing:
            raise ValueError(f"target scope misses factor variables {missing}")
        # Move existing axes into target order, then insert new axes.
        permutation = sorted(
            range(len(self.variables)),
            key=lambda axis: target.index(self.variables[axis]),
        )
        table = np.transpose(self.table, permutation)
        shape = []
        cursor = 0
        for v in target:
            if v in self.variables:
                shape.append(table.shape[cursor])
                cursor += 1
            else:
                shape.append(1)
        # Size-1 axes broadcast in downstream numpy operations.
        return table.reshape(shape)

    def multiply(self, other: "Factor", domains: Mapping[Node, int]) -> "Factor":
        """Return the product factor over the union of scopes."""
        union = list(self.variables)
        for v in other.variables:
            if v not in self.variables:
                union.append(v)
        left = self.align_to(union, domains)
        right = other.align_to(union, domains)
        return Factor(union, left * right)

    def marginalize(self, variables: Iterable[Node]) -> "Factor":
        """Sum out ``variables`` from the scope."""
        drop = set(variables)
        unknown = drop - set(self.variables)
        if unknown:
            raise ValueError(f"cannot marginalise unknown variables {sorted(map(repr, unknown))}")
        axes = tuple(
            axis for axis, v in enumerate(self.variables) if v in drop
        )
        kept = tuple(v for v in self.variables if v not in drop)
        return Factor(kept, self.table.sum(axis=axes))

    def project_onto(self, variables: Iterable[Node]) -> "Factor":
        """Marginalise everything *except* ``variables``."""
        keep = set(variables)
        return self.marginalize([v for v in self.variables if v not in keep])

    def normalize(self) -> "Factor":
        """Return the factor scaled to sum to 1 (a distribution)."""
        total = self.table.sum()
        if total <= 0:
            raise ValueError("cannot normalise a zero factor")
        return Factor(self.variables, self.table / total)

    def total(self) -> float:
        """The sum of all entries."""
        return float(self.table.sum())

    def __repr__(self) -> str:
        return f"Factor(variables={self.variables!r}, entries={self.num_entries})"
