"""The separator graph as an SGR (system S14; paper Section 3.1.1).

``MSGraph`` for a graph g is the graph whose nodes are the minimal
separators of g and whose edges connect *crossing* separators.  Its
maximal independent sets are exactly the maximal pairwise-parallel
families of minimal separators, which Parra–Scheffler put in bijection
with the minimal triangulations of g (paper Theorem 4.1).

The three SGR components:

* ``A_V``  — :func:`repro.chordal.minimal_separators.minimal_separators`
  (polynomial delay, Berry et al.);
* ``A_E``  — :func:`repro.chordal.minimal_separators.are_crossing`
  (polynomial time);
* expansion — :func:`repro.core.extend.extend_parallel_set`
  (Figure 3 of the paper), parameterised by any triangulation
  heuristic.

Tractable expansion holds because a chordal graph has fewer minimal
separators than nodes (Rose; paper Corollary 4.3), so every
independent set of MSGraph has size < |V(g)|.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.chordal.minimal_separators import are_crossing, minimal_separators
from repro.chordal.triangulate import Triangulator, get_triangulator
from repro.core.extend import extend_parallel_set
from repro.graph.graph import Graph, Node
from repro.sgr.base import SuccinctGraphRepresentation

__all__ = ["MinimalSeparatorSGR"]

Separator = frozenset[Node]


class MinimalSeparatorSGR(SuccinctGraphRepresentation):
    """The SGR ``(Gms, Ams_V, Ams_E)`` of the paper, for one input graph.

    Parameters
    ----------
    graph:
        The input graph g.  Not copied; callers must not mutate it
        while the SGR is in use.
    triangulator:
        The heuristic plugged into the ``Extend`` expansion
        (``"mcs_m"``, ``"lb_triang"``, ``"min_fill"``, …).
    """

    def __init__(
        self, graph: Graph, triangulator: str | Triangulator = "mcs_m"
    ) -> None:
        self._graph = graph
        self._triangulator = get_triangulator(triangulator)

    @property
    def graph(self) -> Graph:
        """The underlying input graph g."""
        return self._graph

    @property
    def triangulator(self) -> Triangulator:
        """The triangulation heuristic used by :meth:`extend`."""
        return self._triangulator

    def iter_nodes(self) -> Iterator[Separator]:
        """Enumerate ``MinSep(g)`` with polynomial delay."""
        return minimal_separators(self._graph)

    def has_edge(self, u: Separator, v: Separator) -> bool:
        """Return whether two minimal separators cross (``u ♮ v``)."""
        return are_crossing(self._graph, u, v)

    def extend(self, independent_set: frozenset[Separator]) -> frozenset[Separator]:
        """Extend a pairwise-parallel family to a maximal one (Figure 3)."""
        return extend_parallel_set(self._graph, independent_set, self._triangulator)
