"""The separator graph as an SGR (system S14; paper Section 3.1.1).

``MSGraph`` for a graph g is the graph whose nodes are the minimal
separators of g and whose edges connect *crossing* separators.  Its
maximal independent sets are exactly the maximal pairwise-parallel
families of minimal separators, which Parra–Scheffler put in bijection
with the minimal triangulations of g (paper Theorem 4.1).

The three SGR components:

* ``A_V``  — :func:`repro.chordal.minimal_separators.minimal_separators`
  (polynomial delay, Berry et al.);
* ``A_E``  — :func:`repro.chordal.minimal_separators.are_crossing`
  (polynomial time);
* expansion — :func:`repro.core.extend.extend_parallel_set`
  (Figure 3 of the paper), parameterised by any triangulation
  heuristic.

Tractable expansion holds because a chordal graph has fewer minimal
separators than nodes (Rose; paper Corollary 4.3), so every
independent set of MSGraph has size < |V(g)|.

Performance
-----------
EnumMIS hammers the edge oracle: every direction step queries
``has_edge`` for each member of the current answer, and the same
separator pairs recur across answers.  This SGR therefore

* *interns* each separator frozenset to its vertex bitmask once,
* caches the connected components of ``g \\ S`` per separator (the
  expensive half of a crossing test), and
* memoizes ``has_edge`` under a canonical pair key (crossing is
  symmetric for minimal separators), exposing hit/miss counters
  through :class:`~repro.sgr.enum_mis.EnumMISStatistics`.

Repeated edge queries against the same separator pair are then free.

The caches are unbounded for the lifetime of the SGR — a deliberate
space-for-time trade: EnumMIS touches O(answers · |MinSep seen|) pairs,
and recomputing a crossing costs a full component decomposition.  For
multi-hour anytime runs on graphs with huge ``MinSep`` a size cap (or
dropping ``_components_of``, the larger of the caches) may be needed;
see the ROADMAP open item on enumeration backends.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.chordal.minimal_separators import minimal_separator_masks
from repro.chordal.triangulate import Triangulator, get_triangulator
from repro.core.extend import extend_parallel_set
from repro.graph.graph import Graph, Node
from repro.sgr.base import SuccinctGraphRepresentation
from repro.sgr.enum_mis import EnumMISStatistics

__all__ = ["MinimalSeparatorSGR"]

Separator = frozenset[Node]


class MinimalSeparatorSGR(SuccinctGraphRepresentation):
    """The SGR ``(Gms, Ams_V, Ams_E)`` of the paper, for one input graph.

    Parameters
    ----------
    graph:
        The input graph g.  Not copied; callers must not mutate it
        while the SGR is in use.
    triangulator:
        The heuristic plugged into the ``Extend`` expansion
        (``"mcs_m"``, ``"lb_triang"``, ``"min_fill"``, …).
    stats:
        Optional :class:`~repro.sgr.enum_mis.EnumMISStatistics` whose
        ``edge_cache_hits`` / ``edge_cache_misses`` counters are
        updated by the memoized edge oracle.
    """

    def __init__(
        self,
        graph: Graph,
        triangulator: str | Triangulator = "mcs_m",
        stats: EnumMISStatistics | None = None,
    ) -> None:
        self._graph = graph
        self._triangulator = get_triangulator(triangulator)
        self._stats = stats
        self._mask_of: dict[Separator, int] = {}
        self._components_of: dict[int, tuple[int, ...]] = {}
        self._edge_cache: dict[tuple[int, int], bool] = {}

    @property
    def graph(self) -> Graph:
        """The underlying input graph g."""
        return self._graph

    @property
    def triangulator(self) -> Triangulator:
        """The triangulation heuristic used by :meth:`extend`."""
        return self._triangulator

    @property
    def edge_cache_size(self) -> int:
        """Number of memoized separator-pair crossing results."""
        return len(self._edge_cache)

    @property
    def statistics(self) -> EnumMISStatistics | None:
        """The statistics object receiving cache counters, if any."""
        return self._stats

    def attach_statistics(self, stats: EnumMISStatistics | None) -> None:
        """Point the cache hit/miss counters at ``stats`` (or detach)."""
        self._stats = stats

    def _intern(self, separator: Separator) -> int:
        mask = self._mask_of.get(separator)
        if mask is None:
            mask = self._graph.mask_of(separator)
            self._mask_of[separator] = mask
        return mask

    def _components(self, separator_mask: int) -> tuple[int, ...]:
        components = self._components_of.get(separator_mask)
        if components is None:
            components = tuple(self._graph.core.components(separator_mask))
            self._components_of[separator_mask] = components
        return components

    def iter_nodes(self) -> Iterator[Separator]:
        """Enumerate ``MinSep(g)`` with polynomial delay.

        Separator masks are interned on the way out, so later
        ``has_edge`` calls on yielded separators skip the label → mask
        translation entirely.
        """
        graph = self._graph
        mask_cache = self._mask_of
        for mask in minimal_separator_masks(graph):
            separator = graph.label_set(mask)
            mask_cache[separator] = mask
            yield separator

    def has_edge(self, u: Separator, v: Separator) -> bool:
        """Return whether two minimal separators cross (``u ♮ v``).

        Memoized per canonical pair; the crossing relation is symmetric
        for minimal separators (Parra–Scheffler), so ``(u, v)`` and
        ``(v, u)`` share one cache entry.
        """
        mask_u = self._intern(u)
        mask_v = self._intern(v)
        key = (mask_u, mask_v) if mask_u <= mask_v else (mask_v, mask_u)
        cached = self._edge_cache.get(key)
        stats = self._stats
        if cached is not None:
            if stats is not None:
                stats.edge_cache_hits += 1
            return cached
        if stats is not None:
            stats.edge_cache_misses += 1
        result = self._crossing(mask_u, mask_v)
        self._edge_cache[key] = result
        return result

    def _crossing(self, mask_u: int, mask_v: int) -> bool:
        remainder = mask_v & ~mask_u
        if not remainder:
            return False
        touched = 0
        for component in self._components(mask_u):
            if component & remainder:
                touched += 1
                if touched >= 2:
                    return True
        return False

    def extend(self, independent_set: frozenset[Separator]) -> frozenset[Separator]:
        """Extend a pairwise-parallel family to a maximal one (Figure 3)."""
        return extend_parallel_set(self._graph, independent_set, self._triangulator)
