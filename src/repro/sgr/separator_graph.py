"""The separator graph as an SGR (system S14; paper Section 3.1.1).

``MSGraph`` for a graph g is the graph whose nodes are the minimal
separators of g and whose edges connect *crossing* separators.  Its
maximal independent sets are exactly the maximal pairwise-parallel
families of minimal separators, which Parra–Scheffler put in bijection
with the minimal triangulations of g (paper Theorem 4.1).

The three SGR components:

* ``A_V``  — :func:`repro.chordal.minimal_separators.minimal_separators`
  (polynomial delay, Berry et al.);
* ``A_E``  — :func:`repro.chordal.minimal_separators.are_crossing`
  (polynomial time);
* expansion — :func:`repro.core.extend.extend_parallel_set`
  (Figure 3 of the paper), parameterised by any triangulation
  heuristic.

Tractable expansion holds because a chordal graph has fewer minimal
separators than nodes (Rose; paper Corollary 4.3), so every
independent set of MSGraph has size < |V(g)|.

Performance
-----------
EnumMIS hammers the edge oracle: every direction step queries the
crossing relation for ``v`` against each member of the current answer,
and the same separator pairs recur across answers.  This SGR therefore

* *interns* each separator frozenset to its vertex bitmask once,
* caches the connected components of ``g \\ S`` per separator (the
  expensive half of a crossing test) — both as int masks and, once a
  batch query touches the separator, as a packed ``uint64`` word
  matrix (:mod:`repro.graph.bitset_np`),
* answers ``v``-versus-many queries through :meth:`has_edges_batch`,
  which resolves cached pairs with one dict probe each (zero when v
  has no cached pairs at all) and evaluates all remaining pairs in a
  single vectorized pass of
  :func:`repro.graph.bitset_np.crossing_batch` — no per-pair Python
  call, which is where the scalar oracle spends most of its time, and
* memoizes results per query node (``cache[id_v][id_u]``; ids are
  dense interned ints, so the hot loops never hash a |V|-bit mask) in
  a *bounded*, generation-capped cache, exposing hit/miss/eviction
  counters through :class:`~repro.sgr.enum_mis.EnumMISStatistics`.

The pair cache is two generations of at most ``edge_cache_limit``
entries each: inserts go to the current generation, a hit in the old
generation promotes the entry, and filling the current generation
drops the old one wholesale (counted as evictions).  Lookups stay O(1)
with no per-hit bookkeeping, recently used pairs survive rotation, and
the *pair-level* structure — the one that grows quadratically in the
separators touched, the space concern previously documented here as an
open trade-off — is capped.  (The per-separator tables — interning,
component tuples, packed matrices — still grow linearly with
``|MinSep seen|``; they are the price of the oracle itself, not of
memoization.)  An evicted pair is simply recomputed on its next query;
crossing is a pure function of the graph, so the answer can never
change.  Pass ``edge_cache_limit=None`` to restore the unbounded
behaviour.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.chordal.minimal_separators import (
    BATCH_KERNEL_MIN as _BATCH_KERNEL_MIN,
    minimal_separator_masks,
)
from repro.chordal.triangulate import Triangulator, get_triangulator
from repro.core.extend import extend_parallel_set
from repro.graph.graph import Graph, Node
from repro.sgr.base import SuccinctGraphRepresentation
from repro.sgr.enum_mis import EnumMISStatistics

try:  # pragma: no cover - exercised implicitly by every batch query
    from repro.graph import bitset_np as _kernel
except ImportError:  # numpy unavailable: batch queries fall back to scalar
    _kernel = None  # type: ignore[assignment]

__all__ = ["MinimalSeparatorSGR", "DEFAULT_EDGE_CACHE_LIMIT"]

Separator = frozenset[Node]

#: Per-generation cap of the crossing memo cache (two generations may
#: be live at once).  Roughly 100 bytes per entry, so the default
#: bounds the cache near a few hundred MB in the worst case while
#: being far larger than any run that fits in a workday.
DEFAULT_EDGE_CACHE_LIMIT = 1 << 20

class MinimalSeparatorSGR(SuccinctGraphRepresentation):
    """The SGR ``(Gms, Ams_V, Ams_E)`` of the paper, for one input graph.

    Parameters
    ----------
    graph:
        The input graph g.  Not copied; callers must not mutate it
        while the SGR is in use.
    triangulator:
        The heuristic plugged into the ``Extend`` expansion
        (``"mcs_m"``, ``"lb_triang"``, ``"min_fill"``, …).
    stats:
        Optional :class:`~repro.sgr.enum_mis.EnumMISStatistics` whose
        ``edge_cache_hits`` / ``edge_cache_misses`` /
        ``edge_cache_evictions`` counters are updated by the memoized
        edge oracle.
    edge_cache_limit:
        Per-generation entry cap of the crossing-pair cache (``None``
        for unbounded).  Must be positive when given.
    """

    def __init__(
        self,
        graph: Graph,
        triangulator: str | Triangulator = "mcs_m",
        stats: EnumMISStatistics | None = None,
        edge_cache_limit: int | None = DEFAULT_EDGE_CACHE_LIMIT,
    ) -> None:
        if edge_cache_limit is not None and edge_cache_limit <= 0:
            raise ValueError(
                f"edge_cache_limit must be positive or None, "
                f"got {edge_cache_limit!r}"
            )
        self._graph = graph
        self._triangulator = get_triangulator(triangulator)
        self._stats = stats
        # Interning: each separator gets a dense small id; masks are
        # looked up by id, and the pair cache is keyed id → id so the
        # hot loops hash machine ints, never |V|-bit masks.
        self._sep_id: dict[Separator, int] = {}
        self._id_mask: list[int] = []
        # id → packed uint64 row of the separator mask (kernel builds
        # batch remainders by fancy-indexing this matrix, no per-pair
        # int→bytes conversion); grown geometrically on intern.
        self._mask_matrix = None
        self._components_of: dict[int, tuple[int, ...]] = {}
        # separator mask → packed (k, words) component matrix; built on
        # first batch query against the separator.
        self._packed_components: dict[int, object] = {}
        # The memoized crossing results, stored per *query node*:
        # ``cache[id_v][id_u]`` is the answer of a (v, u) query.  Two
        # generations bound the size: inserts go to the current one,
        # old-generation hits are promoted, and once ``_edge_entries``
        # reaches the limit the old generation is dropped wholesale.
        self._edge_cache_limit = edge_cache_limit
        self._edge_cache: dict[int, dict[int, bool]] = {}
        self._edge_cache_old: dict[int, dict[int, bool]] = {}
        self._edge_entries = 0
        self._edge_entries_old = 0
        self._words = (
            _kernel.word_count(len(graph.core.adj))
            if _kernel is not None
            else 0
        )

    @property
    def graph(self) -> Graph:
        """The underlying input graph g."""
        return self._graph

    @property
    def triangulator(self) -> Triangulator:
        """The triangulation heuristic used by :meth:`extend`."""
        return self._triangulator

    @property
    def edge_cache_size(self) -> int:
        """Memoized crossing results currently held (both generations).

        An upper bound: a pair promoted from the old generation is
        briefly counted in both.
        """
        return self._edge_entries + self._edge_entries_old

    @property
    def edge_cache_limit(self) -> int | None:
        """The per-generation entry cap (``None`` = unbounded)."""
        return self._edge_cache_limit

    @property
    def statistics(self) -> EnumMISStatistics | None:
        """The statistics object receiving cache counters, if any."""
        return self._stats

    def attach_statistics(self, stats: EnumMISStatistics | None) -> None:
        """Point the cache hit/miss counters at ``stats`` (or detach)."""
        self._stats = stats

    def _intern_id(self, separator: Separator, mask: int | None = None) -> int:
        """Return the dense id of ``separator``, interning it if new."""
        sep_id = self._sep_id.get(separator)
        if sep_id is None:
            if mask is None:
                mask = self._graph.mask_of(separator)
            sep_id = len(self._id_mask)
            self._sep_id[separator] = sep_id
            self._id_mask.append(mask)
            if _kernel is not None:
                matrix = self._mask_matrix
                if matrix is None or sep_id >= matrix.shape[0]:
                    matrix = self._grow_matrix(sep_id)
                matrix[sep_id] = _kernel.pack_mask(mask, self._words)
        return sep_id

    def _grow_matrix(self, sep_id: int):
        old = self._mask_matrix
        capacity = 256 if old is None else old.shape[0]
        while capacity <= sep_id:
            capacity *= 2
        matrix = _kernel.zero_matrix(capacity, self._words)
        if old is not None:
            matrix[: old.shape[0]] = old
        self._mask_matrix = matrix
        return matrix

    def _intern(self, separator: Separator) -> int:
        return self._id_mask[self._intern_id(separator)]

    def _components(self, separator_mask: int) -> tuple[int, ...]:
        components = self._components_of.get(separator_mask)
        if components is None:
            components = tuple(self._graph.core.components(separator_mask))
            self._components_of[separator_mask] = components
        return components

    def _components_packed(self, separator_mask: int):
        """The ``(k, words)`` packed component matrix of ``g \\ S``."""
        packed = self._packed_components.get(separator_mask)
        if packed is None:
            packed = _kernel.pack_masks(
                self._components(separator_mask), self._words
            )
            self._packed_components[separator_mask] = packed
        return packed

    # ------------------------------------------------------------------
    # The bounded pair cache
    # ------------------------------------------------------------------

    def _maybe_rotate(self) -> None:
        limit = self._edge_cache_limit
        if limit is not None and self._edge_entries >= limit:
            if self._edge_entries_old and self._stats is not None:
                self._stats.edge_cache_evictions += self._edge_entries_old
            self._edge_cache_old = self._edge_cache
            self._edge_entries_old = self._edge_entries
            self._edge_cache = {}
            self._edge_entries = 0

    # ------------------------------------------------------------------
    # SGR interface
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterator[Separator]:
        """Enumerate ``MinSep(g)`` with polynomial delay.

        Separator masks are interned on the way out, so later
        ``has_edge`` calls on yielded separators skip the label → mask
        translation entirely.
        """
        graph = self._graph
        for mask in minimal_separator_masks(graph):
            separator = graph.label_set(mask)
            self._intern_id(separator, mask)
            yield separator

    def has_edge(self, u: Separator, v: Separator) -> bool:
        """Return whether two minimal separators cross (``u ♮ v``).

        Memoized under the first argument's id (crossing is symmetric
        for minimal separators — Parra–Scheffler — so the result is the
        same either way; EnumMIS always queries direction-node first,
        which is exactly the layout the batch oracle shares).  This
        scalar oracle is the reference the batch oracle is tested
        against.
        """
        id_u = self._intern_id(u)
        id_v = self._intern_id(v)
        row = self._edge_cache.get(id_u)
        cached = row.get(id_v) if row is not None else None
        stats = self._stats
        if cached is None:
            old_row = self._edge_cache_old.get(id_u)
            if old_row is not None:
                cached = old_row.get(id_v)
        if cached is None:
            # Crossing is symmetric: before recomputing, check the
            # reversed orientation (cached when v earlier served as the
            # query node of this pair).
            cached = self._reverse_lookup(id_v, id_u)
        if cached is not None:
            if stats is not None:
                stats.edge_cache_hits += 1
            if row is None or id_v not in row:
                # Promote old-generation / reversed hits so they are
                # found first next time and survive rotation.
                if row is None:
                    row = self._edge_cache[id_u] = {}
                row[id_v] = cached
                self._edge_entries += 1
                self._maybe_rotate()
            return cached
        if stats is not None:
            stats.edge_cache_misses += 1
        id_mask = self._id_mask
        result = self._crossing(id_mask[id_u], id_mask[id_v])
        if row is None:
            row = self._edge_cache[id_u] = {}
        row[id_v] = result
        self._edge_entries += 1
        self._maybe_rotate()
        return result

    def _reverse_lookup(self, id_v: int, id_u: int) -> bool | None:
        """The (id_v, id_u) orientation of a pair, from either generation."""
        rev = self._edge_cache.get(id_v)
        cached = rev.get(id_u) if rev is not None else None
        if cached is None:
            rev = self._edge_cache_old.get(id_v)
            if rev is not None:
                cached = rev.get(id_u)
        return cached

    def has_edges_batch(
        self, v: Separator, candidates: Sequence[Separator]
    ) -> list[bool]:
        """Batched edge oracle: does ``v`` cross each of ``candidates``?

        Semantically identical to ``[has_edge(v, u) for u in
        candidates]`` — same memo cache, same counters (one hit or miss
        per candidate) — but the per-pair Python work is one dict probe
        against ``v``'s cache row (zero probes when v has no cached
        pairs at all, the common case when a new SGR node arrives), and
        every uncached pair is evaluated in a single vectorized pass
        over the packed component matrix of ``g \\ v``
        (:func:`repro.graph.bitset_np.crossing_batch`) instead of one
        component-walk call each.  This is the kernel behind the
        EnumMIS direction step, which is exactly a
        ``v``-versus-answer-members sweep.

        The generation rotation of the bounded cache is checked once
        per call rather than once per insert, so the current generation
        may briefly overshoot ``edge_cache_limit`` by one batch.  When
        ``v`` has no cache row at all, the sweep skips per-pair probes
        entirely — including reversed-orientation ones — and recomputes
        the whole batch in the kernel; that is bounded duplicate work
        (crossing is pure, answers cannot change), traded for the
        zero-probe fast path on fresh direction nodes.
        """
        id_v = self._intern_id(v)
        sep_get = self._sep_id.get
        ids = [sep_get(u) for u in candidates]
        if None in ids:
            ids = [
                self._intern_id(u) if i is None else i
                for i, u in zip(ids, candidates)
            ]
        stats = self._stats
        row = self._edge_cache.get(id_v)
        old_row = self._edge_cache_old.get(id_v)
        if row is None and old_row is None:
            # Nothing cached for v: pure kernel sweep, no per-pair probes.
            results = self._crossing_many(id_v, ids)
            self._edge_cache[id_v] = dict(zip(ids, results))
            self._edge_entries += len(ids)
            if stats is not None:
                stats.edge_cache_misses += len(ids)
            self._maybe_rotate()
            return results
        if row is None:
            row = self._edge_cache[id_v] = {}
        row_get = row.get
        old_get = old_row.get if old_row is not None else None
        results = []
        append = results.append
        miss_at: list[int] = []
        miss_ids: list[int] = []
        promoted = 0
        reverse_lookup = self._reverse_lookup
        for i, id_u in enumerate(ids):
            cached = row_get(id_u)
            if cached is None:
                if old_get is not None:
                    cached = old_get(id_u)
                if cached is None:
                    # Symmetric relation: the pair may be cached under
                    # the candidate's own row from an earlier sweep.
                    cached = reverse_lookup(id_u, id_v)
                if cached is None:
                    miss_at.append(i)
                    miss_ids.append(id_u)
                    append(False)  # placeholder, filled below
                    continue
                row[id_u] = cached  # promote so v's row finds it first
                promoted += 1
            append(cached)
        if stats is not None:
            stats.edge_cache_hits += len(ids) - len(miss_at)
            stats.edge_cache_misses += len(miss_at)
        if miss_at:
            crossed = self._crossing_many(id_v, miss_ids)
            for i, id_u, result in zip(miss_at, miss_ids, crossed):
                row[id_u] = result
                results[i] = result
        self._edge_entries += promoted + len(miss_at)
        self._maybe_rotate()
        return results

    def _crossing_many(self, id_v: int, ids: list[int]) -> list[bool]:
        """Compute v-versus-ids crossings, vectorized when worthwhile."""
        id_mask = self._id_mask
        mask_v = id_mask[id_v]
        if _kernel is None or len(ids) < _BATCH_KERNEL_MIN:
            crossing = self._crossing
            return [crossing(mask_v, id_mask[i]) for i in ids]
        components = self._components_packed(mask_v)
        matrix = self._mask_matrix
        ns = _kernel.kernels_for(self._graph.core)
        if hasattr(ns, "crossing_batch_gather"):
            # Every shipped tier exposes the gathered sweep (parity is
            # machine-checked by `repro analyze`): the native kernel
            # fuses gather+ANDN+test in one C pass, the numpy twin
            # materialises the ``matrix[ids] & ~row_v`` remainders.
            # The hasattr guard keeps bare mock namespaces working.
            return ns.crossing_batch_gather(components, matrix, ids, id_v)
        remainders = matrix[ids] & ~matrix[id_v]
        return ns.crossing_batch(components, remainders).tolist()

    def _crossing(self, mask_u: int, mask_v: int) -> bool:
        remainder = mask_v & ~mask_u
        if not remainder:
            return False
        touched = 0
        for component in self._components(mask_u):
            if component & remainder:
                touched += 1
                if touched >= 2:
                    return True
        return False

    def extend(self, independent_set: frozenset[Separator]) -> frozenset[Separator]:
        """Extend a pairwise-parallel family to a maximal one (Figure 3)."""
        return extend_parallel_set(self._graph, independent_set, self._triangulator)
