"""Succinct graph representations and the EnumMIS enumeration algorithm."""

from repro.sgr.base import ExplicitSGR, SuccinctGraphRepresentation
from repro.sgr.enum_mis import EnumMISStatistics, enumerate_maximal_independent_sets
from repro.sgr.reverse_search import poly_space_maximal_independent_sets
from repro.sgr.separator_graph import MinimalSeparatorSGR
from repro.sgr.seth import KSatSGR

__all__ = [
    "SuccinctGraphRepresentation",
    "ExplicitSGR",
    "MinimalSeparatorSGR",
    "enumerate_maximal_independent_sets",
    "EnumMISStatistics",
    "poly_space_maximal_independent_sets",
    "KSatSGR",
]
