"""The SETH lower-bound SGR of the paper's Section 3.3 (Proposition 3.6).

The paper proves that EnumMIS's incremental-polynomial-time bound is
tight: no algorithm enumerates the maximal independent sets of every
tractably accessible SGR with tractable expansion in *polynomial
delay*, unless the Strong Exponential Time Hypothesis fails.  The proof
constructs, from a k-SAT formula φ over variables x₁…x_n (n even), the
following graph G(φ):

* ``VA`` — one node per assignment of the first n/2 variables;
* ``VB`` — one node per assignment of the last n/2 variables;
* two apex nodes ``⊥A`` and ``⊥B``;
* VA and VB are cliques; ⊥A connects to all of VA, ⊥B to all of VB,
  and ⊥A—⊥B is an edge;
* a ∈ VA and b ∈ VB are adjacent iff the combined assignment
  **falsifies** φ.

Its maximal independent sets are exactly ``{a, ⊥B}``, ``{b, ⊥A}`` and
``{a, b}`` for every *satisfying* combined assignment — so φ is
satisfiable iff G(φ) has more than ``2^(n/2 + 1)`` maximal independent
sets, and a polynomial-delay enumerator would decide k-SAT in
``2^(n/2) · poly`` time for every k, contradicting SETH.

This module implements the construction faithfully so that the
reduction itself is testable: :class:`KSatSGR` is a tractably
accessible SGR with tractable expansion whose ``MaxInd`` is computed by
the library's own EnumMIS, and the satisfiability criterion is checked
against brute-force SAT on small formulas.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.sgr.base import SuccinctGraphRepresentation

__all__ = ["KSatSGR", "Clause", "evaluate_formula"]

# A literal is a non-zero int: +i means x_i, -i means ¬x_i (1-based).
Clause = tuple[int, ...]

# Node encodings: ("A", bits...) / ("B", bits...) and the two apexes.
BOTTOM_A = ("bottomA",)
BOTTOM_B = ("bottomB",)


def evaluate_formula(
    clauses: Sequence[Clause], assignment: Sequence[int]
) -> bool:
    """Evaluate a CNF over a full 0/1 assignment (1-based variables)."""
    for clause in clauses:
        satisfied = False
        for literal in clause:
            index = abs(literal) - 1
            value = assignment[index] == 1
            if (literal > 0) == value:
                satisfied = True
                break
        if not satisfied:
            return False
    return True


class KSatSGR(SuccinctGraphRepresentation):
    """The SGR ``G(φ)`` of Proposition 3.6 for a k-SAT formula φ.

    Parameters
    ----------
    num_variables:
        The (even, ≥ 2) number of propositional variables.
    clauses:
        CNF clauses as tuples of non-zero 1-based literals.
    """

    def __init__(self, num_variables: int, clauses: Sequence[Clause]) -> None:
        if num_variables < 2 or num_variables % 2 != 0:
            raise ValueError("the construction needs an even n >= 2")
        for clause in clauses:
            for literal in clause:
                if literal == 0 or abs(literal) > num_variables:
                    raise ValueError(f"literal {literal} out of range")
        self.num_variables = num_variables
        self.clauses = [tuple(clause) for clause in clauses]
        self._half = num_variables // 2

    # ------------------------------------------------------------------
    # SGR interface
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterator[tuple]:
        """Constant-delay node enumeration: VA, VB, then the apexes."""
        for side in ("A", "B"):
            for bits in self._assignments():
                yield (side, *bits)
        yield BOTTOM_A
        yield BOTTOM_B

    def has_edge(self, u: tuple, v: tuple) -> bool:
        """The edge oracle: polynomial via one formula evaluation."""
        if u == v:
            return False
        kind_u, kind_v = self._kind(u), self._kind(v)
        pair = {kind_u, kind_v}
        if pair == {"bottomA", "bottomB"}:
            return True
        if pair == {"A"} or pair == {"B"}:
            return True  # VA and VB are cliques
        if pair == {"A", "bottomA"} or pair == {"B", "bottomB"}:
            return True
        if pair == {"A", "B"}:
            a = u if kind_u == "A" else v
            b = v if kind_u == "A" else u
            assignment = list(a[1:]) + list(b[1:])
            return not evaluate_formula(self.clauses, assignment)
        return False

    def extend(self, independent_set: frozenset) -> frozenset:
        """The tractable expansion from the proof.

        Every maximal independent set has exactly two nodes; singletons
        are completed with the opposite apex (or, for an apex, with any
        compatible assignment node), and the empty set with
        ``{⊥A, ⊥B}``-avoiding defaults.
        """
        members = sorted(independent_set, key=repr)
        if len(members) >= 2:
            return frozenset(members[:2]) | independent_set
        if not members:
            first = ("A", *([0] * self._half))
            return frozenset({first, BOTTOM_B})
        (node,) = members
        kind = self._kind(node)
        if kind == "A":
            return frozenset({node, BOTTOM_B})
        if kind == "B":
            return frozenset({node, BOTTOM_A})
        if kind == "bottomA":
            partner = ("B", *([0] * self._half))
            return frozenset({node, partner})
        partner = ("A", *([0] * self._half))
        return frozenset({node, partner})

    # ------------------------------------------------------------------
    # Reduction facts (testable)
    # ------------------------------------------------------------------

    def satisfiability_threshold(self) -> int:
        """φ is satisfiable iff |MaxInd(G(φ))| exceeds this (= 2^(n/2+1))."""
        return 2 ** (self._half + 1)

    def is_satisfiable_via_enumeration(self) -> bool:
        """Decide satisfiability by counting maximal independent sets.

        This is exactly the argument of Proposition 3.6: count up to
        threshold + 1 answers of the library's own EnumMIS.
        """
        from repro.sgr.enum_mis import enumerate_maximal_independent_sets

        threshold = self.satisfiability_threshold()
        count = 0
        for __ in enumerate_maximal_independent_sets(self):
            count += 1
            if count > threshold:
                return True
        return False

    def brute_force_satisfiable(self) -> bool:
        """Direct SAT check over all 2^n assignments (test oracle)."""
        import itertools

        for assignment in itertools.product((0, 1), repeat=self.num_variables):
            if evaluate_formula(self.clauses, assignment):
                return True
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _assignments(self) -> Iterator[tuple[int, ...]]:
        import itertools

        yield from itertools.product((0, 1), repeat=self._half)

    @staticmethod
    def _kind(node: tuple) -> str:
        return node[0]
