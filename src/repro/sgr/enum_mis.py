"""EnumMIS: maximal independent sets of an SGR (system S13; paper Figure 1).

This is the paper's central algorithm (Theorem 3.1): given a tractably
accessible SGR with a tractable expansion, enumerate the maximal
independent sets of the represented graph in **incremental polynomial
time** — the time to produce the (N+1)-st answer is polynomial in the
input size and N.

The algorithm maintains

* ``Q`` — answers produced but not yet processed,
* ``P`` — processed answers,
* ``V`` — the SGR nodes generated so far by the node iterator.

Each popped answer J is extended *in the direction of* every known
node v (``Jv = {v} ∪ {u ∈ J : ¬edge(v, u)}`` completed by ``extend``);
when Q runs dry, new nodes are pulled from the iterator and all past
answers are revisited in the direction of each new node — the twist
that lets the algorithm run without ever materialising the node set.

Two printing disciplines are supported (paper Section 3.2.2 and the
Figure 8 experiment):

* ``mode="UG"`` (*Upon Generation*, algorithm ``EnumMIS``) — an answer
  is yielded the moment it is first constructed;
* ``mode="UP"`` (*Upon Pop*, algorithm ``EnumMISHold``) — an answer is
  yielded when it is popped from Q for processing, which is the
  discipline under which incremental polynomial time is proven
  (Lemma 3.3); Theorem 3.4 then transfers the bound to UG.

Both modes enumerate exactly ``MaxInd(G(x))`` with no duplicates.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field

from repro.sgr.base import SGRNode, SuccinctGraphRepresentation

__all__ = [
    "enumerate_maximal_independent_sets",
    "EnumMISStatistics",
    "merge_statistics",
]


@dataclass
class EnumMISStatistics:
    """Counters exposed for the ablation benchmarks (E10 in DESIGN.md).

    An instance may be passed to
    :func:`enumerate_maximal_independent_sets`, which updates it in
    place while running.

    Besides the event counters, three *stage timers* break the run down
    into its pipeline stages, in integer nanoseconds: ``extend_time_ns``
    (the ``Extend`` triangulation), ``crossing_time_ns`` (the direction
    edge-oracle sweeps) and ``ipc_time_ns`` (everything a task batch
    spends off-CPU between the sharded coordinator and its workers —
    pickling, transport, and queueing behind other in-flight batches;
    ~0 for in-process execution).  ``ipc_time_ns`` sums per-batch
    round-trip − compute over batches that are deliberately pipelined
    several deep per worker, so concurrent waits overlap and the total
    can exceed the run's wall clock — it is a queueing-theory quantity
    (mean off-CPU latency × batch count), not a share of elapsed time.
    The serial pipeline and the sharded workers fill the same fields,
    so serial-vs-sharded comparisons share a vocabulary, and the
    sharded coordinator's adaptive batcher feeds on the same
    measurements it reports.  ``ipc_payload_bytes`` /
    ``batches_dispatched`` / ``batch_roundtrip_ns`` size the wire
    traffic behind ``ipc_time_ns``.
    """

    extend_calls: int = 0
    edge_oracle_calls: int = 0
    nodes_generated: int = 0
    answers: int = 0
    duplicates_suppressed: int = 0
    # Maintained by SGRs with a memoized edge oracle (e.g. the
    # separator-graph SGR's bounded canonical-pair crossing cache).
    edge_cache_hits: int = 0
    edge_cache_misses: int = 0
    edge_cache_evictions: int = 0
    # Stage timers (ns) and sharded-engine wire accounting.
    extend_time_ns: int = 0
    crossing_time_ns: int = 0
    ipc_time_ns: int = 0
    ipc_payload_bytes: int = 0
    batches_dispatched: int = 0
    batch_roundtrip_ns: int = 0
    # Runner-level fleet accounting (the distributed transport): how
    # many workers joined and were lost over the run, and how many
    # dispatched batches had to be requeued off a dead/timed-out host.
    worker_joins: int = 0
    worker_losses: int = 0
    batches_requeued: int = 0
    # Supervised-execution accounting: batches re-dispatched after a
    # failure (owner death or a typed BATCH_FAILED abort), batches that
    # exhausted their retry budget and were quarantined to the serial
    # in-process fallback, the answers those quarantined batches
    # carried, and handshakes the coordinator rejected (malformed HELLO
    # or a version/format mismatch — a bad worker build knocking).
    batch_retries: int = 0
    batches_quarantined: int = 0
    poison_answers: int = 0
    protocol_rejections: int = 0
    redundant_extensions: dict[str, int] = field(default_factory=dict)
    # Graph-kernel tier → batches executed on that tier, filled by the
    # workers (process-pool and socket alike).  A mixed-tier fleet —
    # e.g. one host whose native extension failed to build degrading to
    # numpy — is visible here instead of silently skewing timings.
    kernel_tiers: dict[str, int] = field(default_factory=dict)

    #: Every scalar counter, in snapshot order.  snapshot/add/restore
    #: iterate this single list so a newly added counter cannot be
    #: summed but silently dropped from checkpoints (or vice versa).
    _SCALAR_FIELDS = (
        "extend_calls",
        "edge_oracle_calls",
        "nodes_generated",
        "answers",
        "duplicates_suppressed",
        "edge_cache_hits",
        "edge_cache_misses",
        "edge_cache_evictions",
        "extend_time_ns",
        "crossing_time_ns",
        "ipc_time_ns",
        "ipc_payload_bytes",
        "batches_dispatched",
        "batch_roundtrip_ns",
        "worker_joins",
        "worker_losses",
        "batches_requeued",
        "batch_retries",
        "batches_quarantined",
        "poison_answers",
        "protocol_rejections",
    )

    #: Map-valued counters ({str: int}), handled alongside the scalars
    #: by snapshot/add/restore (merged key-wise rather than summed).
    _MAP_FIELDS = (
        "redundant_extensions",
        "kernel_tiers",
    )

    def snapshot(self) -> dict:
        """Return the counters as a plain (JSON-safe) dict.

        Map-valued counters are copied, so mutating the live object
        after snapshotting does not corrupt a saved checkpoint.
        """
        counters = {name: getattr(self, name) for name in self._SCALAR_FIELDS}
        for name in self._MAP_FIELDS:
            counters[name] = dict(getattr(self, name))
        return counters

    def add(self, other: "EnumMISStatistics") -> None:
        """Accumulate another statistics object into this one, in place.

        Scalar counters are summed and ``redundant_extensions`` maps are
        merged key-wise.  This is how the sharded enumeration engine
        folds per-worker counters into the run's aggregate report (the
        stage timers sum too: each records CPU-stage time that elapsed
        in exactly one worker or in the coordinator).
        """
        for name in self._SCALAR_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in self._MAP_FIELDS:
            mine = getattr(self, name)
            for key, value in getattr(other, name).items():
                mine[key] = mine.get(key, 0) + value

    def restore(self, counters: dict) -> None:
        """Overwrite the counters from a :meth:`snapshot` dict.

        Unknown keys are ignored and missing keys leave the current
        value untouched, so old checkpoints stay loadable after new
        counters are added (and new checkpoints degrade gracefully on
        old code).  The map-valued counters (``redundant_extensions``,
        ``kernel_tiers``) round-trip too; ``redundant_extensions`` used
        to be silently dropped here, which lost it across engine
        checkpoint/resume.
        """
        for key in self._SCALAR_FIELDS:
            if key in counters:
                setattr(self, key, counters[key])
        for key in self._MAP_FIELDS:
            value = counters.get(key)
            if value is not None:
                setattr(self, key, dict(value))


def merge_statistics(parts: Iterable[EnumMISStatistics]) -> EnumMISStatistics:
    """Return a new statistics object aggregating ``parts``.

    The aggregate of per-worker counters from a sharded run is the
    plain sum: every counter is a count of events that happened in
    exactly one worker (or in the coordinator).
    """
    total = EnumMISStatistics()
    for part in parts:
        total.add(part)
    return total


class _AnswerQueue:
    """The collection Q of Figure 1: FIFO by default, a min-heap when a
    priority function is supplied.

    The paper's correctness and incremental-polynomial-time proofs make
    no assumption about the order in which Q is drained ("we make no
    assumptions about the order of removal in Q", Section 3.2.2), so a
    best-first discipline preserves every guarantee while steering the
    traversal toward low-cost answers first.
    """

    def __init__(
        self, priority: Callable[[frozenset[SGRNode]], object] | None
    ) -> None:
        self._priority = priority
        self._fifo: deque[frozenset[SGRNode]] = deque()
        self._heap: list[tuple[object, int, frozenset[SGRNode]]] = []
        self._tiebreak = itertools.count()

    def push(self, answer: frozenset[SGRNode]) -> None:
        if self._priority is None:
            self._fifo.append(answer)
        else:
            heapq.heappush(
                self._heap, (self._priority(answer), next(self._tiebreak), answer)
            )

    def pop(self) -> frozenset[SGRNode]:
        if self._priority is None:
            return self._fifo.popleft()
        return heapq.heappop(self._heap)[2]

    def items(self) -> list[frozenset[SGRNode]]:
        """Return the queued answers without draining (for checkpoints)."""
        if self._priority is None:
            return list(self._fifo)
        return [entry[2] for entry in self._heap]

    def __len__(self) -> int:
        return len(self._fifo) + len(self._heap)


def enumerate_maximal_independent_sets(
    sgr: SuccinctGraphRepresentation,
    mode: str = "UG",
    stats: EnumMISStatistics | None = None,
    priority: Callable[[frozenset[SGRNode]], object] | None = None,
) -> Iterator[frozenset[SGRNode]]:
    """Enumerate ``MaxInd(G(x))`` for the given SGR (paper Figure 1).

    Parameters
    ----------
    sgr:
        The succinct graph representation; must be tractably accessible
        with a tractable expansion for the incremental-polynomial-time
        guarantee (correctness only needs the contracts of
        :class:`~repro.sgr.base.SuccinctGraphRepresentation`).
    mode:
        ``"UG"`` yields answers upon generation (EnumMIS), ``"UP"``
        upon removal from the queue (EnumMISHold).
    stats:
        Optional counter object updated in place.
    priority:
        Optional cost function over answers; when given, Q is drained
        best-first, biasing the traversal toward low-cost answers.
        Completeness, duplicate-freedom and incremental polynomial
        time are unaffected (the paper's proofs are pop-order
        agnostic); the output order is *heuristically* — not provably —
        cost-increasing.

    Yields
    ------
    frozenset
        Every maximal independent set of G(x), exactly once.
    """
    if mode not in {"UG", "UP"}:
        raise ValueError(f"mode must be 'UG' or 'UP', got {mode!r}")
    if stats is None:
        stats = EnumMISStatistics()
    # SGRs with a memoized edge oracle report cache hits/misses through
    # the same statistics object as every other counter of this run, so
    # one snapshot() is always internally consistent — even when the
    # SGR is reused across enumerations with different stats objects.
    attach = getattr(sgr, "attach_statistics", None)
    if attach is not None:
        attach(stats)
    clock = time.perf_counter_ns

    def extend(independent: frozenset[SGRNode]) -> frozenset[SGRNode]:
        stats.extend_calls += 1
        started = clock()
        extended = sgr.extend(independent)
        stats.extend_time_ns += clock() - started
        return extended

    # The direction step is a v-versus-many edge-oracle sweep; SGRs
    # exposing a batched oracle (the separator-graph SGR's vectorized
    # crossing kernel) answer it in one call instead of |J| calls.
    has_edges_batch = getattr(sgr, "has_edges_batch", None)

    def direction(answer: frozenset[SGRNode], v: SGRNode) -> frozenset[SGRNode]:
        members = list(answer)
        stats.edge_oracle_calls += len(members)
        started = clock()
        if has_edges_batch is not None:
            crossed = has_edges_batch(v, members)
            kept = {u for u, edge in zip(members, crossed) if not edge}
        else:
            kept = {u for u in members if not sgr.has_edge(v, u)}
        stats.crossing_time_ns += clock() - started
        kept.add(v)
        return frozenset(kept)

    first = extend(frozenset())
    stats.answers += 1
    if mode == "UG":
        yield first

    queue = _AnswerQueue(priority)
    queue.push(first)
    in_queue: set[frozenset[SGRNode]] = {first}
    processed: set[frozenset[SGRNode]] = set()
    known_nodes: list[SGRNode] = []
    node_iterator = sgr.iter_nodes()
    iterator_exhausted = False

    while queue:
        answer = queue.pop()
        in_queue.discard(answer)
        if mode == "UP":
            yield answer
        processed.add(answer)

        for v in known_nodes:
            candidate = direction(answer, v)
            extended = extend(candidate)
            if extended not in in_queue and extended not in processed:
                stats.answers += 1
                if mode == "UG":
                    yield extended
                queue.push(extended)
                in_queue.add(extended)
            else:
                stats.duplicates_suppressed += 1

        while not queue and not iterator_exhausted:
            try:
                v = next(node_iterator)
            except StopIteration:
                iterator_exhausted = True
                break
            stats.nodes_generated += 1
            known_nodes.append(v)
            for past in list(processed):
                candidate = direction(past, v)
                extended = extend(candidate)
                if extended not in in_queue and extended not in processed:
                    stats.answers += 1
                    if mode == "UG":
                        yield extended
                    queue.push(extended)
                    in_queue.add(extended)
                else:
                    stats.duplicates_suppressed += 1
