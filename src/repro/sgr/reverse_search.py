"""Polynomial-space enumeration of maximal independent sets (Section 3.4).

The paper's space-usage discussion (Section 3.4) notes that EnumMIS
needs exponential space in the worst case — it remembers all produced
answers — while *explicit* graphs admit polynomial-delay,
polynomial-space enumerators (reverse search, Conte et al., proximity
search); it is open how to adapt them to SGRs whose node set is not
known upfront.

To make that trade-off concrete (and testable) this module implements
the classical **Tsukiyama–Ide–Ariyoshi–Shirakawa** scheme, the
archetype of those algorithms: process the vertices in a fixed order
``v₁ … v_n`` and observe that the maximal independent sets of the
graphs ``G_i`` induced by growing prefixes form a tree —

* if ``v_{i+1}`` has no neighbour in an MIS ``I`` of ``G_i``, the only
  MIS of ``G_{i+1}`` over I is ``I ∪ {v_{i+1}}``;
* otherwise ``I`` itself stays maximal, and the *candidate*
  ``J = (I \\ N(v_{i+1})) ∪ {v_{i+1}}`` is emitted as a second child
  exactly when (a) J is maximal in ``G_{i+1}`` and (b) the greedy
  completion of ``J \\ {v_{i+1}}`` inside ``G_i`` re-creates ``I`` —
  the uniqueness test that gives every answer a single parent.

Depth-first traversal of that tree needs memory only for the current
root-to-leaf path: O(n²) space, polynomial delay, every maximal
independent set of ``G = G_n`` exactly once.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.graph import Graph, Node, _sort_nodes

__all__ = ["poly_space_maximal_independent_sets"]


def poly_space_maximal_independent_sets(
    graph: Graph,
) -> Iterator[frozenset[Node]]:
    """Enumerate all maximal independent sets with polynomial space.

    Unlike :func:`repro.sgr.enum_mis.enumerate_maximal_independent_sets`
    this never stores the answer set — memory is quadratic in |V| — but
    it requires the whole graph upfront, which is exactly what the
    separator-graph SGR cannot provide (the paper's open question).
    """
    nodes = _sort_nodes(graph.node_set())
    n = len(nodes)
    if n == 0:
        yield frozenset()
        return
    adjacency = {node: graph.adjacency(node) for node in nodes}

    def complete(partial: frozenset[Node], upto: int) -> frozenset[Node]:
        """Greedy completion of an independent set inside G_upto."""
        chosen = set(partial)
        for node in nodes[:upto]:
            if node not in chosen and not (adjacency[node] & chosen):
                chosen.add(node)
        return frozenset(chosen)

    def is_maximal_in(candidate: frozenset[Node], upto: int) -> bool:
        for node in nodes[:upto]:
            if node not in candidate and not (adjacency[node] & candidate):
                return False
        return True

    # DFS over the Tsukiyama tree; stack entries are (level, answer),
    # where `answer` is a maximal independent set of G_level.
    stack: list[tuple[int, frozenset[Node]]] = [(1, frozenset({nodes[0]}))]
    while stack:
        level, answer = stack.pop()
        if level == n:
            yield answer
            continue
        v = nodes[level]
        neighbours_in_answer = adjacency[v] & answer
        if not neighbours_in_answer:
            stack.append((level + 1, answer | {v}))
            continue
        # Child 1: the answer survives unchanged (v is blocked).
        stack.append((level + 1, answer))
        # Child 2: swap v in, its neighbours out — accepted only with
        # the maximality + unique-parent tests.
        candidate = (answer - adjacency[v]) | {v}
        if is_maximal_in(candidate, level + 1) and complete(
            candidate - {v}, level
        ) == answer:
            stack.append((level + 1, candidate))
