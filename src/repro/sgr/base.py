"""Succinct Graph Representations (system S12; paper Definitions 1–2).

An SGR describes a graph G(x) that may be exponentially larger than its
representation x.  Access is mediated by two algorithms:

* ``iter_nodes()`` — the node enumerator ``A_V`` (a polynomial-delay
  iterator for *tractably accessible* SGRs);
* ``has_edge(u, v)`` — the edge oracle ``A_E`` (polynomial time).

A *tractable expansion* (Definition 2) additionally bounds every
independent set of G(x) polynomially in |x| and provides a way to grow
a non-maximal independent set.  Here the expansion is exposed as
``extend(independent_set) -> maximal independent set`` — the black-box
procedure ``Extend`` of the enumeration algorithm, which for the
separator-graph SGR wraps an off-the-shelf triangulation heuristic.

:class:`ExplicitSGR` adapts a concrete in-memory graph, which is how
the test-suite validates :func:`repro.sgr.enum_mis.enumerate_maximal_independent_sets`
against brute force.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterator

from repro.errors import NotAnIndependentSetError
from repro.graph.graph import Graph, _sort_nodes

__all__ = ["SuccinctGraphRepresentation", "ExplicitSGR"]

SGRNode = Hashable


class SuccinctGraphRepresentation(ABC):
    """Abstract base for tractably accessible SGRs with tractable expansion.

    Node objects must be hashable; they are stored in the enumeration
    algorithm's bookkeeping sets.
    """

    @abstractmethod
    def iter_nodes(self) -> Iterator[SGRNode]:
        """Enumerate the nodes of G(x) (the algorithm ``A_V``).

        Each node must be produced exactly once.  For the complexity
        guarantees of the paper this iterator must have polynomial
        delay, but the enumeration algorithm is correct for any
        exhaustive iterator.
        """

    @abstractmethod
    def has_edge(self, u: SGRNode, v: SGRNode) -> bool:
        """Decide adjacency of two nodes of G(x) (the algorithm ``A_E``)."""

    @abstractmethod
    def extend(self, independent_set: frozenset[SGRNode]) -> frozenset[SGRNode]:
        """Extend an independent set of G(x) into a maximal one.

        Must return a superset of ``independent_set`` that is a maximal
        independent set of G(x).  Corresponds to the tractable
        expansion of Definition 2 (applied to completion rather than
        one node at a time).
        """

    def is_independent(self, nodes: frozenset[SGRNode]) -> bool:
        """Return whether ``nodes`` is an independent set of G(x).

        Quadratic in |nodes| via the edge oracle; available to
        implementations for input validation.
        """
        node_list = list(nodes)
        for i, u in enumerate(node_list):
            for v in node_list[i + 1 :]:
                if self.has_edge(u, v):
                    return False
        return True


class ExplicitSGR(SuccinctGraphRepresentation):
    """An SGR wrapping a concrete :class:`~repro.graph.graph.Graph`.

    ``extend`` grows the given set greedily in sorted node order, which
    is a valid tractable expansion for any finite graph.  Useful for
    testing and for small solution spaces.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._nodes = _sort_nodes(graph.node_set())

    def iter_nodes(self) -> Iterator[SGRNode]:
        return iter(self._nodes)

    def has_edge(self, u: SGRNode, v: SGRNode) -> bool:
        return self._graph.has_edge(u, v)

    def extend(self, independent_set: frozenset[SGRNode]) -> frozenset[SGRNode]:
        if not self._graph.is_independent_set(independent_set):
            raise NotAnIndependentSetError(
                f"{sorted(map(repr, independent_set))} is not independent"
            )
        result = set(independent_set)
        for node in self._nodes:
            if node in result:
                continue
            if not any(self._graph.has_edge(node, member) for member in result):
                result.add(node)
        return frozenset(result)
