"""repro — enumerating minimal triangulations and proper tree decompositions.

A from-scratch Python implementation of

    Nofar Carmeli, Batya Kenig, Benny Kimelfeld, Markus Kröll.
    "Efficiently Enumerating Minimal Triangulations." PODS 2017.

The headline entry points:

>>> from repro import Graph, enumerate_minimal_triangulations
>>> square = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
>>> sorted(t.fill_edges for t in enumerate_minimal_triangulations(square))
[((1, 3),), ((2, 4),)]

See :func:`enumerate_proper_tree_decompositions` for the tree
decomposition view, and the subpackages for the individual substrates
(graphs, chordal-graph theory, SGRs, decompositions, workloads and
experiment harnesses).
"""

from repro.chordal.atoms import atoms, clique_minimal_separators
from repro.chordal.minimal_separators import (
    all_minimal_separators,
    are_crossing,
    are_parallel,
    is_minimal_separator,
    minimal_separators,
)
from repro.chordal.peo import is_chordal
from repro.chordal.sandwich import (
    is_minimal_triangulation,
    minimal_triangulation_sandwich,
)
from repro.chordal.triangulate import (
    Triangulator,
    available_triangulators,
    get_triangulator,
    register_triangulator,
)
from repro.core.enumerate import (
    count_minimal_triangulations,
    enumerate_minimal_triangulations,
    minimal_triangulation,
)
from repro.core.extend import extend_parallel_set, minimal_triangulation_via
from repro.core.ranked import (
    best_triangulation,
    enumerate_minimal_triangulations_prioritized,
)
from repro.core.treewidth import min_fill_in_exact, treewidth_exact
from repro.core.triangulation import Triangulation
from repro.decomposition.proper import (
    enumerate_proper_tree_decompositions,
    tree_decompositions_of_triangulation,
)
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.engine import (
    EnumerationEngine,
    EnumerationJob,
    EnumerationResult,
    available_backends,
)
from repro.graph import resolve_graph_backend
from repro.graph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph
from repro.sgr.base import ExplicitSGR, SuccinctGraphRepresentation
from repro.sgr.enum_mis import (
    EnumMISStatistics,
    enumerate_maximal_independent_sets,
    merge_statistics,
)
from repro.sgr.separator_graph import MinimalSeparatorSGR

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph
    "Graph",
    "resolve_graph_backend",
    # chordality / separators
    "is_chordal",
    "minimal_separators",
    "all_minimal_separators",
    "is_minimal_separator",
    "are_crossing",
    "are_parallel",
    "is_minimal_triangulation",
    "minimal_triangulation_sandwich",
    # triangulators
    "Triangulator",
    "available_triangulators",
    "get_triangulator",
    "register_triangulator",
    # core enumeration
    "Triangulation",
    "enumerate_minimal_triangulations",
    "count_minimal_triangulations",
    "minimal_triangulation",
    "extend_parallel_set",
    "enumerate_minimal_triangulations_prioritized",
    "best_triangulation",
    "atoms",
    "clique_minimal_separators",
    "Hypergraph",
    "minimal_triangulation_via",
    "treewidth_exact",
    "min_fill_in_exact",
    # SGR framework
    "SuccinctGraphRepresentation",
    "ExplicitSGR",
    "MinimalSeparatorSGR",
    "enumerate_maximal_independent_sets",
    "EnumMISStatistics",
    "merge_statistics",
    # enumeration engine
    "EnumerationEngine",
    "EnumerationJob",
    "EnumerationResult",
    "available_backends",
    # tree decompositions
    "TreeDecomposition",
    "enumerate_proper_tree_decompositions",
    "tree_decompositions_of_triangulation",
]
