"""Rule ``async-blocking``: no blocking calls inside ``async def``.

The distributed coordinator is a single asyncio event loop; one
``time.sleep`` or blocking socket read in a coroutine stalls heartbeat
processing for every connected worker at once.  This rule flags, inside
``async def`` bodies (nested ``def``s excluded — they run only when
called):

- ``time.sleep(...)``
- ``subprocess.run/call/check_call/check_output/Popen`` and
  ``os.system`` / ``os.popen``
- the builtin ``open(...)`` (file I/O)
- blocking socket construction (``socket.create_connection``,
  ``socket.socket``) and raw blocking socket ops
  (``.recv``/``.recv_into``/``.sendall``/``.accept``)
- ``.acquire()`` calls that are not awaited (a ``threading.Lock``
  acquire where an ``asyncio`` primitive was intended)
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, Rule, SourceFile, register

_SUBPROCESS_ATTRS = {"run", "call", "check_call", "check_output", "Popen"}
_SOCKET_METHOD_ATTRS = {"recv", "recv_into", "sendall", "accept"}


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _blocking_reason(call: ast.Call, awaited: bool) -> str | None:
    func = call.func
    dotted = _dotted(func)
    if dotted == "time.sleep":
        return "time.sleep blocks the event loop (use await asyncio.sleep)"
    if dotted in ("os.system", "os.popen"):
        return f"{dotted} blocks the event loop"
    if dotted in ("socket.create_connection", "socket.socket"):
        return (
            f"{dotted} opens a blocking socket inside a coroutine "
            f"(use asyncio streams)"
        )
    if isinstance(func, ast.Attribute):
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "subprocess"
            and func.attr in _SUBPROCESS_ATTRS
        ):
            return (
                f"subprocess.{func.attr} blocks the event loop "
                f"(use asyncio.create_subprocess_*)"
            )
        if func.attr in _SOCKET_METHOD_ATTRS and not awaited:
            return (
                f".{func.attr}() is a blocking socket operation "
                f"(use the asyncio reader/writer)"
            )
        if func.attr == "acquire" and not awaited:
            return (
                ".acquire() without await blocks the event loop "
                "(use an asyncio lock and await it)"
            )
    if isinstance(func, ast.Name) and func.id == "open":
        return "open() is blocking file I/O inside a coroutine"
    return None


def _walk_async_body(
    node: ast.AST, awaited_calls: set[int]
) -> Iterable[ast.Call]:
    """Calls in a coroutine body, skipping nested function scopes."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(child, ast.Await) and isinstance(
            child.value, ast.Call
        ):
            awaited_calls.add(id(child.value))
        if isinstance(child, ast.Call):
            yield child
        yield from _walk_async_body(child, awaited_calls)


@register
class AsyncBlockingRule(Rule):
    id = "async-blocking"
    summary = (
        "no blocking calls (time.sleep, sockets, subprocess, file I/O, "
        "un-awaited lock acquisition) inside async def bodies"
    )
    scope = "file"

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            awaited_calls: set[int] = set()
            calls = list(_walk_async_body(node, awaited_calls))
            for call in calls:
                reason = _blocking_reason(
                    call, id(call) in awaited_calls
                )
                if reason is not None:
                    yield src.finding(
                        self.id,
                        call.lineno,
                        f"in async def {node.name}: {reason}",
                    )
