"""Rule ``kernel-parity``: the three kernel tiers stay in lock-step.

The native tier is a cffi ABI-mode binding: the Python-side cdef
(``_CDEF`` in ``graph/_native/native.py``), the C sources
(``kernels.c``) and the numpy fallbacks (``graph/bitset_np.py``) are
three hand-maintained mirrors of one kernel catalogue.  This rule
checks:

- every function declared in the cdef is defined in ``kernels.c``;
- every kernel the native module exports (its ``__all__`` minus the
  tier plumbing) has a same-named numpy fallback defined top-level in
  ``bitset_np.py`` — so a fleet member without a compiler degrades
  instead of crashing;
- the cdef hash matches ``graph/_native/cdef.lock`` — changing the C
  signatures without bumping ``_ABI_VERSION`` (and refreshing the
  lock) is an error, because a stale cached ``.so`` would then be
  called through a mismatched ABI.
"""

from __future__ import annotations

import ast
import hashlib
import re
from collections.abc import Iterable

from repro.analysis.core import Finding, Project, Rule, register

NATIVE_FILE = "graph/_native/native.py"
KERNELS_C_FILE = "graph/_native/kernels.c"
FALLBACK_FILE = "graph/bitset_np.py"
LOCK_FILE = "graph/_native/cdef.lock"

#: Native ``__all__`` entries that are tier plumbing, not kernels — no
#: numpy twin is expected for these.
NON_KERNEL_EXPORTS = {
    "available",
    "build_fingerprint",
    "kernel_info",
    "kernel_namespace",
    "NativeGraphCore",
    "NativeMCSQueue",
}

_DECL_NAME_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(")


def cdef_function_names(cdef: str) -> list[str]:
    """Function names declared in a cffi cdef string."""
    names = []
    for statement in cdef.split(";"):
        match = _DECL_NAME_RE.search(statement)
        if match is not None:
            names.append(match.group(1))
    return names


def cdef_digest(cdef: str) -> str:
    """A whitespace-insensitive SHA-256 of the cdef text."""
    normalized = "\n".join(
        " ".join(line.split())
        for line in cdef.strip().splitlines()
        if line.strip()
    )
    return hashlib.sha256(normalized.encode()).hexdigest()


def render_lock(abi_version: int, cdef: str) -> str:
    """The expected ``cdef.lock`` contents for the given cdef."""
    return (
        "# Pinned by `repro analyze` (kernel-parity): changing _CDEF\n"
        "# requires bumping _ABI_VERSION in native.py and refreshing\n"
        "# this lock with the digest from the rule's finding message.\n"
        f"abi = {abi_version}\n"
        f"sha256 = {cdef_digest(cdef)}\n"
    )


def _parse_lock(text: str) -> dict[str, str]:
    values: dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, sep, value = line.partition("=")
        if sep:
            values[key.strip()] = value.strip()
    return values


def _module_constants(tree: ast.AST) -> dict[str, object]:
    """Module-level constant assignments we care about."""
    wanted = {"_CDEF", "_ABI_VERSION", "__all__"}
    values: dict[str, object] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in wanted:
                try:
                    values[target.id] = ast.literal_eval(node.value)
                except ValueError:
                    pass
    return values


def _top_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


@register
class KernelParityRule(Rule):
    id = "kernel-parity"
    summary = (
        "cdef functions exist in kernels.c, exported kernels have "
        "numpy fallbacks, and cdef changes bump the ABI version"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        native = project.find(NATIVE_FILE)
        if native is None or native.tree is None:
            return
        constants = _module_constants(native.tree)
        cdef = constants.get("_CDEF")
        if not isinstance(cdef, str):
            return
        declared = cdef_function_names(cdef)
        kernels_c = project.read_text(KERNELS_C_FILE)
        if kernels_c is not None:
            for name in declared:
                if not re.search(rf"\b{re.escape(name)}\b", kernels_c):
                    yield native.finding(
                        self.id,
                        1,
                        f"cdef declares {name}() but kernels.c does "
                        f"not define it",
                    )
        yield from self._check_fallbacks(project, native, constants)
        yield from self._check_lock(project, native, constants, cdef)

    def _check_fallbacks(self, project, native, constants):
        fallback = project.find(FALLBACK_FILE)
        if fallback is None or fallback.tree is None:
            return
        exports = constants.get("__all__")
        if not isinstance(exports, list):
            return
        available = _top_level_names(fallback.tree)
        for name in exports:
            if name in NON_KERNEL_EXPORTS:
                continue
            if name not in available:
                yield native.finding(
                    self.id,
                    1,
                    f"native kernel {name!r} has no same-named numpy "
                    f"fallback in {FALLBACK_FILE} — a host without a "
                    f"compiler cannot degrade",
                )

    def _check_lock(self, project, native, constants, cdef):
        abi = constants.get("_ABI_VERSION")
        if not isinstance(abi, int):
            return
        digest = cdef_digest(cdef)
        lock_text = project.read_text(LOCK_FILE)
        if lock_text is None:
            yield native.finding(
                self.id,
                1,
                f"missing {LOCK_FILE}; create it with:\n"
                + render_lock(abi, cdef),
            )
            return
        lock = _parse_lock(lock_text)
        lock_abi = lock.get("abi")
        lock_digest = lock.get("sha256")
        if lock_digest == digest and lock_abi == str(abi):
            return
        if lock_digest != digest and lock_abi == str(abi):
            yield native.finding(
                self.id,
                1,
                f"_CDEF changed (sha256 {digest[:12]}… != locked "
                f"{str(lock_digest)[:12]}…) without an _ABI_VERSION "
                f"bump — bump it and refresh {LOCK_FILE} to:\n"
                + render_lock(abi, cdef),
            )
        else:
            yield native.finding(
                self.id,
                1,
                f"{LOCK_FILE} is stale (abi {lock_abi!r}, current "
                f"{abi}); refresh it to:\n" + render_lock(abi, cdef),
            )
