"""Rule ``stats-registry``: EnumMISStatistics registries are complete.

``snapshot``/``add``/``restore`` iterate ``_SCALAR_FIELDS`` and
``_MAP_FIELDS`` instead of touching counters by name, so a counter
missing from its registry is *silently* dropped from checkpoints and
merged worker stats.  This rule re-derives the registries from the
dataclass fields: every ``int``-annotated public field must appear in
``_SCALAR_FIELDS``, every ``dict``-annotated one in ``_MAP_FIELDS``,
and neither registry may name a field that no longer exists.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, Project, Rule, register

STATS_FILE = "sgr/enum_mis.py"
STATS_CLASS = "EnumMISStatistics"


def _registry_entries(node: ast.stmt) -> tuple[str, list[str], int] | None:
    """``(name, entries, lineno)`` for a ``_*_FIELDS = (...)`` assign."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target, value = node.targets[0], node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        target, value = node.target, node.value
    else:
        return None
    if not isinstance(target, ast.Name):
        return None
    if target.id not in ("_SCALAR_FIELDS", "_MAP_FIELDS"):
        return None
    entries = []
    if isinstance(value, (ast.Tuple, ast.List)):
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                entries.append(element.value)
    return target.id, entries, node.lineno


def _annotation_kind(annotation: ast.expr) -> str | None:
    """``"scalar"`` for int fields, ``"map"`` for dict fields."""
    text = ast.unparse(annotation)
    base = text.split("[", 1)[0].strip()
    if base in ("int", "float"):
        return "scalar"
    if base in ("dict", "Dict", "defaultdict", "Counter"):
        return "map"
    return None


@register
class StatsRegistryRule(Rule):
    id = "stats-registry"
    summary = (
        "every EnumMISStatistics counter appears in _SCALAR_FIELDS/"
        "_MAP_FIELDS (and the registries name only real fields)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        src = project.find(STATS_FILE)
        if src is None or src.tree is None:
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef) and node.name == STATS_CLASS:
                yield from self._check_class(src, node)
                return

    def _check_class(self, src, node: ast.ClassDef) -> Iterable[Finding]:
        fields: dict[str, tuple[str, int]] = {}
        registries: dict[str, tuple[list[str], int]] = {}
        for stmt in node.body:
            entry = _registry_entries(stmt)
            if entry is not None:
                name, entries, lineno = entry
                registries[name] = (entries, lineno)
                continue
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                field_name = stmt.target.id
                if field_name.startswith("_"):
                    continue
                kind = _annotation_kind(stmt.annotation)
                if kind is not None:
                    fields[field_name] = (kind, stmt.lineno)
        registry_of = {"scalar": "_SCALAR_FIELDS", "map": "_MAP_FIELDS"}
        for field_name, (kind, lineno) in fields.items():
            registry = registry_of[kind]
            entries, _ = registries.get(registry, ([], node.lineno))
            if field_name not in entries:
                yield src.finding(
                    self.id,
                    lineno,
                    f"counter {field_name!r} is missing from "
                    f"{STATS_CLASS}.{registry} — snapshot/add/restore "
                    f"will silently drop it",
                )
        for registry, (entries, lineno) in registries.items():
            expected_kind = (
                "scalar" if registry == "_SCALAR_FIELDS" else "map"
            )
            for entry in entries:
                kind_line = fields.get(entry)
                if kind_line is None:
                    yield src.finding(
                        self.id,
                        lineno,
                        f"{registry} names {entry!r} which is not a "
                        f"field of {STATS_CLASS}",
                    )
                elif kind_line[0] != expected_kind:
                    yield src.finding(
                        self.id,
                        lineno,
                        f"{registry} names {entry!r} but the field is "
                        f"{kind_line[0]}-valued",
                    )
