"""Rule ``protocol-dispatch``: every ``MSG_*`` frame type is handled.

A frame constant added to ``engine/distributed/protocol.py`` must be
(1) exported via ``__all__``, (2) dispatched — or deliberately sent —
somewhere in the coordinator (``runner.py``), (3) likewise in the
worker (``worker.py``), and (4) reachable by the chaos injector's
per-frame-type schedules, so a new frame type cannot silently bypass
either side of the conversation or the chaos soaks.

The chaos check is structural: an injector that derives streams
generically from the frame-type byte (a ``send_stream(msg_type)``-style
keyed factory) covers every type by construction; an injector that
instead enumerates specific ``MSG_*`` constants must enumerate all of
them.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, Project, Rule, SourceFile, register

PROTOCOL_FILE = "engine/distributed/protocol.py"
DISPATCH_FILES = (
    "engine/distributed/runner.py",
    "engine/distributed/worker.py",
)
CHAOS_FILE = "engine/distributed/chaos.py"

#: Parameter names that mark a stream factory as keyed by frame type.
_GENERIC_PARAMS = {"msg_type", "frame_type", "message_type"}


def _msg_constants(tree: ast.AST) -> dict[str, int]:
    """Module-level ``MSG_* = <int>`` assignments → name: lineno."""
    constants: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith(
                    "MSG_"
                ):
                    constants[target.id] = node.lineno
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if node.target.id.startswith("MSG_"):
                constants[node.target.id] = node.lineno
    return constants


def _dunder_all(tree: ast.AST) -> list[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return [
                            element.value
                            for element in node.value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        ]
    return []


def _referenced_names(tree: ast.AST) -> set[str]:
    """Every Name id and Attribute attr in the module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _chaos_is_generic(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = {arg.arg for arg in node.args.args}
            params.update(arg.arg for arg in node.args.kwonlyargs)
            if params & _GENERIC_PARAMS:
                return True
    return False


@register
class ProtocolDispatchRule(Rule):
    id = "protocol-dispatch"
    summary = (
        "every MSG_* frame constant is exported, handled by both the "
        "coordinator and the worker, and covered by chaos schedules"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        protocol = project.find(PROTOCOL_FILE)
        if protocol is None or protocol.tree is None:
            return
        constants = _msg_constants(protocol.tree)
        if not constants:
            return
        exported = set(_dunder_all(protocol.tree))
        for name, lineno in sorted(constants.items()):
            if name not in exported:
                yield protocol.finding(
                    self.id,
                    lineno,
                    f"{name} is not exported via __all__ in "
                    f"{PROTOCOL_FILE}",
                )
        for rel in DISPATCH_FILES:
            peer = project.find(rel)
            if peer is None or peer.tree is None:
                continue
            referenced = _referenced_names(peer.tree)
            for name, lineno in sorted(constants.items()):
                if name not in referenced:
                    yield protocol.finding(
                        self.id,
                        lineno,
                        f"{name} has no dispatch arm (no reference at "
                        f"all) in {rel}",
                    )
        yield from self._check_chaos(project, protocol, constants)

    def _check_chaos(
        self,
        project: Project,
        protocol: SourceFile,
        constants: dict[str, int],
    ) -> Iterable[Finding]:
        chaos = project.find(CHAOS_FILE)
        if chaos is None or chaos.tree is None:
            return
        referenced = _referenced_names(chaos.tree)
        explicit = {name for name in constants if name in referenced}
        if not explicit and _chaos_is_generic(chaos.tree):
            # Streams are derived per frame-type byte: every current
            # and future MSG_* is reachable by construction.
            return
        for name, lineno in sorted(constants.items()):
            if name not in explicit:
                yield protocol.finding(
                    self.id,
                    lineno,
                    f"{name} is not reachable by the chaos injector's "
                    f"per-frame-type schedules in {CHAOS_FILE}",
                )
