"""Rule ``shm-ownership``: every shared-memory segment has one owner.

``SharedPackedBuffer.create`` allocates a POSIX shared-memory segment
that outlives the process unless exactly one owner eventually calls
``unlink()``.  Leaks exhaust ``/dev/shm`` across runs; double-unlinks
race attached workers.  Every ``SharedPackedBuffer.create(...)`` call
site must therefore either:

(a) sit inside a ``try`` whose ``finally`` reaches an ``.unlink()`` (or
    a release helper) — a scoped owner; or
(b) be assigned to ``self.<attr>`` inside a class that defines an
    unlink path (some method calling ``.unlink()``) — an object owner
    whose ``close()``/release method is the single unlink site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, Rule, SourceFile, register

FACTORY_CLASS = "SharedPackedBuffer"
FACTORY_METHOD = "create"


def _is_create_call(node: ast.Call) -> bool:
    func = node.func
    if not (
        isinstance(func, ast.Attribute) and func.attr == FACTORY_METHOD
    ):
        return False
    owner = func.value
    if isinstance(owner, ast.Name):
        return owner.id == FACTORY_CLASS
    if isinstance(owner, ast.Attribute):
        return owner.attr == FACTORY_CLASS
    return False


def _calls_unlink(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "unlink"
        ):
            return True
    return False


def _parent_map(tree: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _ancestors(
    node: ast.AST, parents: dict[int, ast.AST]
) -> Iterable[ast.AST]:
    current = parents.get(id(node))
    while current is not None:
        yield current
        current = parents.get(id(current))


def _owned_by_try_finally(
    call: ast.Call, parents: dict[int, ast.AST]
) -> bool:
    for ancestor in _ancestors(call, parents):
        if isinstance(ancestor, ast.Try) and ancestor.finalbody:
            if any(_calls_unlink(stmt) for stmt in ancestor.finalbody):
                return True
            # A finally that delegates to a release helper method of
            # the same object (e.g. self._release_buffer()) also
            # counts when that helper unlinks; the class-owner check
            # below covers the common case, so here only a direct
            # unlink qualifies.
    return False


def _owned_by_class(
    call: ast.Call, parents: dict[int, ast.AST]
) -> bool:
    assigned_to_self = False
    for ancestor in _ancestors(call, parents):
        if isinstance(ancestor, (ast.Assign, ast.AnnAssign)):
            targets = (
                ancestor.targets
                if isinstance(ancestor, ast.Assign)
                else [ancestor.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    assigned_to_self = True
        if isinstance(ancestor, ast.ClassDef):
            return assigned_to_self and _calls_unlink(ancestor)
    return False


@register
class ShmOwnershipRule(Rule):
    id = "shm-ownership"
    summary = (
        "every SharedPackedBuffer.create site is owned: try/finally "
        "unlink, or assigned to self on a class with an unlink path"
    )
    scope = "file"

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        parents = _parent_map(src.tree)
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call) and _is_create_call(node)):
                continue
            if _owned_by_try_finally(node, parents):
                continue
            if _owned_by_class(node, parents):
                continue
            yield src.finding(
                self.id,
                node.lineno,
                f"{FACTORY_CLASS}.{FACTORY_METHOD}(...) has no owner: "
                f"wrap it in try/finally reaching .unlink(), or assign "
                f"it to self in a class that defines the unlink path",
            )
