"""Rule ``job-threading``: every public job field reaches the CLI.

:class:`~repro.engine.job.EnumerationJob` is the one spec every
backend consumes; a field that exists on the dataclass but is not
reachable from ``repro enumerate`` is dead configuration surface — it
looks tunable in the docs but no operator can set it.  Every public
field must either be *wired* in ``cli.py`` (an ``args.<field>``
access, a ``<field>=`` keyword on an ``EnumerationJob(...)`` call, or
a ``"<field>"`` key into a job-kwargs dict) or carry an explicit
``# internal`` marker on its declaration line in ``job.py``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Finding, Project, Rule, register

JOB_FILE = "engine/job.py"
CLI_FILE = "cli.py"
JOB_CLASS = "EnumerationJob"
INTERNAL_MARKER = "# internal"


def _job_fields(tree: ast.AST) -> dict[str, int]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == JOB_CLASS:
            return {
                stmt.target.id: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
            }
    return {}


def _wired_names(tree: ast.AST) -> set[str]:
    """Field names the CLI plausibly threads through."""
    wired: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "args"
        ):
            wired.add(node.attr)
        elif isinstance(node, ast.Call):
            func = node.func
            func_name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if func_name == JOB_CLASS:
                wired.update(
                    keyword.arg
                    for keyword in node.keywords
                    if keyword.arg is not None
                )
        elif isinstance(node, ast.Constant) and isinstance(
            node.value, str
        ):
            # job_kwargs["batch_deadline_s"] = ... style threading.
            wired.add(node.value)
    return wired


@register
class JobThreadingRule(Rule):
    id = "job-threading"
    summary = (
        "every public EnumerationJob field is wired to the CLI or "
        "marked # internal"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        job = project.find(JOB_FILE)
        cli = project.find(CLI_FILE)
        if job is None or job.tree is None:
            return
        if cli is None or cli.tree is None:
            return
        fields = _job_fields(job.tree)
        if not fields:
            return
        wired = _wired_names(cli.tree)
        for name, lineno in sorted(fields.items()):
            if name in wired:
                continue
            declaration = (
                job.lines[lineno - 1] if lineno <= len(job.lines) else ""
            )
            if INTERNAL_MARKER in declaration:
                continue
            yield job.finding(
                self.id,
                lineno,
                f"{JOB_CLASS}.{name} is not reachable from the CLI "
                f"(no args.{name} / {name}= / \"{name}\" in "
                f"{CLI_FILE}) and carries no '{INTERNAL_MARKER}' "
                f"marker",
            )
