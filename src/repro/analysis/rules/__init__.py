"""The rule battery: importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401
    async_blocking,
    job_threading,
    kernel_parity,
    protocol_dispatch,
    shm_ownership,
    stats_registry,
)

__all__ = [
    "async_blocking",
    "job_threading",
    "kernel_parity",
    "protocol_dispatch",
    "shm_ownership",
    "stats_registry",
]
