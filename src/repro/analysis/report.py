"""Reporters for ``repro analyze``: human text and machine JSON."""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.core import ANALYZER_VERSION, Finding, all_rules

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding], verbose: bool = False) -> str:
    """One ``path:line: [rule] message`` line per finding + a summary."""
    lines = [finding.format() for finding in findings]
    rules = all_rules()
    if verbose or not findings:
        lines.append(
            f"repro analyze {ANALYZER_VERSION}: "
            f"{len(findings)} finding(s) from {len(rules)} rule(s)"
        )
    else:
        lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document for CI and tooling."""
    rules = all_rules()
    payload = {
        "analyzer": {
            "version": ANALYZER_VERSION,
            "rules": [
                {"id": rule.id, "summary": rule.summary} for rule in rules
            ],
        },
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
