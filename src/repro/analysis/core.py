"""Core of the ``repro analyze`` static invariant checker.

The engine grew a number of hand-maintained parallel registries —
statistics field lists, protocol dispatch tables, kernel tiers — whose
drift is invisible to the test suite until something silently drops a
counter or strands a frame type.  This package machine-checks those
invariants from the AST: a :class:`Project` snapshots the source tree,
registered :class:`Rule` subclasses emit :class:`Finding` objects, and
per-line ``# repro: allow[rule-id]`` comments suppress accepted
exceptions at the offending site.

Only the standard library is used (``ast`` + ``re``), so the analyzer
runs anywhere the package imports — no third-party lint toolchain is
required for the repo-specific invariants.
"""

from __future__ import annotations

import ast
import os
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ANALYZER_VERSION",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "get_rule",
    "register",
    "run_analysis",
]

#: Bumped when rules are added/changed so perf recordings and reports
#: can note which invariant battery a tree passed.
ANALYZER_VERSION = "1.0"

#: ``# repro: allow[rule-id]`` (comma-separated ids allowed).
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\-* ]+)\]")

#: Directories never analyzed (build artefacts, caches).
_SKIP_DIRS = {"__pycache__", "_build", ".git", ".mypy_cache", ".ruff_cache"}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


class SourceFile:
    """One Python file: lazily read text, lazily parsed AST."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        #: Path relative to the analysis root, POSIX-style — the key
        #: project-scope rules match against (``engine/job.py``).
        self.rel = path.relative_to(root).as_posix()
        try:
            self.display = os.path.relpath(path)
        except ValueError:  # different drive (Windows)
            self.display = str(path)
        self._text: str | None = None
        self._lines: list[str] | None = None
        self._tree: ast.AST | None = None
        self.parse_error: SyntaxError | None = None

    @property
    def text(self) -> str:
        if self._text is None:
            self._text = self.path.read_text(encoding="utf-8")
        return self._text

    @property
    def lines(self) -> list[str]:
        if self._lines is None:
            self._lines = self.text.splitlines()
        return self._lines

    @property
    def tree(self) -> ast.AST | None:
        """The parsed module, or None when the file has a syntax error."""
        if self._tree is None and self.parse_error is None:
            try:
                self._tree = ast.parse(self.text, filename=str(self.path))
            except SyntaxError as exc:
                self.parse_error = exc
        return self._tree

    def allowed(self, rule_id: str, line: int) -> bool:
        """True when ``# repro: allow[rule_id]`` covers ``line``.

        The suppression comment may sit on the flagged line itself or
        on the line directly above it (for lines too long to carry a
        trailing comment).
        """
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(self.lines):
                match = _SUPPRESS_RE.search(self.lines[lineno - 1])
                if match is not None:
                    allowed = {p.strip() for p in match.group(1).split(",")}
                    if rule_id in allowed or "*" in allowed:
                        return True
        return False

    def finding(self, rule_id: str, line: int, message: str) -> Finding:
        return Finding(self.display, line, rule_id, message)


class Project:
    """A snapshot of one source tree rooted at a directory."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root).resolve()
        self.files: list[SourceFile] = [
            SourceFile(self.root, path)
            for path in sorted(self.root.rglob("*.py"))
            if not _SKIP_DIRS.intersection(path.relative_to(self.root).parts)
        ]
        self._by_rel = {src.rel: src for src in self.files}

    def find(self, rel_suffix: str) -> SourceFile | None:
        """The unique file whose relative path ends with ``rel_suffix``.

        Suffix matching keeps rules working whether the root is the
        ``repro`` package itself, ``src/``, or a fixture tree that
        mirrors the package layout.  Ambiguity returns None — a rule
        must not guess between candidates.
        """
        exact = self._by_rel.get(rel_suffix)
        if exact is not None:
            return exact
        matches = [
            src
            for src in self.files
            if src.rel.endswith("/" + rel_suffix)
        ]
        return matches[0] if len(matches) == 1 else None

    def read_text(self, rel_suffix: str) -> str | None:
        """Raw text of a (possibly non-Python) file by relative suffix."""
        direct = self.root / rel_suffix
        if direct.is_file():
            return direct.read_text(encoding="utf-8")
        matches = [
            path
            for path in sorted(self.root.rglob(Path(rel_suffix).name))
            if path.is_file()
            and path.relative_to(self.root).as_posix().endswith(rel_suffix)
            and not _SKIP_DIRS.intersection(path.relative_to(self.root).parts)
        ]
        if len(matches) == 1:
            return matches[0].read_text(encoding="utf-8")
        return None


class Rule:
    """One named invariant check.

    Subclasses set ``id``/``summary`` and implement either
    :meth:`check_file` (``scope = "file"``: called once per source
    file) or :meth:`check` (``scope = "project"``: called once with
    the whole project, for cross-file registry invariants).
    """

    id: str = ""
    summary: str = ""
    scope: str = "project"  # "project" | "file"

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id (imports the rule battery)."""
    from repro.analysis import rules as _rules  # noqa: F401

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    from repro.analysis import rules as _rules  # noqa: F401

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def _iter_findings(
    project: Project, rules: Iterable[Rule]
) -> Iterator[Finding]:
    for src in project.files:
        if src.tree is None and src.parse_error is not None:
            yield src.finding(
                "parse-error",
                src.parse_error.lineno or 1,
                f"syntax error: {src.parse_error.msg}",
            )
    for rule in rules:
        if rule.scope == "file":
            for src in project.files:
                if src.tree is not None:
                    yield from rule.check_file(src)
        else:
            yield from rule.check(project)


def run_analysis(
    paths: Iterable[str | Path],
    rule_ids: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the rule battery over each root directory in ``paths``.

    Returns the surviving findings (suppressions applied), sorted by
    location.  ``rule_ids`` restricts the battery; the default is every
    registered rule.
    """
    if rule_ids is None:
        rules = all_rules()
    else:
        rules = [get_rule(rule_id) for rule_id in rule_ids]
    surviving: list[Finding] = []
    for raw in paths:
        root = Path(raw)
        if not root.is_dir():
            raise NotADirectoryError(
                f"analysis root is not a directory: {raw}"
            )
        project = Project(root)
        by_display = {src.display: src for src in project.files}
        for finding in _iter_findings(project, rules):
            src = by_display.get(finding.path)
            if src is not None and src.allowed(finding.rule, finding.line):
                continue
            surviving.append(finding)
    return sorted(surviving)
