"""Repo-aware static invariant checks (``repro analyze``).

The checker battery lives in :mod:`repro.analysis.rules`; the framework
(rule registry, suppression comments, project snapshots) in
:mod:`repro.analysis.core`; reporters in :mod:`repro.analysis.report`.
"""

from repro.analysis.core import (
    ANALYZER_VERSION,
    Finding,
    Project,
    Rule,
    SourceFile,
    all_rules,
    get_rule,
    register,
    run_analysis,
)
from repro.analysis.report import render_json, render_text

__all__ = [
    "ANALYZER_VERSION",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "get_rule",
    "register",
    "render_json",
    "render_text",
    "run_analysis",
]
