"""Exhaustive baselines: brute-force oracles and the DunceCap-style planner."""

from repro.baselines.brute_force import (
    brute_force_maximal_cliques,
    brute_force_maximal_independent_sets,
    brute_force_maximal_parallel_families,
    brute_force_minimal_separators,
    brute_force_minimal_triangulations,
)
from repro.baselines.duncecap import (
    count_duncecap_decompositions,
    duncecap_tree_decompositions,
)

__all__ = [
    "brute_force_minimal_separators",
    "brute_force_minimal_triangulations",
    "brute_force_maximal_cliques",
    "brute_force_maximal_independent_sets",
    "brute_force_maximal_parallel_families",
    "duncecap_tree_decompositions",
    "count_duncecap_decompositions",
]
