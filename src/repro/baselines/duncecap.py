"""A DunceCap-style exhaustive decomposition enumerator (system S24).

The paper compares against the DunceCap plan enumerator (Tu & Ré,
SIGMOD 2015), which exhaustively enumerates generalized hypertree
decompositions of small join queries by top-down recursion: pick a
root bag, split the remainder into connected components, and recurse
into each component with the component's neighbourhood as the
*interface* that must be contained in the child's root bag.  The
original system is closed-source; this module implements the same
search over tree-decomposition *bag trees*, which is the part the
paper's comparison exercises (the paper reports DunceCap being 3–4
orders of magnitude slower than the SGR enumeration on small TPC-H
queries and not terminating on Q7/Q9 within two hours).

The search is exponential in the number of candidate bags, so callers
must bound the bag size.  To avoid rediscovering one tree from many
roots, each root bag is required to contain the smallest not-yet-fixed
node — the canonical-choice rule DunceCap-style planners use.  Two
decompositions are considered equal when they have the same bag
multiset and the same bag-content tree edges.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.errors import EnumerationBudgetExceeded
from repro.graph.components import components_without
from repro.graph.graph import Graph, Node, _sort_nodes

__all__ = ["duncecap_tree_decompositions", "count_duncecap_decompositions"]


def duncecap_tree_decompositions(
    graph: Graph,
    max_bag_size: int,
    max_results: int | None = None,
) -> Iterator[TreeDecomposition]:
    """Exhaustively enumerate bag trees with bags of size ≤ ``max_bag_size``.

    Every produced object is a valid tree decomposition of ``graph``
    whose bags all have at most ``max_bag_size`` nodes.  This is
    intentionally brute force — it is the *slow baseline* of
    experiment E9 in DESIGN.md.

    Parameters
    ----------
    max_results:
        Optional hard stop; raises
        :class:`~repro.errors.EnumerationBudgetExceeded` when reached,
        so benchmark runs cannot run away.
    """
    if max_bag_size < 1:
        raise ValueError("max_bag_size must be at least 1")
    nodes = frozenset(graph.node_set())
    if not nodes:
        yield TreeDecomposition.build([frozenset()], [])
        return

    produced = 0
    seen: set[tuple] = set()
    for bags, edges in _decompose(graph, nodes, frozenset(), max_bag_size):
        key = _canonical_key(bags, edges)
        if key in seen:
            continue
        seen.add(key)
        yield TreeDecomposition.build(bags, edges)
        produced += 1
        if max_results is not None and produced >= max_results:
            raise EnumerationBudgetExceeded(
                f"DunceCap baseline produced {produced} decompositions; "
                "raise max_results to continue"
            )


def count_duncecap_decompositions(graph: Graph, max_bag_size: int) -> int:
    """Count the bag trees produced by :func:`duncecap_tree_decompositions`."""
    return sum(1 for __ in duncecap_tree_decompositions(graph, max_bag_size))


def _bag_key(bag: frozenset[Node]) -> tuple:
    return tuple(sorted(map(repr, bag)))


def _canonical_key(
    bags: list[frozenset[Node]], edges: list[tuple[int, int]]
) -> tuple:
    bag_part = tuple(sorted(map(_bag_key, bags)))
    edge_part = tuple(
        sorted(
            tuple(sorted((_bag_key(bags[a]), _bag_key(bags[b]))))
            for a, b in edges
        )
    )
    return bag_part, edge_part


def _decompose(
    graph: Graph,
    region: frozenset[Node],
    interface: frozenset[Node],
    max_bag_size: int,
) -> Iterator[tuple[list[frozenset[Node]], list[tuple[int, int]]]]:
    """Yield (bags, edges) trees decomposing ``region`` given ``interface``.

    The interface is the set of region nodes shared with the parent
    bag; it must be fully contained in the root bag of this subtree so
    the running-intersection property holds.
    """
    for bag in _candidate_bags(graph, region, interface, max_bag_size):
        components = components_without(graph.subgraph(region), bag)
        if not components:
            if region - bag:
                continue
            yield [bag], []
            continue
        child_specs = []
        for component in components:
            child_interface = frozenset(
                graph.neighborhood_of_set(component) & bag
            )
            child_specs.append(
                (frozenset(component | child_interface), child_interface)
            )
        child_options = [
            list(_decompose(graph, child_region, child_interface, max_bag_size))
            for child_region, child_interface in child_specs
        ]
        if any(not options for options in child_options):
            continue
        for combo in itertools.product(*child_options):
            bags: list[frozenset[Node]] = [bag]
            edges: list[tuple[int, int]] = []
            for child_bags, child_edges in combo:
                offset = len(bags)
                bags.extend(child_bags)
                edges.append((0, offset))
                edges.extend((a + offset, b + offset) for a, b in child_edges)
            yield bags, edges


def _candidate_bags(
    graph: Graph,
    region: frozenset[Node],
    interface: frozenset[Node],
    max_bag_size: int,
) -> Iterator[frozenset[Node]]:
    """Enumerate root-bag candidates: interface plus the anchor node.

    The bag must contain the whole interface and the smallest free node
    of the region (the canonical-choice rule), padded with any further
    free nodes up to ``max_bag_size``.
    """
    free = _sort_nodes(region - interface)
    base = set(interface)
    if len(base) > max_bag_size:
        return
    if not free:
        yield frozenset(base)
        return
    anchor = free[0]
    others = [node for node in free if node != anchor]
    base.add(anchor)
    if len(base) > max_bag_size:
        return
    room = max_bag_size - len(base)
    for size in range(0, min(room, len(others)) + 1):
        for extra in itertools.combinations(others, size):
            yield frozenset(base | set(extra))
