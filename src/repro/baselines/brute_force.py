"""Exhaustive baselines and test oracles (system S23).

Everything here is exponential and guarded by explicit size limits; the
point is *independence* from the library's clever algorithms, so that
the test-suite can compare the incremental-polynomial-time enumerators
against implementations whose correctness is obvious:

* :func:`brute_force_minimal_separators` — try every vertex subset
  against the two-full-components definition;
* :func:`brute_force_minimal_triangulations` — try every subset of
  non-edges, keep the chordal fillings, discard non-minimal ones;
* :func:`brute_force_maximal_independent_sets` /
  :func:`brute_force_maximal_cliques` — Bron–Kerbosch with pivoting;
* :func:`brute_force_maximal_parallel_families` — maximal independent
  sets of the explicitly materialised separator graph.
"""

from __future__ import annotations

import itertools

from repro.chordal.minimal_separators import are_crossing
from repro.chordal.peo import is_chordal
from repro.errors import EnumerationBudgetExceeded
from repro.graph.components import full_components
from repro.graph.graph import Graph, Node

__all__ = [
    "brute_force_minimal_separators",
    "brute_force_minimal_triangulations",
    "brute_force_maximal_cliques",
    "brute_force_maximal_independent_sets",
    "brute_force_maximal_parallel_families",
]

_MAX_NODES_SEPARATORS = 16
_MAX_NON_EDGES = 22


def brute_force_minimal_separators(
    graph: Graph, max_nodes: int = _MAX_NODES_SEPARATORS
) -> set[frozenset[Node]]:
    """Return ``MinSep(graph)`` by testing every vertex subset.

    A subset S is a minimal separator iff ``g \\ S`` has at least two
    full components.  O(2^n · (n + m)); refuses graphs above
    ``max_nodes`` nodes.
    """
    nodes = graph.nodes()
    if len(nodes) > max_nodes:
        raise EnumerationBudgetExceeded(
            f"{len(nodes)} nodes exceeds the brute-force limit of {max_nodes}"
        )
    separators: set[frozenset[Node]] = set()
    for size in range(len(nodes)):
        for subset in itertools.combinations(nodes, size):
            if len(full_components(graph, subset)) >= 2:
                separators.add(frozenset(subset))
    return separators


def brute_force_minimal_triangulations(
    graph: Graph, max_non_edges: int = _MAX_NON_EDGES
) -> set[frozenset[frozenset[Node]]]:
    """Return ``MinTri(graph)`` as a set of fill-edge sets.

    Every subset of the non-edges is tried; chordal fillings are kept
    and the inclusion-minimal ones among them are returned.  Each
    result is a frozenset of 2-element frozensets (the fill edges).
    O(2^non_edges); refuses graphs with more than ``max_non_edges``
    missing edges.
    """
    non_edges = graph.missing_edges()
    if len(non_edges) > max_non_edges:
        raise EnumerationBudgetExceeded(
            f"{len(non_edges)} non-edges exceeds the brute-force limit "
            f"of {max_non_edges}"
        )
    chordal_fills: list[frozenset[frozenset[Node]]] = []
    for size in range(len(non_edges) + 1):
        for fill in itertools.combinations(non_edges, size):
            filled = graph.copy()
            filled.add_edges(fill)
            if is_chordal(filled):
                chordal_fills.append(
                    frozenset(frozenset(edge) for edge in fill)
                )
    minimal = {
        fill
        for fill in chordal_fills
        if not any(other < fill for other in chordal_fills)
    }
    return minimal


def brute_force_maximal_cliques(graph: Graph) -> set[frozenset[Node]]:
    """Return all maximal cliques via Bron–Kerbosch with pivoting.

    Works for arbitrary graphs (not only chordal); exponential in the
    worst case but fine for the test sizes.
    """
    cliques: set[frozenset[Node]] = set()
    if graph.num_nodes == 0:
        # The empty set is the unique maximal clique of the empty graph.
        return {frozenset()}

    adjacency = {node: graph.adjacency(node) for node in graph.node_set()}

    def expand(current: set[Node], candidates: set[Node], excluded: set[Node]) -> None:
        if not candidates and not excluded:
            cliques.add(frozenset(current))
            return
        pivot = max(
            candidates | excluded,
            key=lambda u: len(adjacency[u] & candidates),
        )
        for node in list(candidates - adjacency[pivot]):
            expand(
                current | {node},
                candidates & adjacency[node],
                excluded & adjacency[node],
            )
            candidates.discard(node)
            excluded.add(node)

    expand(set(), set(graph.node_set()), set())
    return cliques


def brute_force_maximal_independent_sets(graph: Graph) -> set[frozenset[Node]]:
    """Return all maximal independent sets (cliques of the complement)."""
    return brute_force_maximal_cliques(graph.complement())


def brute_force_maximal_parallel_families(
    graph: Graph, max_nodes: int = _MAX_NODES_SEPARATORS
) -> set[frozenset[frozenset[Node]]]:
    """Return all maximal pairwise-parallel families of minimal separators.

    Materialises the separator graph explicitly (nodes = brute-force
    ``MinSep``, edges = crossing pairs) and runs Bron–Kerbosch on its
    complement.  By Parra–Scheffler these families are in bijection
    with ``MinTri(graph)``, so this doubles as a second independent
    triangulation-count oracle.
    """
    separators = sorted(
        brute_force_minimal_separators(graph, max_nodes=max_nodes),
        key=lambda s: (len(s), sorted(map(repr, s))),
    )
    index = {separator: i for i, separator in enumerate(separators)}
    separator_graph = Graph(nodes=range(len(separators)))
    for s, t in itertools.combinations(separators, 2):
        if are_crossing(graph, s, t):
            separator_graph.add_edge(index[s], index[t])
    families = brute_force_maximal_independent_sets(separator_graph)
    return {
        frozenset(separators[i] for i in family) for family in families
    }
