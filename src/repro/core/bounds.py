"""Treewidth lower bounds (extension).

Anytime enumeration needs a stopping criterion: once the best width
seen matches a lower bound, the search is provably optimal and can
stop.  This module implements the standard cheap bounds:

* :func:`degeneracy_lower_bound` — the degeneracy (max over the
  min-degree elimination of the *remaining* minimum degree), a classic
  treewidth lower bound;
* :func:`mmd_plus_lower_bound` — Maximum Minimum Degree+ (contract the
  minimum-degree vertex into its least-degree neighbour instead of
  deleting), which dominates plain degeneracy;
* :func:`clique_lower_bound` — ω(g) − 1 via a greedy clique grown from
  every vertex (a lower bound on ω, hence on treewidth);
* :func:`treewidth_lower_bound` — the best of the above.

All bounds are also valid for every individual minimal triangulation's
width, which is what :func:`repro.core.ranked.best_triangulation`
exploits through its ``lower_bound`` hook.
"""

from __future__ import annotations

from repro.graph.graph import Graph, Node, _sort_nodes

__all__ = [
    "degeneracy_lower_bound",
    "mmd_plus_lower_bound",
    "clique_lower_bound",
    "treewidth_lower_bound",
    "min_fill_lower_bound",
]


def degeneracy_lower_bound(graph: Graph) -> int:
    """The degeneracy of ``graph``: max over deletions of the min degree.

    For every graph, treewidth ≥ degeneracy.
    """
    if graph.num_nodes == 0:
        return -1
    work = graph.copy()
    best = 0
    while work.num_nodes:
        node = min(work.nodes(), key=lambda v: (work.degree(v), repr(v)))
        best = max(best, work.degree(node))
        work.remove_node(node)
    return best


def mmd_plus_lower_bound(graph: Graph) -> int:
    """Maximum Minimum Degree+ (least-c neighbour contraction).

    Repeatedly pick a minimum-degree vertex v and *contract* it into
    its minimum-degree neighbour; record the degree of v before each
    contraction.  Contraction preserves treewidth ≤, so the maximum
    recorded degree lower-bounds the treewidth.  Dominates
    :func:`degeneracy_lower_bound` on most graphs.
    """
    if graph.num_nodes == 0:
        return -1
    work = graph.copy()
    best = 0
    while work.num_nodes > 1:
        node = min(work.nodes(), key=lambda v: (work.degree(v), repr(v)))
        degree = work.degree(node)
        best = max(best, degree)
        neighbours = work.neighbors(node)
        if not neighbours:
            work.remove_node(node)
            continue
        target = min(neighbours, key=lambda v: (work.degree(v), repr(v)))
        # Contract node into target.
        for other in neighbours:
            if other != target:
                work.add_edge(target, other)
        work.remove_node(node)
    return best


def clique_lower_bound(graph: Graph) -> int:
    """ω(g) − 1 estimated by greedy cliques grown from every vertex.

    The clique number lower-bounds treewidth + 1; the greedy estimate
    lower-bounds the clique number, so the bound is always valid (just
    not always tight).
    """
    if graph.num_nodes == 0:
        return -1
    best = 1
    for start in _sort_nodes(graph.node_set()):
        clique = {start}
        candidates = graph.neighbors(start)
        while candidates:
            node = max(
                candidates,
                key=lambda v: (len(graph.adjacency(v) & candidates), repr(v)),
            )
            clique.add(node)
            candidates &= graph.adjacency(node)
        best = max(best, len(clique))
    return best - 1


def treewidth_lower_bound(graph: Graph) -> int:
    """The best of the implemented lower bounds."""
    return max(
        degeneracy_lower_bound(graph),
        mmd_plus_lower_bound(graph),
        clique_lower_bound(graph),
    )


def min_fill_lower_bound(graph: Graph) -> int:
    """A minimum-fill-in lower bound from disjoint chordless 4-cycles.

    Every chordless cycle of length 4 needs at least one fill edge, and
    *edge-disjoint* chordless 4-cycles need distinct fill edges unless
    the fill edge serves two cycles — which it cannot when the cycles
    share no non-adjacent vertex pair.  We greedily pack chordless
    4-cycles that are pairwise disjoint on their two diagonals; their
    count lower-bounds the fill-in.  Zero for chordal graphs.
    """
    adj = {v: graph.adjacency(v) for v in graph.node_set()}
    used_pairs: set[frozenset[Node]] = set()
    count = 0
    nodes = _sort_nodes(graph.node_set())
    for a in nodes:
        for b in _sort_nodes(adj[a]):
            if not _lt_nodes(a, b):
                continue
            for c in _sort_nodes(adj[b]):
                if c == a or c in adj[a]:
                    pass
                else:
                    for d in _sort_nodes(adj[c] & adj[a]):
                        if d == b or d in adj[b]:
                            continue
                        # a-b-c-d-a is a chordless 4-cycle with
                        # diagonals {a, c} and {b, d}.
                        diag1 = frozenset({a, c})
                        diag2 = frozenset({b, d})
                        if diag1 in used_pairs or diag2 in used_pairs:
                            continue
                        used_pairs.add(diag1)
                        used_pairs.add(diag2)
                        count += 1
    return count


def _lt_nodes(a: Node, b: Node) -> bool:
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return (type(a).__name__, repr(a)) < (type(b).__name__, repr(b))
