"""The :class:`Triangulation` result object (system S17).

Enumeration results are wrapped in a small value object carrying the
chordal graph together with the two quality measures the paper's
experiments track:

* **width** — size of the largest clique of the triangulation minus
  one (equals the width of the corresponding tree decompositions);
* **fill** — the number of added edges.

The object also exposes the minimal-separator family that identifies
the triangulation under the Parra–Scheffler bijection, and a
``tree_decomposition()`` convenience producing the canonical proper
tree decomposition (the clique tree).
"""

from __future__ import annotations

from functools import cached_property

from repro.chordal.cliques import CliqueForest, mcs_clique_forest
from repro.chordal.sandwich import is_minimal_triangulation
from repro.graph.graph import Graph, Node, edge_key, sort_edges

__all__ = ["Triangulation"]


class Triangulation:
    """A (minimal) triangulation of a base graph.

    Parameters
    ----------
    base:
        The original graph g.
    fill_edges:
        The edges of ``E(h) \\ E(g)``, canonicalised and sorted.

    Instances compare equal (and hash) by their fill-edge set, which
    identifies the triangulation of a fixed base graph.
    """

    __slots__ = ("_base", "_fill", "__dict__")

    def __init__(self, base: Graph, fill_edges: tuple[tuple[Node, Node], ...]) -> None:
        self._base = base
        self._fill = tuple(sort_edges(edge_key(u, v) for u, v in fill_edges))

    @classmethod
    def from_chordal_supergraph(cls, base: Graph, chordal: Graph) -> "Triangulation":
        """Build from a chordal supergraph h of g (fill = E(h) − E(g))."""
        fill = tuple(
            tuple(edge)
            for edge in (chordal.edge_set() - base.edge_set())
        )
        return cls(base, tuple(edge_key(u, v) for u, v in fill))

    @property
    def base(self) -> Graph:
        """The original (untriangulated) graph g."""
        return self._base

    @property
    def fill_edges(self) -> tuple[tuple[Node, Node], ...]:
        """The added edges, sorted canonically."""
        return self._fill

    @property
    def fill(self) -> int:
        """The *fill* quality measure: number of added edges."""
        return len(self._fill)

    @cached_property
    def graph(self) -> Graph:
        """The chordal graph h = g + fill."""
        filled = self._base.copy()
        filled.add_edges(self._fill)
        return filled

    @cached_property
    def clique_forest(self) -> CliqueForest:
        """The clique forest of h (cliques, parents, separators)."""
        return mcs_clique_forest(self.graph)

    @property
    def width(self) -> int:
        """The *width* quality measure: max clique size of h minus one."""
        return self.clique_forest.width

    @cached_property
    def minimal_separators(self) -> frozenset[frozenset[Node]]:
        """``MinSep(h)`` — the maximal pairwise-parallel family for h.

        Under the Parra–Scheffler bijection this family identifies the
        triangulation: ``h = g[MinSep(h)]``.
        """
        from repro.chordal.chordal_separators import minimal_separators_of_chordal

        return frozenset(minimal_separators_of_chordal(self.graph))

    def is_minimal(self) -> bool:
        """Check minimality from first principles (RTL single-edge test).

        Provided for verification; the enumerator only produces minimal
        triangulations, so this is expected to always return True for
        enumeration output.
        """
        return is_minimal_triangulation(self._base, self.graph)

    def tree_decomposition(self):
        """Return the canonical proper tree decomposition (clique tree) of h.

        The bags are ``MaxClq(h)``; see paper Section 5.  Import is
        deferred to avoid a package cycle.
        """
        from repro.decomposition.clique_tree import clique_tree

        return clique_tree(self.graph)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Triangulation):
            return NotImplemented
        return self._fill == other._fill and self._base == other._base

    def __hash__(self) -> int:
        return hash(self._fill)

    def __repr__(self) -> str:
        return (
            f"Triangulation(width={self.width}, fill={self.fill}, "
            f"base={self._base.summary()!r})"
        )
