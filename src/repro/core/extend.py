"""The ``Extend`` procedure (system S15; paper Figure 3).

``Extend(g, φ)`` grows a set φ of pairwise-parallel minimal separators
of g into a *maximal* such set:

1. saturate the separators of φ, producing ``g[φ]``;
2. triangulate ``g[φ]`` with any polynomial-time heuristic
   (``Triangulate``);
3. if the heuristic does not guarantee minimality, shrink the result to
   a minimal triangulation of ``g[φ]`` (``MinTriSandwich``);
4. return the minimal separators of the resulting chordal graph h
   (``ExtractMinSeps``, linear time via the clique forest).

Correctness (paper Lemma 4.6) rests on Heggernes' theorem: a minimal
triangulation of ``g[φ]`` is a minimal triangulation of g, its minimal
separator set is a maximal pairwise-parallel family, and it contains φ.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.chordal.chordal_separators import minimal_separators_of_chordal
from repro.chordal.sandwich import minimal_triangulation_sandwich
from repro.chordal.triangulate import Triangulator, get_triangulator
from repro.graph.graph import Graph, Node

__all__ = ["extend_parallel_set", "minimal_triangulation_via"]

Separator = frozenset[Node]


def minimal_triangulation_via(
    graph: Graph, triangulator: str | Triangulator
) -> Graph:
    """Return a minimal triangulation of ``graph`` using ``triangulator``.

    Runs the heuristic and, when it does not guarantee minimality,
    applies the sandwich step.  This is steps 1–2 of ``Extend`` for
    φ = ∅ and is also useful standalone.
    """
    method = get_triangulator(triangulator)
    filled, __ = method.triangulate(graph)
    if not method.guarantees_minimal:
        filled, __ = minimal_triangulation_sandwich(graph, filled)
    return filled


def extend_parallel_set(
    graph: Graph,
    separators: Iterable[Separator],
    triangulator: str | Triangulator = "mcs_m",
) -> frozenset[Separator]:
    """Extend pairwise-parallel minimal separators to a maximal family.

    Parameters
    ----------
    graph:
        The base graph g.
    separators:
        A (possibly empty) set φ of pairwise-parallel minimal
        separators of g.  The input is *trusted*, as in the paper: the
        enumeration algorithm only ever passes valid sets.  Use
        :func:`repro.chordal.minimal_separators.is_pairwise_parallel`
        to validate untrusted input.
    triangulator:
        Name or instance of the triangulation heuristic.

    Returns
    -------
    frozenset of frozensets
        ``MinSep(h)`` for a minimal triangulation h of ``g[φ]`` — a
        maximal pairwise-parallel family containing φ (Lemma 4.6).
    """
    # Saturate g[φ] on a scratch bitmask copy: one mask per separator,
    # no label-level edge bookkeeping (the fill is not needed here).
    # The copy keeps the graph-core backend, so a numpy-backed input
    # runs the whole Extend pipeline — saturation, the triangulation
    # heuristic, the clique-forest extraction — on the packed kernels.
    saturated = graph.copy()
    core = saturated.core
    for separator in separators:
        core.saturate(saturated.mask_of(separator))
    triangulated = minimal_triangulation_via(saturated, triangulator)
    # ExtractMinSeps runs at the mask level inside
    # minimal_separators_of_chordal (clique-forest scan, no per-clique
    # label translation); labels materialise once, on the answer
    # boundary.
    return frozenset(minimal_separators_of_chordal(triangulated))
