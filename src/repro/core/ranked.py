"""Cost-guided (best-first) enumeration of minimal triangulations.

An extension beyond the paper: the EnumMIS proofs are agnostic to the
order in which the answer queue Q is drained, so draining it through a
priority queue keyed by any cost of the corresponding triangulation
yields a *quality-biased anytime* enumerator — low-cost triangulations
tend to surface early, while completeness, duplicate-freedom and
incremental polynomial time are untouched.

This is a pragmatic middle ground between the paper (arbitrary order)
and its follow-up on exact ranked enumeration (Ravid, Medini &
Kimelfeld, PODS 2019), which achieves provably sorted output when the
number of minimal separators is polynomial.  Here the order is
heuristic: the k-th output is *not* guaranteed to be the k-th best, but
in practice the best-width/fill results arrive far earlier than under
FIFO order (see ``tests/test_ranked.py`` for the measured bias).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.chordal.triangulate import Triangulator, get_triangulator
from repro.core.triangulation import Triangulation
from repro.graph.components import connected_components
from repro.graph.graph import Graph, Node
from repro.sgr.enum_mis import EnumMISStatistics, enumerate_maximal_independent_sets
from repro.sgr.separator_graph import MinimalSeparatorSGR

__all__ = [
    "enumerate_minimal_triangulations_prioritized",
    "best_triangulation",
    "anytime_treewidth",
    "anytime_min_fill",
]

CostFunction = Callable[[Triangulation], object]

_NAMED_COSTS: dict[str, CostFunction] = {
    "width": lambda t: (t.width, t.fill),
    "fill": lambda t: (t.fill, t.width),
}


def _resolve_cost(cost: str | CostFunction) -> CostFunction:
    if callable(cost):
        return cost
    try:
        return _NAMED_COSTS[cost]
    except KeyError:
        raise ValueError(
            f"unknown cost {cost!r}; use 'width', 'fill' or a callable"
        ) from None


def enumerate_minimal_triangulations_prioritized(
    graph: Graph,
    cost: str | CostFunction = "width",
    triangulator: str | Triangulator = "mcs_m",
    stats: EnumMISStatistics | None = None,
    backend: str = "serial",
    workers: int | None = None,
) -> Iterator[Triangulation]:
    """Enumerate ``MinTri(graph)`` best-first by ``cost``.

    Parameters
    ----------
    cost:
        ``"width"`` (ties broken by fill), ``"fill"`` (ties broken by
        width) or any callable mapping a
        :class:`~repro.core.triangulation.Triangulation` to a sortable
        key.  The cost is evaluated once per generated answer.
    triangulator:
        The heuristic plugged into ``Extend``.
    backend / workers:
        Execution strategy, resolved through the enumeration-engine
        registry (:mod:`repro.engine`); ``"sharded"`` drains the same
        best-first queue while extend tasks run on ``workers``
        processes.  The serial default keeps this module's pipeline.

    Yields
    ------
    Triangulation
        Every minimal triangulation exactly once, in heuristically
        cost-increasing order (answers are yielded when popped from the
        best-first queue, i.e. ``EnumMISHold`` discipline).

    Notes
    -----
    Disconnected graphs are handled per component, cheapest component
    order first; the cross-component product uses the plain enumerator.
    """
    if backend != "serial":
        from repro.engine import EnumerationEngine, EnumerationJob

        yield from EnumerationEngine(backend, workers=workers).stream(
            EnumerationJob(graph, triangulator=triangulator, cost=cost),
            stats=stats,
        )
        return
    cost_fn = _resolve_cost(cost)
    method = get_triangulator(triangulator)
    components = connected_components(graph)
    if len(components) > 1:
        # Delegate the product structure to the plain enumerator and
        # re-rank greedily within a window-free stream: materialise per
        # component (costs stay component-local and exact ordering of
        # the product is out of scope for the heuristic order anyway).
        from repro.core.enumerate import enumerate_minimal_triangulations

        # graph_backend=None: keep the caller's graph-core choice —
        # engine-routed jobs arrive here already resolved, and "auto"
        # would re-resolve (and possibly override) it.
        yield from enumerate_minimal_triangulations(
            graph, triangulator=method, mode="UP", stats=stats,
            graph_backend=None,
        )
        return

    sgr = MinimalSeparatorSGR(graph, method)

    def materialise(family: frozenset[frozenset[Node]]) -> Triangulation:
        saturated = graph.copy()
        fill: list[tuple[Node, Node]] = []
        for separator in family:
            fill.extend(saturated.saturate(separator))
        return Triangulation(graph, tuple(fill))

    def priority(family: frozenset[frozenset[Node]]) -> object:
        return cost_fn(materialise(family))

    for family in enumerate_maximal_independent_sets(
        sgr, mode="UP", stats=stats, priority=priority
    ):
        yield materialise(family)


def anytime_treewidth(
    graph: Graph,
    time_budget: float | None = None,
    max_results: int | None = None,
    triangulator: str | Triangulator = "mcs_m",
) -> tuple[int, Triangulation, bool]:
    """Anytime treewidth: best-first enumeration with a lower-bound stop.

    Runs the width-prioritized enumeration until (a) the best width
    matches :func:`repro.core.bounds.treewidth_lower_bound` — the
    result is then *provably optimal* — or (b) the enumeration is
    exhausted — also optimal — or (c) the time/result budget runs out.

    Returns ``(width, triangulation, proven_optimal)``.
    """
    import time as _time

    from repro.core.bounds import treewidth_lower_bound

    lower = treewidth_lower_bound(graph)
    start = _time.monotonic()
    best: Triangulation | None = None
    exhausted = True
    count = 0
    for candidate in enumerate_minimal_triangulations_prioritized(
        graph, cost="width", triangulator=triangulator
    ):
        count += 1
        if best is None or candidate.width < best.width:
            best = candidate
        if best.width <= lower:
            return best.width, best, True
        if max_results is not None and count >= max_results:
            exhausted = False
            break
        if time_budget is not None and _time.monotonic() - start >= time_budget:
            exhausted = False
            break
    assert best is not None
    return best.width, best, exhausted


def anytime_min_fill(
    graph: Graph,
    time_budget: float | None = None,
    max_results: int | None = None,
    triangulator: str | Triangulator = "mcs_m",
) -> tuple[int, Triangulation, bool]:
    """Anytime minimum fill-in: fill-prioritized search, lower-bound stop.

    The analogue of :func:`anytime_treewidth` for the paper's second
    quality measure.  The lower bound comes from packing
    diagonal-disjoint chordless 4-cycles
    (:func:`repro.core.bounds.min_fill_lower_bound`); matching it — or
    exhausting the enumeration — proves optimality.

    Returns ``(fill, triangulation, proven_optimal)``.
    """
    import time as _time

    from repro.core.bounds import min_fill_lower_bound

    lower = min_fill_lower_bound(graph)
    start = _time.monotonic()
    best: Triangulation | None = None
    exhausted = True
    count = 0
    for candidate in enumerate_minimal_triangulations_prioritized(
        graph, cost="fill", triangulator=triangulator
    ):
        count += 1
        if best is None or candidate.fill < best.fill:
            best = candidate
        if best.fill <= lower:
            return best.fill, best, True
        if max_results is not None and count >= max_results:
            exhausted = False
            break
        if time_budget is not None and _time.monotonic() - start >= time_budget:
            exhausted = False
            break
    assert best is not None
    return best.fill, best, exhausted


def best_triangulation(
    graph: Graph,
    cost: str | CostFunction = "width",
    max_results: int | None = 100,
    triangulator: str | Triangulator = "mcs_m",
) -> Triangulation:
    """Return the best triangulation found within a bounded search.

    Runs the prioritized enumeration for up to ``max_results`` answers
    (``None`` for exhaustive — exact optimum, exponential time) and
    returns the cost-minimal one.
    """
    cost_fn = _resolve_cost(cost)
    best: Triangulation | None = None
    best_key: object = None
    for index, candidate in enumerate(
        enumerate_minimal_triangulations_prioritized(
            graph, cost=cost_fn, triangulator=triangulator
        )
    ):
        key = cost_fn(candidate)
        if best is None or key < best_key:  # type: ignore[operator]
            best, best_key = candidate, key
        if max_results is not None and index + 1 >= max_results:
            break
    assert best is not None
    return best
