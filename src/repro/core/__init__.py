"""The paper's primary contribution: minimal-triangulation enumeration."""

from repro.core.bounds import (
    clique_lower_bound,
    degeneracy_lower_bound,
    min_fill_lower_bound,
    mmd_plus_lower_bound,
    treewidth_lower_bound,
)
from repro.core.enumerate import (
    count_minimal_triangulations,
    enumerate_minimal_triangulations,
    minimal_triangulation,
)
from repro.core.extend import extend_parallel_set, minimal_triangulation_via
from repro.core.ranked import (
    anytime_min_fill,
    anytime_treewidth,
    best_triangulation,
    enumerate_minimal_triangulations_prioritized,
)
from repro.core.treewidth import min_fill_in_exact, treewidth_exact
from repro.core.triangulation import Triangulation

__all__ = [
    "Triangulation",
    "enumerate_minimal_triangulations",
    "count_minimal_triangulations",
    "minimal_triangulation",
    "extend_parallel_set",
    "enumerate_minimal_triangulations_prioritized",
    "best_triangulation",
    "anytime_treewidth",
    "anytime_min_fill",
    "min_fill_lower_bound",
    "treewidth_lower_bound",
    "degeneracy_lower_bound",
    "mmd_plus_lower_bound",
    "clique_lower_bound",
    "minimal_triangulation_via",
    "treewidth_exact",
    "min_fill_in_exact",
]
