"""Top-level enumeration of minimal triangulations (system S16).

``enumerate_minimal_triangulations`` realises the paper's main result
(Corollary 4.8): all minimal triangulations of a graph, in incremental
polynomial time, as a lazy generator of
:class:`~repro.core.triangulation.Triangulation` objects.

The pipeline for a *connected* graph is exactly the paper's:
``EnumMIS`` over the separator-graph SGR, with the ``Extend`` expansion
wrapping a pluggable triangulation heuristic; each produced maximal
pairwise-parallel family φ is materialised as the triangulation
``g[φ]``.

Disconnected graphs are handled by the classical product rule: a
minimal triangulation of g is an independent choice of a minimal
triangulation per connected component.  The per-component enumerations
are interleaved through a lazy fair product, preserving incremental
output (the first answer appears after one ``Extend`` per component).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.chordal.triangulate import Triangulator, get_triangulator
from repro.core.extend import minimal_triangulation_via
from repro.core.triangulation import Triangulation
from repro.graph.components import connected_components
from repro.graph.graph import Graph, Node
from repro.sgr.enum_mis import EnumMISStatistics, enumerate_maximal_independent_sets
from repro.sgr.separator_graph import MinimalSeparatorSGR

__all__ = [
    "enumerate_minimal_triangulations",
    "minimal_triangulation",
    "count_minimal_triangulations",
]


def minimal_triangulation(
    graph: Graph, triangulator: str | Triangulator = "mcs_m"
) -> Triangulation:
    """Return one minimal triangulation (what the bare heuristic gives).

    This is the paper's quality baseline: "the result we would get by
    running the minimal triangulation algorithm we used, on the
    original input graph" (Section 6.3).
    """
    filled = minimal_triangulation_via(graph, triangulator)
    return Triangulation.from_chordal_supergraph(graph, filled)


def enumerate_minimal_triangulations(
    graph: Graph,
    triangulator: str | Triangulator = "mcs_m",
    mode: str = "UG",
    stats: EnumMISStatistics | None = None,
    decompose: str = "components",
    backend: str = "serial",
    workers: int | None = None,
    graph_backend: str | None = "auto",
) -> Iterator[Triangulation]:
    """Enumerate ``MinTri(graph)`` in incremental polynomial time.

    Parameters
    ----------
    graph:
        Any finite simple graph (connected or not).
    triangulator:
        The heuristic plugged into ``Extend`` (``"mcs_m"``,
        ``"lb_triang"``, ``"min_fill"``, ``"min_degree"``,
        ``"natural"``, ``"complete"`` or a custom
        :class:`~repro.chordal.triangulate.Triangulator`).
    mode:
        ``"UG"`` (yield upon generation) or ``"UP"`` (yield upon pop);
        see :mod:`repro.sgr.enum_mis`.
    stats:
        Optional :class:`~repro.sgr.enum_mis.EnumMISStatistics` updated
        in place (shared across components for disconnected input).
    decompose:
        ``"components"`` (default) runs the SGR pipeline per connected
        component and combines results through the product rule;
        ``"atoms"`` additionally splits on clique minimal separators
        (see :mod:`repro.chordal.atoms`), which can shrink the
        separator space exponentially; ``"none"`` disables splitting.
    backend:
        Execution strategy, resolved through the enumeration-engine
        registry (:mod:`repro.engine`): ``"serial"`` (default, this
        module's pipeline) or ``"sharded"`` (answer queue partitioned
        across a multiprocessing worker pool).  Every backend yields
        the same answer set.
    workers:
        Worker-pool size for parallel backends (``None`` = one per
        CPU); ignored by the serial backend.
    graph_backend:
        Graph-core representation: ``"indexed"``, ``"numpy"`` or
        ``"auto"`` (default — the packed-numpy core at or above
        :data:`repro.graph.bitset_np.NUMPY_THRESHOLD` nodes, the
        single-int bitmask core below).  ``None`` keeps the graph's
        current core untouched (used by the engine, which resolves the
        backend before dispatch).

    Yields
    ------
    Triangulation
        Every minimal triangulation of ``graph``, exactly once.
    """
    if backend != "serial":
        from repro.engine import EnumerationEngine, EnumerationJob

        yield from EnumerationEngine(backend, workers=workers).stream(
            EnumerationJob(
                graph,
                mode=mode,
                triangulator=triangulator,
                decompose=decompose,
                graph_backend=(
                    "auto" if graph_backend is None else graph_backend
                ),
            ),
            stats=stats,
        )
        return
    from repro.graph import resolve_graph_backend

    graph = resolve_graph_backend(graph, graph_backend)
    method = get_triangulator(triangulator)
    if decompose not in {"none", "components", "atoms"}:
        raise ValueError(
            f"decompose must be 'none', 'components' or 'atoms', got {decompose!r}"
        )
    if decompose == "none":
        yield from _enumerate_connected(graph, method, mode, stats)
        return
    if decompose == "atoms":
        from repro.chordal.atoms import atoms

        regions = atoms(graph)
    else:
        regions = connected_components(graph)
    if len(regions) <= 1:
        yield from _enumerate_connected(graph, method, mode, stats)
        return

    per_region = [
        _enumerate_connected(graph.subgraph(region), method, mode, stats)
        for region in regions
    ]
    for combination in _fair_product(per_region):
        fill: list[tuple[Node, Node]] = []
        for part in combination:
            fill.extend(part.fill_edges)
        yield Triangulation(graph, tuple(fill))


def count_minimal_triangulations(
    graph: Graph,
    triangulator: str | Triangulator = "mcs_m",
    limit: int | None = None,
) -> int:
    """Count minimal triangulations, optionally stopping at ``limit``."""
    count = 0
    for __ in enumerate_minimal_triangulations(graph, triangulator):
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def _enumerate_connected(
    graph: Graph,
    method: Triangulator,
    mode: str,
    stats: EnumMISStatistics | None,
) -> Iterator[Triangulation]:
    if graph.num_nodes == 0:
        yield Triangulation(graph, ())
        return
    sgr = MinimalSeparatorSGR(graph, method, stats=stats)
    core = graph.core
    label_of = graph.label_of
    for family in enumerate_maximal_independent_sets(sgr, mode=mode, stats=stats):
        # Materialise the fill of g[family] at yield time: saturate the
        # separator masks on a scratch adjacency copy and translate the
        # added index pairs back to labels only for the answer object.
        scratch = core.copy()
        fill: list[tuple[Node, Node]] = []
        for separator in family:
            for u, v in scratch.saturate(graph.mask_of(separator)):
                fill.append((label_of(u), label_of(v)))
        yield Triangulation(graph, tuple(fill))


def _fair_product(iterators: list[Iterator[Triangulation]]) -> Iterator[tuple]:
    """Lazily enumerate the cartesian product of independent generators.

    Every tuple is produced exactly once, attributed to its
    latest-arriving coordinate: when generator i yields a new element
    x, all tuples combining x with already-cached elements of the other
    generators are emitted.  Output is incremental — no generator needs
    to be exhausted before the first tuple appears.
    """
    caches: list[list[Triangulation]] = [[] for __ in iterators]
    active = list(range(len(iterators)))

    # Seed one element per component (every graph has ≥ 1 minimal
    # triangulation, so this never raises StopIteration).
    for i, iterator in enumerate(iterators):
        caches[i].append(next(iterator))
    yield tuple(cache[0] for cache in caches)

    while active:
        for i in list(active):
            try:
                new_element = next(iterators[i])
            except StopIteration:
                active.remove(i)
                continue
            other_caches = [
                cache for j, cache in enumerate(caches) if j != i
            ]
            for rest in itertools.product(*other_caches):
                combo = list(rest)
                combo.insert(i, new_element)
                yield tuple(combo)
            caches[i].append(new_element)
