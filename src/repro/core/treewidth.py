"""Exact treewidth and minimum fill-in for small graphs (system S18).

These exponential-time references are used by the test-suite and the
quality experiments as ground truth: both measures are minimised by
*some* elimination ordering, and the elimination game depends only on
the *set* of already-eliminated vertices, not their order — which
yields a Held–Karp style dynamic program over vertex subsets.

For an eliminated set S and a vertex v ∉ S:

* ``reach(S, v)`` — the neighbours of v in the partially filled graph:
  vertices outside S ∪ {v} adjacent to v or connected to it through S;
* the width cost of eliminating v next is ``|reach(S, v)|``;
* the fill cost is the number of pairs in ``reach(S, v)`` not yet
  connected in the filled graph (u, w connected iff ``w ∈ reach(S, u)``).

Treewidth minimises the maximum width cost along the ordering; minimum
fill-in minimises the total fill cost.  Complexity is O*(2^n), so both
functions refuse graphs above an explicit node bound.
"""

from __future__ import annotations

from collections import deque
from functools import lru_cache

from repro.graph.graph import Graph

__all__ = ["treewidth_exact", "min_fill_in_exact"]

_DEFAULT_TW_LIMIT = 18
_DEFAULT_FILL_LIMIT = 13


def treewidth_exact(graph: Graph, max_nodes: int = _DEFAULT_TW_LIMIT) -> int:
    """Return the exact treewidth of ``graph`` (DP over vertex subsets).

    Raises
    ------
    ValueError
        If the graph has more than ``max_nodes`` nodes (the DP visits
        2^n subsets).
    """
    nodes = graph.nodes()
    n = len(nodes)
    if n > max_nodes:
        raise ValueError(
            f"treewidth_exact is exponential; {n} nodes exceeds the "
            f"limit of {max_nodes}"
        )
    if n == 0:
        return -1
    index = {node: i for i, node in enumerate(nodes)}
    adjacency = [
        sum(1 << index[neigh] for neigh in graph.neighbors(node)) for node in nodes
    ]
    full = (1 << n) - 1

    @lru_cache(maxsize=None)
    def reach_mask(eliminated: int, v: int) -> int:
        """Bitmask of reach(S, v): current neighbours of v after S."""
        seen = 1 << v
        frontier = deque([v])
        reached = 0
        while frontier:
            u = frontier.popleft()
            candidates = adjacency[u] & ~seen
            seen |= candidates
            reached |= candidates & ~eliminated
            # Only eliminated vertices conduct reachability further.
            through = candidates & eliminated
            while through:
                low = through & -through
                frontier.append(low.bit_length() - 1)
                through &= through - 1
        return reached

    @lru_cache(maxsize=None)
    def best_width(eliminated: int) -> int:
        if eliminated == full:
            return -1
        best = n  # upper bound: width ≤ n - 1 always
        remaining = full & ~eliminated
        mask = remaining
        while mask:
            low = mask & -mask
            v = low.bit_length() - 1
            mask &= mask - 1
            cost = reach_mask(eliminated, v).bit_count()
            if cost >= best:
                continue  # cannot improve the max along this branch
            tail = best_width(eliminated | low)
            best = min(best, max(cost, tail))
        return best

    result = best_width(0)
    best_width.cache_clear()
    reach_mask.cache_clear()
    return result


def min_fill_in_exact(graph: Graph, max_nodes: int = _DEFAULT_FILL_LIMIT) -> int:
    """Return the exact minimum fill-in (minimum triangulation size).

    Raises
    ------
    ValueError
        If the graph has more than ``max_nodes`` nodes.
    """
    nodes = graph.nodes()
    n = len(nodes)
    if n > max_nodes:
        raise ValueError(
            f"min_fill_in_exact is exponential; {n} nodes exceeds the "
            f"limit of {max_nodes}"
        )
    if n == 0:
        return 0
    index = {node: i for i, node in enumerate(nodes)}
    adjacency = [
        sum(1 << index[neigh] for neigh in graph.neighbors(node)) for node in nodes
    ]
    full = (1 << n) - 1

    @lru_cache(maxsize=None)
    def reach_mask(eliminated: int, v: int) -> int:
        seen = 1 << v
        frontier = deque([v])
        reached = 0
        while frontier:
            u = frontier.popleft()
            candidates = adjacency[u] & ~seen
            seen |= candidates
            reached |= candidates & ~eliminated
            through = candidates & eliminated
            while through:
                low = through & -through
                frontier.append(low.bit_length() - 1)
                through &= through - 1
        return reached

    def fill_cost(eliminated: int, v: int) -> int:
        neighbourhood = reach_mask(eliminated, v)
        cost = 0
        mask = neighbourhood
        while mask:
            low = mask & -mask
            u = low.bit_length() - 1
            mask &= mask - 1
            # Pairs (u, w) with w later in the mask and not connected.
            missing = mask & ~reach_mask(eliminated, u) & ~adjacency[u]
            cost += missing.bit_count()
        return cost

    @lru_cache(maxsize=None)
    def best_fill(eliminated: int) -> int:
        if eliminated == full:
            return 0
        best: int | None = None
        remaining = full & ~eliminated
        mask = remaining
        while mask:
            low = mask & -mask
            v = low.bit_length() - 1
            mask &= mask - 1
            total = fill_cost(eliminated, v) + best_fill(eliminated | low)
            if best is None or total < best:
                best = total
        assert best is not None
        return best

    result = best_fill(0)
    best_fill.cache_clear()
    reach_mask.cache_clear()
    return result
