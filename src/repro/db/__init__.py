"""Join evaluation over tree decompositions (application substrate)."""

from repro.db.evaluate import (
    EvaluationStatistics,
    evaluate_naive,
    evaluate_with_ghd,
)
from repro.db.relation import Relation, fold_join, natural_join, semijoin

__all__ = [
    "Relation",
    "natural_join",
    "semijoin",
    "fold_join",
    "EvaluationStatistics",
    "evaluate_naive",
    "evaluate_with_ghd",
]
