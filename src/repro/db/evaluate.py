"""Join evaluation through (generalized hyper)tree decompositions.

This realises the paper's database use case end to end:

1. the query is a hypergraph (atoms over variables) with an *instance*
   (a relation per atom);
2. pick a GHD — e.g. one produced by
   :func:`repro.hypergraph.ghd.enumerate_ghds` on top of the paper's
   proper-tree-decomposition enumeration;
3. materialise each bag by joining its cover relations and projecting
   onto the bag (the classical GHD evaluation step);
4. the bag relations form an acyclic instance whose join tree is the
   decomposition tree, so the **Yannakakis algorithm** finishes the
   job: a full semijoin reduction (leaves-up then root-down) followed
   by a bottom-up join, with intermediate results bounded by
   input + output size.

The returned :class:`EvaluationStatistics` expose the intermediate
sizes — exactly the quantity that differs by orders of magnitude
between same-width decompositions (Kalinsky et al.), which is what the
enumeration lets applications optimise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.relation import Relation, fold_join, natural_join, semijoin
from repro.hypergraph.ghd import GeneralizedHypertreeDecomposition
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["EvaluationStatistics", "evaluate_with_ghd", "evaluate_naive"]


@dataclass
class EvaluationStatistics:
    """Intermediate-size accounting for one evaluation."""

    bag_sizes: list[int] = field(default_factory=list)
    max_intermediate: int = 0
    total_intermediate: int = 0

    def record(self, relation: Relation) -> Relation:
        size = len(relation)
        self.max_intermediate = max(self.max_intermediate, size)
        self.total_intermediate += size
        return relation


def _check_instance(
    hypergraph: Hypergraph, instance: dict[str, Relation]
) -> None:
    for name in hypergraph.edge_names():
        if name not in instance:
            raise KeyError(f"no relation supplied for atom {name!r}")
        scope = hypergraph.edge(name)
        if set(instance[name].attributes) != set(map(str, scope)) and set(
            instance[name].attributes
        ) != set(scope):
            raise ValueError(
                f"relation for {name!r} has attributes "
                f"{instance[name].attributes}, expected {sorted(map(str, scope))}"
            )


def evaluate_naive(
    hypergraph: Hypergraph,
    instance: dict[str, Relation],
    stats: EvaluationStatistics | None = None,
) -> Relation:
    """Fold-join all atom relations in name order (the baseline plan)."""
    _check_instance(hypergraph, instance)
    stats = stats if stats is not None else EvaluationStatistics()
    result = Relation.unit()
    for name in hypergraph.edge_names():
        result = stats.record(natural_join(result, instance[name]))
    return result


def evaluate_with_ghd(
    hypergraph: Hypergraph,
    instance: dict[str, Relation],
    ghd: GeneralizedHypertreeDecomposition,
    stats: EvaluationStatistics | None = None,
) -> Relation:
    """Evaluate the full join via ``ghd`` using Yannakakis' algorithm.

    Returns the join result projected onto **all** query variables.
    ``stats``, when supplied, accumulates bag and intermediate sizes.
    """
    _check_instance(hypergraph, instance)
    ghd.validate(hypergraph)
    stats = stats if stats is not None else EvaluationStatistics()
    decomposition = ghd.decomposition

    # 3a. Every atom constrains the join, so every atom must be joined
    # into some bag whose variables contain its scope (one exists by
    # the Helly property, paper Proposition 5.3) — the cover alone only
    # guarantees *coverage* of the bag, not that every atom filtered it.
    assigned: list[list[str]] = [[] for __ in decomposition.bags]
    for name in hypergraph.edge_names():
        scope = hypergraph.edge(name)
        for index, bag in enumerate(decomposition.bags):
            if scope <= bag:
                assigned[index].append(name)
                break
        else:  # pragma: no cover - impossible for valid decompositions
            raise ValueError(f"no bag contains the scope of atom {name!r}")

    # 3b. Materialise bag relations: join the cover, project onto the
    # bag, then semijoin with every atom assigned to this bag.
    bag_relations: list[Relation] = []
    for index, (bag, cover) in enumerate(zip(decomposition.bags, ghd.covers)):
        relation = fold_join(instance[name] for name in cover)
        relation = relation.project([str(v) for v in sorted(bag, key=repr)])
        for name in assigned[index]:
            relation = semijoin(relation, instance[name])
        stats.bag_sizes.append(len(relation))
        stats.record(relation)
        bag_relations.append(relation)

    # 4a. Orient the decomposition tree from bag 0.
    adjacency = decomposition.neighbors()
    root = 0
    parent: dict[int, int | None] = {root: None}
    order = [root]
    for current in order:
        for neighbor in adjacency[current]:
            if neighbor not in parent:
                parent[neighbor] = current
                order.append(neighbor)

    # 4b. Yannakakis semijoin reduction: leaves-up, then root-down.
    for index in reversed(order):
        up = parent[index]
        if up is not None:
            bag_relations[up] = stats.record(
                semijoin(bag_relations[up], bag_relations[index])
            )
    for index in order:
        up = parent[index]
        if up is not None:
            bag_relations[index] = stats.record(
                semijoin(bag_relations[index], bag_relations[up])
            )

    # 4c. Bottom-up join along the tree; after the full reduction every
    # partial join grows monotonically towards the output.
    result_by_bag: dict[int, Relation] = {}
    for index in reversed(order):
        result = bag_relations[index]
        for neighbor in adjacency[index]:
            if parent.get(neighbor) == index:
                result = stats.record(natural_join(result, result_by_bag[neighbor]))
        result_by_bag[index] = result
    return result_by_bag[root]
