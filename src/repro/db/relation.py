"""In-memory relations for join evaluation (extension substrate).

The paper's database motivation: a (multi)join query's evaluation plan
is a (generalized hyper)tree decomposition, and same-width
decompositions can differ by orders of magnitude in intermediate-result
size.  This module supplies the relational algebra needed to *measure*
that: named-attribute relations with natural join, projection,
selection and semijoin.

Rows are stored as tuples aligned with the attribute order; attribute
names are the query variables (matching
:class:`~repro.hypergraph.hypergraph.Hypergraph` scopes).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable, Mapping, Sequence

__all__ = ["Relation", "natural_join", "semijoin", "fold_join"]

Row = tuple


class Relation:
    """An immutable named-attribute relation.

    Parameters
    ----------
    attributes:
        Ordered, duplicate-free attribute names.
    rows:
        Iterable of tuples of matching arity.
    """

    __slots__ = ("attributes", "rows")

    def __init__(self, attributes: Sequence[str], rows: Iterable[Row]) -> None:
        self.attributes: tuple[str, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError("duplicate attribute names")
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != len(self.attributes):
                raise ValueError(
                    f"row {row!r} has arity {len(row)}, expected "
                    f"{len(self.attributes)}"
                )
        self.rows: frozenset[Row] = frozen

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "Relation":
        """A relation with no rows."""
        return cls(attributes, ())

    @classmethod
    def unit(cls) -> "Relation":
        """The attribute-free relation with one (empty) row — the join unit."""
        return cls((), ((),))

    @classmethod
    def random(
        cls,
        attributes: Sequence[str],
        num_rows: int,
        domain: int,
        seed: int,
    ) -> "Relation":
        """A random relation with values drawn from ``range(domain)``."""
        rng = random.Random(seed)
        rows = {
            tuple(rng.randrange(domain) for __ in attributes)
            for __ in range(num_rows)
        }
        return cls(attributes, rows)

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if set(self.attributes) != set(other.attributes):
            return False
        return self.rows == other.reordered(self.attributes).rows

    def __hash__(self) -> int:
        canonical = tuple(sorted(self.attributes))
        return hash((canonical, self.reordered(canonical).rows))

    def __repr__(self) -> str:
        return f"Relation(attributes={self.attributes!r}, rows={len(self.rows)})"

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def reordered(self, attributes: Sequence[str]) -> "Relation":
        """The same relation with columns permuted to ``attributes``."""
        target = tuple(attributes)
        if set(target) != set(self.attributes) or len(target) != self.arity:
            raise ValueError("reordering must permute the existing attributes")
        index = [self.attributes.index(a) for a in target]
        return Relation(target, (tuple(row[i] for i in index) for row in self.rows))

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection (with duplicate elimination)."""
        target = tuple(attributes)
        unknown = set(target) - set(self.attributes)
        if unknown:
            raise ValueError(f"unknown attributes {sorted(unknown)}")
        index = [self.attributes.index(a) for a in target]
        return Relation(target, {tuple(row[i] for i in index) for row in self.rows})

    def select(self, predicate: Callable[[Mapping[str, object]], bool]) -> "Relation":
        """Filter rows by a predicate over an attribute → value mapping."""
        kept = [
            row
            for row in self.rows
            if predicate(dict(zip(self.attributes, row)))
        ]
        return Relation(self.attributes, kept)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes through ``mapping`` (missing keys unchanged)."""
        renamed = tuple(mapping.get(a, a) for a in self.attributes)
        return Relation(renamed, self.rows)


def natural_join(left: Relation, right: Relation) -> Relation:
    """The natural join (hash join on the shared attributes)."""
    shared = [a for a in left.attributes if a in right.attributes]
    right_only = [a for a in right.attributes if a not in left.attributes]
    output = left.attributes + tuple(right_only)

    left_key = [left.attributes.index(a) for a in shared]
    right_key = [right.attributes.index(a) for a in shared]
    right_rest = [right.attributes.index(a) for a in right_only]

    buckets: dict[Row, list[Row]] = {}
    for row in right.rows:
        buckets.setdefault(tuple(row[i] for i in right_key), []).append(row)

    rows = []
    for row in left.rows:
        key = tuple(row[i] for i in left_key)
        for match in buckets.get(key, ()):
            rows.append(row + tuple(match[i] for i in right_rest))
    return Relation(output, rows)


def semijoin(left: Relation, right: Relation) -> Relation:
    """Rows of ``left`` that join with at least one row of ``right``."""
    shared = [a for a in left.attributes if a in right.attributes]
    if not shared:
        return left if right.rows else Relation.empty(left.attributes)
    right_keys = {
        tuple(row[right.attributes.index(a)] for a in shared)
        for row in right.rows
    }
    left_index = [left.attributes.index(a) for a in shared]
    kept = [
        row
        for row in left.rows
        if tuple(row[i] for i in left_index) in right_keys
    ]
    return Relation(left.attributes, kept)


def fold_join(relations: Iterable[Relation]) -> Relation:
    """Left-to-right natural join of all relations (the naive plan)."""
    result = Relation.unit()
    for relation in relations:
        result = natural_join(result, relation)
    return result
