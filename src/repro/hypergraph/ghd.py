"""Generalized hypertree decompositions from proper tree decompositions.

A GHD of a hypergraph H is a tree decomposition of H's primal graph
plus, for every bag, a set of hyperedges covering it (Gottlob–Leone–
Scarcello); the width is the largest cover.  This module composes the
paper's proper-tree-decomposition enumeration with the cover solvers:

* :func:`ghd_from_tree_decomposition` — label a given decomposition;
* :func:`enumerate_ghds` — enumerate GHDs, one per proper tree
  decomposition (≡b-class representative by default), in incremental
  polynomial time overall;
* :func:`ghw_upper_bound` — anytime generalized-hypertree-width bound:
  the best GHD width seen within a budget.  For α-acyclic hypergraphs
  the bound reaches the exact value 1.

Minimal triangulations are the right search space here: every GHD of
width k induces a tree decomposition whose bags it covers, and
restricting to proper tree decompositions loses no optimal solutions
among covers of *bag-minimal* decompositions.  (The exact ghw may in
degenerate cases be attained only by non-proper decompositions; the
function is therefore documented as an upper bound, which matches how
DunceCap-style planners use it.)
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Iterator
from dataclasses import dataclass

from repro.decomposition.proper import enumerate_proper_tree_decompositions
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.hypergraph.covers import greedy_cover, minimum_cover
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "GeneralizedHypertreeDecomposition",
    "ghd_from_tree_decomposition",
    "enumerate_ghds",
    "ghw_upper_bound",
]


@dataclass(frozen=True)
class GeneralizedHypertreeDecomposition:
    """A tree decomposition of the primal graph plus per-bag covers."""

    decomposition: TreeDecomposition
    covers: tuple[tuple[str, ...], ...]

    @property
    def width(self) -> int:
        """The GHD width: the largest per-bag cover size."""
        if not self.covers:
            return 0
        return max(len(cover) for cover in self.covers)

    def validate(self, hypergraph: Hypergraph) -> None:
        """Check the decomposition and every cover against ``hypergraph``."""
        self.decomposition.validate(hypergraph.primal_graph())
        if len(self.covers) != self.decomposition.num_bags:
            raise ValueError("one cover per bag is required")
        edges = hypergraph.edges()
        for bag, cover in zip(self.decomposition.bags, self.covers):
            covered = frozenset(
                v for name in cover for v in edges[name]
            )
            if not bag <= covered:
                raise ValueError(
                    f"cover {cover} misses {sorted(map(repr, bag - covered))}"
                )

    def __repr__(self) -> str:
        return (
            f"GeneralizedHypertreeDecomposition(width={self.width}, "
            f"num_bags={self.decomposition.num_bags})"
        )


def ghd_from_tree_decomposition(
    hypergraph: Hypergraph,
    decomposition: TreeDecomposition,
    exact_covers: bool = True,
) -> GeneralizedHypertreeDecomposition:
    """Label every bag of ``decomposition`` with a hyperedge cover.

    ``exact_covers=True`` uses the branch-and-bound minimum cover
    (query-sized hypergraphs), otherwise the greedy approximation.
    """
    edges = hypergraph.edges()
    solver = minimum_cover if exact_covers else greedy_cover
    covers = tuple(
        tuple(solver(bag, edges)) for bag in decomposition.bags
    )
    return GeneralizedHypertreeDecomposition(decomposition, covers)


def enumerate_ghds(
    hypergraph: Hypergraph,
    triangulator: str = "mcs_m",
    exact_covers: bool = True,
    per_class: bool = True,
) -> Iterator[GeneralizedHypertreeDecomposition]:
    """Enumerate GHDs, one per proper tree decomposition of the primal graph.

    Inherits the incremental-polynomial-time behaviour of the
    underlying enumeration (cover computation is per-bag and bounded by
    the hypergraph size; exact covers are exponential only in the
    cover size, which is at most the bag size).
    """
    primal = hypergraph.primal_graph()
    for decomposition in enumerate_proper_tree_decompositions(
        primal, triangulator=triangulator, per_class=per_class
    ):
        yield ghd_from_tree_decomposition(
            hypergraph, decomposition, exact_covers=exact_covers
        )


def ghw_upper_bound(
    hypergraph: Hypergraph,
    time_budget: float | None = None,
    max_decompositions: int | None = 64,
    triangulator: str = "mcs_m",
) -> int:
    """Anytime upper bound on the generalized hypertree width.

    Enumerates GHDs under the given budget and returns the best width
    seen.  α-acyclic hypergraphs reach the exact answer 1 (their join
    tree is a proper tree decomposition of the primal graph).
    """
    if hypergraph.num_vertices == 0:
        return 0
    start = time.monotonic()
    best: int | None = None
    iterator = enumerate_ghds(hypergraph, triangulator=triangulator)
    if max_decompositions is not None:
        iterator = itertools.islice(iterator, max_decompositions)
    for ghd in iterator:
        if best is None or ghd.width < best:
            best = ghd.width
        if best == 1:
            break
        if time_budget is not None and time.monotonic() - start >= time_budget:
            break
    assert best is not None
    return best
