"""Hypergraphs and generalized hypertree decompositions (extension)."""

from repro.hypergraph.covers import (
    UncoverableBagError,
    greedy_cover,
    minimum_cover,
)
from repro.hypergraph.ghd import (
    GeneralizedHypertreeDecomposition,
    enumerate_ghds,
    ghd_from_tree_decomposition,
    ghw_upper_bound,
)
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "Hypergraph",
    "greedy_cover",
    "minimum_cover",
    "UncoverableBagError",
    "GeneralizedHypertreeDecomposition",
    "ghd_from_tree_decomposition",
    "enumerate_ghds",
    "ghw_upper_bound",
]
