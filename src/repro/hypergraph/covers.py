"""Hyperedge covers for decomposition bags (extension).

A GHD labels every bag with a set of hyperedges whose union contains
the bag; the decomposition's width is the largest label.  Minimum set
cover is NP-hard, so two solvers are provided:

* :func:`greedy_cover` — the classical ln-n-approximate greedy;
* :func:`minimum_cover` — exact branch-and-bound, fine for the bag and
  hyperedge counts of query-sized hypergraphs.

Both treat only the bag-relevant part of each hyperedge (scopes are
intersected with the bag first) and break ties deterministically.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.graph.graph import Node

__all__ = ["greedy_cover", "minimum_cover", "UncoverableBagError"]


class UncoverableBagError(ValueError):
    """A bag contains a vertex that no hyperedge covers."""

    def __init__(self, missing: frozenset[Node]) -> None:
        super().__init__(
            f"no hyperedge covers vertices {sorted(map(repr, missing))}"
        )
        self.missing = missing


def _relevant(
    bag: frozenset[Node], edges: Mapping[str, frozenset[Node]]
) -> dict[str, frozenset[Node]]:
    restricted = {
        name: scope & bag for name, scope in edges.items() if scope & bag
    }
    covered = frozenset(v for scope in restricted.values() for v in scope)
    if covered != bag:
        raise UncoverableBagError(bag - covered)
    return restricted


def greedy_cover(
    bag: Iterable[Node], edges: Mapping[str, frozenset[Node]]
) -> list[str]:
    """Return hyperedge names covering ``bag`` (greedy, ≈ln n optimal).

    Raises :class:`UncoverableBagError` if some bag vertex appears in
    no hyperedge.
    """
    target = frozenset(bag)
    if not target:
        return []
    restricted = _relevant(target, edges)
    uncovered = set(target)
    chosen: list[str] = []
    while uncovered:
        best = max(
            sorted(restricted),
            key=lambda name: (len(restricted[name] & uncovered), name),
        )
        gain = restricted[best] & uncovered
        if not gain:  # pragma: no cover - guarded by _relevant
            raise UncoverableBagError(frozenset(uncovered))
        chosen.append(best)
        uncovered -= gain
    return sorted(chosen)


def minimum_cover(
    bag: Iterable[Node],
    edges: Mapping[str, frozenset[Node]],
    upper_bound: int | None = None,
) -> list[str]:
    """Return a minimum-cardinality hyperedge cover of ``bag`` (exact).

    Branch and bound on the lowest-indexed uncovered vertex: try every
    hyperedge containing it.  ``upper_bound`` (defaults to the greedy
    solution) prunes the search.  Deterministic: among minimum covers
    the lexicographically smallest name list is returned.
    """
    target = frozenset(bag)
    if not target:
        return []
    restricted = _relevant(target, edges)
    greedy = greedy_cover(target, edges)
    best: list[str] = sorted(greedy)
    bound = min(upper_bound, len(greedy)) if upper_bound is not None else len(greedy)

    by_vertex: dict[Node, list[str]] = {}
    for name in sorted(restricted):
        for vertex in restricted[name]:
            by_vertex.setdefault(vertex, []).append(name)
    vertex_order = sorted(by_vertex, key=lambda v: (len(by_vertex[v]), repr(v)))

    def search(uncovered: frozenset[Node], chosen: tuple[str, ...]) -> None:
        nonlocal best, bound
        if not uncovered:
            candidate = sorted(chosen)
            if len(candidate) < bound or (
                len(candidate) == bound and candidate < best
            ):
                best = candidate
                bound = len(candidate)
            return
        if len(chosen) + 1 > bound:
            return
        pivot = next(v for v in vertex_order if v in uncovered)
        for name in by_vertex[pivot]:
            if name in chosen:
                continue
            search(uncovered - restricted[name], chosen + (name,))

    search(target, ())
    return best
