"""A minimal hypergraph type for hypertree-decomposition work (extension).

The paper motivates minimal-triangulation enumeration with generalized
hypertree decompositions (GHDs) of (multi)join queries: a GHD is a tree
decomposition of the query's *primal graph* plus an assignment of
hyperedge covers to bags (Gottlob et al.).  This subpackage supplies
the substrate: a hypergraph with named hyperedges, its primal (Gaifman)
graph, and the standard structural notions used by the GHD machinery.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.graph.graph import Graph, Node, _sort_nodes

__all__ = ["Hypergraph"]


class Hypergraph:
    """A finite hypergraph with named hyperedges.

    Parameters
    ----------
    edges:
        Mapping from hyperedge name to an iterable of vertices.  Vertex
        sets may overlap arbitrarily; empty hyperedges are allowed.
    vertices:
        Optional extra isolated vertices.

    Examples
    --------
    >>> h = Hypergraph({"R": ("x", "y"), "S": ("y", "z"), "T": ("z", "x")})
    >>> sorted(h.vertices())
    ['x', 'y', 'z']
    >>> h.primal_graph().num_edges
    3
    """

    def __init__(
        self,
        edges: Mapping[str, Iterable[Node]],
        vertices: Iterable[Node] = (),
    ) -> None:
        self._edges: dict[str, frozenset[Node]] = {
            str(name): frozenset(scope) for name, scope in edges.items()
        }
        self._vertices: frozenset[Node] = frozenset(vertices) | frozenset(
            v for scope in self._edges.values() for v in scope
        )

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------

    def vertices(self) -> list[Node]:
        """All vertices in sorted order."""
        return _sort_nodes(self._vertices)

    def vertex_set(self) -> frozenset[Node]:
        """The vertex set."""
        return self._vertices

    def edge_names(self) -> list[str]:
        """Hyperedge names in sorted order."""
        return sorted(self._edges)

    def edge(self, name: str) -> frozenset[Node]:
        """The vertex scope of hyperedge ``name``."""
        try:
            return self._edges[name]
        except KeyError:
            raise KeyError(f"no hyperedge named {name!r}") from None

    def edges(self) -> dict[str, frozenset[Node]]:
        """A copy of the name → scope mapping."""
        return dict(self._edges)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edges_containing(self, vertex: Node) -> list[str]:
        """Names of hyperedges whose scope contains ``vertex``."""
        return [name for name in self.edge_names() if vertex in self._edges[name]]

    def rank(self) -> int:
        """The maximum hyperedge size (arity)."""
        if not self._edges:
            return 0
        return max(len(scope) for scope in self._edges.values())

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def primal_graph(self) -> Graph:
        """The primal (Gaifman) graph: vertices, cliques per hyperedge."""
        graph = Graph(nodes=self._vertices)
        for scope in self._edges.values():
            graph.saturate(scope)
        return graph

    def dual_hypergraph(self) -> "Hypergraph":
        """The dual: one vertex per hyperedge, one hyperedge per vertex."""
        dual_edges: dict[str, list[str]] = {}
        for vertex in self.vertices():
            dual_edges[repr(vertex)] = self.edges_containing(vertex)
        return Hypergraph(dual_edges, vertices=self.edge_names())

    def restricted_to(self, vertices: Iterable[Node]) -> "Hypergraph":
        """The sub-hypergraph induced by ``vertices`` (scopes intersected)."""
        keep = frozenset(vertices)
        return Hypergraph(
            {
                name: scope & keep
                for name, scope in self._edges.items()
                if scope & keep
            },
            vertices=keep & self._vertices,
        )

    # ------------------------------------------------------------------
    # Acyclicity (GYO reduction)
    # ------------------------------------------------------------------

    def is_alpha_acyclic(self) -> bool:
        """Return whether the hypergraph is α-acyclic (GYO reduction).

        Repeatedly remove *ear* vertices (appearing in exactly one
        hyperedge) and hyperedges contained in another hyperedge; the
        hypergraph is α-acyclic iff everything reduces away.  α-acyclic
        hypergraphs are exactly those with generalized hypertree width 1
        (a join tree).
        """
        scopes = {name: set(scope) for name, scope in self._edges.items()}
        changed = True
        while changed:
            changed = False
            # Rule 1: drop vertices occurring in exactly one scope.
            occurrences: dict[Node, list[str]] = {}
            for name, scope in scopes.items():
                for vertex in scope:
                    occurrences.setdefault(vertex, []).append(name)
            for vertex, holders in occurrences.items():
                if len(holders) == 1:
                    scopes[holders[0]].discard(vertex)
                    changed = True
            # Rule 2: drop scopes contained in another scope.
            names = sorted(scopes)
            for name in names:
                for other in names:
                    if other != name and other in scopes and name in scopes:
                        if scopes[name] <= scopes[other]:
                            del scopes[name]
                            changed = True
                            break
        return all(not scope for scope in scopes.values())

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._edges == other._edges and self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash((frozenset(self._edges.items()), self._vertices))

    def __repr__(self) -> str:
        return (
            f"Hypergraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
