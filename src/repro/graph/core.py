"""Integer-indexed bitset graph core (the fast tier of the substrate).

This module is the performance engine behind :class:`repro.graph.graph.Graph`.
It deliberately knows nothing about user-facing node labels:

* :class:`IndexedGraph` works on dense vertex indices ``0 .. n-1`` and
  stores each adjacency as a single Python-int *bitmask* (bit ``j`` of
  ``adj[i]`` set iff ``{i, j}`` is an edge).  Set-algebraic graph
  operations — neighbourhood of a set, clique tests, saturation,
  connected components — become a handful of wide integer operations,
  and CPython executes those in C over whole machine words instead of
  hashing one node at a time.
* :class:`NodeInterner` maps arbitrary hashable user labels to vertex
  indices (and back) at the API boundary, so every label is hashed
  exactly once on the way in and algorithms above the boundary run on
  ints and masks only.

Conventions
-----------
A *mask* is a non-negative int whose set bits are vertex indices.  The
set of live vertices is the mask :attr:`IndexedGraph.alive`; removal
frees a slot for reuse (the interner hands freed slots out again), and
all operations ignore dead slots.  ``IndexedGraph`` performs no label
bookkeeping and no validation beyond what is needed for internal
consistency — the façade validates at the boundary.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

__all__ = [
    "IndexedGraph",
    "NodeInterner",
    "MaxWeightBuckets",
    "iter_bits",
    "bit_list",
]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_list(mask: int) -> list[int]:
    """Return the indices of the set bits of ``mask`` as an ascending list."""
    result = []
    while mask:
        low = mask & -mask
        result.append(low.bit_length() - 1)
        mask ^= low
    return result


class NodeInterner:
    """A bijection between user node labels and dense vertex indices.

    Labels are assigned indices on first :meth:`intern`; releasing a
    label frees its index for reuse so long-lived mutable graphs do not
    leak slots.  The interner never compares labels with ``<`` — only
    hashing is required — which keeps mixed int/str node sets working.
    """

    __slots__ = ("_index", "_labels", "_free")

    def __init__(self) -> None:
        self._index: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        self._free: list[int] = []

    def intern(self, label: Hashable) -> int:
        """Return the index for ``label``, assigning a fresh one if new."""
        index = self._index.get(label)
        if index is None:
            if self._free:
                index = self._free.pop()
                self._labels[index] = label
            else:
                index = len(self._labels)
                self._labels.append(label)
            self._index[label] = index
        return index

    def index(self, label: Hashable) -> int:
        """Return the index of an interned ``label`` (KeyError if absent)."""
        return self._index[label]

    def get(self, label: Hashable) -> int | None:
        """Return the index of ``label`` or ``None`` if not interned."""
        return self._index.get(label)

    def release(self, label: Hashable) -> int:
        """Forget ``label`` and recycle its index; return the freed index."""
        index = self._index.pop(label)
        self._labels[index] = None
        self._free.append(index)
        return index

    def label_of(self, index: int) -> Hashable:
        """Return the label interned at ``index``."""
        return self._labels[index]

    def labels_of(self, mask: int) -> list[Hashable]:
        """Return the labels of the set bits of ``mask`` (index order)."""
        labels = self._labels
        return [labels[i] for i in iter_bits(mask)]

    def copy(self) -> "NodeInterner":
        """Return an independent copy preserving every index assignment."""
        clone = NodeInterner.__new__(NodeInterner)
        clone._index = dict(self._index)
        clone._labels = list(self._labels)
        clone._free = list(self._free)
        return clone

    @classmethod
    def from_dense(
        cls, labels: list[Hashable], live_mask: int
    ) -> "NodeInterner":
        """Rebuild an interner from a dense ``index → label`` list.

        ``labels[i]`` is the label at slot ``i`` for every set bit of
        ``live_mask``; dead slots are recycled as free.  This is the
        inverse of reading :attr:`labels_dense`, and is how worker
        processes of the sharded enumeration engine reconstruct a graph
        with *identical* index assignments (so vertex bitmasks computed
        by the coordinator mean the same thing in every worker).
        """
        interner = cls.__new__(cls)
        interner._labels = list(labels)
        interner._index = {}
        interner._free = []
        for i in range(len(interner._labels)):
            if live_mask >> i & 1:
                interner._index[interner._labels[i]] = i
            else:
                interner._labels[i] = None
                interner._free.append(i)
        return interner

    @property
    def labels_dense(self) -> list[Hashable]:
        """The dense ``index → label`` list (``None`` at dead slots)."""
        return list(self._labels)

    def relabeled(self, mapping: dict) -> "NodeInterner":
        """Return a copy with each live label renamed through ``mapping``.

        Labels missing from ``mapping`` keep their name; the renaming
        must be injective on the live label set.
        """
        clone = NodeInterner.__new__(NodeInterner)
        clone._labels = list(self._labels)
        clone._free = list(self._free)
        clone._index = {}
        for label, index in self._index.items():
            new_label = mapping.get(label, label)
            if new_label in clone._index:
                raise ValueError(
                    "relabeling mapping is not injective on the node set"
                )
            clone._index[new_label] = index
            clone._labels[index] = new_label
        return clone

    @property
    def index_map(self) -> dict[Hashable, int]:
        """The live label → index mapping (treat as read-only)."""
        return self._index

    def __contains__(self, label: Hashable) -> bool:
        return label in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._index)

    def items(self) -> Iterator[tuple[Hashable, int]]:
        """Iterate ``(label, index)`` pairs in interning order."""
        return iter(self._index.items())


class MaxWeightBuckets:
    """A max-priority structure over small integer vertex weights.

    Vertices live in bucket masks keyed by weight; extracting the
    max-weight vertex (ties broken by smallest label rank) and bumping
    a weight by one are pure mask updates, replacing the lazy heaps of
    the MCS-family searches.  ``buckets`` is exposed because the MCS-M
    update sweep walks the weight levels directly.
    """

    __slots__ = ("buckets", "max_weight")

    def __init__(self, initial_mask: int) -> None:
        self.buckets: dict[int, int] = {0: initial_mask} if initial_mask else {}
        self.max_weight = 0

    def pop_max(self, ranks: list[int]) -> int:
        """Remove and return the min-rank vertex of the highest bucket."""
        w = self.max_weight
        buckets = self.buckets
        while not buckets.get(w, 0):
            w -= 1
        self.max_weight = w
        candidates = buckets[w]
        best = -1
        best_rank = -1
        m = candidates
        while m:
            low = m & -m
            i = low.bit_length() - 1
            m ^= low
            if best < 0 or ranks[i] < best_rank:
                best, best_rank = i, ranks[i]
        buckets[w] = candidates & ~(1 << best)
        return best

    def bump(self, index: int, old_weight: int) -> None:
        """Move ``index`` from ``old_weight`` to ``old_weight + 1``."""
        bit = 1 << index
        buckets = self.buckets
        buckets[old_weight] &= ~bit
        new_weight = old_weight + 1
        buckets[new_weight] = buckets.get(new_weight, 0) | bit
        if new_weight > self.max_weight:
            self.max_weight = new_weight

    def bump_all(self, mask: int, weights: list[int]) -> None:
        """Increment ``weights`` and re-bucket every vertex of ``mask``.

        One call per search step instead of one per member keeps the
        method-call overhead out of the MCS hot loops.
        """
        buckets = self.buckets
        max_weight = self.max_weight
        while mask:
            low = mask & -mask
            i = low.bit_length() - 1
            mask ^= low
            w = weights[i]
            weights[i] = w + 1
            buckets[w] &= ~low
            new_weight = w + 1
            buckets[new_weight] = buckets.get(new_weight, 0) | low
            if new_weight > max_weight:
                max_weight = new_weight
        self.max_weight = max_weight


class IndexedGraph:
    """A simple undirected graph over integer vertices with bitmask adjacency.

    Attributes
    ----------
    adj:
        ``adj[i]`` is the neighbour mask of vertex ``i`` (0 for dead
        slots).
    alive:
        Mask of live vertices.
    num_edges:
        Maintained incrementally by every mutator — reading it is O(1).
    """

    __slots__ = ("adj", "alive", "num_edges")

    def __init__(self, num_vertices: int = 0) -> None:
        self.adj: list[int] = [0] * num_vertices
        self.alive: int = (1 << num_vertices) - 1 if num_vertices else 0
        self.num_edges: int = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, index: int | None = None) -> int:
        """Make slot ``index`` (default: a fresh slot) a live vertex."""
        if index is None:
            index = len(self.adj)
        while len(self.adj) <= index:
            self.adj.append(0)
        bit = 1 << index
        if not self.alive & bit:
            self.adj[index] = 0
            self.alive |= bit
        return index

    def remove_vertex(self, index: int) -> None:
        """Remove vertex ``index`` and all incident edges."""
        bit = 1 << index
        neighbours = self.adj[index]
        self.num_edges -= neighbours.bit_count()
        inv = ~bit
        adj = self.adj
        for j in iter_bits(neighbours):
            adj[j] &= inv
        adj[index] = 0
        self.alive &= inv

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge {u, v}; return whether it was newly added."""
        bit_v = 1 << v
        if self.adj[u] & bit_v:
            return False
        self.adj[u] |= bit_v
        self.adj[v] |= 1 << u
        self.num_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove edge {u, v}; return whether it was present."""
        bit_v = 1 << v
        if not self.adj[u] & bit_v:
            return False
        self.adj[u] &= ~bit_v
        self.adj[v] &= ~(1 << u)
        self.num_edges -= 1
        return True

    def saturate(self, mask: int) -> list[tuple[int, int]]:
        """Make the vertices of ``mask`` a clique; return added (u, v) pairs.

        Pairs are returned with ``u < v`` in ascending index order.
        """
        added: list[tuple[int, int]] = []
        adj = self.adj
        for u in iter_bits(mask):
            # Only pair u with strictly larger members to visit each
            # missing pair once.
            missing = mask & ~adj[u] & ~((1 << (u + 1)) - 1)
            if not missing:
                continue
            bit_u = 1 << u
            adj[u] |= missing
            for v in iter_bits(missing):
                adj[v] |= bit_u
                added.append((u, v))
        self.num_edges += len(added)
        return added

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of live vertices."""
        return self.alive.bit_count()

    def has_vertex(self, index: int) -> bool:
        """Return whether slot ``index`` is a live vertex."""
        return bool(self.alive >> index & 1) if index >= 0 else False

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether edge {u, v} is present."""
        return bool(self.adj[u] >> v & 1)

    def degree(self, index: int) -> int:
        """Return the degree of vertex ``index``."""
        return self.adj[index].bit_count()

    def vertices(self) -> Iterator[int]:
        """Iterate live vertex indices in ascending order."""
        return iter_bits(self.alive)

    def edge_pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as (u, v) index pairs with ``u < v``."""
        adj = self.adj
        for u in iter_bits(self.alive):
            for v in iter_bits(adj[u] >> (u + 1)):
                yield u, u + 1 + v

    def neighborhood_of_set(self, mask: int) -> int:
        """Return N(U) as a mask: neighbours of ``mask``, excluding it."""
        union = 0
        adj = self.adj
        for i in iter_bits(mask):
            union |= adj[i]
        return union & ~mask

    def closed_neighborhood(self, index: int) -> int:
        """Return N[index] = N(index) ∪ {index} as a mask."""
        return self.adj[index] | 1 << index

    def is_clique(self, mask: int) -> bool:
        """Return whether the vertices of ``mask`` are pairwise adjacent."""
        adj = self.adj
        for i in iter_bits(mask):
            if mask & ~adj[i] & ~(1 << i):
                return False
        return True

    def is_independent_set(self, mask: int) -> bool:
        """Return whether no two vertices of ``mask`` are adjacent."""
        adj = self.adj
        for i in iter_bits(mask):
            if mask & adj[i]:
                return False
        return True

    def missing_pair_count(self, mask: int) -> int:
        """Return the number of non-adjacent pairs inside ``mask``."""
        k = mask.bit_count()
        present = 0
        adj = self.adj
        for i in iter_bits(mask):
            present += (adj[i] & mask).bit_count()
        return k * (k - 1) // 2 - present // 2

    def missing_pairs(self, mask: int) -> list[tuple[int, int]]:
        """Return the non-adjacent (u, v) pairs inside ``mask``, u < v."""
        pairs: list[tuple[int, int]] = []
        adj = self.adj
        for u in iter_bits(mask):
            missing = mask & ~adj[u] & ~((1 << (u + 1)) - 1)
            for v in iter_bits(missing):
                pairs.append((u, v))
        return pairs

    def edges_within(self, mask: int) -> int:
        """Return the number of edges of the subgraph induced by ``mask``."""
        total = 0
        adj = self.adj
        for i in iter_bits(mask):
            total += (adj[i] & mask).bit_count()
        return total // 2

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def expand_component(self, seed: int, available: int) -> int:
        """Return the connected component mask grown from ``seed``.

        ``seed`` must be a subset of ``available``; traversal is
        restricted to ``available``.  Frontier expansion ORs whole
        adjacency masks, so each round costs O(frontier · words).
        """
        component = seed
        frontier = seed
        adj = self.adj
        while frontier:
            reached = 0
            for i in iter_bits(frontier):
                reached |= adj[i]
            frontier = reached & available & ~component
            component |= frontier
        return component

    def component_of(self, index: int, removed: int = 0) -> int:
        """Return the component mask of ``index`` in the graph minus ``removed``."""
        available = self.alive & ~removed
        return self.expand_component(1 << index, available)

    def components(
        self, removed: int = 0, order: Iterable[int] | None = None
    ) -> list[int]:
        """Return the component masks of the graph minus ``removed``.

        ``order`` optionally fixes the order in which start vertices are
        tried (and therefore the order of the returned components); by
        default components appear by their smallest vertex index.
        """
        available = self.alive & ~removed
        result: list[int] = []
        if order is None:
            remaining = available
            while remaining:
                seed = remaining & -remaining
                component = self.expand_component(seed, available)
                result.append(component)
                remaining &= ~component
        else:
            seen = 0
            for i in order:
                bit = 1 << i
                if not available & bit or seen & bit:
                    continue
                component = self.expand_component(bit, available)
                result.append(component)
                seen |= component
        return result

    def full_components(self, separator: int) -> list[int]:
        """Return components C of the graph minus ``separator`` with N(C) = separator."""
        return [
            component
            for component in self.components(separator)
            if self.neighborhood_of_set(component) == separator
        ]

    def is_connected(self) -> bool:
        """Return whether the live graph is connected (empty graph: True)."""
        if not self.alive:
            return True
        seed = self.alive & -self.alive
        return self.expand_component(seed, self.alive) == self.alive

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def copy(self) -> "IndexedGraph":
        """Return an independent copy."""
        clone = IndexedGraph.__new__(IndexedGraph)
        clone.adj = list(self.adj)
        clone.alive = self.alive
        clone.num_edges = self.num_edges
        return clone

    def subgraph(self, mask: int) -> "IndexedGraph":
        """Return the induced subgraph on ``mask`` (same index space)."""
        clone = IndexedGraph.__new__(IndexedGraph)
        keep = mask & self.alive
        clone.adj = [
            (self.adj[i] & mask) if keep >> i & 1 else 0
            for i in range(len(self.adj))
        ]
        clone.alive = keep
        clone.num_edges = self.edges_within(keep)
        return clone

    def complement(self) -> "IndexedGraph":
        """Return the complement graph on the live vertices."""
        clone = IndexedGraph.__new__(IndexedGraph)
        alive = self.alive
        clone.adj = [
            (alive & ~self.adj[i] & ~(1 << i)) if alive >> i & 1 else 0
            for i in range(len(self.adj))
        ]
        clone.alive = alive
        n = alive.bit_count()
        clone.num_edges = n * (n - 1) // 2 - self.num_edges
        return clone
