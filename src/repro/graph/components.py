"""Connectivity utilities (system S2 of DESIGN.md).

The separator machinery of the paper constantly asks two questions:

* what are the connected components of ``g \\ U`` for a node set U, and
* which of those components are *full* (their neighbourhood is exactly
  the candidate separator).

Everything here delegates to the bitmask core: components are grown by
frontier expansion that ORs whole adjacency masks
(:meth:`repro.graph.core.IndexedGraph.expand_component`), so a BFS round
costs a few wide integer operations instead of per-node hash lookups.
The label-facing functions translate at the boundary and keep the
deterministic ordering of the original implementation (components
sorted by their smallest node).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.graph import Graph, Node

__all__ = [
    "connected_components",
    "components_without",
    "is_connected",
    "component_of",
    "full_components",
    "is_separator",
    "separates",
]


def connected_components(graph: Graph) -> list[frozenset[Node]]:
    """Return the connected components of ``graph`` as frozensets.

    Components are returned sorted by their smallest node, and the
    search itself visits nodes in sorted order, so the result is
    deterministic.
    """
    return components_without(graph, ())


def components_without(graph: Graph, removed: Iterable[Node]) -> list[frozenset[Node]]:
    """Return the connected components of ``graph \\ removed``.

    This is the ``C(U)`` operation of the paper (Section 4.2) and the
    hot path of both the separator enumerator and the crossing test, so
    it runs on adjacency bitmasks and only materialises labels for the
    result.
    """
    removed_mask = graph.mask_of(removed, strict=False)
    return [
        graph.label_set(component)
        for component in graph.core.components(
            removed_mask, order=graph.sorted_indices()
        )
    ]


def is_connected(graph: Graph) -> bool:
    """Return whether ``graph`` is connected (the empty graph is connected)."""
    return graph.core.is_connected()


def component_of(
    graph: Graph, start: Node, removed: Iterable[Node] = ()
) -> frozenset[Node]:
    """Return the component of ``graph \\ removed`` that contains ``start``."""
    removed_set = set(removed)
    if start in removed_set:
        raise ValueError(f"start node {start!r} is in the removed set")
    index = graph.interner.get(start)
    if index is None:
        raise KeyError(start)
    removed_mask = graph.mask_of(removed_set, strict=False)
    return graph.label_set(graph.core.component_of(index, removed_mask))


def full_components(
    graph: Graph, separator: Iterable[Node]
) -> list[frozenset[Node]]:
    """Return the components of ``g \\ S`` whose neighbourhood is all of S.

    A component ``C`` of ``g \\ S`` is *full* (w.r.t. S) when
    ``N(C) = S``.  A classical characterisation states that S is a
    minimal separator if and only if ``g \\ S`` has at least two full
    components; this predicate backs :func:`is_separator` checks and the
    brute-force oracles.
    """
    separator_set = set(separator)
    sep_mask = graph.mask_of(separator_set, strict=False)
    if len(separator_set) != sep_mask.bit_count():
        # A separator containing foreign nodes can never satisfy N(C) = S.
        return []
    core = graph.core
    return [
        graph.label_set(component)
        for component in core.components(sep_mask, order=graph.sorted_indices())
        if core.neighborhood_of_set(component) == sep_mask
    ]


def is_separator(graph: Graph, candidate: Iterable[Node]) -> bool:
    """Return whether ``candidate`` is a minimal separator of ``graph``.

    Uses the two-full-components characterisation, which is equivalent
    to the paper's definition (S is a minimal (u, v)-separator for some
    pair u, v).
    """
    candidate_set = set(candidate)
    sep_mask = graph.mask_of(candidate_set, strict=False)
    if len(candidate_set) != sep_mask.bit_count():
        # A candidate containing foreign nodes can never satisfy N(C) = S.
        return False
    return len(graph.core.full_components(sep_mask)) >= 2


def separates(graph: Graph, candidate: Iterable[Node], u: Node, v: Node) -> bool:
    """Return whether ``candidate`` is a (u, v)-separator of ``graph``.

    ``u`` and ``v`` must not belong to the candidate set.
    """
    candidate_set = set(candidate)
    if u in candidate_set or v in candidate_set:
        raise ValueError("endpoints may not belong to the separator candidate")
    removed_mask = graph.mask_of(candidate_set, strict=False)
    iu, iv = graph.index_of(u), graph.index_of(v)
    return not graph.core.component_of(iu, removed_mask) >> iv & 1
