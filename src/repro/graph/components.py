"""Connectivity utilities (system S2 of DESIGN.md).

The separator machinery of the paper constantly asks two questions:

* what are the connected components of ``g \\ U`` for a node set U, and
* which of those components are *full* (their neighbourhood is exactly
  the candidate separator).

Everything here is plain breadth-first search over the adjacency
dictionary, written to avoid building intermediate subgraphs: the
removed set is passed along and skipped during traversal.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graph.graph import Graph, Node, _sort_nodes

__all__ = [
    "connected_components",
    "components_without",
    "is_connected",
    "component_of",
    "full_components",
    "is_separator",
    "separates",
]


def connected_components(graph: Graph) -> list[frozenset[Node]]:
    """Return the connected components of ``graph`` as frozensets.

    Components are returned sorted by their smallest node, and the
    search itself visits nodes in sorted order, so the result is
    deterministic.
    """
    return components_without(graph, ())


def components_without(graph: Graph, removed: Iterable[Node]) -> list[frozenset[Node]]:
    """Return the connected components of ``graph \\ removed``.

    This is the ``C(U)`` operation of the paper (Section 4.2) and the
    hot path of both the separator enumerator and the crossing test, so
    it traverses adjacency in place instead of materialising the
    subgraph.
    """
    removed_set = set(removed)
    seen: set[Node] = set()
    components: list[frozenset[Node]] = []
    adj = graph._adj  # noqa: SLF001 - hot path, intra-package access
    for start in _sort_nodes(adj.keys()):
        if start in removed_set or start in seen:
            continue
        component: set[Node] = {start}
        queue: deque[Node] = deque((start,))
        while queue:
            node = queue.popleft()
            for neigh in adj[node]:
                if neigh in removed_set or neigh in component:
                    continue
                component.add(neigh)
                queue.append(neigh)
        seen |= component
        components.append(frozenset(component))
    return components


def is_connected(graph: Graph) -> bool:
    """Return whether ``graph`` is connected (the empty graph is connected)."""
    if graph.num_nodes == 0:
        return True
    return len(component_of(graph, next(iter(graph.node_set())))) == graph.num_nodes


def component_of(
    graph: Graph, start: Node, removed: Iterable[Node] = ()
) -> frozenset[Node]:
    """Return the component of ``graph \\ removed`` that contains ``start``."""
    removed_set = set(removed)
    if start in removed_set:
        raise ValueError(f"start node {start!r} is in the removed set")
    adj = graph._adj  # noqa: SLF001
    if start not in adj:
        raise KeyError(start)
    component: set[Node] = {start}
    queue: deque[Node] = deque((start,))
    while queue:
        node = queue.popleft()
        for neigh in adj[node]:
            if neigh in removed_set or neigh in component:
                continue
            component.add(neigh)
            queue.append(neigh)
    return frozenset(component)


def full_components(
    graph: Graph, separator: Iterable[Node]
) -> list[frozenset[Node]]:
    """Return the components of ``g \\ S`` whose neighbourhood is all of S.

    A component ``C`` of ``g \\ S`` is *full* (w.r.t. S) when
    ``N(C) = S``.  A classical characterisation states that S is a
    minimal separator if and only if ``g \\ S`` has at least two full
    components; this predicate backs :func:`is_separator` checks and the
    brute-force oracles.
    """
    sep = frozenset(separator)
    result = []
    for component in components_without(graph, sep):
        if graph.neighborhood_of_set(component) == sep:
            result.append(component)
    return result


def is_separator(graph: Graph, candidate: Iterable[Node]) -> bool:
    """Return whether ``candidate`` is a minimal separator of ``graph``.

    Uses the two-full-components characterisation, which is equivalent
    to the paper's definition (S is a minimal (u, v)-separator for some
    pair u, v).
    """
    return len(full_components(graph, candidate)) >= 2


def separates(graph: Graph, candidate: Iterable[Node], u: Node, v: Node) -> bool:
    """Return whether ``candidate`` is a (u, v)-separator of ``graph``.

    ``u`` and ``v`` must not belong to the candidate set.
    """
    removed = set(candidate)
    if u in removed or v in removed:
        raise ValueError("endpoints may not belong to the separator candidate")
    return v not in component_of(graph, u, removed)
