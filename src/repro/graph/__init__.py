"""Graph substrate: data structure, connectivity, generators and I/O."""

from repro.graph.components import (
    component_of,
    components_without,
    connected_components,
    full_components,
    is_connected,
    is_separator,
    separates,
)
from repro.graph.graph import Edge, Graph, Node, edge_key

__all__ = [
    "Graph",
    "Node",
    "Edge",
    "edge_key",
    "connected_components",
    "components_without",
    "component_of",
    "full_components",
    "is_connected",
    "is_separator",
    "separates",
]
