"""Graph substrate: data structure, connectivity, generators and I/O.

The substrate is two-tier: the label-based :class:`Graph` façade over
the integer-indexed bitset :class:`IndexedGraph` core (see
:mod:`repro.graph.core`), with a :class:`NodeInterner` translating user
labels to dense vertex indices at the API boundary.
"""

from repro.graph.components import (
    component_of,
    components_without,
    connected_components,
    full_components,
    is_connected,
    is_separator,
    separates,
)
from repro.graph.core import IndexedGraph, NodeInterner, bit_list, iter_bits
from repro.graph.graph import Edge, Graph, Node, edge_key


def resolve_graph_backend(graph: Graph, backend: str | None = "auto"):
    """Return ``graph`` on the selected core backend.

    ``backend`` is ``"indexed"``, ``"numpy"``, ``"native"`` (compiled C
    kernels, degrading to numpy when the extension cannot be built),
    ``"auto"`` (the packed tier at or above
    :data:`repro.graph.bitset_np.NUMPY_THRESHOLD` nodes, preferring
    native when available) or ``None`` (keep the graph exactly as
    passed).  When numpy is not installed, ``"auto"`` and ``"indexed"``
    degrade to the int-mask core; asking for ``"numpy"`` or ``"native"``
    explicitly raises ImportError.
    """
    if backend is None:
        return graph
    try:
        from repro.graph.bitset_np import convert_graph
    except ImportError:
        if backend in ("numpy", "native"):
            raise
        return graph
    return convert_graph(graph, backend)


__all__ = [
    "Graph",
    "Node",
    "Edge",
    "edge_key",
    "IndexedGraph",
    "NodeInterner",
    "iter_bits",
    "bit_list",
    "resolve_graph_backend",
    "connected_components",
    "components_without",
    "component_of",
    "full_components",
    "is_connected",
    "is_separator",
    "separates",
]
