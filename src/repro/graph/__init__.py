"""Graph substrate: data structure, connectivity, generators and I/O.

The substrate is two-tier: the label-based :class:`Graph` façade over
the integer-indexed bitset :class:`IndexedGraph` core (see
:mod:`repro.graph.core`), with a :class:`NodeInterner` translating user
labels to dense vertex indices at the API boundary.
"""

from repro.graph.components import (
    component_of,
    components_without,
    connected_components,
    full_components,
    is_connected,
    is_separator,
    separates,
)
from repro.graph.core import IndexedGraph, NodeInterner, bit_list, iter_bits
from repro.graph.graph import Edge, Graph, Node, edge_key

__all__ = [
    "Graph",
    "Node",
    "Edge",
    "edge_key",
    "IndexedGraph",
    "NodeInterner",
    "iter_bits",
    "bit_list",
    "connected_components",
    "components_without",
    "component_of",
    "full_components",
    "is_connected",
    "is_separator",
    "separates",
]
