"""A small, deterministic, adjacency-set graph type.

This module implements the graph substrate used throughout the library
(system S1 of DESIGN.md).  The paper works exclusively with finite,
simple, undirected graphs, so that is exactly what :class:`Graph`
models:

* nodes are arbitrary hashable, *orderable* objects (ints and strings
  in practice — orderability gives deterministic iteration);
* edges are unordered pairs of distinct nodes;
* no self loops, no parallel edges.

Design notes
------------
The enumeration algorithms repeatedly take induced subgraphs, remove
node sets and saturate vertex sets, so those operations are first-class
and allocation-conscious.  Iteration order over nodes, neighbours and
edges is always sorted, which makes every algorithm in the library
deterministic without sprinkling ``sorted`` calls everywhere.

``Graph`` is mutable; the algorithms that must not mutate their input
copy first (``copy`` is O(V + E)).  Equality compares node and edge
sets, which is what graph identity means everywhere in the paper
(``V(g) = V(h)`` and ``E(g) = E(h)``).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.errors import EdgeNotFoundError, NodeNotFoundError, SelfLoopError

Node = Hashable
Edge = tuple[Any, Any]

__all__ = ["Graph", "Node", "Edge", "edge_key"]


def edge_key(u: Node, v: Node) -> tuple[Node, Node]:
    """Return the canonical (sorted) tuple representation of edge {u, v}.

    The library stores and reports edges as sorted 2-tuples so that a
    fill edge computed by two different algorithms compares equal.
    """
    return (u, v) if _lt(u, v) else (v, u)


def _lt(a: Node, b: Node) -> bool:
    """Order two nodes, falling back to a type-aware order for mixed types."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return (type(a).__name__, repr(a)) < (type(b).__name__, repr(b))


def _sort_nodes(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes deterministically even when types are mixed."""
    try:
        return sorted(nodes)  # type: ignore[type-var]
    except TypeError:
        return sorted(nodes, key=lambda n: (type(n).__name__, repr(n)))


def sort_edges(edges: Iterable[tuple[Node, Node]]) -> list[tuple[Node, Node]]:
    """Sort canonical edge tuples, tolerating incomparable node types."""
    edge_list = list(edges)
    try:
        return sorted(edge_list)
    except TypeError:
        return sorted(
            edge_list,
            key=lambda e: tuple((type(n).__name__, repr(n)) for n in e),
        )


class Graph:
    """A finite, simple, undirected graph with deterministic iteration.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of initial edges, given as 2-element iterables.
        Endpoints are added as nodes automatically.

    Examples
    --------
    >>> g = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
    >>> g.num_nodes, g.num_edges
    (4, 4)
    >>> g.has_edge(2, 1)
    True
    >>> sorted(g.neighbors(1))
    [2, 4]
    """

    __slots__ = ("_adj",)

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[Iterable[Node]] = (),
    ) -> None:
        self._adj: dict[Node, set[Node]] = {}
        for node in nodes:
            self.add_node(node)
        for edge in edges:
            u, v = edge
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, other: "Graph") -> "Graph":
        """Deep-copy constructor (alias of :meth:`copy` usable on the class)."""
        return other.copy()

    def copy(self) -> "Graph":
        """Return an independent copy of this graph."""
        g = Graph.__new__(Graph)
        g._adj = {node: set(neigh) for node, neigh in self._adj.items()}
        return g

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (a no-op if already present)."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge {u, v}, adding endpoints as needed.

        Raises
        ------
        SelfLoopError
            If ``u == v``.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def add_edges(self, edges: Iterable[Iterable[Node]]) -> None:
        """Add every edge in ``edges``."""
        for edge in edges:
            u, v = edge
            self.add_edge(u, v)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        try:
            neighbors = self._adj.pop(node)
        except KeyError:
            raise NodeNotFoundError(node) from None
        for other in neighbors:
            self._adj[other].discard(node)

    def remove_nodes(self, nodes: Iterable[Node]) -> None:
        """Remove every node in ``nodes`` (each must be present)."""
        for node in list(nodes):
            self.remove_node(node)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge {u, v}, keeping both endpoints.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def remove_edges(self, edges: Iterable[Iterable[Node]]) -> None:
        """Remove every edge in ``edges`` (each must be present)."""
        for edge in list(edges):
            u, v = edge
            self.remove_edge(u, v)

    def saturate(self, nodes: Iterable[Node]) -> list[tuple[Node, Node]]:
        """Connect every non-adjacent pair in ``nodes``; return the new edges.

        This is the *saturation* operation of the paper (Section 2.1):
        after the call, ``nodes`` forms a clique.  The returned list
        contains the edges that were actually added, as canonical
        sorted tuples, so callers can track fill.

        Raises
        ------
        NodeNotFoundError
            If any node is absent from the graph.
        """
        node_list = _sort_nodes(set(nodes))
        for node in node_list:
            if node not in self._adj:
                raise NodeNotFoundError(node)
        added: list[tuple[Node, Node]] = []
        for i, u in enumerate(node_list):
            adj_u = self._adj[u]
            for v in node_list[i + 1 :]:
                if v not in adj_u:
                    adj_u.add(v)
                    self._adj[v].add(u)
                    added.append((u, v))
        return added

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes, |V(g)|."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges, |E(g)|."""
        return sum(len(neigh) for neigh in self._adj.values()) // 2

    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._adj

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the edge {u, v} is in the graph."""
        neigh = self._adj.get(u)
        return neigh is not None and v in neigh

    def nodes(self) -> list[Node]:
        """Return the nodes in sorted order."""
        return _sort_nodes(self._adj)

    def node_set(self) -> frozenset[Node]:
        """Return the node set as a frozenset."""
        return frozenset(self._adj)

    def edges(self) -> list[tuple[Node, Node]]:
        """Return all edges as canonical sorted tuples, in sorted order."""
        result: list[tuple[Node, Node]] = []
        for u in self.nodes():
            for v in _sort_nodes(self._adj[u]):
                if _lt(u, v):
                    result.append((u, v))
        return result

    def edge_set(self) -> frozenset[frozenset[Node]]:
        """Return the edge set as a frozenset of 2-element frozensets."""
        return frozenset(
            frozenset((u, v)) for u, neigh in self._adj.items() for v in neigh
        )

    def neighbors(self, node: Node) -> set[Node]:
        """Return a *copy* of the neighbour set N(node).

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        try:
            return set(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def adjacency(self, node: Node) -> frozenset[Node]:
        """Return the neighbour set as a frozenset (no defensive copy cost)."""
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighborhood_of_set(self, nodes: Iterable[Node]) -> set[Node]:
        """Return N(U): neighbours of any node of U, excluding U itself.

        This is the ``N(U)`` of the paper's Section 4.2.
        """
        node_set = set(nodes)
        result: set[Node] = set()
        for node in node_set:
            try:
                result.update(self._adj[node])
            except KeyError:
                raise NodeNotFoundError(node) from None
        result.difference_update(node_set)
        return result

    def closed_neighborhood(self, node: Node) -> set[Node]:
        """Return N[node] = N(node) ∪ {node}."""
        closed = self.neighbors(node)
        closed.add(node)
        return closed

    def is_clique(self, nodes: Iterable[Node]) -> bool:
        """Return whether ``nodes`` induces a clique.

        Nodes absent from the graph raise :class:`NodeNotFoundError`.
        """
        node_list = list(set(nodes))
        for node in node_list:
            if node not in self._adj:
                raise NodeNotFoundError(node)
        for i, u in enumerate(node_list):
            adj_u = self._adj[u]
            for v in node_list[i + 1 :]:
                if v not in adj_u:
                    return False
        return True

    def is_independent_set(self, nodes: Iterable[Node]) -> bool:
        """Return whether ``nodes`` is an independent set of this graph."""
        node_list = list(set(nodes))
        for node in node_list:
            if node not in self._adj:
                raise NodeNotFoundError(node)
        for i, u in enumerate(node_list):
            adj_u = self._adj[u]
            for v in node_list[i + 1 :]:
                if v in adj_u:
                    return False
        return True

    def missing_edges(self, nodes: Iterable[Node] | None = None) -> list[Edge]:
        """Return the non-edges among ``nodes`` (default: all nodes).

        The result is the list of canonical tuples whose addition would
        saturate the set — i.e. the *fill* required to make it a clique.
        """
        node_list = _sort_nodes(set(nodes)) if nodes is not None else self.nodes()
        for node in node_list:
            if node not in self._adj:
                raise NodeNotFoundError(node)
        missing: list[Edge] = []
        for i, u in enumerate(node_list):
            adj_u = self._adj[u]
            for v in node_list[i + 1 :]:
                if v not in adj_u:
                    missing.append(edge_key(u, v))
        return missing

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes`` (``g|U`` in the paper)."""
        keep = set(nodes)
        for node in keep:
            if node not in self._adj:
                raise NodeNotFoundError(node)
        g = Graph.__new__(Graph)
        g._adj = {node: self._adj[node] & keep for node in keep}
        return g

    def without_nodes(self, nodes: Iterable[Node]) -> "Graph":
        """Return ``g \\ U``: the graph with the nodes of U removed."""
        drop = set(nodes)
        keep = [node for node in self._adj if node not in drop]
        g = Graph.__new__(Graph)
        g._adj = {node: self._adj[node] - drop for node in keep}
        return g

    def saturated(self, node_sets: Iterable[Iterable[Node]]) -> "Graph":
        """Return a copy with every set in ``node_sets`` saturated.

        This implements the paper's ``g[φ]`` when ``node_sets`` is a set
        of (parallel) minimal separators, and ``saturate(g, d)`` when it
        is the bags of a tree decomposition.
        """
        g = self.copy()
        for node_set in node_sets:
            g.saturate(node_set)
        return g

    def complement(self) -> "Graph":
        """Return the complement graph on the same node set."""
        nodes = self.nodes()
        g = Graph(nodes=nodes)
        for i, u in enumerate(nodes):
            adj_u = self._adj[u]
            for v in nodes[i + 1 :]:
                if v not in adj_u:
                    g.add_edge(u, v)
        return g

    def relabeled(self, mapping: dict[Node, Node]) -> "Graph":
        """Return a copy with nodes renamed through ``mapping``.

        Nodes missing from ``mapping`` keep their name.  The mapping
        must be injective on the node set.
        """
        new_name = {node: mapping.get(node, node) for node in self._adj}
        if len(set(new_name.values())) != len(new_name):
            raise ValueError("relabeling mapping is not injective on the node set")
        g = Graph.__new__(Graph)
        g._adj = {
            new_name[node]: {new_name[v] for v in neigh}
            for node, neigh in self._adj.items()
        }
        return g

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._adj.keys() != other._adj.keys():
            return False
        return all(self._adj[node] == other._adj[node] for node in self._adj)

    def __hash__(self) -> int:
        # Mutable, but hashing by identity-free content is useful for the
        # enumeration bookkeeping where graphs are treated as values and
        # never mutated after being handed out.
        return hash((self.node_set(), self.edge_set()))

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    def summary(self) -> str:
        """Return a short human-readable description."""
        return f"graph with {self.num_nodes} nodes and {self.num_edges} edges"
