"""A small, deterministic graph type over an integer-indexed bitset core.

This module implements the graph substrate used throughout the library
(system S1 of DESIGN.md).  The paper works exclusively with finite,
simple, undirected graphs, so that is exactly what :class:`Graph`
models:

* nodes are arbitrary hashable, *orderable* objects (ints and strings
  in practice — orderability gives deterministic iteration);
* edges are unordered pairs of distinct nodes;
* no self loops, no parallel edges.

Design notes
------------
The representation is two-tier.  The label-facing :class:`Graph` is a
thin façade that validates input, keeps iteration deterministic and
translates node labels to dense vertex indices through a
:class:`~repro.graph.core.NodeInterner` exactly once at the API
boundary.  All structure lives in the inner
:class:`~repro.graph.core.IndexedGraph`, which stores each adjacency as
a single Python-int *bitmask*; neighbourhood unions, clique tests,
saturation and component searches are then wide integer operations that
CPython executes in C, instead of per-node hash lookups.  The hot
algorithm layers (connectivity, minimal separators, triangulation
heuristics, the separator-graph SGR) reach through the façade via
:attr:`Graph.core` / :meth:`Graph.mask_of` / :meth:`Graph.label_set`
and run entirely on indices and masks, converting back to labels only
when results are handed to the user.

Iteration order over nodes, neighbours and edges is always sorted by
label, which makes every algorithm in the library deterministic without
sprinkling ``sorted`` calls everywhere; the façade caches the
label-sorted index order (and its inverse, :meth:`Graph.ranks`) so
index-level algorithms can tie-break deterministically at integer
speed.  ``num_edges`` is maintained incrementally by the core, so
reading it is O(1).

``Graph`` is mutable; the algorithms that must not mutate their input
copy first (``copy`` is O(V) mask copies).  Equality compares node and
edge sets, which is what graph identity means everywhere in the paper
(``V(g) = V(h)`` and ``E(g) = E(h)``).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.errors import EdgeNotFoundError, NodeNotFoundError, SelfLoopError
from repro.graph.core import IndexedGraph, NodeInterner, bit_list, iter_bits

Node = Hashable
Edge = tuple[Any, Any]

__all__ = ["Graph", "Node", "Edge", "edge_key"]


def edge_key(u: Node, v: Node) -> tuple[Node, Node]:
    """Return the canonical (sorted) tuple representation of edge {u, v}.

    The library stores and reports edges as sorted 2-tuples so that a
    fill edge computed by two different algorithms compares equal.
    """
    return (u, v) if _lt(u, v) else (v, u)


def _lt(a: Node, b: Node) -> bool:
    """Order two nodes, falling back to a type-aware order for mixed types."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return (type(a).__name__, repr(a)) < (type(b).__name__, repr(b))


def _sort_nodes(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes deterministically even when types are mixed."""
    try:
        return sorted(nodes)  # type: ignore[type-var]
    except TypeError:
        return sorted(nodes, key=lambda n: (type(n).__name__, repr(n)))


def sort_edges(edges: Iterable[tuple[Node, Node]]) -> list[tuple[Node, Node]]:
    """Sort canonical edge tuples, tolerating incomparable node types."""
    edge_list = list(edges)
    try:
        return sorted(edge_list)
    except TypeError:
        return sorted(
            edge_list,
            key=lambda e: tuple((type(n).__name__, repr(n)) for n in e),
        )


class Graph:
    """A finite, simple, undirected graph with deterministic iteration.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of initial edges, given as 2-element iterables.
        Endpoints are added as nodes automatically.

    Examples
    --------
    >>> g = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
    >>> g.num_nodes, g.num_edges
    (4, 4)
    >>> g.has_edge(2, 1)
    True
    >>> sorted(g.neighbors(1))
    [2, 4]
    """

    __slots__ = ("_core", "_interner", "_sorted_idx", "_ranks")

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[Iterable[Node]] = (),
    ) -> None:
        self._core = IndexedGraph()
        self._interner = NodeInterner()
        self._sorted_idx: list[int] | None = None
        self._ranks: list[int] | None = None
        for node in nodes:
            self.add_node(node)
        for edge in edges:
            u, v = edge
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # The index layer (used by the algorithm modules)
    # ------------------------------------------------------------------

    @property
    def core(self) -> IndexedGraph:
        """The integer-indexed bitset core holding the structure."""
        return self._core

    @property
    def interner(self) -> NodeInterner:
        """The label ↔ index interner of this graph."""
        return self._interner

    def index_of(self, node: Node) -> int:
        """Return the vertex index of ``node`` (NodeNotFoundError if absent)."""
        index = self._interner.get(node)
        if index is None:
            raise NodeNotFoundError(node)
        return index

    def label_of(self, index: int) -> Node:
        """Return the node label interned at vertex ``index``."""
        return self._interner.label_of(index)

    def mask_of(self, nodes: Iterable[Node], strict: bool = True) -> int:
        """Return the bitmask of ``nodes``.

        With ``strict`` (default) an absent node raises
        :class:`NodeNotFoundError`; otherwise it is silently skipped.
        """
        mask = 0
        get = self._interner.get
        for node in nodes:
            index = get(node)
            if index is None:
                if strict:
                    raise NodeNotFoundError(node)
                continue
            mask |= 1 << index
        return mask

    def label_set(self, mask: int) -> frozenset[Node]:
        """Return the labels of the set bits of ``mask`` as a frozenset."""
        label_of = self._interner.label_of
        return frozenset(label_of(i) for i in iter_bits(mask))

    def sorted_indices(self) -> list[int]:
        """Return the live vertex indices in label-sorted order (cached)."""
        cache = self._sorted_idx
        if cache is None:
            pairs = list(self._interner.items())
            try:
                pairs.sort(key=lambda item: item[0])  # type: ignore[arg-type,return-value]
            except TypeError:
                pairs.sort(key=lambda item: (type(item[0]).__name__, repr(item[0])))
            cache = [index for __, index in pairs]
            self._sorted_idx = cache
            ranks = [0] * len(self._core.adj)
            for rank, index in enumerate(cache):
                ranks[index] = rank
            self._ranks = ranks
        return cache

    def ranks(self) -> list[int]:
        """Return ``rank[index]`` = position of index in label-sorted order."""
        if self._sorted_idx is None:
            self.sorted_indices()
        assert self._ranks is not None
        return self._ranks

    def _invalidate_order(self) -> None:
        self._sorted_idx = None
        self._ranks = None

    @classmethod
    def _from_parts(cls, core: IndexedGraph, interner: NodeInterner) -> "Graph":
        g = Graph.__new__(Graph)
        g._core = core
        g._interner = interner
        g._sorted_idx = None
        g._ranks = None
        return g

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, other: "Graph") -> "Graph":
        """Deep-copy constructor (alias of :meth:`copy` usable on the class)."""
        return other.copy()

    def copy(self) -> "Graph":
        """Return an independent copy of this graph."""
        g = Graph._from_parts(self._core.copy(), self._interner.copy())
        g._sorted_idx = self._sorted_idx
        g._ranks = self._ranks
        return g

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (a no-op if already present)."""
        if node not in self._interner:
            self._core.add_vertex(self._interner.intern(node))
            self._invalidate_order()

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge {u, v}, adding endpoints as needed.

        Raises
        ------
        SelfLoopError
            If ``u == v``.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_node(u)
        self.add_node(v)
        interner = self._interner
        self._core.add_edge(interner.index(u), interner.index(v))

    def add_edges(self, edges: Iterable[Iterable[Node]]) -> None:
        """Add every edge in ``edges``."""
        for edge in edges:
            u, v = edge
            self.add_edge(u, v)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        index = self._interner.get(node)
        if index is None:
            raise NodeNotFoundError(node)
        self._core.remove_vertex(index)
        self._interner.release(node)
        self._invalidate_order()

    def remove_nodes(self, nodes: Iterable[Node]) -> None:
        """Remove every node in ``nodes`` (each must be present)."""
        for node in list(nodes):
            self.remove_node(node)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge {u, v}, keeping both endpoints.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        interner = self._interner
        iu, iv = interner.get(u), interner.get(v)
        if iu is None or iv is None or not self._core.remove_edge(iu, iv):
            raise EdgeNotFoundError(u, v)

    def remove_edges(self, edges: Iterable[Iterable[Node]]) -> None:
        """Remove every edge in ``edges`` (each must be present)."""
        for edge in list(edges):
            u, v = edge
            self.remove_edge(u, v)

    def saturate(self, nodes: Iterable[Node]) -> list[tuple[Node, Node]]:
        """Connect every non-adjacent pair in ``nodes``; return the new edges.

        This is the *saturation* operation of the paper (Section 2.1):
        after the call, ``nodes`` forms a clique.  The returned list
        contains the edges that were actually added, as canonical
        sorted tuples, so callers can track fill.

        Raises
        ------
        NodeNotFoundError
            If any node is absent from the graph.
        """
        mask = self.mask_of(set(nodes))
        core = self._core
        ranks = self.ranks()
        members = sorted(bit_list(mask), key=ranks.__getitem__)
        label_of = self._interner.label_of
        added: list[tuple[Node, Node]] = []
        for i, iu in enumerate(members):
            adj_u = core.adj[iu]
            for iv in members[i + 1 :]:
                if not adj_u >> iv & 1:
                    core.add_edge(iu, iv)
                    added.append((label_of(iu), label_of(iv)))
        return added

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes, |V(g)|."""
        return len(self._interner)

    @property
    def num_edges(self) -> int:
        """Number of edges, |E(g)| (an O(1) counter read)."""
        return self._core.num_edges

    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._interner

    def __contains__(self, node: Node) -> bool:
        return node in self._interner

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the edge {u, v} is in the graph."""
        interner = self._interner
        iu = interner.get(u)
        if iu is None:
            return False
        iv = interner.get(v)
        return iv is not None and bool(self._core.adj[iu] >> iv & 1)

    def nodes(self) -> list[Node]:
        """Return the nodes in sorted order."""
        label_of = self._interner.label_of
        return [label_of(i) for i in self.sorted_indices()]

    def node_set(self) -> frozenset[Node]:
        """Return the node set as a frozenset."""
        return frozenset(self._interner)

    def edges(self) -> list[tuple[Node, Node]]:
        """Return all edges as canonical sorted tuples, in sorted order."""
        core = self._core
        ranks = self.ranks()
        label_of = self._interner.label_of
        result: list[tuple[Node, Node]] = []
        for iu in self.sorted_indices():
            rank_u = ranks[iu]
            later = sorted(
                (iv for iv in bit_list(core.adj[iu]) if ranks[iv] > rank_u),
                key=ranks.__getitem__,
            )
            label_u = label_of(iu)
            for iv in later:
                result.append((label_u, label_of(iv)))
        return result

    def edge_set(self) -> frozenset[frozenset[Node]]:
        """Return the edge set as a frozenset of 2-element frozensets."""
        label_of = self._interner.label_of
        return frozenset(
            frozenset((label_of(u), label_of(v)))
            for u, v in self._core.edge_pairs()
        )

    def neighbors(self, node: Node) -> set[Node]:
        """Return a *copy* of the neighbour set N(node).

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        label_of = self._interner.label_of
        return {
            label_of(i) for i in iter_bits(self._core.adj[self.index_of(node)])
        }

    def adjacency(self, node: Node) -> frozenset[Node]:
        """Return the neighbour set as a frozenset."""
        return frozenset(self.neighbors(node))

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``."""
        return self._core.adj[self.index_of(node)].bit_count()

    def neighborhood_of_set(self, nodes: Iterable[Node]) -> set[Node]:
        """Return N(U): neighbours of any node of U, excluding U itself.

        This is the ``N(U)`` of the paper's Section 4.2.
        """
        mask = self.mask_of(set(nodes))
        label_of = self._interner.label_of
        return {
            label_of(i) for i in iter_bits(self._core.neighborhood_of_set(mask))
        }

    def closed_neighborhood(self, node: Node) -> set[Node]:
        """Return N[node] = N(node) ∪ {node}."""
        closed = self.neighbors(node)
        closed.add(node)
        return closed

    def is_clique(self, nodes: Iterable[Node]) -> bool:
        """Return whether ``nodes`` induces a clique.

        Nodes absent from the graph raise :class:`NodeNotFoundError`.
        """
        return self._core.is_clique(self.mask_of(set(nodes)))

    def is_independent_set(self, nodes: Iterable[Node]) -> bool:
        """Return whether ``nodes`` is an independent set of this graph."""
        return self._core.is_independent_set(self.mask_of(set(nodes)))

    def missing_edges(self, nodes: Iterable[Node] | None = None) -> list[Edge]:
        """Return the non-edges among ``nodes`` (default: all nodes).

        The result is the list of canonical tuples whose addition would
        saturate the set — i.e. the *fill* required to make it a clique.
        """
        if nodes is not None:
            mask = self.mask_of(set(nodes))
        else:
            mask = self._core.alive
        core = self._core
        ranks = self.ranks()
        members = sorted(bit_list(mask), key=ranks.__getitem__)
        label_of = self._interner.label_of
        missing: list[Edge] = []
        for i, iu in enumerate(members):
            adj_u = core.adj[iu]
            for iv in members[i + 1 :]:
                if not adj_u >> iv & 1:
                    missing.append((label_of(iu), label_of(iv)))
        return missing

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes`` (``g|U`` in the paper)."""
        keep = self.mask_of(set(nodes))
        return self._restricted(keep)

    def without_nodes(self, nodes: Iterable[Node]) -> "Graph":
        """Return ``g \\ U``: the graph with the nodes of U removed."""
        drop = self.mask_of(set(nodes), strict=False)
        return self._restricted(self._core.alive & ~drop)

    def _restricted(self, keep: int) -> "Graph":
        interner = self._interner.copy()
        label_of = self._interner.label_of
        for index in iter_bits(self._core.alive & ~keep):
            interner.release(label_of(index))
        return Graph._from_parts(self._core.subgraph(keep), interner)

    def saturated(self, node_sets: Iterable[Iterable[Node]]) -> "Graph":
        """Return a copy with every set in ``node_sets`` saturated.

        This implements the paper's ``g[φ]`` when ``node_sets`` is a set
        of (parallel) minimal separators, and ``saturate(g, d)`` when it
        is the bags of a tree decomposition.
        """
        g = self.copy()
        for node_set in node_sets:
            g._core.saturate(g.mask_of(set(node_set)))
        return g

    def complement(self) -> "Graph":
        """Return the complement graph on the same node set."""
        return Graph._from_parts(self._core.complement(), self._interner.copy())

    def relabeled(self, mapping: dict[Node, Node]) -> "Graph":
        """Return a copy with nodes renamed through ``mapping``.

        Nodes missing from ``mapping`` keep their name.  The mapping
        must be injective on the node set.
        """
        return Graph._from_parts(
            self._core.copy(), self._interner.relabeled(mapping)
        )

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._interner)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._core.num_edges != other._core.num_edges:
            return False
        if self._interner.index_map == other._interner.index_map:
            # Same label → index assignment: compare masks directly.
            mine, theirs = self._core.adj, other._core.adj
            return all(mine[i] == theirs[i] for i in iter_bits(self._core.alive))
        if self.node_set() != other.node_set():
            return False
        other_index = other._interner.index
        translate = {
            index: other_index(label) for label, index in self._interner.items()
        }
        theirs = other._core.adj
        for label, index in self._interner.items():
            expected = 0
            for i in iter_bits(self._core.adj[index]):
                expected |= 1 << translate[i]
            if expected != theirs[translate[index]]:
                return False
        return True

    def __hash__(self) -> int:
        # Mutable, but hashing by identity-free content is useful for the
        # enumeration bookkeeping where graphs are treated as values and
        # never mutated after being handed out.
        return hash((self.node_set(), self.edge_set()))

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    def summary(self) -> str:
        """Return a short human-readable description."""
        return f"graph with {self.num_nodes} nodes and {self.num_edges} edges"
