"""Deterministic graph generators (system S3 of DESIGN.md).

Every generator takes explicit parameters and, where randomness is
involved, an explicit ``seed`` — the library never consults global
random state.  These generators back both the test suite (cycles,
grids, k-trees have known triangulation/separator counts) and the
experiment workloads (Erdős–Rényi sweeps, grids).
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Sequence

from repro.graph.graph import Graph, Node

__all__ = [
    "empty_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "grid_graph",
    "complete_bipartite_graph",
    "gnp_random_graph",
    "gnm_random_graph",
    "random_tree",
    "random_k_tree",
    "random_chordal_graph",
    "random_connected_gnp",
    "wheel_graph",
    "from_edge_list",
]


def empty_graph(num_nodes: int) -> Graph:
    """Return the edgeless graph on nodes ``0 .. num_nodes - 1``."""
    if num_nodes < 0:
        raise ValueError("num_nodes must be non-negative")
    return Graph(nodes=range(num_nodes))


def complete_graph(num_nodes: int) -> Graph:
    """Return K_n on nodes ``0 .. num_nodes - 1``."""
    g = empty_graph(num_nodes)
    for u, v in itertools.combinations(range(num_nodes), 2):
        g.add_edge(u, v)
    return g


def path_graph(num_nodes: int) -> Graph:
    """Return the path P_n on nodes ``0 .. num_nodes - 1``."""
    g = empty_graph(num_nodes)
    for u in range(num_nodes - 1):
        g.add_edge(u, u + 1)
    return g


def cycle_graph(num_nodes: int) -> Graph:
    """Return the cycle C_n on nodes ``0 .. num_nodes - 1``.

    Cycles are the canonical correctness fixture: C_n has exactly
    ``n (n - 3) / 2`` minimal separators (all non-adjacent pairs) and
    its minimal triangulations are the Catalan-many triangulations of a
    convex n-gon.
    """
    if num_nodes < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    g = path_graph(num_nodes)
    g.add_edge(num_nodes - 1, 0)
    return g


def star_graph(num_leaves: int) -> Graph:
    """Return the star with centre 0 and leaves ``1 .. num_leaves``."""
    g = Graph(nodes=range(num_leaves + 1))
    for leaf in range(1, num_leaves + 1):
        g.add_edge(0, leaf)
    return g


def wheel_graph(num_rim_nodes: int) -> Graph:
    """Return the wheel: a cycle on ``1 .. n`` plus a hub 0 adjacent to all."""
    if num_rim_nodes < 3:
        raise ValueError("a wheel needs at least 3 rim nodes")
    g = Graph(nodes=range(num_rim_nodes + 1))
    for i in range(1, num_rim_nodes + 1):
        g.add_edge(0, i)
        g.add_edge(i, 1 + (i % num_rim_nodes))
    return g


def grid_graph(rows: int, cols: int | None = None) -> Graph:
    """Return the rows × cols grid; nodes are ``(r, c)`` tuples.

    Grid Markov networks are one of the paper's benchmark families
    (Section 6.1.3, "Grids": N×N with N = 10 and 20).
    """
    if cols is None:
        cols = rows
    if rows <= 0 or cols <= 0:
        raise ValueError("grid dimensions must be positive")
    g = Graph(nodes=((r, c) for r in range(rows) for c in range(cols)))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
    return g


def complete_bipartite_graph(left: int, right: int) -> Graph:
    """Return K_{left,right}; left part is 0..left-1, right part follows."""
    g = Graph(nodes=range(left + right))
    for u in range(left):
        for v in range(left, left + right):
            g.add_edge(u, v)
    return g


def gnp_random_graph(num_nodes: int, probability: float, seed: int) -> Graph:
    """Return an Erdős–Rényi G(n, p) sample.

    Every unordered pair is connected independently with probability
    ``probability``, exactly as in the paper's random-graph experiments
    (Section 6.1.3, "Random").
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    rng = random.Random(seed)
    g = empty_graph(num_nodes)
    for u, v in itertools.combinations(range(num_nodes), 2):
        if rng.random() < probability:
            g.add_edge(u, v)
    return g


def gnm_random_graph(num_nodes: int, num_edges: int, seed: int) -> Graph:
    """Return a uniform random graph with exactly ``num_edges`` edges."""
    all_pairs = list(itertools.combinations(range(num_nodes), 2))
    if num_edges > len(all_pairs):
        raise ValueError(
            f"cannot place {num_edges} edges on {num_nodes} nodes "
            f"(max {len(all_pairs)})"
        )
    rng = random.Random(seed)
    g = empty_graph(num_nodes)
    for u, v in rng.sample(all_pairs, num_edges):
        g.add_edge(u, v)
    return g


def random_tree(num_nodes: int, seed: int) -> Graph:
    """Return a uniformly random labelled tree via a Prüfer sequence."""
    if num_nodes < 0:
        raise ValueError("num_nodes must be non-negative")
    if num_nodes <= 1:
        return empty_graph(num_nodes)
    if num_nodes == 2:
        return path_graph(2)
    rng = random.Random(seed)
    pruefer = [rng.randrange(num_nodes) for _ in range(num_nodes - 2)]
    degree = [1] * num_nodes
    for node in pruefer:
        degree[node] += 1
    g = empty_graph(num_nodes)
    import heapq

    leaves = [node for node in range(num_nodes) if degree[node] == 1]
    heapq.heapify(leaves)
    for node in pruefer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, node)
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g


def random_k_tree(num_nodes: int, k: int, seed: int) -> Graph:
    """Return a random k-tree on ``num_nodes`` nodes.

    Start from K_{k+1} and repeatedly attach a new node to a random
    existing k-clique.  k-trees are exactly the maximal graphs of
    treewidth k, and they are chordal — useful fixtures because their
    treewidth is known by construction.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if num_nodes < k + 1:
        raise ValueError("a k-tree needs at least k + 1 nodes")
    rng = random.Random(seed)
    g = complete_graph(k + 1)
    cliques: list[tuple[int, ...]] = [
        tuple(c) for c in itertools.combinations(range(k + 1), k)
    ]
    for new_node in range(k + 1, num_nodes):
        base = list(rng.choice(cliques))
        for node in base:
            g.add_edge(new_node, node)
        for drop_index in range(len(base)):
            clique = base[:drop_index] + base[drop_index + 1 :] + [new_node]
            cliques.append(tuple(sorted(clique)))
        cliques.append(tuple(sorted(base)))
    return g


def random_chordal_graph(num_nodes: int, density: float, seed: int) -> Graph:
    """Return a random chordal graph, grown as a tree of cliques.

    Nodes are added in order; each new node attaches to a random subset
    of a random *existing clique* — a subset of a clique is a clique,
    so the reverse insertion order is a perfect elimination ordering
    and the graph is chordal by construction.  ``density`` in (0, 1]
    scales how much of the host clique each new node adopts (1.0 grows
    k-tree-like dense graphs, small values grow tree-like ones).
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = random.Random(seed)
    g = empty_graph(num_nodes)
    if num_nodes <= 1:
        return g
    cliques: list[list[int]] = [[0]]
    for node in range(1, num_nodes):
        host = rng.choice(cliques)
        cap = max(1, min(len(host), int(round(density * len(host))) + 1))
        size = rng.randint(1, cap)
        parents = rng.sample(host, min(size, len(host)))
        for parent in parents:
            g.add_edge(node, parent)
        cliques.append(sorted(parents) + [node])
    return g


def random_connected_gnp(
    num_nodes: int, probability: float, seed: int, max_attempts: int = 64
) -> Graph:
    """Return a connected G(n, p) sample, retrying with derived seeds.

    Falls back to patching with a random spanning-tree edge set if no
    attempt is connected, so it always terminates.
    """
    from repro.graph.components import connected_components

    for attempt in range(max_attempts):
        g = gnp_random_graph(num_nodes, probability, seed + attempt * 7919)
        if len(connected_components(g)) <= 1:
            return g
    components = connected_components(g)
    rng = random.Random(seed ^ 0x5EED)
    previous = components[0]
    for component in components[1:]:
        g.add_edge(rng.choice(sorted(previous)), rng.choice(sorted(component)))
        previous = component
    return g


def from_edge_list(edges: Sequence[tuple[Node, Node]]) -> Graph:
    """Return the graph on exactly the endpoints of ``edges``."""
    return Graph(edges=edges)
