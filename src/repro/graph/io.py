"""Graph serialisation (system S4 of DESIGN.md).

Three formats are supported, covering the dataset families of the
paper's Section 6:

* **edge list** — one ``u v`` pair per line, ``#`` comments; the
  simplest interchange format;
* **DIMACS** — the classic ``p edge N M`` / ``e u v`` format used by
  graph-colouring and treewidth communities (PACE challenge graphs);
* **UAI model format** — the preamble of UAI-competition probabilistic
  models (Bayesian ``BAYES`` / Markov ``MARKOV`` networks), from which
  we extract the *primal (moral) graph*: one node per variable, the
  variables of each factor pairwise connected.  This is exactly how the
  paper turns the UAI benchmark networks into graphs.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.errors import ParseError
from repro.graph.graph import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "parse_edge_list",
    "read_dimacs",
    "write_dimacs",
    "parse_dimacs",
    "parse_uai_model",
    "read_uai_model",
    "parse_pace_graph",
    "read_pace_graph",
    "write_pace_graph",
]


def _open_text(source: str | Path | TextIO) -> TextIO:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8")
    return source


# ----------------------------------------------------------------------
# Edge list
# ----------------------------------------------------------------------


def parse_edge_list(text: str) -> Graph:
    """Parse an edge-list document; see :func:`read_edge_list`."""
    return read_edge_list(io.StringIO(text))


def read_edge_list(source: str | Path | TextIO) -> Graph:
    """Read a graph from ``u v`` lines.

    Blank lines and lines starting with ``#`` are skipped.  A line with
    a single token declares an isolated node.  Tokens that look like
    integers become int nodes; everything else stays a string.
    """
    graph = Graph()
    stream = _open_text(source)
    should_close = isinstance(source, (str, Path))
    try:
        for line_number, raw_line in enumerate(stream, start=1):
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            if len(tokens) == 1:
                graph.add_node(_coerce(tokens[0]))
            elif len(tokens) == 2:
                u, v = _coerce(tokens[0]), _coerce(tokens[1])
                if u == v:
                    raise ParseError(f"self loop on {u!r}", line_number)
                graph.add_edge(u, v)
            else:
                raise ParseError(
                    f"expected 1 or 2 tokens, got {len(tokens)}", line_number
                )
    finally:
        if should_close:
            stream.close()
    return graph


def write_edge_list(graph: Graph, target: str | Path | TextIO) -> None:
    """Write ``graph`` in edge-list format (isolated nodes as single tokens)."""
    lines = []
    covered = set()
    for u, v in graph.edges():
        lines.append(f"{u} {v}")
        covered.add(u)
        covered.add(v)
    for node in graph.nodes():
        if node not in covered:
            lines.append(str(node))
    text = "\n".join(lines) + "\n"
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)


def _coerce(token: str) -> int | str:
    try:
        return int(token)
    except ValueError:
        return token


# ----------------------------------------------------------------------
# DIMACS
# ----------------------------------------------------------------------


def parse_dimacs(text: str) -> Graph:
    """Parse a DIMACS document; see :func:`read_dimacs`."""
    return read_dimacs(io.StringIO(text))


def read_dimacs(source: str | Path | TextIO) -> Graph:
    """Read a graph in DIMACS ``.col``-style format.

    Recognised lines: ``c`` comments, one ``p edge N M`` (or ``p tw``)
    problem line, and ``e u v`` edge lines with 1-based node indices.
    Nodes are 1..N ints.
    """
    graph = Graph()
    declared_nodes: int | None = None
    stream = _open_text(source)
    should_close = isinstance(source, (str, Path))
    try:
        for line_number, raw_line in enumerate(stream, start=1):
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            tokens = line.split()
            if tokens[0] == "p":
                if declared_nodes is not None:
                    raise ParseError("duplicate problem line", line_number)
                if len(tokens) < 4:
                    raise ParseError("malformed problem line", line_number)
                try:
                    declared_nodes = int(tokens[2])
                except ValueError:
                    raise ParseError("non-integer node count", line_number) from None
                graph.add_nodes(range(1, declared_nodes + 1))
            elif tokens[0] == "e":
                if len(tokens) != 3:
                    raise ParseError("malformed edge line", line_number)
                try:
                    u, v = int(tokens[1]), int(tokens[2])
                except ValueError:
                    raise ParseError("non-integer endpoint", line_number) from None
                if u == v:
                    raise ParseError(f"self loop on {u}", line_number)
                graph.add_edge(u, v)
            else:
                raise ParseError(f"unknown line type {tokens[0]!r}", line_number)
    finally:
        if should_close:
            stream.close()
    if declared_nodes is None:
        raise ParseError("missing problem line")
    return graph


def write_dimacs(graph: Graph, target: str | Path | TextIO) -> None:
    """Write ``graph`` in DIMACS format, relabelling nodes to 1..N."""
    nodes = graph.nodes()
    index = {node: i + 1 for i, node in enumerate(nodes)}
    lines = [f"p edge {len(nodes)} {graph.num_edges}"]
    for u, v in graph.edges():
        lines.append(f"e {index[u]} {index[v]}")
    text = "\n".join(lines) + "\n"
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)


# ----------------------------------------------------------------------
# UAI model format
# ----------------------------------------------------------------------


def parse_uai_model(text: str) -> Graph:
    """Extract the primal (moral) graph from a UAI model preamble.

    The UAI competition format starts with a header::

        MARKOV                  (or BAYES)
        <number of variables>
        <cardinality of each variable>
        <number of factors>
        <scope-size var var ...>     one line (or whitespace run) per factor

    The function tables that follow the preamble are ignored — only the
    structure matters for triangulation.  Each factor scope is turned
    into a clique over its variables (moralisation), matching the
    construction of the paper's PGM benchmark graphs.
    """
    tokens = text.split()
    if not tokens:
        raise ParseError("empty UAI document")
    cursor = 0
    network_type = tokens[cursor].upper()
    cursor += 1
    if network_type not in {"MARKOV", "BAYES"}:
        raise ParseError(f"unknown network type {network_type!r}")

    def take_int(what: str) -> int:
        nonlocal cursor
        if cursor >= len(tokens):
            raise ParseError(f"unexpected end of document reading {what}")
        try:
            value = int(tokens[cursor])
        except ValueError:
            raise ParseError(
                f"expected integer for {what}, got {tokens[cursor]!r}"
            ) from None
        cursor += 1
        return value

    num_variables = take_int("variable count")
    if num_variables < 0:
        raise ParseError("negative variable count")
    for i in range(num_variables):
        cardinality = take_int(f"cardinality of variable {i}")
        if cardinality <= 0:
            raise ParseError(f"non-positive cardinality for variable {i}")
    num_factors = take_int("factor count")
    graph = Graph(nodes=range(num_variables))
    for factor_index in range(num_factors):
        scope_size = take_int(f"scope size of factor {factor_index}")
        if scope_size < 0:
            raise ParseError(f"negative scope size in factor {factor_index}")
        scope = []
        for position in range(scope_size):
            variable = take_int(
                f"variable {position} of factor {factor_index}"
            )
            if not 0 <= variable < num_variables:
                raise ParseError(
                    f"factor {factor_index} references unknown variable {variable}"
                )
            scope.append(variable)
        graph.saturate(set(scope))
    return graph


def read_uai_model(source: str | Path | TextIO) -> Graph:
    """Read a UAI model file and return its primal graph."""
    stream = _open_text(source)
    should_close = isinstance(source, (str, Path))
    try:
        return parse_uai_model(stream.read())
    finally:
        if should_close:
            stream.close()


# ----------------------------------------------------------------------
# PACE treewidth format (.gr)
# ----------------------------------------------------------------------


def parse_pace_graph(text: str) -> Graph:
    """Parse a PACE ``.gr`` document; see :func:`read_pace_graph`."""
    return read_pace_graph(io.StringIO(text))


def read_pace_graph(source: str | Path | TextIO) -> Graph:
    """Read a graph in the PACE challenge ``.gr`` format.

    Recognised lines: ``c`` comments, one ``p tw N M`` problem line,
    and bare ``u v`` edge lines with 1-based integer endpoints.
    """
    graph = Graph()
    declared_nodes: int | None = None
    stream = _open_text(source)
    should_close = isinstance(source, (str, Path))
    try:
        for line_number, raw_line in enumerate(stream, start=1):
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            tokens = line.split()
            if tokens[0] == "p":
                if declared_nodes is not None:
                    raise ParseError("duplicate problem line", line_number)
                if len(tokens) != 4 or tokens[1] != "tw":
                    raise ParseError("malformed 'p tw N M' line", line_number)
                try:
                    declared_nodes = int(tokens[2])
                except ValueError:
                    raise ParseError("non-integer node count", line_number) from None
                graph.add_nodes(range(1, declared_nodes + 1))
            else:
                if declared_nodes is None:
                    raise ParseError("edge before problem line", line_number)
                if len(tokens) != 2:
                    raise ParseError("malformed edge line", line_number)
                try:
                    u, v = int(tokens[0]), int(tokens[1])
                except ValueError:
                    raise ParseError("non-integer endpoint", line_number) from None
                if u == v:
                    raise ParseError(f"self loop on {u}", line_number)
                if not (1 <= u <= declared_nodes and 1 <= v <= declared_nodes):
                    raise ParseError("endpoint out of range", line_number)
                graph.add_edge(u, v)
    finally:
        if should_close:
            stream.close()
    if declared_nodes is None:
        raise ParseError("missing problem line")
    return graph


def write_pace_graph(graph: Graph, target: str | Path | TextIO) -> None:
    """Write ``graph`` in PACE ``.gr`` format, relabelling nodes to 1..N."""
    nodes = graph.nodes()
    index = {node: i + 1 for i, node in enumerate(nodes)}
    lines = [f"p tw {len(nodes)} {graph.num_edges}"]
    for u, v in graph.edges():
        lines.append(f"{index[u]} {index[v]}")
    text = "\n".join(lines) + "\n"
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)
