/* Native word-matrix kernels for the packed uint64 graph tier.
 *
 * Every function operates on the same little-endian packed layout the
 * numpy tier uses (repro/graph/bitset_np.py): a vertex bitmask is a row
 * of `words` uint64 values, bit i of the mask living in bit (i % 64) of
 * word (i / 64).  A matrix is `rows` such rows, C-contiguous.  All
 * pointers come straight from numpy buffers via cffi; nothing here owns
 * or resizes memory except short-lived internal scratch.
 *
 * Functions returning int use 0 for success and -1 for scratch
 * allocation failure; callers fall back to the numpy tier on -1.
 *
 * Keep these declarations in sync with the _CDEF string in native.py —
 * the loader checks repro_kernels_abi_version() after dlopen and
 * rebuilds on mismatch.
 */

#ifndef REPRO_NATIVE_KERNELS_H
#define REPRO_NATIVE_KERNELS_H

#include <stdint.h>

#define REPRO_KERNELS_ABI_VERSION 1

int repro_kernels_abi_version(void);

/* Per-row popcounts of an (m, words) matrix into out[m]. */
void popcount_rows(const uint64_t *rows, int64_t m, int64_t words,
                   int64_t *out);

/* Batched separator crossing: out[i] = 1 iff remainder row i intersects
 * at least two of the k component rows.  Early-exits per remainder once
 * two components are touched; no temporaries. */
void crossing_batch(const uint64_t *components, int64_t k,
                    const uint64_t *remainders, int64_t m, int64_t words,
                    uint8_t *out);

/* Fused gather variant: remainder i is matrix[ids[i]] & ~v_row,
 * computed word-by-word on the fly — the AND/ANDN, the gather and the
 * component test run in one pass with no remainder matrix ever
 * materialised. */
void crossing_batch_gather(const uint64_t *components, int64_t k,
                           const uint64_t *matrix, int64_t words,
                           const int64_t *ids, int64_t m,
                           const uint64_t *v_row, uint8_t *out);

/* OR-reduce the m selected rows of the matrix into out[words]
 * (out must be zeroed by the caller). */
void union_rows(const uint64_t *matrix, int64_t words,
                const int64_t *indices, int64_t m, uint64_t *out);

/* Reachability fixpoint: component[] starts as the seed mask and ends
 * as the seed's component within `available`.  The whole BFS — every
 * frontier round — runs natively.  Returns -1 on scratch alloc
 * failure (component is then untouched beyond the seed). */
int frontier_sweep(const uint64_t *matrix, int64_t words,
                   uint64_t *component, const uint64_t *available);

/* Missing pairs (u, v) with u < v inside the clique candidate
 * `mask_row`, whose k member indices are idx[] (ascending).  Pair
 * order matches the numpy kernel: u-major in idx order, v ascending.
 * saturate_count only counts; saturate_fill writes u_out/v_out, which
 * must hold saturate_count() entries. */
int64_t saturate_count(const uint64_t *matrix, int64_t words,
                       const uint64_t *mask_row, const int64_t *idx,
                       int64_t k);
void saturate_fill(const uint64_t *matrix, int64_t words,
                   const uint64_t *mask_row, const int64_t *idx, int64_t k,
                   int64_t *u_out, int64_t *v_out);

/* Set the (u, v) and (v, u) bits of a packed adjacency in place. */
void set_edge_bits(uint64_t *matrix, int64_t words, const int64_t *u_arr,
                   const int64_t *v_arr, int64_t m);

/* Rose–Tarjan–Lueker PEO test over the packed adjacency.  order[] holds
 * k vertex indices; n_slots bounds every vertex index (words * 64).
 * Returns 1 (PEO), 0 (not) or -1 (scratch alloc failure). */
int is_peo_packed(const uint64_t *matrix, int64_t words,
                  const int64_t *order, int64_t k, int64_t n_slots);

/* Group m (index, weight) pairs into packed byte rows by ascending
 * distinct weight — the native twin of bitset_np.weight_level_rows.
 * out must hold m rows of words*8 bytes, pre-zeroed.  Returns the
 * number of levels written, or -1 on scratch alloc failure. */
int64_t weight_level_rows(const int64_t *indices, const int64_t *weights,
                          int64_t m, int64_t words, uint8_t *out);

/* Index of the first maximum of key[0..n) (np.argmax tie rule). */
int64_t argmax_i64(const int64_t *key, int64_t n);

/* PackedMCSQueue bump: for every set bit i of mask_row, add 1 to
 * weights[i] and stride to key[i]. */
void queue_bump_mask(int64_t *key, int64_t *weights,
                     const uint64_t *mask_row, int64_t words,
                     int64_t stride);

/* Set-bit indices of a packed row, ascending, into out (which must
 * hold the row's popcount).  Returns the count written. */
int64_t mask_row_indices(const uint64_t *mask_row, int64_t words,
                         int64_t *out);

/* Sum over set bits u of mask_row of popcount(matrix[u] & mask_row) —
 * the number of adjacency bits present inside a clique candidate. */
int64_t masked_rows_popcount(const uint64_t *matrix, int64_t words,
                             const uint64_t *mask_row);

#endif /* REPRO_NATIVE_KERNELS_H */
