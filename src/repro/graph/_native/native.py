"""Native C kernel tier: in-repo compilation, loading and dispatch.

This module is the third graph-core kernel tier (``"native"`` in
:data:`repro.graph.bitset_np.GRAPH_BACKENDS`).  The kernels live in
``kernels.c`` next to this file and are compiled on first use into
``_build/kernels-<fingerprint>.so`` with whatever C compiler the host
offers (``$CC``, else ``gcc``, else ``cc``), then loaded through cffi's
ABI mode (``ffi.dlopen``) — no setuptools, no Python headers, no
install-time step.  The fingerprint is a SHA-256 over the C source, the
header, the cffi declarations and the compiler identification, so
editing any of them (or switching compilers) rebuilds exactly once;
stale artefacts are swept after a successful build and a corrupt or
ABI-mismatched artefact is deleted and rebuilt instead of erroring.

Nothing here may ever hard-fail at import: loading is lazy, every
failure path (no compiler, no cffi, build error, corrupt artefact on a
read-only filesystem) degrades to :func:`available` returning ``False``
and the numpy tier serving in place of this one.  Setting
``REPRO_NATIVE_DISABLE=1`` in the environment forces that degradation —
the documented kill-switch for benchmarking the numpy tier or working
around a miscompiling toolchain.

The public surface mirrors :mod:`repro.graph.bitset_np` name for name
(``crossing_batch``, ``union_rows``, ``frontier_sweep``,
``saturate_batch`` + ``set_edge_bits``, ``is_peo_packed``,
``weight_level_rows``, ``popcount``, ``mask_to_indices``,
``PackedMCSQueue``, …): the chordal layer and the SGR pick a *kernel
namespace* per graph core (:func:`repro.graph.bitset_np.kernels_for`)
and call the same names either way.  Every kernel takes raw buffer
pointers from the existing numpy arrays (``ffi.from_buffer`` — zero
copies, read-only buffers accepted), so :class:`NativeGraphCore` is a
thin subclass of :class:`~repro.graph.bitset_np.NumpyGraphCore`: the
packed mirror, the ``SharedPackedBuffer`` zero-copy plumbing and the
width-adaptive ``packed_view`` gate are inherited unchanged, only the
kernel dispatch differs.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.graph import bitset_np as _np_kernels
from repro.graph.bitset_np import (
    BATCH_MIN,  # noqa: F401  (kernel-namespace surface: callers read ns.BATCH_MIN)
    WORD_BITS,
    NumpyGraphCore,
    PackedMCSQueue as _NumpyMCSQueue,
)

__all__ = [
    "available",
    "build_fingerprint",
    "kernel_info",
    "kernel_namespace",
    "NativeGraphCore",
    "NativeMCSQueue",
    "popcount",
    "crossing_batch",
    "crossing_batch_gather",
    "union_rows",
    "frontier_sweep",
    "saturate_batch",
    "set_edge_bits",
    "is_peo_packed",
    "weight_level_rows",
    "mask_to_indices",
    "clique_present_sum",
]

_SOURCE_DIR = Path(__file__).resolve().parent
_ABI_VERSION = 1

#: Environment variable that forces :func:`available` to False.
DISABLE_ENV = "REPRO_NATIVE_DISABLE"

#: Environment variable overriding the artefact directory (defaults to
#: ``_build/`` next to the C source).  Point it somewhere writable when
#: the package directory is not (read-only installs), or at a scratch
#: directory in tests exercising the build cache.
BUILD_DIR_ENV = "REPRO_NATIVE_BUILD_DIR"


def _build_dir() -> Path:
    override = os.environ.get(BUILD_DIR_ENV)
    return Path(override) if override else _SOURCE_DIR / "_build"

# Keep in sync with kernels.h (the dlopen'd library is checked against
# _ABI_VERSION, so a drifted artefact rebuilds rather than misbehaves).
_CDEF = """
int repro_kernels_abi_version(void);
void popcount_rows(const uint64_t *rows, int64_t m, int64_t words,
                   int64_t *out);
void crossing_batch(const uint64_t *components, int64_t k,
                    const uint64_t *remainders, int64_t m, int64_t words,
                    uint8_t *out);
void crossing_batch_gather(const uint64_t *components, int64_t k,
                           const uint64_t *matrix, int64_t words,
                           const int64_t *ids, int64_t m,
                           const uint64_t *v_row, uint8_t *out);
void union_rows(const uint64_t *matrix, int64_t words,
                const int64_t *indices, int64_t m, uint64_t *out);
int frontier_sweep(const uint64_t *matrix, int64_t words,
                   uint64_t *component, const uint64_t *available);
int64_t saturate_count(const uint64_t *matrix, int64_t words,
                       const uint64_t *mask_row, const int64_t *idx,
                       int64_t k);
void saturate_fill(const uint64_t *matrix, int64_t words,
                   const uint64_t *mask_row, const int64_t *idx, int64_t k,
                   int64_t *u_out, int64_t *v_out);
void set_edge_bits(uint64_t *matrix, int64_t words, const int64_t *u_arr,
                   const int64_t *v_arr, int64_t m);
int is_peo_packed(const uint64_t *matrix, int64_t words,
                  const int64_t *order, int64_t k, int64_t n_slots);
int64_t weight_level_rows(const int64_t *indices, const int64_t *weights,
                          int64_t m, int64_t words, uint8_t *out);
int64_t argmax_i64(const int64_t *key, int64_t n);
void queue_bump_mask(int64_t *key, int64_t *weights,
                     const uint64_t *mask_row, int64_t words,
                     int64_t stride);
int64_t mask_row_indices(const uint64_t *mask_row, int64_t words,
                         int64_t *out);
int64_t masked_rows_popcount(const uint64_t *matrix, int64_t words,
                             const uint64_t *mask_row);
"""

_CFLAGS = ["-O3", "-std=c11", "-fPIC", "-shared"]

#: Kernel names exposed by this tier (for ``repro kernels`` diagnostics).
KERNEL_NAMES = (
    "popcount_rows",
    "crossing_batch",
    "crossing_batch_gather",
    "union_rows",
    "frontier_sweep",
    "saturate_batch",
    "set_edge_bits",
    "is_peo_packed",
    "weight_level_rows",
    "mcs_queue_argmax",
    "mcs_queue_bump",
    "mask_to_indices",
    "clique_present_sum",
)

_WORD_DTYPE = np.dtype("<u8")

# Load state: (ffi, lib) once loaded, False after a failed attempt (so
# one broken toolchain does not retry a build per call), None = untried.
_STATE: "tuple | None | bool" = None
_LOAD_ERROR: str | None = None


def _compiler() -> str | None:
    """The C compiler command, or ``None`` when the host has none."""
    explicit = os.environ.get("CC")
    if explicit:
        return explicit
    return shutil.which("gcc") or shutil.which("cc")


def _compiler_id(cc: str) -> str:
    """A stable identification string for ``cc`` (first --version line)."""
    out = subprocess.run(
        [cc, "--version"], capture_output=True, text=True, timeout=30
    )
    if out.returncode != 0:
        raise RuntimeError(f"{cc} --version failed: {out.stderr.strip()}")
    first = out.stdout.splitlines()[0] if out.stdout else ""
    return first.strip() or cc


def build_fingerprint(compiler_id: str) -> str:
    """SHA-256 fingerprint keying the build artefact.

    Covers the C source, the header, the cffi declarations, the ABI
    version and the compiler identification — any change to any of
    them lands in a fresh ``kernels-<fingerprint>.so`` and the stale
    artefact is swept after the rebuild.
    """
    digest = hashlib.sha256()
    for part in (
        (_SOURCE_DIR / "kernels.c").read_bytes(),
        (_SOURCE_DIR / "kernels.h").read_bytes(),
        _CDEF.encode(),
        str(_ABI_VERSION).encode(),
        compiler_id.encode(),
    ):
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def _build(cc: str, artifact: Path) -> None:
    """Compile kernels.c into ``artifact`` (atomic via temp + rename)."""
    artifact.parent.mkdir(parents=True, exist_ok=True)
    temp = artifact.with_name(f".{artifact.name}.{os.getpid()}.tmp")
    command = [cc, *_CFLAGS, "-o", str(temp), str(_SOURCE_DIR / "kernels.c")]
    out = subprocess.run(command, capture_output=True, text=True, timeout=120)
    if out.returncode != 0:
        temp.unlink(missing_ok=True)
        raise RuntimeError(
            f"native kernel build failed ({' '.join(command)}):\n"
            f"{out.stderr.strip()}"
        )
    # Atomic publish: concurrent builders (sharded workers racing on a
    # cold cache) each compile to a private temp and the renames are
    # idempotent — last writer wins with identical bytes.
    os.replace(temp, artifact)
    for stale in artifact.parent.glob("kernels-*.so"):
        if stale != artifact:
            stale.unlink(missing_ok=True)


def _open_artifact(ffi, artifact: Path):
    """dlopen + ABI check; raises on any corruption or mismatch."""
    lib = ffi.dlopen(str(artifact))
    if lib.repro_kernels_abi_version() != _ABI_VERSION:
        raise OSError(
            f"{artifact.name}: ABI {lib.repro_kernels_abi_version()} "
            f"!= expected {_ABI_VERSION}"
        )
    return lib


def _try_load() -> "tuple | None":
    """One full load attempt; returns ``(ffi, lib)`` or raises."""
    from cffi import FFI

    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH (need gcc or cc)")
    ffi = FFI()
    ffi.cdef(_CDEF)
    artifact = (
        _build_dir() / f"kernels-{build_fingerprint(_compiler_id(cc))}.so"
    )
    if artifact.exists():
        try:
            return ffi, _open_artifact(ffi, artifact)
        except Exception:
            # Stale or corrupt artefact (truncated download, ABI drift,
            # interrupted write): rebuild cleanly instead of erroring.
            artifact.unlink(missing_ok=True)
    _build(cc, artifact)
    return ffi, _open_artifact(ffi, artifact)


def _load() -> "tuple | None":
    global _STATE, _LOAD_ERROR
    if _STATE is not None:
        return _STATE or None
    if os.environ.get(DISABLE_ENV):
        _LOAD_ERROR = f"disabled via {DISABLE_ENV}"
        _STATE = False
        return None
    try:
        _STATE = _try_load()
    except Exception as exc:
        _LOAD_ERROR = str(exc)
        _STATE = False
        return None
    return _STATE


def _reset() -> None:
    """Forget the cached load state (tests exercising failure paths)."""
    global _STATE, _LOAD_ERROR
    _STATE = None
    _LOAD_ERROR = None


def available() -> bool:
    """Whether the compiled extension is loadable (building if needed)."""
    return _load() is not None


def kernel_namespace():
    """The kernel namespace this tier serves: this module, or the numpy
    module when the extension cannot be built/loaded."""
    return sys.modules[__name__] if available() else _np_kernels


def kernel_info() -> dict:
    """Diagnostics for ``repro kernels``: tier, compiler, artefact, kernels."""
    cc = _compiler()
    info: dict = {
        "available": available(),
        "reason": _LOAD_ERROR,
        "compiler": cc,
        "compiler_id": None,
        "artifact": None,
        "built": False,
        "kernels": {},
    }
    if cc is not None:
        try:
            compiler_id = _compiler_id(cc)
            info["compiler_id"] = compiler_id
            artifact = (
                _build_dir() / f"kernels-{build_fingerprint(compiler_id)}.so"
            )
            info["artifact"] = str(artifact)
            info["built"] = artifact.exists()
        except Exception as exc:  # pragma: no cover - exotic toolchains
            info["reason"] = info["reason"] or str(exc)
    tier = "native" if info["available"] else "numpy"
    info["kernels"] = {name: tier for name in KERNEL_NAMES}
    return info


# ----------------------------------------------------------------------
# ffi plumbing
# ----------------------------------------------------------------------


def _lib():
    state = _load()
    assert state is not None, "native kernels called while unavailable"
    return state


# Typed ffi.from_buffer (not ffi.cast on an untyped one): the returned
# cdata keeps the underlying Python buffer alive for the duration of
# the call, which matters for the to_bytes() temporaries below.


def _u64(ffi, array):
    """Const uint64 view of a C-contiguous array/bytes (no copy)."""
    return ffi.from_buffer("uint64_t[]", array)


def _u64_mut(ffi, array):
    return ffi.from_buffer("uint64_t[]", array, require_writable=True)


def _i64(ffi, array):
    return ffi.from_buffer("int64_t[]", array)


def _i64_mut(ffi, array):
    return ffi.from_buffer("int64_t[]", array, require_writable=True)


def _u8_mut(ffi, array):
    return ffi.from_buffer("uint8_t[]", array, require_writable=True)


def _as_i64(values) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.int64)


def _row_bytes(mask: int, words: int) -> bytes:
    return mask.to_bytes(words * 8, "little")


# ----------------------------------------------------------------------
# Kernel namespace (numpy-compatible signatures)
# ----------------------------------------------------------------------


def popcount(packed: np.ndarray) -> np.ndarray:
    """Native twin of :func:`repro.graph.bitset_np.popcount`."""
    ffi, lib = _lib()
    packed = np.ascontiguousarray(packed, dtype=_WORD_DTYPE)
    words = packed.shape[-1] if packed.ndim else 1
    flat = packed.reshape(-1, words)
    out = np.empty(flat.shape[0], dtype=np.int64)
    lib.popcount_rows(
        _u64(ffi, flat), flat.shape[0], words, _i64_mut(ffi, out)
    )
    return out.reshape(packed.shape[:-1])


def crossing_batch(
    components: np.ndarray, remainders: np.ndarray
) -> np.ndarray:
    """Native twin of :func:`repro.graph.bitset_np.crossing_batch`."""
    ffi, lib = _lib()
    components = np.ascontiguousarray(components, dtype=_WORD_DTYPE)
    remainders = np.ascontiguousarray(remainders, dtype=_WORD_DTYPE)
    m = remainders.shape[0]
    out = np.zeros(m, dtype=np.uint8)
    if m and components.shape[0]:
        lib.crossing_batch(
            _u64(ffi, components),
            components.shape[0],
            _u64(ffi, remainders),
            m,
            remainders.shape[1],
            _u8_mut(ffi, out),
        )
    return out.view(bool)


def crossing_batch_gather(
    components: np.ndarray, matrix: np.ndarray, ids, v_id: int
) -> list[bool]:
    """Fused crossing sweep: ``matrix[ids] & ~matrix[v_id]`` vs components.

    The gather, the ANDN and the component test run in one C pass — no
    remainder matrix is ever materialised (the numpy tier builds one
    per call).  ``matrix`` is the SGR's interned separator-mask matrix.
    """
    ffi, lib = _lib()
    ids_arr = _as_i64(ids)
    m = ids_arr.shape[0]
    out = np.zeros(m, dtype=np.uint8)
    if m and components.shape[0]:
        words = matrix.shape[1]
        lib.crossing_batch_gather(
            _u64(ffi, np.ascontiguousarray(components, dtype=_WORD_DTYPE)),
            components.shape[0],
            _u64(ffi, matrix),
            words,
            _i64(ffi, ids_arr),
            m,
            _u64(ffi, matrix[v_id]),
            _u8_mut(ffi, out),
        )
    return [bool(x) for x in out]


def union_rows(matrix: np.ndarray, indices) -> int:
    """Native twin of :func:`repro.graph.bitset_np.union_rows`."""
    if not len(indices):
        return 0
    ffi, lib = _lib()
    idx = _as_i64(indices)
    words = matrix.shape[1]
    out = np.zeros(words, dtype=_WORD_DTYPE)
    lib.union_rows(
        _u64(ffi, matrix), words, _i64(ffi, idx), idx.shape[0],
        _u64_mut(ffi, out),
    )
    return int.from_bytes(out.tobytes(), "little")


def frontier_sweep(
    matrix: np.ndarray,
    seed: int,
    available_mask: int,
    adj: "list[int] | None" = None,
) -> int:
    """Native twin of :func:`repro.graph.bitset_np.frontier_sweep`.

    The whole reachability fixpoint — every frontier round — runs in
    one C call; the ``adj`` small-frontier fallback of the numpy tier
    is unnecessary here and accepted only for signature compatibility.
    """
    ffi, lib = _lib()
    words = matrix.shape[1]
    component = bytearray(_row_bytes(seed, words))
    rc = lib.frontier_sweep(
        _u64(ffi, matrix),
        words,
        _u64_mut(ffi, component),
        _u64(ffi, _row_bytes(available_mask, words)),
    )
    if rc != 0:  # pragma: no cover - scratch malloc failure
        return _np_kernels.frontier_sweep(matrix, seed, available_mask, adj)
    return int.from_bytes(component, "little")


def mask_to_indices(mask: int, words: int) -> np.ndarray:
    """Native twin of :func:`repro.graph.bitset_np.mask_to_indices`."""
    ffi, lib = _lib()
    out = np.empty(mask.bit_count(), dtype=np.int64)
    lib.mask_row_indices(
        _u64(ffi, _row_bytes(mask, words)), words, _i64_mut(ffi, out)
    )
    return out


#: Same-name re-export: the inverse direction has no per-bit loop worth
#: moving to C (one packbits pass), so the numpy kernel serves both tiers.
indices_to_mask = _np_kernels.indices_to_mask


def saturate_batch(
    matrix: np.ndarray, mask: int
) -> tuple[np.ndarray, np.ndarray]:
    """Native twin of :func:`repro.graph.bitset_np.saturate_batch`.

    Two fused passes (count, then fill) replace the numpy tier's
    unpackbits blow-up; pair order is identical (u-major in ascending
    index order, v ascending, strictly upper).
    """
    ffi, lib = _lib()
    words = matrix.shape[1]
    idx = mask_to_indices(mask, words)
    mask_row = _row_bytes(mask, words)
    count = lib.saturate_count(
        _u64(ffi, matrix), words, _u64(ffi, mask_row),
        _i64(ffi, idx), idx.shape[0],
    )
    u_arr = np.empty(count, dtype=np.int64)
    v_arr = np.empty(count, dtype=np.int64)
    if count:
        lib.saturate_fill(
            _u64(ffi, matrix), words, _u64(ffi, mask_row),
            _i64(ffi, idx), idx.shape[0],
            _i64_mut(ffi, u_arr), _i64_mut(ffi, v_arr),
        )
    return u_arr, v_arr


def set_edge_bits(
    matrix: np.ndarray, u_arr: np.ndarray, v_arr: np.ndarray
) -> None:
    """Native twin of :func:`repro.graph.bitset_np.set_edge_bits`."""
    ffi, lib = _lib()
    u_arr = _as_i64(u_arr)
    v_arr = _as_i64(v_arr)
    lib.set_edge_bits(
        _u64_mut(ffi, matrix), matrix.shape[1],
        _i64(ffi, u_arr), _i64(ffi, v_arr), u_arr.shape[0],
    )


def is_peo_packed(matrix: np.ndarray, order) -> bool:
    """Native twin of :func:`repro.graph.bitset_np.is_peo_packed`."""
    ffi, lib = _lib()
    order_arr = _as_i64(order)
    words = matrix.shape[1]
    verdict = lib.is_peo_packed(
        _u64(ffi, matrix), words, _i64(ffi, order_arr),
        order_arr.shape[0], words * WORD_BITS,
    )
    if verdict < 0:  # pragma: no cover - scratch malloc failure
        return _np_kernels.is_peo_packed(matrix, order)
    return bool(verdict)


def weight_level_rows(
    indices: np.ndarray, weights: np.ndarray, words: int
) -> np.ndarray:
    """Native twin of :func:`repro.graph.bitset_np.weight_level_rows`."""
    ffi, lib = _lib()
    idx = _as_i64(indices)
    wts = _as_i64(weights)
    out = np.zeros((idx.shape[0], words * 8), dtype=np.uint8)
    levels = lib.weight_level_rows(
        _i64(ffi, idx), _i64(ffi, wts), idx.shape[0], words,
        _u8_mut(ffi, out),
    )
    if levels < 0:  # pragma: no cover - scratch malloc failure
        return _np_kernels.weight_level_rows(indices, weights, words)
    return out[:levels]


def clique_present_sum(matrix: np.ndarray, mask: int) -> int:
    """Native twin of :func:`repro.graph.bitset_np.clique_present_sum`."""
    ffi, lib = _lib()
    words = matrix.shape[1]
    return int(
        lib.masked_rows_popcount(
            _u64(ffi, matrix), words, _u64(ffi, _row_bytes(mask, words))
        )
    )


class NativeMCSQueue(_NumpyMCSQueue):
    """PackedMCSQueue with argmax selection and bumps dispatched to C.

    Pop order is bit-identical to the numpy queue (first maximum of the
    same flat key array); the win is removing one numpy dispatch per
    MCS step and the fancy-index temporary per bump.
    """

    __slots__ = ("_key_ptr", "_weights_ptr")

    def __init__(self, initial_mask: int, ranks, words: int) -> None:
        super().__init__(initial_mask, ranks, words)
        ffi, __ = _lib()
        # The arrays never reallocate, so the pointers stay valid for
        # the queue's lifetime (the cdata keeps the buffers pinned).
        self._key_ptr = _i64_mut(ffi, self._key)
        self._weights_ptr = _i64_mut(ffi, self.weights)

    def pop_max(self) -> int:
        __, lib = _lib()
        best = lib.argmax_i64(self._key_ptr, self._key.shape[0])
        self._key[best] = self._POPPED
        return int(best)

    def bump_mask(self, mask: int) -> None:
        if not mask:
            return
        ffi, lib = _lib()
        lib.queue_bump_mask(
            self._key_ptr,
            self._weights_ptr,
            _u64(ffi, _row_bytes(mask, self._words)),
            self._words,
            self._stride,
        )


#: The namespace name the chordal layer constructs queues through.
PackedMCSQueue = NativeMCSQueue


class NativeGraphCore(NumpyGraphCore):
    """A :class:`~repro.graph.bitset_np.NumpyGraphCore` on C kernels.

    Everything structural is inherited — the int-mask source of truth,
    the lazily maintained packed mirror, ``from_packed`` zero-copy
    adoption of shared-memory segments, the width-adaptive
    ``is_narrow`` gate.  The only difference is the kernel namespace
    the batch methods (and, through
    :func:`repro.graph.bitset_np.kernels_for`, the chordal layer and
    the SGR) dispatch to.  When the compiled extension is unavailable
    the namespace degrades to the numpy module, so a payload built on a
    machine with gcc still rebuilds cleanly on one without.
    """

    __slots__ = ()

    @classmethod
    def runtime_available(cls) -> bool:
        return available()

    @staticmethod
    def _kernel_namespace():
        return kernel_namespace()


# Register as the third backend tier.  bitset_np imports this module
# lazily at its own bottom; doing the registration *here* keeps the
# import acyclic whichever module loads first.
_np_kernels.GRAPH_BACKENDS["native"] = NativeGraphCore
