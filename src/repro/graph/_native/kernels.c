/* Native word-matrix kernels — see kernels.h for the layout contract.
 *
 * The kernels mirror the numpy implementations in
 * repro/graph/bitset_np.py bit for bit; those stay the reference
 * oracles (pinned by tests/test_native_kernels.py and the --check
 * gates of the microbenchmarks).  What the C tier removes is the numpy
 * per-call dispatch and every intermediate array: each kernel is one
 * pass over the packed words with the loop fused end to end.
 */

#include <stdlib.h>
#include <string.h>

#include "kernels.h"

int repro_kernels_abi_version(void) { return REPRO_KERNELS_ABI_VERSION; }

void popcount_rows(const uint64_t *rows, int64_t m, int64_t words,
                   int64_t *out) {
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *row = rows + i * words;
        int64_t total = 0;
        for (int64_t w = 0; w < words; w++) {
            total += __builtin_popcountll(row[w]);
        }
        out[i] = total;
    }
}

void crossing_batch(const uint64_t *components, int64_t k,
                    const uint64_t *remainders, int64_t m, int64_t words,
                    uint8_t *out) {
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *rem = remainders + i * words;
        int touched = 0;
        for (int64_t c = 0; c < k && touched < 2; c++) {
            const uint64_t *comp = components + c * words;
            for (int64_t w = 0; w < words; w++) {
                if (rem[w] & comp[w]) {
                    touched++;
                    break;
                }
            }
        }
        out[i] = (uint8_t)(touched >= 2);
    }
}

void crossing_batch_gather(const uint64_t *components, int64_t k,
                           const uint64_t *matrix, int64_t words,
                           const int64_t *ids, int64_t m,
                           const uint64_t *v_row, uint8_t *out) {
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *cand = matrix + ids[i] * words;
        int touched = 0;
        for (int64_t c = 0; c < k && touched < 2; c++) {
            const uint64_t *comp = components + c * words;
            for (int64_t w = 0; w < words; w++) {
                if ((cand[w] & ~v_row[w]) & comp[w]) {
                    touched++;
                    break;
                }
            }
        }
        out[i] = (uint8_t)(touched >= 2);
    }
}

void union_rows(const uint64_t *matrix, int64_t words,
                const int64_t *indices, int64_t m, uint64_t *out) {
    for (int64_t j = 0; j < m; j++) {
        const uint64_t *row = matrix + indices[j] * words;
        for (int64_t w = 0; w < words; w++) {
            out[w] |= row[w];
        }
    }
}

int frontier_sweep(const uint64_t *matrix, int64_t words,
                   uint64_t *component, const uint64_t *available) {
    uint64_t *frontier = malloc((size_t)words * 16);
    if (frontier == NULL) {
        return -1;
    }
    uint64_t *reached = frontier + words;
    memcpy(frontier, component, (size_t)words * 8);
    for (;;) {
        int any = 0;
        memset(reached, 0, (size_t)words * 8);
        for (int64_t w = 0; w < words; w++) {
            uint64_t bits = frontier[w];
            while (bits) {
                int64_t v = (w << 6) + __builtin_ctzll(bits);
                bits &= bits - 1;
                const uint64_t *row = matrix + v * words;
                for (int64_t x = 0; x < words; x++) {
                    reached[x] |= row[x];
                }
            }
        }
        for (int64_t w = 0; w < words; w++) {
            uint64_t grown = reached[w] & available[w] & ~component[w];
            frontier[w] = grown;
            component[w] |= grown;
            any |= grown != 0;
        }
        if (!any) {
            break;
        }
    }
    free(frontier);
    return 0;
}

/* Shared missing-pair walk: counts pairs, and fills u_out/v_out when
 * given.  Keeping bits strictly above u drops both the diagonal and
 * the reversed orientation, matching the numpy kernel's order. */
static int64_t saturate_pairs(const uint64_t *matrix, int64_t words,
                              const uint64_t *mask_row, const int64_t *idx,
                              int64_t k, int64_t *u_out, int64_t *v_out) {
    int64_t count = 0;
    for (int64_t i = 0; i < k; i++) {
        int64_t u = idx[i];
        const uint64_t *row = matrix + u * words;
        int64_t w0 = u >> 6;
        for (int64_t w = w0; w < words; w++) {
            uint64_t missing = mask_row[w] & ~row[w];
            if (w == w0) {
                /* Drop bits 0..(u % 64): unsigned wrap makes the mask
                 * all-ones at shift 63, exactly what is needed. */
                missing &= ~((2ULL << (u & 63)) - 1ULL);
            }
            while (missing) {
                int64_t v = (w << 6) + __builtin_ctzll(missing);
                missing &= missing - 1;
                if (u_out != NULL) {
                    u_out[count] = u;
                    v_out[count] = v;
                }
                count++;
            }
        }
    }
    return count;
}

int64_t saturate_count(const uint64_t *matrix, int64_t words,
                       const uint64_t *mask_row, const int64_t *idx,
                       int64_t k) {
    return saturate_pairs(matrix, words, mask_row, idx, k, NULL, NULL);
}

void saturate_fill(const uint64_t *matrix, int64_t words,
                   const uint64_t *mask_row, const int64_t *idx, int64_t k,
                   int64_t *u_out, int64_t *v_out) {
    saturate_pairs(matrix, words, mask_row, idx, k, u_out, v_out);
}

void set_edge_bits(uint64_t *matrix, int64_t words, const int64_t *u_arr,
                   const int64_t *v_arr, int64_t m) {
    for (int64_t i = 0; i < m; i++) {
        int64_t u = u_arr[i];
        int64_t v = v_arr[i];
        matrix[u * words + (v >> 6)] |= 1ULL << (v & 63);
        matrix[v * words + (u >> 6)] |= 1ULL << (u & 63);
    }
}

int is_peo_packed(const uint64_t *matrix, int64_t words,
                  const int64_t *order, int64_t k, int64_t n_slots) {
    if (k == 0) {
        return 1;
    }
    uint64_t *madj = calloc((size_t)(k * words), 8);
    uint64_t *later = calloc((size_t)words, 8);
    int64_t *pos = malloc((size_t)n_slots * 8);
    if (madj == NULL || later == NULL || pos == NULL) {
        free(madj);
        free(later);
        free(pos);
        return -1;
    }
    for (int64_t i = 0; i < k; i++) {
        pos[order[i]] = i;
    }
    /* madj rows back to front: row i = adj(order[i]) restricted to
     * vertices ordered after i. */
    for (int64_t i = k - 1; i >= 0; i--) {
        int64_t v = order[i];
        const uint64_t *row = matrix + v * words;
        uint64_t *mrow = madj + i * words;
        for (int64_t w = 0; w < words; w++) {
            mrow[w] = row[w] & later[w];
        }
        later[v >> 6] |= 1ULL << (v & 63);
    }
    int ok = 1;
    for (int64_t i = 0; i < k && ok; i++) {
        const uint64_t *mrow = madj + i * words;
        /* Parent: the earliest-ordered member of madj (min position). */
        int64_t parent = -1;
        int64_t parent_pos = k;
        for (int64_t w = 0; w < words; w++) {
            uint64_t bits = mrow[w];
            while (bits) {
                int64_t v = (w << 6) + __builtin_ctzll(bits);
                bits &= bits - 1;
                if (pos[v] < parent_pos) {
                    parent_pos = pos[v];
                    parent = v;
                }
            }
        }
        if (parent < 0) {
            continue;
        }
        const uint64_t *prow = madj + parent_pos * words;
        for (int64_t w = 0; w < words; w++) {
            uint64_t violation = mrow[w] & ~prow[w];
            if (w == (parent >> 6)) {
                violation &= ~(1ULL << (parent & 63));
            }
            if (violation) {
                ok = 0;
                break;
            }
        }
    }
    free(madj);
    free(later);
    free(pos);
    return ok;
}

static int compare_i64(const void *a, const void *b) {
    int64_t lhs = *(const int64_t *)a;
    int64_t rhs = *(const int64_t *)b;
    return (lhs > rhs) - (lhs < rhs);
}

int64_t weight_level_rows(const int64_t *indices, const int64_t *weights,
                          int64_t m, int64_t words, uint8_t *out) {
    if (m == 0) {
        return 0;
    }
    int64_t *distinct = malloc((size_t)m * 8);
    if (distinct == NULL) {
        return -1;
    }
    memcpy(distinct, weights, (size_t)m * 8);
    qsort(distinct, (size_t)m, 8, compare_i64);
    int64_t levels = 0;
    for (int64_t i = 0; i < m; i++) {
        if (levels == 0 || distinct[i] != distinct[levels - 1]) {
            distinct[levels++] = distinct[i];
        }
    }
    int64_t row_bytes = words * 8;
    for (int64_t j = 0; j < m; j++) {
        /* Binary search: weights[j] is always present in distinct. */
        int64_t lo = 0;
        int64_t hi = levels - 1;
        while (lo < hi) {
            int64_t mid = (lo + hi) >> 1;
            if (distinct[mid] < weights[j]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        int64_t bit = indices[j];
        out[lo * row_bytes + (bit >> 3)] |= (uint8_t)(1u << (bit & 7));
    }
    free(distinct);
    return levels;
}

int64_t argmax_i64(const int64_t *key, int64_t n) {
    int64_t best = 0;
    for (int64_t i = 1; i < n; i++) {
        if (key[i] > key[best]) {
            best = i;
        }
    }
    return best;
}

void queue_bump_mask(int64_t *key, int64_t *weights,
                     const uint64_t *mask_row, int64_t words,
                     int64_t stride) {
    for (int64_t w = 0; w < words; w++) {
        uint64_t bits = mask_row[w];
        while (bits) {
            int64_t i = (w << 6) + __builtin_ctzll(bits);
            bits &= bits - 1;
            weights[i] += 1;
            key[i] += stride;
        }
    }
}

int64_t mask_row_indices(const uint64_t *mask_row, int64_t words,
                         int64_t *out) {
    int64_t count = 0;
    for (int64_t w = 0; w < words; w++) {
        uint64_t bits = mask_row[w];
        while (bits) {
            out[count++] = (w << 6) + __builtin_ctzll(bits);
            bits &= bits - 1;
        }
    }
    return count;
}

int64_t masked_rows_popcount(const uint64_t *matrix, int64_t words,
                             const uint64_t *mask_row) {
    int64_t total = 0;
    for (int64_t w = 0; w < words; w++) {
        uint64_t bits = mask_row[w];
        while (bits) {
            int64_t u = (w << 6) + __builtin_ctzll(bits);
            bits &= bits - 1;
            const uint64_t *row = matrix + u * words;
            for (int64_t x = 0; x < words; x++) {
                total += __builtin_popcountll(row[x] & mask_row[x]);
            }
        }
    }
    return total;
}
