"""Native C kernel tier (compiled in-repo via cffi ABI mode).

Import :mod:`repro.graph._native.native` for the loader and the
``NativeGraphCore`` backend; importing this package alone stays free of
side effects so a broken toolchain can never poison ``repro.graph``.
"""
