"""Packed-bitset numpy layer: word-matrix kernels and a large-n graph core.

The Python-int bitmask core (:mod:`repro.graph.core`) wins for graphs
up to a few hundred nodes because each adjacency is a single machine
object and CPython's big-int ops run in C.  Past roughly a thousand
nodes two costs start to dominate:

* *per-row overhead* — set-algebraic sweeps (neighbourhood unions,
  component frontiers) still pay one interpreter round-trip per vertex
  row touched, and
* *per-pair overhead* — the separator-crossing oracle of the SGR layer
  pays a full Python call per (v, u) pair even though the test itself
  is a handful of word ANDs.

This module packs vertex bitmasks into rows of ``uint64`` *word
matrices* so those sweeps become single vectorized numpy expressions:

* :func:`pack_mask` / :func:`pack_masks` / :func:`unpack_row` convert
  between the int-mask representation used everywhere else and packed
  ``uint64`` rows (little-endian word order, so bit ``i`` of a mask is
  bit ``i % 64`` of word ``i // 64``);
* :func:`popcount` counts set bits per row (``np.bitwise_count`` when
  available, a byte-table fallback otherwise);
* :func:`crossing_batch` is the batched separator-crossing kernel: one
  separator's component matrix against many remainder rows in one
  vectorized pass (see
  :meth:`repro.sgr.separator_graph.MinimalSeparatorSGR.has_edges_batch`);
* :class:`NumpyGraphCore` is an :class:`~repro.graph.core.IndexedGraph`
  whose batch-heavy methods (neighbourhood-of-set, component
  expansion) run on a lazily maintained packed adjacency matrix —
  the size-adaptive backend selected for large graphs;
* :func:`select_core_class` / :func:`convert_graph` implement the
  backend registry (``"indexed"`` / ``"numpy"`` / ``"auto"``) used by
  the enumeration engine and the CLI ``--graph-backend`` flag.

Everything here is API-compatible with the int-mask core: masks go in,
masks come out, and the packed matrices are pure caches — invalidated
on mutation, rebuilt on demand — so correctness never depends on them.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.graph.core import IndexedGraph, bit_list

__all__ = [
    "WORD_BITS",
    "NUMPY_THRESHOLD",
    "GRAPH_BACKENDS",
    "word_count",
    "pack_mask",
    "pack_masks",
    "zero_matrix",
    "unpack_row",
    "popcount",
    "crossing_batch",
    "NumpyGraphCore",
    "select_core_class",
    "core_backend_name",
    "convert_graph",
]

WORD_BITS = 64

#: Node count above which ``"auto"`` selects the numpy core.  Below it
#: single-int masks fit in a few machine words and the per-call numpy
#: overhead outweighs the vectorization win.
NUMPY_THRESHOLD = 1500

_WORD_DTYPE = np.dtype("<u8")

# Vectorized popcount: numpy >= 2.0 ships np.bitwise_count; older
# versions fall back to summing a byte-level popcount table.
_BITWISE_COUNT = getattr(np, "bitwise_count", None)
_BYTE_POPCOUNT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def word_count(num_bits: int) -> int:
    """Return how many 64-bit words hold ``num_bits`` bits (at least 1)."""
    return max(1, (num_bits + WORD_BITS - 1) // WORD_BITS)


def pack_mask(mask: int, words: int) -> np.ndarray:
    """Pack an int bitmask into a ``(words,)`` uint64 row."""
    return np.frombuffer(
        mask.to_bytes(words * 8, "little"), dtype=_WORD_DTYPE
    )


def pack_masks(masks: Iterable[int], words: int) -> np.ndarray:
    """Pack int bitmasks into an ``(m, words)`` uint64 matrix."""
    nbytes = words * 8
    buffer = b"".join([mask.to_bytes(nbytes, "little") for mask in masks])
    packed = np.frombuffer(buffer, dtype=_WORD_DTYPE)
    return packed.reshape(-1, words)


def zero_matrix(rows: int, words: int) -> np.ndarray:
    """An all-zero ``(rows, words)`` packed matrix (growable row store)."""
    return np.zeros((rows, words), dtype=_WORD_DTYPE)


def unpack_row(row: np.ndarray) -> int:
    """Unpack a uint64 row back into an int bitmask."""
    return int.from_bytes(
        np.ascontiguousarray(row, dtype=_WORD_DTYPE).tobytes(), "little"
    )


def popcount(packed: np.ndarray) -> np.ndarray:
    """Count set bits along the last (word) axis of ``packed``."""
    if _BITWISE_COUNT is not None:
        return _BITWISE_COUNT(packed).sum(axis=-1, dtype=np.int64)
    as_bytes = packed.view(np.uint8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=-1, dtype=np.int64)


def crossing_batch(
    components: np.ndarray, remainders: np.ndarray
) -> np.ndarray:
    """The batched crossing kernel: which remainders touch >= 2 components?

    Parameters
    ----------
    components:
        ``(k, words)`` packed component masks of ``g \\ S`` for one
        separator S.
    remainders:
        ``(m, words)`` packed masks ``T_i \\ S`` for m candidate
        separators.

    Returns
    -------
    np.ndarray
        Boolean ``(m,)`` vector: entry i is True iff remainder i
        intersects at least two component rows — i.e. S crosses T_i.
        An all-zero remainder (``T_i ⊆ S``) touches no component and
        yields False, matching the scalar oracle.

    The loop runs over the k component rows (k is small — a minimal
    separator rarely splits the graph into many parts) with each
    iteration a vectorized AND+any over all m remainders, so the cost
    is O(k · m · words) word operations with no per-pair Python
    overhead.
    """
    touched = np.zeros(remainders.shape[0], dtype=np.int64)
    if not touched.shape[0] or not components.shape[0]:
        return touched >= 2
    check_exit = len(components) > 8
    for row in components:
        touched += (remainders & row).any(axis=1)
        # Early exit pays only when many component rows remain: once
        # every remainder has met two components no further row can
        # change the answer.
        if check_exit and touched.min() >= 2:
            break
    return touched >= 2


class NumpyGraphCore(IndexedGraph):
    """An ``IndexedGraph`` with a packed adjacency matrix for batch ops.

    The int-mask ``adj`` list stays the source of truth, so every
    inherited operation keeps working unchanged; a ``(slots, words)``
    uint64 matrix mirror is built lazily and dropped on any mutation.
    The overridden methods route wide sweeps (OR-reducing many
    adjacency rows at once) through the matrix, which is where the
    numpy core beats single-int masks on graphs of a few thousand
    nodes.
    """

    __slots__ = ("_packed",)

    #: Minimum number of rows in a sweep before the packed matrix is
    #: used; below it the inherited int-mask loop is faster.
    _MIN_GATHER = 16

    def __init__(self, num_vertices: int = 0) -> None:
        super().__init__(num_vertices)
        self._packed: np.ndarray | None = None

    @classmethod
    def from_indexed(cls, core: IndexedGraph) -> "NumpyGraphCore":
        """Build a numpy core from (a copy of the state of) ``core``."""
        clone = cls.__new__(cls)
        clone.adj = list(core.adj)
        clone.alive = core.alive
        clone.num_edges = core.num_edges
        clone._packed = None
        return clone

    @classmethod
    def _adopt(cls, core: IndexedGraph) -> "NumpyGraphCore":
        """Like :meth:`from_indexed` but takes ownership of ``core``'s
        adjacency list — for exclusively-owned intermediates only."""
        clone = cls.__new__(cls)
        clone.adj = core.adj
        clone.alive = core.alive
        clone.num_edges = core.num_edges
        clone._packed = None
        return clone

    # -- cache maintenance ---------------------------------------------

    def _matrix(self) -> np.ndarray:
        packed = self._packed
        if packed is None or packed.shape[0] != len(self.adj):
            packed = pack_masks(self.adj, word_count(len(self.adj)))
            self._packed = packed
        return packed

    def add_vertex(self, index: int | None = None) -> int:
        self._packed = None
        return super().add_vertex(index)

    def remove_vertex(self, index: int) -> None:
        self._packed = None
        super().remove_vertex(index)

    def add_edge(self, u: int, v: int) -> bool:
        self._packed = None
        return super().add_edge(u, v)

    def remove_edge(self, u: int, v: int) -> bool:
        self._packed = None
        return super().remove_edge(u, v)

    def saturate(self, mask: int) -> list[tuple[int, int]]:
        self._packed = None
        return super().saturate(mask)

    # -- batch-accelerated queries -------------------------------------

    def _union_of_rows(self, indices: list[int]) -> int:
        rows = self._matrix()[indices]
        return unpack_row(np.bitwise_or.reduce(rows, axis=0))

    def neighborhood_of_set(self, mask: int) -> int:
        indices = bit_list(mask)
        if len(indices) < self._MIN_GATHER:
            return super().neighborhood_of_set(mask)
        return self._union_of_rows(indices) & ~mask

    def expand_component(self, seed: int, available: int) -> int:
        component = seed
        frontier = seed
        adj = self.adj
        min_gather = self._MIN_GATHER
        while frontier:
            indices = bit_list(frontier)
            if len(indices) < min_gather:
                reached = 0
                for i in indices:
                    reached |= adj[i]
            else:
                reached = self._union_of_rows(indices)
            frontier = reached & available & ~component
            component |= frontier
        return component

    # -- derived graphs keep the numpy core ----------------------------

    def copy(self) -> "NumpyGraphCore":
        return NumpyGraphCore._adopt(super().copy())

    def subgraph(self, mask: int) -> "NumpyGraphCore":
        return NumpyGraphCore._adopt(super().subgraph(mask))

    def complement(self) -> "NumpyGraphCore":
        return NumpyGraphCore._adopt(super().complement())


#: The graph-core backend registry: name → core class.
GRAPH_BACKENDS: dict[str, type[IndexedGraph]] = {
    "indexed": IndexedGraph,
    "numpy": NumpyGraphCore,
}


def select_core_class(
    num_nodes: int,
    backend: str = "auto",
    threshold: int = NUMPY_THRESHOLD,
) -> type[IndexedGraph]:
    """Resolve a backend name to a core class.

    ``"auto"`` picks :class:`NumpyGraphCore` at or above ``threshold``
    nodes and :class:`~repro.graph.core.IndexedGraph` below it.
    """
    if backend == "auto":
        return NumpyGraphCore if num_nodes >= threshold else IndexedGraph
    try:
        return GRAPH_BACKENDS[backend]
    except KeyError:
        known = ", ".join(["auto", *sorted(GRAPH_BACKENDS)])
        raise ValueError(
            f"unknown graph backend {backend!r} (known: {known})"
        ) from None


def core_backend_name(core: IndexedGraph) -> str:
    """The registry name of a core instance's backend."""
    return "numpy" if isinstance(core, NumpyGraphCore) else "indexed"


def convert_graph(graph, backend: str = "auto", threshold: int = NUMPY_THRESHOLD):
    """Return ``graph`` on the selected core backend.

    The input is returned unchanged when its core already matches the
    selection; otherwise a copy with an identical interner — and
    therefore identical vertex indices, so every mask computed against
    one is valid against the other — is returned.  ``"auto"`` only ever
    *upgrades* a plain indexed core at or above ``threshold`` nodes; a
    core the caller explicitly placed on another backend is respected.
    """
    from repro.graph.graph import Graph

    core = graph.core
    if backend == "auto" and type(core) is not IndexedGraph:
        return graph
    target = select_core_class(graph.num_nodes, backend, threshold)
    if type(core) is target:
        return graph
    if target is IndexedGraph:
        plain = IndexedGraph.__new__(IndexedGraph)
        plain.adj = list(core.adj)
        plain.alive = core.alive
        plain.num_edges = core.num_edges
        return Graph._from_parts(plain, graph.interner.copy())
    return Graph._from_parts(
        NumpyGraphCore.from_indexed(core), graph.interner.copy()
    )
